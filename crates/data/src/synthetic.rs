//! Additional synthetic classification benchmarks.
//!
//! The spiral is the paper's workload, but the QML benchmarking literature
//! it builds on (Bowles et al. 2024, cited as [27]) evaluates across a
//! family of controllable toy tasks. This module supplies the common ones —
//! two moons, concentric circles, Gaussian blobs and noisy XOR — all
//! returning the same [`Dataset`] type, so every model/search facility in
//! the workspace works on them unchanged.

use hqnn_tensor::{Matrix, SeededRng};

use crate::Dataset;

fn finish(x: Matrix, y: Vec<usize>, n_classes: usize, rng: &mut SeededRng) -> Dataset {
    let mut ds = Dataset::new(x, y, n_classes);
    ds.shuffle(rng);
    ds
}

/// The classic two-moons task: two interleaved half-circles with Gaussian
/// jitter `noise`.
///
/// # Panics
///
/// Panics if `n_samples < 2` or `noise < 0`.
///
/// # Example
///
/// ```
/// use hqnn_data::synthetic::two_moons;
/// use hqnn_tensor::SeededRng;
///
/// let ds = two_moons(200, 0.1, &mut SeededRng::new(0));
/// assert_eq!(ds.n_features(), 2);
/// assert_eq!(ds.n_classes(), 2);
/// assert_eq!(ds.class_counts(), vec![100, 100]);
/// ```
pub fn two_moons(n_samples: usize, noise: f64, rng: &mut SeededRng) -> Dataset {
    assert!(n_samples >= 2, "need at least one sample per moon");
    assert!(noise >= 0.0, "noise must be non-negative");
    let per_class = n_samples / 2;
    let mut x = Matrix::zeros(2 * per_class, 2);
    // Rows 0..per_class are the upper moon (class 0), the rest the lower.
    let mut y = vec![0; per_class];
    y.extend(std::iter::repeat_n(1, per_class));
    for i in 0..per_class {
        let t = std::f64::consts::PI * (i as f64 + 0.5) / per_class as f64;
        // Upper moon.
        x[(i, 0)] = t.cos() + rng.normal(0.0, noise);
        x[(i, 1)] = t.sin() + rng.normal(0.0, noise);
        // Lower moon, shifted to interleave.
        let j = per_class + i;
        x[(j, 0)] = 1.0 - t.cos() + rng.normal(0.0, noise);
        x[(j, 1)] = 0.5 - t.sin() + rng.normal(0.0, noise);
    }
    finish(x, y, 2, rng)
}

/// Concentric circles: class 0 on a circle of radius `inner_radius`,
/// class 1 on radius 1, each with Gaussian jitter `noise`.
///
/// # Panics
///
/// Panics if `n_samples < 2`, `noise < 0`, or
/// `inner_radius ∉ (0, 1)`.
pub fn circles(n_samples: usize, inner_radius: f64, noise: f64, rng: &mut SeededRng) -> Dataset {
    assert!(n_samples >= 2, "need at least one sample per circle");
    assert!(noise >= 0.0, "noise must be non-negative");
    assert!(
        inner_radius > 0.0 && inner_radius < 1.0,
        "inner radius must be in (0, 1)"
    );
    let per_class = n_samples / 2;
    let mut x = Matrix::zeros(2 * per_class, 2);
    // Rows 0..per_class are the inner circle (class 0), the rest the outer.
    let mut y = vec![0; per_class];
    y.extend(std::iter::repeat_n(1, per_class));
    for i in 0..per_class {
        let t = 2.0 * std::f64::consts::PI * (i as f64 + 0.5) / per_class as f64;
        x[(i, 0)] = inner_radius * t.cos() + rng.normal(0.0, noise);
        x[(i, 1)] = inner_radius * t.sin() + rng.normal(0.0, noise);
        let j = per_class + i;
        x[(j, 0)] = t.cos() + rng.normal(0.0, noise);
        x[(j, 1)] = t.sin() + rng.normal(0.0, noise);
    }
    finish(x, y, 2, rng)
}

/// Isotropic Gaussian blobs: one cluster per class, centres equally spaced
/// on the unit circle, each with std `spread`.
///
/// # Panics
///
/// Panics if `n_classes == 0`, `n_samples < n_classes`, or `spread < 0`.
pub fn gaussian_blobs(
    n_samples: usize,
    n_classes: usize,
    spread: f64,
    rng: &mut SeededRng,
) -> Dataset {
    assert!(n_classes > 0, "need at least one class");
    assert!(n_samples >= n_classes, "need one sample per class");
    assert!(spread >= 0.0, "spread must be non-negative");
    let per_class = n_samples / n_classes;
    let mut x = Matrix::zeros(per_class * n_classes, 2);
    let mut y = Vec::with_capacity(per_class * n_classes);
    for class in 0..n_classes {
        let angle = 2.0 * std::f64::consts::PI * class as f64 / n_classes as f64;
        let (cx, cy) = (angle.cos(), angle.sin());
        for i in 0..per_class {
            let row = class * per_class + i;
            x[(row, 0)] = cx + rng.normal(0.0, spread);
            x[(row, 1)] = cy + rng.normal(0.0, spread);
            y.push(class);
        }
    }
    finish(x, y, n_classes, rng)
}

/// Noisy XOR: four Gaussian clusters at `(±1, ±1)`, labelled by the sign
/// product — not linearly separable by construction.
///
/// # Panics
///
/// Panics if `n_samples < 4` or `noise < 0`.
pub fn xor(n_samples: usize, noise: f64, rng: &mut SeededRng) -> Dataset {
    assert!(n_samples >= 4, "need at least one sample per quadrant");
    assert!(noise >= 0.0, "noise must be non-negative");
    let per_quadrant = n_samples / 4;
    let mut x = Matrix::zeros(4 * per_quadrant, 2);
    let mut y = Vec::with_capacity(4 * per_quadrant);
    for (q, (sx, sy)) in [(1.0, 1.0), (-1.0, -1.0), (1.0, -1.0), (-1.0, 1.0)]
        .into_iter()
        .enumerate()
    {
        for i in 0..per_quadrant {
            let row = q * per_quadrant + i;
            x[(row, 0)] = sx + rng.normal(0.0, noise);
            x[(row, 1)] = sy + rng.normal(0.0, noise);
            // Same-sign quadrants are class 0, mixed-sign class 1.
            y.push(if sx * sy > 0.0 { 0 } else { 1 });
        }
    }
    finish(x, y, 2, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SeededRng {
        SeededRng::new(99)
    }

    #[test]
    fn moons_shapes_and_balance() {
        let ds = two_moons(300, 0.05, &mut rng());
        assert_eq!(ds.len(), 300);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.class_counts(), vec![150, 150]);
        assert!(ds.features().all_finite());
    }

    #[test]
    fn moons_are_vertically_offset_and_interleaved() {
        let ds = two_moons(400, 0.02, &mut rng());
        // Mean height separates the classes (upper moon ≈ +0.64, lower ≈ -0.14)…
        let mean_y = |class: usize| {
            let rows: Vec<f64> = ds
                .features()
                .iter_rows()
                .zip(ds.labels())
                .filter(|(_, &l)| l == class)
                .map(|(row, _)| row[1])
                .collect();
            rows.iter().sum::<f64>() / rows.len() as f64
        };
        assert!(
            mean_y(0) > mean_y(1) + 0.5,
            "{} vs {}",
            mean_y(0),
            mean_y(1)
        );
        // …but no horizontal line does: both classes cross y = 0.25
        // (the interleaving that makes the task non-linear).
        let crossings = |class: usize| {
            let (mut above, mut below) = (false, false);
            for (row, &l) in ds.features().iter_rows().zip(ds.labels()) {
                if l == class {
                    if row[1] > 0.25 {
                        above = true;
                    } else {
                        below = true;
                    }
                }
            }
            above && below
        };
        assert!(crossings(0) && crossings(1), "moons do not interleave");
    }

    #[test]
    fn circles_radii_separate_classes() {
        let ds = circles(400, 0.4, 0.01, &mut rng());
        for (row, &label) in ds.features().iter_rows().zip(ds.labels()) {
            let r = (row[0] * row[0] + row[1] * row[1]).sqrt();
            if label == 0 {
                assert!(r < 0.7, "inner point at r = {r}");
            } else {
                assert!(r > 0.7, "outer point at r = {r}");
            }
        }
    }

    #[test]
    fn blobs_cluster_around_centres() {
        let ds = gaussian_blobs(300, 3, 0.05, &mut rng());
        assert_eq!(ds.class_counts(), vec![100, 100, 100]);
        for (row, &label) in ds.features().iter_rows().zip(ds.labels()) {
            let angle = 2.0 * std::f64::consts::PI * label as f64 / 3.0;
            let d = ((row[0] - angle.cos()).powi(2) + (row[1] - angle.sin()).powi(2)).sqrt();
            assert!(d < 0.5, "point {d} from its centre");
        }
    }

    #[test]
    fn xor_labels_follow_sign_product() {
        let ds = xor(400, 0.1, &mut rng());
        assert_eq!(ds.n_classes(), 2);
        let mut consistent = 0;
        for (row, &label) in ds.features().iter_rows().zip(ds.labels()) {
            let expected = if row[0] * row[1] > 0.0 { 0 } else { 1 };
            if expected == label {
                consistent += 1;
            }
        }
        // Noise 0.1 rarely flips a quadrant.
        assert!(consistent as f64 / ds.len() as f64 > 0.97);
    }

    #[test]
    fn generators_are_seed_deterministic() {
        let a = two_moons(100, 0.1, &mut SeededRng::new(5));
        let b = two_moons(100, 0.1, &mut SeededRng::new(5));
        assert_eq!(a, b);
        let c = circles(100, 0.5, 0.1, &mut SeededRng::new(5));
        let d = circles(100, 0.5, 0.1, &mut SeededRng::new(5));
        assert_eq!(c, d);
    }

    #[test]
    #[should_panic(expected = "inner radius")]
    fn circles_validates_radius() {
        let _ = circles(100, 1.5, 0.1, &mut rng());
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn moons_validates_noise() {
        let _ = two_moons(100, -0.1, &mut rng());
    }

    #[test]
    fn hybrid_model_learns_two_moons() {
        // Cross-module smoke: the new datasets feed the existing stack.
        let mut r = rng();
        let ds = two_moons(240, 0.1, &mut r);
        let (train_set, val_set) = ds.split(0.8, &mut r);
        let (s, x_train) = crate::Standardizer::fit_transform(train_set.features());
        let _x_val = s.transform(val_set.features());
        assert_eq!(x_train.cols(), 2);
    }
}
