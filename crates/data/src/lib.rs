//! Synthetic spiral dataset with controllable problem complexity.
//!
//! Implements the paper's benchmark workload (§III-A): a 3-class spiral of
//! 1500 points whose **problem complexity** is dialled up by adding features.
//! The first two features are the spiral coordinates (with a fixed
//! [`BASE_NOISE`] jitter); every additional feature is a non-linear
//! transform of those coordinates — part class-informative, part
//! class-symmetric distraction (see [`SpiralConfig`]) — carrying Gaussian
//! noise whose scale grows with the feature count:
//!
//! ```text
//! noise(F) = 0.1 + 0.003 · F
//! ```
//!
//! so a 110-feature instance is both higher-dimensional *and* noisier than a
//! 10-feature one — exactly the knob the paper turns from "low" to "high"
//! problem complexity (feature sizes 10, 20, …, 110).
//!
//! # Example
//!
//! ```
//! use hqnn_data::{Dataset, SpiralConfig};
//! use hqnn_tensor::SeededRng;
//!
//! let mut rng = SeededRng::new(0);
//! let data = Dataset::spiral(&SpiralConfig::paper(10), &mut rng);
//! assert_eq!(data.len(), 1500);
//! assert_eq!(data.n_features(), 10);
//! assert_eq!(data.n_classes(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod synthetic;

use hqnn_tensor::{Matrix, SeededRng};
use serde::{Deserialize, Serialize};

/// The noise scale the paper applies at a given feature count:
/// `0.1 + 0.003 · n_features`.
///
/// # Example
///
/// ```
/// assert!((hqnn_data::noise_level(10) - 0.13).abs() < 1e-12);
/// assert!((hqnn_data::noise_level(110) - 0.43).abs() < 1e-12);
/// ```
pub fn noise_level(n_features: usize) -> f64 {
    0.1 + 0.003 * n_features as f64
}

/// Fixed Gaussian jitter applied to the two base spiral coordinates
/// (the complexity-scaled [`noise_level`] applies to the derived features).
pub const BASE_NOISE: f64 = 0.1;

/// The paper's eleven complexity levels: feature sizes 10, 20, …, 110.
pub fn complexity_levels() -> Vec<usize> {
    (1..=11).map(|i| i * 10).collect()
}

/// Parameters of the spiral generator.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SpiralConfig {
    /// Total number of samples, split evenly across classes.
    pub n_samples: usize,
    /// Number of classes (spiral arms).
    pub n_classes: usize,
    /// Total feature count (≥ 2); features beyond the first two are derived.
    pub n_features: usize,
    /// How many radians each arm winds from centre to rim.
    pub turns: f64,
    /// Per-feature Gaussian noise std; `None` uses [`noise_level`] of
    /// `n_features` (the paper's schedule).
    pub noise: Option<f64>,
    /// Amplitude of the class-informative component of each derived feature
    /// (a warped projection of the base coordinates).
    pub signal_amplitude: f64,
    /// Amplitude of the class-symmetric (distractor) component of each
    /// derived feature — structure the model must learn to ignore.
    pub distractor_amplitude: f64,
}

impl SpiralConfig {
    /// The paper's configuration at a given complexity level: 1500 samples,
    /// 3 classes, noise `0.1 + 0.003 · n_features`.
    ///
    /// # Panics
    ///
    /// Panics if `n_features < 2`.
    pub fn paper(n_features: usize) -> Self {
        assert!(n_features >= 2, "spiral needs at least the 2 base features");
        Self {
            n_samples: 1500,
            n_classes: 3,
            n_features,
            turns: 1.5 * std::f64::consts::PI,
            noise: None,
            signal_amplitude: 1.5,
            distractor_amplitude: 0.8,
        }
    }

    /// A reduced instance (fewer samples) for fast tests and the harness's
    /// fast profile. Same structure, same noise schedule.
    pub fn fast(n_features: usize) -> Self {
        Self {
            n_samples: 600,
            ..Self::paper(n_features)
        }
    }

    /// Overrides the sample count.
    pub fn with_samples(mut self, n_samples: usize) -> Self {
        self.n_samples = n_samples;
        self
    }

    /// Overrides the noise std (e.g. to study noise and dimensionality
    /// independently).
    pub fn with_noise(mut self, noise: f64) -> Self {
        self.noise = Some(noise);
        self
    }

    /// The effective noise std this configuration will use.
    pub fn effective_noise(&self) -> f64 {
        self.noise.unwrap_or_else(|| noise_level(self.n_features))
    }
}

/// A labelled dataset: `(n_samples, n_features)` matrix plus integer labels.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    x: Matrix,
    y: Vec<usize>,
    n_classes: usize,
}

impl Dataset {
    /// Wraps existing features and labels.
    ///
    /// # Panics
    ///
    /// Panics if row count and label count disagree, or a label is
    /// `>= n_classes`.
    pub fn new(x: Matrix, y: Vec<usize>, n_classes: usize) -> Self {
        assert_eq!(x.rows(), y.len(), "sample/label count mismatch");
        assert!(
            y.iter().all(|&l| l < n_classes),
            "label out of range for {n_classes} classes"
        );
        Self { x, y, n_classes }
    }

    /// Generates the spiral dataset.
    ///
    /// Class `k`'s arm places its `i`-th point at radius `r = i/n` and angle
    /// `φ = turns·r + 2πk/n_classes`; the base coordinates are
    /// `(r·cos φ, r·sin φ)`. Derived feature `j ≥ 2` applies the `j`-th
    /// member of a fixed family of non-linear transforms to the clean base
    /// coordinates. Gaussian noise of std [`SpiralConfig::effective_noise`]
    /// is then added to **every** feature.
    ///
    /// # Panics
    ///
    /// Panics if `n_samples < n_classes`, `n_classes == 0`, or
    /// `n_features < 2`.
    pub fn spiral(config: &SpiralConfig, rng: &mut SeededRng) -> Self {
        assert!(config.n_classes > 0, "need at least one class");
        assert!(
            config.n_samples >= config.n_classes,
            "need at least one sample per class"
        );
        assert!(config.n_features >= 2, "spiral needs ≥ 2 features");
        let _span = hqnn_telemetry::span("data.spiral");
        let per_class = config.n_samples / config.n_classes;
        let n = per_class * config.n_classes;
        let noise = config.effective_noise();

        let mut x = Matrix::zeros(n, config.n_features);
        let mut y = Vec::with_capacity(n);
        let mut row = 0;
        for class in 0..config.n_classes {
            let phase = 2.0 * std::f64::consts::PI * class as f64 / config.n_classes as f64;
            for i in 0..per_class {
                let r = (i as f64 + 0.5) / per_class as f64;
                let phi = config.turns * r + phase;
                let base0 = r * phi.cos();
                let base1 = r * phi.sin();
                x[(row, 0)] = base0;
                x[(row, 1)] = base1;
                for j in 2..config.n_features {
                    x[(row, j)] = config.signal_amplitude * signal_feature(j, base0, base1)
                        + config.distractor_amplitude * distractor_feature(j, base0, base1);
                }
                // The base coordinates carry a fixed jitter; the derived
                // features carry the complexity-scaled noise, so adding
                // features makes the task higher-dimensional *and* noisier
                // without erasing the underlying spiral (§III-A).
                x[(row, 0)] += rng.normal(0.0, BASE_NOISE);
                x[(row, 1)] += rng.normal(0.0, BASE_NOISE);
                for j in 2..config.n_features {
                    x[(row, j)] += rng.normal(0.0, noise);
                }
                y.push(class);
                row += 1;
            }
        }
        let mut ds = Self {
            x,
            y,
            n_classes: config.n_classes,
        };
        ds.shuffle(rng);
        hqnn_telemetry::counter("data.samples_generated", n as u64);
        hqnn_telemetry::event(
            hqnn_telemetry::Level::Debug,
            "data.generate",
            &[
                ("kind", "spiral".into()),
                ("samples", n.into()),
                ("features", config.n_features.into()),
                ("classes", config.n_classes.into()),
                ("noise", noise.into()),
            ],
        );
        ds
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// `true` when the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality.
    pub fn n_features(&self) -> usize {
        self.x.cols()
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// The feature matrix.
    pub fn features(&self) -> &Matrix {
        &self.x
    }

    /// The labels.
    pub fn labels(&self) -> &[usize] {
        &self.y
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.n_classes];
        for &label in &self.y {
            counts[label] += 1;
        }
        counts
    }

    /// Shuffles samples in place (features and labels together).
    pub fn shuffle(&mut self, rng: &mut SeededRng) {
        let perm = rng.permutation(self.len());
        self.x = self.x.select_rows(&perm);
        self.y = perm.iter().map(|&i| self.y[i]).collect();
    }

    /// Stratified split into `(train, val)` with `train_fraction` of each
    /// class in the training set (the paper validates on a held-out split).
    ///
    /// # Panics
    ///
    /// Panics if `train_fraction` is not within `(0, 1)`.
    pub fn split(&self, train_fraction: f64, rng: &mut SeededRng) -> (Dataset, Dataset) {
        assert!(
            train_fraction > 0.0 && train_fraction < 1.0,
            "train fraction must be in (0, 1)"
        );
        let mut train_idx = Vec::new();
        let mut val_idx = Vec::new();
        for class in 0..self.n_classes {
            let mut members: Vec<usize> = (0..self.len()).filter(|&i| self.y[i] == class).collect();
            rng.shuffle(&mut members);
            let cut = ((members.len() as f64) * train_fraction).round() as usize;
            let cut = cut.clamp(1.min(members.len()), members.len());
            train_idx.extend_from_slice(&members[..cut]);
            val_idx.extend_from_slice(&members[cut..]);
        }
        rng.shuffle(&mut train_idx);
        rng.shuffle(&mut val_idx);
        let make = |idx: &[usize]| {
            Dataset::new(
                self.x.select_rows(idx),
                idx.iter().map(|&i| self.y[i]).collect(),
                self.n_classes,
            )
        };
        (make(&train_idx), make(&val_idx))
    }
}

/// The fixed family of non-linear transforms generating derived features.
/// Member `j` mixes trigonometric, polynomial and saturating terms of the
/// clean base coordinates with `j`-dependent frequencies, so each new
/// feature carries (noisy, redundant) non-linear views of the same spiral —
/// raising dimensionality without adding class information, as §III-A
/// describes ("subtle variations through non-linear transformations of the
/// existing features").
/// The class-informative component of derived feature `j`: a sinusoidally
/// warped projection of the clean base coordinates onto a `j`-dependent
/// direction — a "subtle variation through non-linear transformation of the
/// existing features" (§III-A) that still carries (redundant) class signal.
fn signal_feature(j: usize, x0: f64, x1: f64) -> f64 {
    let alpha = 0.9 * j as f64; // direction varies per feature
    let proj = alpha.cos() * x0 + alpha.sin() * x1;
    (2.0 * proj + 0.5 * alpha).sin()
}

/// The class-symmetric component of derived feature `j`. Built from `r` and
/// `3θ`, both invariant under the 2π/3 rotation that maps one spiral arm
/// onto the next, so it has the *same* distribution for every class —
/// structured non-linear distraction the model must learn to ignore, which
/// together with the complexity-scaled noise is what makes higher feature
/// counts genuinely harder.
fn distractor_feature(j: usize, x0: f64, x1: f64) -> f64 {
    let w = 1.0 + (j / 6) as f64; // frequency grows every full cycle
    let r = (x0 * x0 + x1 * x1).sqrt();
    let t3 = 3.0 * x1.atan2(x0);
    match j % 6 {
        0 => (w * t3).sin() * r,
        1 => (w * t3).cos() * r,
        2 => (w * std::f64::consts::PI * r).sin(),
        3 => 2.0 * r * r - 1.0,
        4 => (w * t3 + 4.0 * r).sin(),
        _ => (w * std::f64::consts::PI * r).cos(),
    }
}

/// Per-column standardisation (z-scoring) fitted on training data and
/// applied to any split — keeping the validation set untouched by training
/// statistics leakage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Standardizer {
    mean: Vec<f64>,
    std: Vec<f64>,
}

impl Standardizer {
    /// Fits column means and standard deviations on `data`. Columns with
    /// (near-)zero variance get `std = 1` so transformation stays finite.
    ///
    /// # Panics
    ///
    /// Panics on an empty matrix.
    pub fn fit(data: &Matrix) -> Self {
        assert!(data.rows() > 0, "cannot fit a standardizer on no data");
        let n = data.rows() as f64;
        let mut mean = vec![0.0; data.cols()];
        let mut std = vec![0.0; data.cols()];
        for c in 0..data.cols() {
            let m: f64 = (0..data.rows()).map(|r| data[(r, c)]).sum::<f64>() / n;
            let v: f64 = (0..data.rows())
                .map(|r| (data[(r, c)] - m).powi(2))
                .sum::<f64>()
                / n;
            mean[c] = m;
            std[c] = if v.sqrt() < 1e-12 { 1.0 } else { v.sqrt() };
        }
        Self { mean, std }
    }

    /// Applies the fitted transform: `(x - mean) / std` per column.
    ///
    /// # Panics
    ///
    /// Panics if the column count differs from the fitted data.
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.mean.len(), "feature width mismatch");
        let mut out = data.clone();
        for r in 0..out.rows() {
            for c in 0..out.cols() {
                out[(r, c)] = (out[(r, c)] - self.mean[c]) / self.std[c];
            }
        }
        out
    }

    /// Fits on `data` and transforms it in one call.
    pub fn fit_transform(data: &Matrix) -> (Self, Matrix) {
        let s = Self::fit(data);
        let t = s.transform(data);
        (s, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SeededRng {
        SeededRng::new(2024)
    }

    #[test]
    fn paper_config_matches_section_iii() {
        let c = SpiralConfig::paper(40);
        assert_eq!(c.n_samples, 1500);
        assert_eq!(c.n_classes, 3);
        assert_eq!(c.n_features, 40);
        assert!((c.effective_noise() - 0.22).abs() < 1e-12);
    }

    #[test]
    fn complexity_levels_are_ten_to_one_ten() {
        let levels = complexity_levels();
        assert_eq!(levels.len(), 11);
        assert_eq!(levels[0], 10);
        assert_eq!(levels[10], 110);
    }

    #[test]
    fn noise_grows_with_features() {
        assert!(noise_level(110) > noise_level(10));
        assert!((noise_level(0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn spiral_shape_and_balance() {
        let ds = Dataset::spiral(&SpiralConfig::paper(10), &mut rng());
        assert_eq!(ds.len(), 1500);
        assert_eq!(ds.n_features(), 10);
        assert_eq!(ds.class_counts(), vec![500, 500, 500]);
        assert!(ds.features().all_finite());
    }

    #[test]
    fn spiral_is_deterministic_per_seed() {
        let a = Dataset::spiral(&SpiralConfig::fast(12), &mut SeededRng::new(5));
        let b = Dataset::spiral(&SpiralConfig::fast(12), &mut SeededRng::new(5));
        let c = Dataset::spiral(&SpiralConfig::fast(12), &mut SeededRng::new(6));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn base_features_lie_roughly_in_unit_disk() {
        // Clean radius ≤ 1; noise 0.13 at 10 features keeps most points close.
        let ds = Dataset::spiral(&SpiralConfig::paper(10), &mut rng());
        let inside = ds
            .features()
            .iter_rows()
            .filter(|row| (row[0].powi(2) + row[1].powi(2)).sqrt() < 1.6)
            .count();
        assert!(inside as f64 / ds.len() as f64 > 0.99);
    }

    #[test]
    fn higher_complexity_means_more_noise_energy() {
        // Derived features at 110 features carry visibly more noise than at 10.
        let lo = Dataset::spiral(
            &SpiralConfig::paper(10).with_samples(900),
            &mut SeededRng::new(1),
        );
        let hi = Dataset::spiral(
            &SpiralConfig::paper(110).with_samples(900),
            &mut SeededRng::new(1),
        );
        // Estimate noise via the variance of a pure-noise-dominated statistic:
        // residual of feature 0 around its class-sorted neighbours is crude, so
        // instead simply compare configured levels and sanity-check data range.
        assert!(noise_level(110) > 3.0 * noise_level(10) - 1e-9);
        assert!(hi.features().all_finite());
        assert!(lo.features().all_finite());
    }

    #[test]
    fn split_is_stratified() {
        let ds = Dataset::spiral(&SpiralConfig::paper(10), &mut rng());
        let (train, val) = ds.split(0.8, &mut rng());
        assert_eq!(train.len() + val.len(), ds.len());
        assert_eq!(train.class_counts(), vec![400, 400, 400]);
        assert_eq!(val.class_counts(), vec![100, 100, 100]);
        assert_eq!(train.n_features(), ds.n_features());
    }

    #[test]
    #[should_panic(expected = "train fraction")]
    fn split_rejects_bad_fraction() {
        let ds = Dataset::spiral(&SpiralConfig::fast(4), &mut rng());
        let _ = ds.split(1.0, &mut rng());
    }

    #[test]
    fn standardizer_zero_means_unit_std() {
        let ds = Dataset::spiral(&SpiralConfig::paper(20), &mut rng());
        let (_s, z) = Standardizer::fit_transform(ds.features());
        for c in 0..z.cols() {
            let col = z.col(c);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 = col.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-9, "col {c} mean {mean}");
            assert!((var - 1.0).abs() < 1e-9, "col {c} var {var}");
        }
    }

    #[test]
    fn standardizer_handles_constant_column() {
        let m = Matrix::from_rows(&[&[1.0, 5.0], &[1.0, 7.0]]);
        let (s, z) = Standardizer::fit_transform(&m);
        assert!(z.all_finite());
        assert_eq!(z[(0, 0)], 0.0);
        let more = s.transform(&Matrix::from_rows(&[&[2.0, 6.0]]));
        assert_eq!(more[(0, 0)], 1.0);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn standardizer_rejects_width_mismatch() {
        let s = Standardizer::fit(&Matrix::zeros(2, 3));
        let _ = s.transform(&Matrix::zeros(2, 4));
    }

    #[test]
    fn derived_features_are_bounded_for_bounded_input() {
        for j in 2..40 {
            for &(a, b) in &[(0.5, -0.5), (1.0, 1.0), (-0.3, 0.9)] {
                assert!(signal_feature(j, a, b).abs() <= 1.0, "signal {j}");
                assert!(distractor_feature(j, a, b).abs() <= 3.5, "distractor {j}");
            }
        }
    }

    #[test]
    fn distractor_features_are_class_symmetric() {
        // Rotating a point by 2π/3 (mapping one arm onto the next) must not
        // change any distractor feature.
        let rot = 2.0 * std::f64::consts::PI / 3.0;
        for j in 2..20 {
            for &(x0, x1) in &[(0.5, -0.2), (0.9, 0.3), (-0.4, -0.7)] {
                let rx = rot.cos() * x0 - rot.sin() * x1;
                let ry = rot.sin() * x0 + rot.cos() * x1;
                let a = distractor_feature(j, x0, x1);
                let b = distractor_feature(j, rx, ry);
                assert!((a - b).abs() < 1e-9, "feature {j}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn signal_features_are_not_class_symmetric() {
        let rot = 2.0 * std::f64::consts::PI / 3.0;
        let (x0, x1) = (0.6, -0.3);
        let rx = rot.cos() * x0 - rot.sin() * x1;
        let ry = rot.sin() * x0 + rot.cos() * x1;
        let moved = (2..20)
            .filter(|&j| (signal_feature(j, x0, x1) - signal_feature(j, rx, ry)).abs() > 1e-3)
            .count();
        assert!(
            moved > 10,
            "only {moved} signal features changed under rotation"
        );
    }

    #[test]
    fn dataset_new_validates() {
        let ok = Dataset::new(Matrix::zeros(2, 3), vec![0, 1], 2);
        assert_eq!(ok.len(), 2);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn dataset_new_rejects_bad_labels() {
        let _ = Dataset::new(Matrix::zeros(1, 2), vec![5], 3);
    }

    #[test]
    fn shuffle_preserves_pairing() {
        let mut ds = Dataset::spiral(&SpiralConfig::fast(4), &mut rng());
        // Tag: feature 2 after noise is arbitrary; instead verify counts survive.
        let before = ds.class_counts();
        ds.shuffle(&mut rng());
        assert_eq!(ds.class_counts(), before);
    }
}
