//! Property-based tests of the dataset generator over random configurations.

use hqnn_data::{noise_level, Dataset, SpiralConfig, Standardizer};
use hqnn_tensor::SeededRng;
use proptest::prelude::*;

fn config() -> impl Strategy<Value = SpiralConfig> {
    (2usize..=30, 30usize..=300, 2usize..=4).prop_map(|(features, samples, classes)| {
        let mut c = SpiralConfig::paper(features).with_samples(samples);
        c.n_classes = classes;
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spiral_shapes_and_balance(cfg in config(), seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let ds = Dataset::spiral(&cfg, &mut rng);
        // Count rounds down to a multiple of n_classes.
        let per_class = cfg.n_samples / cfg.n_classes;
        prop_assert_eq!(ds.len(), per_class * cfg.n_classes);
        prop_assert_eq!(ds.n_features(), cfg.n_features);
        prop_assert!(ds.class_counts().iter().all(|&c| c == per_class));
        prop_assert!(ds.features().all_finite());
    }

    #[test]
    fn spiral_is_seed_deterministic(cfg in config(), seed in 0u64..1000) {
        let a = Dataset::spiral(&cfg, &mut SeededRng::new(seed));
        let b = Dataset::spiral(&cfg, &mut SeededRng::new(seed));
        prop_assert_eq!(a, b);
    }

    #[test]
    fn noise_schedule_is_affine(f in 0usize..1000) {
        prop_assert!((noise_level(f) - (0.1 + 0.003 * f as f64)).abs() < 1e-12);
        prop_assert!(noise_level(f + 1) > noise_level(f));
    }

    #[test]
    fn split_partitions_every_class(cfg in config(), frac in 0.5f64..0.9, seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let ds = Dataset::spiral(&cfg, &mut rng);
        let (train, val) = ds.split(frac, &mut rng);
        prop_assert_eq!(train.len() + val.len(), ds.len());
        // Stratification: per-class totals preserved.
        let total: Vec<usize> = train
            .class_counts()
            .iter()
            .zip(val.class_counts())
            .map(|(a, b)| a + b)
            .collect();
        prop_assert_eq!(total, ds.class_counts());
        // Train fraction approximately respected per class.
        for (i, &count) in train.class_counts().iter().enumerate() {
            let expected = ds.class_counts()[i] as f64 * frac;
            prop_assert!((count as f64 - expected).abs() <= 1.0, "class {i}");
        }
    }

    #[test]
    fn standardizer_output_has_unit_moments(cfg in config(), seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let ds = Dataset::spiral(&cfg, &mut rng);
        let (_s, z) = Standardizer::fit_transform(ds.features());
        prop_assert!(z.all_finite());
        for c in 0..z.cols() {
            let col = z.col(c);
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            prop_assert!(mean.abs() < 1e-8, "col {c} mean {mean}");
        }
    }

    #[test]
    fn standardizer_is_idempotent_on_standardised_data(cfg in config(), seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let ds = Dataset::spiral(&cfg, &mut rng);
        let (_s1, z1) = Standardizer::fit_transform(ds.features());
        let (_s2, z2) = Standardizer::fit_transform(&z1);
        prop_assert!(z1.approx_eq(&z2, 1e-8));
    }

    #[test]
    fn shuffle_preserves_content(cfg in config(), seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let mut ds = Dataset::spiral(&cfg, &mut rng);
        let sum_before = ds.features().sum();
        let counts_before = ds.class_counts();
        ds.shuffle(&mut rng);
        prop_assert!((ds.features().sum() - sum_before).abs() < 1e-6);
        prop_assert_eq!(ds.class_counts(), counts_before);
    }
}
