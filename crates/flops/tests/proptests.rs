//! Property-based tests of the cost model: monotonicity, additivity, and
//! consistency between costing conventions over random architectures.

use hqnn_flops::{CostModel, FlopsBreakdown, QuantumBackwardCost};
use hqnn_qsim::{EntanglerKind, QnnTemplate};
use proptest::prelude::*;

fn template() -> impl Strategy<Value = QnnTemplate> {
    (1usize..=6, 1usize..=8, proptest::bool::ANY).prop_map(|(q, d, strong)| {
        let kind = if strong {
            EntanglerKind::Strong
        } else {
            EntanglerKind::Basic
        };
        QnnTemplate::new(q, d, kind)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dense_costs_are_monotone(in_dim in 1usize..200, out_dim in 1usize..50) {
        let m = CostModel::default();
        prop_assert!(m.dense_forward(in_dim + 1, out_dim) > m.dense_forward(in_dim, out_dim));
        prop_assert!(m.dense_forward(in_dim, out_dim + 1) > m.dense_forward(in_dim, out_dim));
        prop_assert!(m.dense_backward(in_dim, out_dim) > m.dense_forward(in_dim, out_dim));
    }

    #[test]
    fn mlp_cost_grows_with_any_extension(
        in_dim in 1usize..120,
        h1 in 1usize..12,
        h2 in 1usize..12,
        classes in 2usize..5,
    ) {
        let m = CostModel::default();
        let base = m.mlp(in_dim, &[h1], classes);
        prop_assert!(m.mlp(in_dim + 1, &[h1], classes) > base);
        prop_assert!(m.mlp(in_dim, &[h1 + 1], classes) > base);
        // Note: inserting an arbitrary extra layer can *reduce* cost when it
        // bottlenecks a wide→classes tail, so the depth property duplicates
        // the existing width instead.
        prop_assert!(m.mlp(in_dim, &[h1, h1], classes) > base);
        let _ = h2;
        prop_assert!(m.mlp(in_dim, &[h1], classes + 1) > base);
    }

    #[test]
    fn quantum_costs_double_per_qubit(n in 1usize..20) {
        let m = CostModel::default();
        prop_assert_eq!(m.single_qubit_gate(n + 1), 2 * m.single_qubit_gate(n));
        prop_assert_eq!(m.expectation_z(n + 1), 2 * m.expectation_z(n));
        prop_assert_eq!(m.state_inner_product(n + 1), 2 * m.state_inner_product(n));
    }

    #[test]
    fn circuit_total_is_additive_in_depth(t in template()) {
        // Doubling the depth of a template must not *decrease* any column,
        // and must strictly increase the quantum-layer column.
        let m = CostModel::default();
        let deeper = QnnTemplate::new(t.n_qubits(), t.depth() * 2, t.kind());
        let a = m.circuit_total(&t.build(), t.n_qubits());
        let b = m.circuit_total(&deeper.build(), t.n_qubits());
        prop_assert!(b.quantum_layer > a.quantum_layer);
        prop_assert_eq!(a.encoding, b.encoding); // encoding unchanged
    }

    #[test]
    fn simulation_convention_never_cheaper(t in template()) {
        let profiler = CostModel::default();
        let simulation = CostModel::simulation();
        let c = t.build();
        let p = profiler.circuit_total(&c, t.n_qubits());
        let s = simulation.circuit_total(&c, t.n_qubits());
        prop_assert!(s.total() >= p.total(), "sim {} < profiler {}", s.total(), p.total());
    }

    #[test]
    fn adjoint_backward_exceeds_mirror(t in template()) {
        let base = CostModel::default();
        let adjoint = CostModel { quantum_backward: QuantumBackwardCost::Adjoint, ..base };
        let census = t.build().op_census();
        let bm = base.circuit_backward(&census, t.n_qubits(), t.n_qubits());
        let ba = adjoint.circuit_backward(&census, t.n_qubits(), t.n_qubits());
        prop_assert!(ba.total() >= bm.total());
    }

    #[test]
    fn parameter_shift_scales_with_parameter_count(t in template()) {
        // Shift-rule backward cost = 2 · (#diff gates) · one evaluation; it
        // must grow linearly when depth doubles (diff gates double).
        let m = CostModel::default();
        let n = t.n_qubits();
        let deeper = QnnTemplate::new(n, t.depth() * 2, t.kind());
        let c1 = m.circuit_backward_parameter_shift(&t.build().op_census(), n, n);
        let c2 = m.circuit_backward_parameter_shift(&deeper.build().op_census(), n, n);
        prop_assert!(c2 > c1);
    }

    #[test]
    fn breakdown_sum_is_componentwise(
        a in (0u64..1000, 0u64..1000, 0u64..1000),
        b in (0u64..1000, 0u64..1000, 0u64..1000),
    ) {
        let x = FlopsBreakdown { classical: a.0, encoding: a.1, quantum: a.2 };
        let y = FlopsBreakdown { classical: b.0, encoding: b.1, quantum: b.2 };
        let s = x + y;
        prop_assert_eq!(s.total(), x.total() + y.total());
        prop_assert_eq!(s.classical, a.0 + b.0);
        prop_assert_eq!(s.encoding, a.1 + b.1);
        prop_assert_eq!(s.quantum, a.2 + b.2);
    }
}
