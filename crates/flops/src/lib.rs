//! Analytic FLOPs cost model — the workspace's replacement for the
//! TensorFlow Profiler the paper used (§III-D).
//!
//! The paper freezes the TF graph of each model and asks the profiler for
//! total floating-point operations of the forward pass, then repeats the
//! exercise on the gradient graph for the backward pass. This crate computes
//! the same quantities analytically from the model structure: every
//! primitive's cost formula is written out explicitly in [`CostModel`], so
//! the accounting is deterministic, auditable, and exactly decomposable into
//! the paper's Table I categories (classical layers / encoding / quantum
//! layer).
//!
//! Two costing conventions are provided:
//!
//! * [`CostModel::default`] — **profiler-calibrated**: complex tensor ops are
//!   counted as single operations (the way a graph profiler sees `complex64`
//!   nodes) and the quantum backward pass is costed as a mirror of the
//!   forward graph. With this convention the classical column of the paper's
//!   Table I is reproduced to within ~1% (e.g. CL at 110 features: paper
//!   2083, this model 2079) and the quantum column lands within ~2×.
//! * [`CostModel::simulation`] — **honest simulation cost**: complex
//!   multiplies count as 6 real FLOPs, adds as 2, and the backward pass is
//!   costed as the adjoint-differentiation sweep the `hqnn-qsim` engine
//!   actually performs. Use this to quantify the true overhead of simulating
//!   quantum layers on classical hardware (the ablation benches compare both).
//!
//! All costs are **per sample** (batch cost is linear in batch size) and
//! cover **forward + backward** unless a function says otherwise, matching
//! how the paper reports "total FLOPs".
//!
//! # Example
//!
//! ```
//! use hqnn_flops::CostModel;
//!
//! let m = CostModel::default();
//! // A 10→3 dense layer: 2·10·3 + 3 forward, 4·10·3 + 3 backward.
//! assert_eq!(m.dense_forward(10, 3), 63);
//! assert_eq!(m.dense_backward(10, 3), 123);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hqnn_qsim::circuit::OpCensus;
use hqnn_qsim::Circuit;
use serde::{Deserialize, Serialize};

/// Per-sample FLOPs of a hybrid (or classical) model, split the way the
/// paper's Table I splits them.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlopsBreakdown {
    /// Classical dense layers, activations and the loss (the "CL" column).
    pub classical: u64,
    /// Simulation cost of data-encoding gates (the "Enc" column).
    pub encoding: u64,
    /// Simulation cost of the variational circuit and its readout
    /// (the "QL" column).
    pub quantum: u64,
}

impl FlopsBreakdown {
    /// A purely classical breakdown.
    pub fn classical_only(flops: u64) -> Self {
        Self {
            classical: flops,
            ..Self::default()
        }
    }

    /// Total FLOPs (the "TF" column).
    pub fn total(&self) -> u64 {
        self.classical + self.encoding + self.quantum
    }
}

impl std::ops::Add for FlopsBreakdown {
    type Output = FlopsBreakdown;

    fn add(self, rhs: FlopsBreakdown) -> FlopsBreakdown {
        FlopsBreakdown {
            classical: self.classical + rhs.classical,
            encoding: self.encoding + rhs.encoding,
            quantum: self.quantum + rhs.quantum,
        }
    }
}

impl std::iter::Sum for FlopsBreakdown {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |a, b| a + b)
    }
}

/// How the quantum layer's backward pass is costed.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantumBackwardCost {
    /// The backward graph costs the same as the forward graph (profiler
    /// convention: TF's gradient graph for a node family has about the same
    /// op count as the forward graph).
    #[default]
    MirrorForward,
    /// The adjoint-differentiation sweep `hqnn-qsim` actually executes:
    /// per observable, every gate is un-applied twice and every
    /// differentiated gate costs an extra `dU` application plus a state
    /// inner product.
    Adjoint,
}

/// The cost constants and formulas of the model, all public so ablations can
/// perturb them and tests can assert exact values.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// FLOPs per complex multiply (1 in profiler convention, 6 in real
    /// arithmetic).
    pub complex_mul: u64,
    /// FLOPs per complex add (1 in profiler convention, 2 in real
    /// arithmetic).
    pub complex_add: u64,
    /// FLOPs per element for a pointwise activation, forward
    /// (TF-profiler convention counts transcendentals as 1 op).
    pub activation_per_elem_forward: u64,
    /// FLOPs per element for an activation's backward (derivative × chain).
    pub activation_per_elem_backward: u64,
    /// FLOPs per class for softmax + cross-entropy, forward
    /// (exp, max-shift, normalise, log).
    pub softmax_ce_per_class_forward: u64,
    /// FLOPs per class for the fused softmax-CE backward.
    pub softmax_ce_per_class_backward: u64,
    /// FLOPs per *affected amplitude* of a fixed two-qubit gate
    /// (CNOT/CZ/SWAP are permutations/sign flips; simulators still touch
    /// half the state).
    pub two_qubit_fixed_per_amp: u64,
    /// How the quantum backward pass is costed.
    pub quantum_backward: QuantumBackwardCost,
}

impl Default for CostModel {
    /// The profiler-calibrated convention (see crate docs).
    fn default() -> Self {
        Self {
            complex_mul: 1,
            complex_add: 1,
            activation_per_elem_forward: 1,
            activation_per_elem_backward: 2,
            softmax_ce_per_class_forward: 6,
            softmax_ce_per_class_backward: 2,
            two_qubit_fixed_per_amp: 1,
            quantum_backward: QuantumBackwardCost::MirrorForward,
        }
    }
}

impl CostModel {
    /// Creates the default (profiler-calibrated) cost model.
    pub fn new() -> Self {
        Self::default()
    }

    /// The honest simulation-cost convention: complex multiplies = 6 real
    /// FLOPs, adds = 2, quantum backward costed as the adjoint sweep.
    pub fn simulation() -> Self {
        Self {
            complex_mul: 6,
            complex_add: 2,
            quantum_backward: QuantumBackwardCost::Adjoint,
            ..Self::default()
        }
    }

    // ------------------------------------------------------------------
    // Classical primitives (per sample).
    // ------------------------------------------------------------------

    /// Dense layer forward: `x·W + b` → `2·in·out` (matmul MACs counted as
    /// 2 FLOPs each, TF convention) plus `out` bias adds.
    pub fn dense_forward(&self, in_dim: usize, out_dim: usize) -> u64 {
        (2 * in_dim * out_dim + out_dim) as u64
    }

    /// Dense layer backward: `dW = xᵀ·g` (2·in·out), `dx = g·Wᵀ` (2·in·out),
    /// `db` reduction (out).
    pub fn dense_backward(&self, in_dim: usize, out_dim: usize) -> u64 {
        (4 * in_dim * out_dim + out_dim) as u64
    }

    /// Pointwise activation forward over `dim` elements.
    pub fn activation_forward(&self, dim: usize) -> u64 {
        self.activation_per_elem_forward * dim as u64
    }

    /// Pointwise activation backward over `dim` elements.
    pub fn activation_backward(&self, dim: usize) -> u64 {
        self.activation_per_elem_backward * dim as u64
    }

    /// Softmax cross-entropy forward for `classes` logits.
    pub fn softmax_ce_forward(&self, classes: usize) -> u64 {
        self.softmax_ce_per_class_forward * classes as u64
    }

    /// Softmax cross-entropy backward (fused `softmax − target`).
    pub fn softmax_ce_backward(&self, classes: usize) -> u64 {
        self.softmax_ce_per_class_backward * classes as u64
    }

    /// Forward + backward cost of a dense layer.
    pub fn dense_total(&self, in_dim: usize, out_dim: usize) -> u64 {
        self.dense_forward(in_dim, out_dim) + self.dense_backward(in_dim, out_dim)
    }

    /// Forward + backward FLOPs of a classical MLP
    /// `in → hidden[0] → … → hidden[k-1] → out` with one activation after
    /// every hidden layer and a softmax-CE head — the architecture family of
    /// the paper's classical grid search (§III-B).
    pub fn mlp(&self, in_dim: usize, hidden: &[usize], out_dim: usize) -> u64 {
        let mut total = 0u64;
        let mut prev = in_dim;
        for &h in hidden {
            total += self.dense_total(prev, h);
            total += self.activation_forward(h) + self.activation_backward(h);
            prev = h;
        }
        total += self.dense_total(prev, out_dim);
        total += self.softmax_ce_forward(out_dim) + self.softmax_ce_backward(out_dim);
        total
    }

    // ------------------------------------------------------------------
    // Quantum-simulation primitives (per sample).
    // ------------------------------------------------------------------

    /// Simulating one single-qubit gate on an `n`-qubit dense state: each of
    /// the `2^(n-1)` amplitude pairs costs a 2×2 complex matrix-vector
    /// product (4 complex mul + 2 complex add).
    pub fn single_qubit_gate(&self, n_qubits: usize) -> u64 {
        let pairs = 1u64 << (n_qubits - 1);
        pairs * (4 * self.complex_mul + 2 * self.complex_add)
    }

    /// Simulating one fixed two-qubit gate (CNOT/CZ/SWAP): a permutation or
    /// sign flip over half the amplitudes.
    pub fn two_qubit_fixed_gate(&self, n_qubits: usize) -> u64 {
        let affected = 1u64 << (n_qubits - 1);
        affected * self.two_qubit_fixed_per_amp
    }

    /// Simulating one controlled rotation: a 2×2 matrix-vector product on
    /// the quarter of amplitude pairs where the control is `|1⟩`.
    pub fn controlled_rotation_gate(&self, n_qubits: usize) -> u64 {
        if n_qubits < 2 {
            return 0;
        }
        let pairs = 1u64 << (n_qubits - 2);
        pairs * (4 * self.complex_mul + 2 * self.complex_add)
    }

    /// Evaluating `⟨Z⟩` on one wire: `|a|²` plus a signed accumulate
    /// (≈ 3 FLOPs) per amplitude.
    pub fn expectation_z(&self, n_qubits: usize) -> u64 {
        3 * (1u64 << n_qubits)
    }

    /// Inner product `⟨λ|μ⟩` of two `n`-qubit states (complex mul + add per
    /// amplitude), used once per differentiated gate in the adjoint pass.
    pub fn state_inner_product(&self, n_qubits: usize) -> u64 {
        (1u64 << n_qubits) * (self.complex_mul + self.complex_add)
    }

    /// Forward-pass simulation cost of a circuit, split into encoding /
    /// quantum-layer shares according to each op's parameter source.
    pub fn circuit_forward(&self, census: &OpCensus, n_qubits: usize) -> QuantumFlops {
        let single = self.single_qubit_gate(n_qubits);
        let two_fixed = self.two_qubit_fixed_gate(n_qubits);
        let two_var = self.controlled_rotation_gate(n_qubits);
        QuantumFlops {
            encoding: census.encoding_rotations as u64 * single,
            quantum_layer: census.variational_rotations as u64 * single
                + census.fixed_single as u64 * single
                + census.fixed_two_qubit as u64 * two_fixed
                + census.variational_two_qubit as u64 * two_var,
        }
    }

    /// Readout cost: one `⟨Z⟩` per observable (attributed to the quantum
    /// layer).
    pub fn circuit_readout(&self, n_qubits: usize, n_observables: usize) -> u64 {
        n_observables as u64 * self.expectation_z(n_qubits)
    }

    /// Backward-pass cost of the circuit under the configured
    /// [`QuantumBackwardCost`] convention.
    pub fn circuit_backward(
        &self,
        census: &OpCensus,
        n_qubits: usize,
        n_observables: usize,
    ) -> QuantumFlops {
        match self.quantum_backward {
            QuantumBackwardCost::MirrorForward => {
                let fwd = self.circuit_forward(census, n_qubits);
                QuantumFlops {
                    encoding: fwd.encoding,
                    quantum_layer: fwd.quantum_layer
                        + self.circuit_readout(n_qubits, n_observables),
                }
            }
            QuantumBackwardCost::Adjoint => {
                self.circuit_backward_adjoint(census, n_qubits, n_observables)
            }
        }
    }

    /// The adjoint-sweep backward cost (what `hqnn-qsim` actually executes),
    /// independent of the configured convention. Per observable: every gate
    /// is un-applied twice (`ψ` and `λ` sweeps), every differentiated gate
    /// adds a `dU` application plus a state inner product, and seeding
    /// `λ = O|ψ⟩` costs one Pauli application. Encoding gates' share is
    /// attributed to encoding; the rest to the quantum layer.
    pub fn circuit_backward_adjoint(
        &self,
        census: &OpCensus,
        n_qubits: usize,
        n_observables: usize,
    ) -> QuantumFlops {
        let n_obs = n_observables as u64;
        let single = self.single_qubit_gate(n_qubits);
        let inner = self.state_inner_product(n_qubits);
        let forward = self.circuit_forward(census, n_qubits);

        // Undoing every gate twice per observable, same split as forward.
        let sweep_encoding = 2 * n_obs * forward.encoding;
        let sweep_quantum = 2 * n_obs * forward.quantum_layer;

        // dU application + inner product per differentiated gate.
        let enc_diff = n_obs * census.encoding_rotations as u64 * (single + inner);
        let var_diff = n_obs
            * (census.variational_rotations as u64 * (single + inner)
                + census.variational_two_qubit as u64
                    * (self.controlled_rotation_gate(n_qubits) + inner));

        // Seeding λ = O|ψ⟩ (one Z application ≈ sign flips over half the state).
        let seed = n_obs * self.two_qubit_fixed_gate(n_qubits);

        QuantumFlops {
            encoding: sweep_encoding + enc_diff,
            quantum_layer: sweep_quantum + var_diff + seed,
        }
    }

    /// Total forward + backward simulation cost of a circuit with `⟨Z⟩`
    /// readout on `n_observables` wires, split into Table I's Enc/QL columns.
    pub fn circuit_total(&self, circuit: &Circuit, n_observables: usize) -> QuantumFlops {
        hqnn_telemetry::counter("flops.circuit_estimates", 1);
        let census = circuit.op_census();
        let n = circuit.n_qubits();
        let fwd = self.circuit_forward(&census, n);
        let bwd = self.circuit_backward(&census, n, n_observables);
        QuantumFlops {
            encoding: fwd.encoding + bwd.encoding,
            quantum_layer: fwd.quantum_layer
                + bwd.quantum_layer
                + self.circuit_readout(n, n_observables),
        }
    }

    /// Backward cost of the **parameter-shift** rule instead of adjoint:
    /// two full forward simulations (+ readout) per differentiated gate.
    /// Used by the gradient-method ablation bench.
    pub fn circuit_backward_parameter_shift(
        &self,
        census: &OpCensus,
        n_qubits: usize,
        n_observables: usize,
    ) -> u64 {
        let fwd = self.circuit_forward(census, n_qubits);
        let one_eval =
            fwd.encoding + fwd.quantum_layer + self.circuit_readout(n_qubits, n_observables);
        let n_diff = (census.encoding_rotations
            + census.variational_rotations
            + census.variational_two_qubit) as u64;
        2 * n_diff * one_eval
    }
}

/// Simulation FLOPs split into the paper's encoding vs quantum-layer columns.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuantumFlops {
    /// Cost attributable to data-encoding gates.
    pub encoding: u64,
    /// Cost attributable to the variational circuit + readout.
    pub quantum_layer: u64,
}

impl QuantumFlops {
    /// Total simulation cost.
    pub fn total(&self) -> u64 {
        self.encoding + self.quantum_layer
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqnn_qsim::{EntanglerKind, QnnTemplate};

    fn m() -> CostModel {
        CostModel::default()
    }

    #[test]
    fn dense_formulas() {
        assert_eq!(m().dense_forward(10, 3), 63);
        assert_eq!(m().dense_backward(10, 3), 123);
        assert_eq!(m().dense_total(3, 3), 21 + 39);
    }

    #[test]
    fn mlp_cost_sums_layers() {
        let model = m();
        // 4 → [5] → 3 with one activation and softmax head.
        let expected = model.dense_total(4, 5)
            + model.activation_forward(5)
            + model.activation_backward(5)
            + model.dense_total(5, 3)
            + model.softmax_ce_forward(3)
            + model.softmax_ce_backward(3);
        assert_eq!(model.mlp(4, &[5], 3), expected);
    }

    #[test]
    fn mlp_with_no_hidden_layers_is_logistic_regression() {
        let model = m();
        assert_eq!(
            model.mlp(10, &[], 3),
            model.dense_total(10, 3) + model.softmax_ce_forward(3) + model.softmax_ce_backward(3)
        );
    }

    #[test]
    fn mlp_cost_monotone_in_width_and_depth() {
        let model = m();
        assert!(model.mlp(10, &[4], 3) < model.mlp(10, &[8], 3));
        assert!(model.mlp(10, &[4], 3) < model.mlp(10, &[4, 4], 3));
        assert!(model.mlp(10, &[4], 3) < model.mlp(20, &[4], 3));
    }

    #[test]
    fn single_qubit_gate_cost_doubles_per_qubit() {
        // Profiler convention: 6 complex ops per amplitude pair.
        let model = m();
        assert_eq!(model.single_qubit_gate(1), 6);
        assert_eq!(model.single_qubit_gate(3), 24);
        assert_eq!(model.single_qubit_gate(4), 48);
        // Simulation convention: 28 real FLOPs per pair.
        let sim = CostModel::simulation();
        assert_eq!(sim.single_qubit_gate(3), 112);
    }

    #[test]
    fn expectation_and_inner_product_scale_with_state() {
        let model = m();
        assert_eq!(model.expectation_z(3), 24);
        assert_eq!(CostModel::simulation().state_inner_product(3), 64);
    }

    #[test]
    fn sel_quantum_layer_cost_is_independent_of_feature_count() {
        // The paper's key Table-I observation: SEL(3,2)'s QL FLOPs are the
        // same at every feature size, because the circuit never changes.
        let model = m();
        let t = QnnTemplate::new(3, 2, EntanglerKind::Strong);
        let cost_a = model.circuit_total(&t.build(), 3);
        let cost_b = model.circuit_total(&t.build(), 3);
        assert_eq!(cost_a, cost_b);
        assert!(cost_a.quantum_layer > 0);
    }

    #[test]
    fn default_mode_lands_near_table_one_magnitudes() {
        // Paper Table I: SEL(3,2) QL = 840, BEL(3,2) QL = 228,
        // BEL(4,4) QL = 896, Enc(3 qubits) = 466. Our calibrated model must
        // land within a small factor of each.
        let model = m();
        let sel = model.circuit_total(&QnnTemplate::new(3, 2, EntanglerKind::Strong).build(), 3);
        let bel = model.circuit_total(&QnnTemplate::new(3, 2, EntanglerKind::Basic).build(), 3);
        let bel44 = model.circuit_total(&QnnTemplate::new(4, 4, EntanglerKind::Basic).build(), 4);
        assert!(
            (400..2200).contains(&sel.quantum_layer),
            "SEL QL = {}",
            sel.quantum_layer
        );
        assert!(
            (100..900).contains(&bel.quantum_layer),
            "BEL QL = {}",
            bel.quantum_layer
        );
        assert!(
            (400..3600).contains(&bel44.quantum_layer),
            "BEL44 QL = {}",
            bel44.quantum_layer
        );
        assert!(
            (100..1000).contains(&sel.encoding),
            "Enc = {}",
            sel.encoding
        );
    }

    #[test]
    fn sel_costs_more_than_bel_at_same_shape() {
        // SEL has 3× the rotations per layer (Table I: 840 vs 228 at (3,2)).
        let model = m();
        let bel = model.circuit_total(&QnnTemplate::new(3, 2, EntanglerKind::Basic).build(), 3);
        let sel = model.circuit_total(&QnnTemplate::new(3, 2, EntanglerKind::Strong).build(), 3);
        assert!(sel.quantum_layer > 2 * bel.quantum_layer);
        assert_eq!(sel.encoding, bel.encoding); // same 3-qubit encoding
    }

    #[test]
    fn bigger_templates_cost_more() {
        let model = m();
        let small = model.circuit_total(&QnnTemplate::new(3, 2, EntanglerKind::Basic).build(), 3);
        let deeper = model.circuit_total(&QnnTemplate::new(3, 4, EntanglerKind::Basic).build(), 3);
        let wider = model.circuit_total(&QnnTemplate::new(4, 2, EntanglerKind::Basic).build(), 4);
        assert!(deeper.quantum_layer > small.quantum_layer);
        assert!(wider.quantum_layer > small.quantum_layer);
        assert!(wider.encoding > small.encoding);
    }

    #[test]
    fn adjoint_convention_costs_more_than_mirror() {
        let mirror = m();
        let adjoint = CostModel {
            quantum_backward: QuantumBackwardCost::Adjoint,
            ..m()
        };
        let c = QnnTemplate::new(3, 2, EntanglerKind::Strong).build();
        let census = c.op_census();
        let bm = mirror.circuit_backward(&census, 3, 3);
        let ba = adjoint.circuit_backward(&census, 3, 3);
        assert!(ba.total() > bm.total());
    }

    #[test]
    fn parameter_shift_costs_more_than_adjoint_for_deep_circuits() {
        let model = CostModel::simulation();
        let t = QnnTemplate::new(4, 6, EntanglerKind::Strong);
        let c = t.build();
        let census = c.op_census();
        let adjoint = model.circuit_backward_adjoint(&census, 4, 4);
        let shift = model.circuit_backward_parameter_shift(&census, 4, 4);
        assert!(
            shift > adjoint.total(),
            "shift {shift} ≤ adjoint {}",
            adjoint.total()
        );
    }

    #[test]
    fn breakdown_arithmetic() {
        let a = FlopsBreakdown {
            classical: 1,
            encoding: 2,
            quantum: 3,
        };
        let b = FlopsBreakdown::classical_only(10);
        let s = a + b;
        assert_eq!(s.total(), 16);
        assert_eq!(s.classical, 11);
        let summed: FlopsBreakdown = vec![a, b].into_iter().sum();
        assert_eq!(summed, s);
    }

    #[test]
    fn table_one_classical_column_matches_paper_closely() {
        // Paper Table I CL column for the hybrid models: 283 at 10 features,
        // 823 at 40, 1543 at 80, 2083 at 110 (3-qubit input layer, 3-class
        // output). Our dense accounting should land within a few FLOPs.
        let model = m();
        let cl = |features: usize| {
            model.dense_total(features, 3)
                + model.activation_forward(3)
                + model.activation_backward(3)
                + model.dense_total(3, 3)
                + model.softmax_ce_forward(3)
                + model.softmax_ce_backward(3)
        };
        let paper = [(10usize, 283u64), (40, 823), (80, 1543), (110, 2083)];
        for (features, expected) in paper {
            let ours = cl(features);
            let ratio = ours as f64 / expected as f64;
            assert!(
                (0.9..1.1).contains(&ratio),
                "CL({features}) = {ours}, paper {expected}"
            );
        }
    }
}
