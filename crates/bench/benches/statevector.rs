//! Statevector kernel benchmarks: gate application and full-circuit
//! execution as qubit count grows — the "exponential scaling of quantum
//! states" the paper cites as the cost of classical simulation (§I-A).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hqnn_qsim::{
    Circuit, EntanglerKind, GateKind, Observable, ParamSource, QnnTemplate, StateVector,
};
use std::hint::black_box;

fn bench_single_qubit_gate(c: &mut Criterion) {
    let mut group = c.benchmark_group("single_qubit_gate");
    group.sample_size(20);
    for n_qubits in [4usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n_qubits), &n_qubits, |b, &n| {
            let mut state = StateVector::new(n);
            let m = GateKind::RY.matrix(0.37);
            b.iter(|| {
                state.apply_single(black_box(&m), n / 2);
            });
        });
    }
    group.finish();
}

fn bench_cnot(c: &mut Criterion) {
    let mut group = c.benchmark_group("cnot");
    group.sample_size(20);
    for n_qubits in [4usize, 8, 12, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(n_qubits), &n_qubits, |b, &n| {
            let mut state = StateVector::new(n);
            let x = GateKind::X.matrix(0.0);
            b.iter(|| {
                state.apply_controlled(black_box(&x), 0, n - 1);
            });
        });
    }
    group.finish();
}

fn bench_template_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("template_execution");
    group.sample_size(20);
    for (qubits, depth) in [(3usize, 2usize), (4, 4), (5, 10)] {
        for kind in [EntanglerKind::Basic, EntanglerKind::Strong] {
            let template = QnnTemplate::new(qubits, depth, kind);
            let circuit = template.build();
            let inputs: Vec<f64> = (0..qubits).map(|i| 0.1 * i as f64).collect();
            let params: Vec<f64> = (0..template.param_count())
                .map(|i| 0.05 * i as f64)
                .collect();
            let obs: Vec<Observable> = (0..qubits).map(Observable::z).collect();
            group.bench_function(BenchmarkId::from_parameter(template.label()), |b| {
                b.iter(|| {
                    black_box(circuit.expectations(black_box(&inputs), black_box(&params), &obs))
                });
            });
        }
    }
    group.finish();
}

fn bench_expectation(c: &mut Criterion) {
    let mut group = c.benchmark_group("expectation_z");
    group.sample_size(20);
    for n_qubits in [4usize, 10, 16] {
        let mut circuit = Circuit::new(n_qubits);
        for w in 0..n_qubits {
            circuit.ry(w, ParamSource::Fixed(0.3 + w as f64));
        }
        let state = circuit.run(&[], &[]);
        group.bench_with_input(BenchmarkId::from_parameter(n_qubits), &n_qubits, |b, &n| {
            b.iter(|| black_box(state.expectation_z(n / 2)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_single_qubit_gate,
    bench_cnot,
    bench_template_execution,
    bench_expectation
);
criterion_main!(benches);
