//! Per-figure benchmarks: one criterion entry for every table/figure of the
//! paper, measuring the work that regenerates it.
//!
//! Figures 6–10 are grid searches whose full runs take minutes to hours, so
//! each figure's bench measures a miniature (smoke-profile) slice of its
//! search — the same code path, scaled down. Table I and Fig. 4 are cheap
//! enough to bench at full fidelity.

use criterion::{criterion_group, criterion_main, Criterion};
use hqnn_data::{Dataset, SpiralConfig};
use hqnn_flops::CostModel;
use hqnn_search::experiments::{table_one_paper_combos, ExperimentConfig, Family, StudyResult};
use hqnn_tensor::SeededRng;
use std::hint::black_box;

fn smoke_config() -> ExperimentConfig {
    let mut config = ExperimentConfig::smoke();
    // Keep the bench's unit of work well under a second.
    config.search.train = config.search.train.with_epochs(5);
    config.search.dataset_samples = 210;
    config.search.max_combos_per_repetition = 2;
    config.levels = vec![6];
    config
}

fn bench_fig4_dataset(c: &mut Criterion) {
    c.benchmark_group("figures")
        .sample_size(20)
        .bench_function("fig4_spiral_generation", |b| {
            b.iter(|| {
                let mut rng = SeededRng::new(4);
                black_box(Dataset::spiral(&SpiralConfig::paper(10), &mut rng))
            });
        });
}

fn bench_search_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    for (name, family) in [
        ("fig6_classical_search_slice", Family::Classical),
        ("fig7_bel_search_slice", Family::HybridBel),
        ("fig8_sel_search_slice", Family::HybridSel),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut study = StudyResult::new(smoke_config());
                study.run_family(family, &mut |_, _, _| {});
                black_box(study)
            });
        });
    }
    // Fig. 9/10 post-process the same searches; their extra work is the
    // aggregation over winners.
    group.bench_function("fig9_fig10_aggregation", |b| {
        let mut study = StudyResult::new(smoke_config());
        study.run_classical();
        study.run_sel();
        b.iter(|| {
            black_box(hqnn_search::report::parameter_table(&study));
            black_box(hqnn_search::report::comparative_table(&study));
        });
    });
    group.finish();
}

fn bench_table1(c: &mut Criterion) {
    c.benchmark_group("figures")
        .sample_size(50)
        .bench_function("table1_pricing", |b| {
            let cost = CostModel::default();
            b.iter(|| black_box(table_one_paper_combos(black_box(&cost))));
        });
}

criterion_group!(
    benches,
    bench_fig4_dataset,
    bench_search_figures,
    bench_table1
);
criterion_main!(benches);
