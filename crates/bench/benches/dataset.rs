//! Dataset-generation benchmarks: spiral synthesis across the paper's
//! complexity range, plus the standardisation pass.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hqnn_data::{Dataset, SpiralConfig, Standardizer};
use hqnn_tensor::SeededRng;
use std::hint::black_box;

fn bench_spiral_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("spiral_generation");
    group.sample_size(20);
    for features in [10usize, 60, 110] {
        group.bench_with_input(BenchmarkId::from_parameter(features), &features, |b, &f| {
            b.iter(|| {
                let mut rng = SeededRng::new(7);
                black_box(Dataset::spiral(&SpiralConfig::paper(f), &mut rng))
            });
        });
    }
    group.finish();
}

fn bench_standardizer(c: &mut Criterion) {
    let mut group = c.benchmark_group("standardizer");
    group.sample_size(20);
    for features in [10usize, 110] {
        let mut rng = SeededRng::new(7);
        let ds = Dataset::spiral(&SpiralConfig::paper(features), &mut rng);
        group.bench_with_input(
            BenchmarkId::new("fit_transform", features),
            &features,
            |b, _| {
                b.iter(|| black_box(Standardizer::fit_transform(ds.features())));
            },
        );
    }
    group.finish();
}

fn bench_split(c: &mut Criterion) {
    let mut group = c.benchmark_group("stratified_split");
    group.sample_size(20);
    let mut rng = SeededRng::new(7);
    let ds = Dataset::spiral(&SpiralConfig::paper(40), &mut rng);
    group.bench_function("1500x40", |b| {
        b.iter(|| {
            let mut rng = SeededRng::new(1);
            black_box(ds.split(0.8, &mut rng))
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_spiral_generation,
    bench_standardizer,
    bench_split
);
criterion_main!(benches);
