//! Ablation bench: adjoint vs parameter-shift differentiation cost.
//!
//! DESIGN.md calls out the choice of adjoint differentiation for hybrid
//! training; this bench measures the gap the analytic FLOPs model predicts
//! (`CostModel::circuit_backward_parameter_shift` vs
//! `circuit_backward_adjoint`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hqnn_qsim::{adjoint, parameter_shift, EntanglerKind, Observable, QnnTemplate};
use std::hint::black_box;

fn bench_gradient_methods(c: &mut Criterion) {
    let mut group = c.benchmark_group("gradient_methods");
    group.sample_size(15);
    for (qubits, depth) in [(3usize, 2usize), (4, 4), (5, 6)] {
        let template = QnnTemplate::new(qubits, depth, EntanglerKind::Strong);
        let circuit = template.build();
        let inputs: Vec<f64> = (0..qubits).map(|i| 0.3 * i as f64 - 0.5).collect();
        let params: Vec<f64> = (0..template.param_count())
            .map(|i| 0.1 * i as f64)
            .collect();
        let obs: Vec<Observable> = (0..qubits).map(Observable::z).collect();

        group.bench_function(BenchmarkId::new("adjoint", template.label()), |b| {
            b.iter(|| black_box(adjoint(&circuit, &inputs, &params, &obs)));
        });
        group.bench_function(BenchmarkId::new("parameter_shift", template.label()), |b| {
            b.iter(|| black_box(parameter_shift(&circuit, &inputs, &params, &obs)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gradient_methods);
criterion_main!(benches);
