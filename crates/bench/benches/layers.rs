//! Layer-level benchmarks: classical dense vs simulated quantum layer,
//! forward and backward, at the paper's batch size (8) — the wall-clock
//! counterpart of the FLOPs comparison in Table I.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hqnn_core::QuantumLayer;
use hqnn_nn::{Dense, Layer};
use hqnn_qsim::{EntanglerKind, QnnTemplate};
use hqnn_tensor::{Matrix, SeededRng};
use std::hint::black_box;

const BATCH: usize = 8;

fn bench_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("dense_layer");
    group.sample_size(30);
    let mut rng = SeededRng::new(1);
    for (in_dim, out_dim) in [(10usize, 3usize), (110, 3), (110, 10)] {
        let mut layer = Dense::new(in_dim, out_dim, &mut rng);
        let x = Matrix::uniform(BATCH, in_dim, -1.0, 1.0, &mut rng);
        let g = Matrix::uniform(BATCH, out_dim, -1.0, 1.0, &mut rng);
        let label = format!("{in_dim}x{out_dim}");
        group.bench_function(BenchmarkId::new("forward", &label), |b| {
            b.iter(|| black_box(layer.forward(black_box(&x), true)));
        });
        let _ = layer.forward(&x, true);
        group.bench_function(BenchmarkId::new("backward", &label), |b| {
            b.iter(|| black_box(layer.backward(black_box(&g))));
        });
    }
    group.finish();
}

fn bench_quantum_layer(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantum_layer");
    group.sample_size(15);
    let mut rng = SeededRng::new(2);
    for (qubits, depth, kind) in [
        (3usize, 2usize, EntanglerKind::Basic),
        (3, 2, EntanglerKind::Strong),
        (4, 4, EntanglerKind::Basic),
        (5, 10, EntanglerKind::Strong),
    ] {
        let template = QnnTemplate::new(qubits, depth, kind);
        let mut layer = QuantumLayer::new(template, &mut rng);
        let x = Matrix::uniform(BATCH, qubits, -1.0, 1.0, &mut rng);
        let g = Matrix::uniform(BATCH, qubits, -1.0, 1.0, &mut rng);
        group.bench_function(BenchmarkId::new("forward", template.label()), |b| {
            b.iter(|| black_box(layer.forward(black_box(&x), true)));
        });
        let _ = layer.forward(&x, true);
        group.bench_function(BenchmarkId::new("backward", template.label()), |b| {
            b.iter(|| black_box(layer.backward(black_box(&g))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_dense, bench_quantum_layer);
criterion_main!(benches);
