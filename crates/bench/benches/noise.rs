//! Noise-simulation benchmarks: density-matrix evolution vs pure
//! statevector, and the cost of Kraus channels — the price of dropping the
//! paper's ideal-circuit assumption.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hqnn_qsim::{DensityMatrix, EntanglerKind, NoiseModel, QnnTemplate};
use std::hint::black_box;

fn bench_pure_vs_mixed(c: &mut Criterion) {
    let mut group = c.benchmark_group("pure_vs_mixed");
    group.sample_size(15);
    for qubits in [2usize, 3, 4] {
        let template = QnnTemplate::new(qubits, 2, EntanglerKind::Strong);
        let circuit = template.build();
        let inputs: Vec<f64> = (0..qubits).map(|i| 0.2 * i as f64).collect();
        let params: Vec<f64> = (0..template.param_count())
            .map(|i| 0.1 * i as f64)
            .collect();

        group.bench_function(BenchmarkId::new("statevector", qubits), |b| {
            b.iter(|| black_box(circuit.run(black_box(&inputs), black_box(&params))));
        });
        let noiseless = NoiseModel::noiseless();
        group.bench_function(BenchmarkId::new("density_matrix", qubits), |b| {
            b.iter(|| {
                black_box(DensityMatrix::run_noisy(
                    &circuit,
                    black_box(&inputs),
                    black_box(&params),
                    &noiseless,
                ))
            });
        });
        let depolarizing = NoiseModel::depolarizing(0.05);
        group.bench_function(BenchmarkId::new("density_matrix_noisy", qubits), |b| {
            b.iter(|| {
                black_box(DensityMatrix::run_noisy(
                    &circuit,
                    black_box(&inputs),
                    black_box(&params),
                    &depolarizing,
                ))
            });
        });
    }
    group.finish();
}

fn bench_noisy_gradients(c: &mut Criterion) {
    let mut group = c.benchmark_group("noisy_gradients");
    group.sample_size(10);
    let template = QnnTemplate::new(3, 2, EntanglerKind::Basic);
    let circuit = template.build();
    let inputs = [0.3, -0.2, 0.8];
    let params: Vec<f64> = (0..template.param_count())
        .map(|i| 0.1 * i as f64)
        .collect();
    let obs: Vec<_> = (0..3).map(hqnn_qsim::Observable::z).collect();
    let noise = NoiseModel::depolarizing(0.05);
    group.bench_function("parameter_shift_noisy_BEL(3,2)", |b| {
        b.iter(|| {
            black_box(hqnn_qsim::gradient::parameter_shift_noisy(
                &circuit, &inputs, &params, &obs, &noise,
            ))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pure_vs_mixed, bench_noisy_gradients);
criterion_main!(benches);
