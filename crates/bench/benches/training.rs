//! Training-loop benchmarks: one epoch of classical vs hybrid training on a
//! small spiral instance — the unit of work the grid search repeats
//! thousands of times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hqnn_core::{ClassicalSpec, HybridSpec, ModelSpec};
use hqnn_data::{Dataset, SpiralConfig, Standardizer};
use hqnn_nn::{train, Adam, TrainConfig};
use hqnn_qsim::{EntanglerKind, QnnTemplate};
use hqnn_tensor::SeededRng;
use std::hint::black_box;

fn bench_one_epoch(c: &mut Criterion) {
    let mut group = c.benchmark_group("one_epoch");
    group.sample_size(10);

    let n_features = 10;
    let mut rng = SeededRng::new(3);
    let dataset = Dataset::spiral(&SpiralConfig::fast(n_features).with_samples(300), &mut rng);
    let (train_set, val_set) = dataset.split(0.8, &mut rng);
    let (standardizer, x_train) = Standardizer::fit_transform(train_set.features());
    let x_val = standardizer.transform(val_set.features());

    let specs: Vec<(&str, ModelSpec)> = vec![
        (
            "classical_C[8,6]",
            ClassicalSpec::new(n_features, vec![8, 6], 3).into(),
        ),
        (
            "hybrid_BEL(3,2)",
            HybridSpec::new(n_features, 3, QnnTemplate::new(3, 2, EntanglerKind::Basic)).into(),
        ),
        (
            "hybrid_SEL(3,2)",
            HybridSpec::new(n_features, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong)).into(),
        ),
    ];

    for (name, spec) in specs {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut rng = SeededRng::new(11);
                let mut model = spec.build(&mut rng);
                let mut opt = Adam::new(0.005);
                let config = TrainConfig::fast().with_epochs(1);
                black_box(train(
                    &mut model,
                    &mut opt,
                    &x_train,
                    train_set.labels(),
                    &x_val,
                    val_set.labels(),
                    3,
                    &config,
                    &mut rng,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_one_epoch);
criterion_main!(benches);
