//! Accuracy-vs-FLOPs frontier: exhaustively evaluates the classical and
//! hybrid search spaces at one complexity level (no early stop) and prints
//! the Pareto-optimal models — the landscape the paper's greedy
//! first-pass-wins protocol walks only the lower edge of.
//!
//! ```sh
//! cargo run -p hqnn-bench --release --bin frontier            # fast: 10 features
//! cargo run -p hqnn-bench --release --bin frontier -- --smoke # seconds-scale
//! ```

use hqnn_bench::Cli;
use hqnn_qsim::EntanglerKind;
use hqnn_search::experiments::{accuracy_frontier, pareto_front};
use hqnn_search::{classical_space, hybrid_space};

fn main() {
    let cli = Cli::parse();
    let config = cli.profile.experiment_config();
    let n_features = config.levels.first().copied().unwrap_or(10);
    let cost = config.cost;

    println!(
        "accuracy-vs-FLOPs frontier at {n_features} features \
         ({} runs per combo, {} epochs, up to {} combos per family)\n",
        config.search.runs_per_combo,
        config.search.train.epochs,
        config.search.max_combos_per_repetition,
    );

    for (name, space) in [
        ("classical", classical_space(n_features, 3)),
        (
            "hybrid (BEL)",
            hybrid_space(n_features, 3, EntanglerKind::Basic),
        ),
        (
            "hybrid (SEL)",
            hybrid_space(n_features, 3, EntanglerKind::Strong),
        ),
    ] {
        hqnn_telemetry::event(
            hqnn_telemetry::Level::Info,
            "frontier.space_start",
            &[("family", name.into()), ("combos", space.len().into())],
        );
        let outcomes = accuracy_frontier(&space, n_features, &config.search, &cost, &mut |o| {
            hqnn_telemetry::event(
                hqnn_telemetry::Level::Info,
                "frontier.combo",
                &[
                    ("model", o.spec.label().into()),
                    ("flops", o.flops.total().into()),
                    ("val_acc", o.avg_val_accuracy.into()),
                ],
            );
        });
        println!("Pareto front — {name}:");
        println!(
            "{:<20} {:>10} {:>9} {:>10}",
            "model", "FLOPs", "params", "val acc"
        );
        for o in pareto_front(&outcomes) {
            println!(
                "{:<20} {:>10} {:>9} {:>9.1}%",
                o.spec.label(),
                o.flops.total(),
                o.param_count,
                100.0 * o.avg_val_accuracy
            );
        }
        println!();
    }
    println!(
        "reading: each front shows the cheapest model achieving each accuracy level;\n\
         the paper's protocol picks the first front member above the 90% bar."
    );
    cli.finish();
}
