//! Fig. 8: FLOPs of the best-performing **hybrid (SEL)** models per problem
//! complexity level.
//!
//! ```sh
//! cargo run -p hqnn-bench --release --bin fig8            # fast profile
//! cargo run -p hqnn-bench --release --bin fig8 -- --paper # full protocol
//! ```

use hqnn_bench::{ensure_families, Cli};
use hqnn_search::experiments::Family;
use hqnn_search::report;

fn main() {
    let cli = Cli::parse();
    let mut study = cli.load_study();
    if let Some(plan) = ensure_families(&mut study, &[Family::HybridSel]) {
        cli.save_study_sharded(&mut study, &plan);
    }
    println!(
        "{}",
        report::scaling_table("hybrid (SEL)", &study.hybrid_sel)
    );
    println!(
        "paper reference: the SEL hybrid stays at (3 qubits, 2 layers) across *all* feature\n\
         sizes; FLOPs rise only ≈ +53.1% (absolute +1800) from 10 to 110 features, driven\n\
         entirely by the classical input layer."
    );
    cli.finish();
}
