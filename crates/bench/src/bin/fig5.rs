//! Fig. 5: the two quantum-layer designs — SEL and BEL circuit diagrams
//! (3 qubits, depth 2, as in the paper's figure), rendered as ASCII.
//!
//! ```sh
//! cargo run -p hqnn-bench --release --bin fig5
//! ```

use hqnn_bench::Cli;
use hqnn_qsim::render::render_ascii;
use hqnn_qsim::{EntanglerKind, QnnTemplate};

fn main() {
    let cli = Cli::parse();
    for (panel, kind) in [
        ("(a) Strongly Entangling Layer (SEL)", EntanglerKind::Strong),
        ("(b) Basic Entangler Layer (BEL)", EntanglerKind::Basic),
    ] {
        let template = QnnTemplate::new(3, 2, kind);
        println!(
            "Fig. 5{panel} — {}, {} trainable parameters",
            template.label(),
            template.param_count()
        );
        println!();
        println!("{}", render_ascii(&template.build()));
        println!("  x0..x2 = angle-encoded inputs; θi = trainable rotations; ● = CNOT control\n");
    }
    println!(
        "SEL applies a full Rot(φ,θ,ω) = RZ·RY·RZ per qubit per layer (3 parameters)\n\
         with layer-dependent CNOT ranges; BEL applies a single RX per qubit with a\n\
         nearest-neighbour CNOT ring — the expressiveness gap behind the paper's\n\
         central result (quantified by the `expressibility` example)."
    );
    cli.finish();
}
