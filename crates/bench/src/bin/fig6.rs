//! Fig. 6: FLOPs of the best-performing **classical** models per problem
//! complexity level, found by the paper's FLOPs-sorted grid search.
//!
//! ```sh
//! cargo run -p hqnn-bench --release --bin fig6            # fast profile
//! cargo run -p hqnn-bench --release --bin fig6 -- --paper # full protocol
//! ```

use hqnn_bench::{ensure_families, Cli};
use hqnn_search::experiments::Family;
use hqnn_search::report;

fn main() {
    let cli = Cli::parse();
    let mut study = cli.load_study();
    if let Some(plan) = ensure_families(&mut study, &[Family::Classical]) {
        cli.save_study_sharded(&mut study, &plan);
    }
    println!("{}", report::scaling_table("classical", &study.classical));
    println!(
        "paper reference: classical FLOPs rise ≈ +88.5% (absolute +3285) from 10 to 110 features."
    );
    cli.finish();
}
