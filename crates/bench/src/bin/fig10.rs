//! Fig. 10: comparative rates of increase in FLOPs (panel a) and parameter
//! counts (panel b) for classical vs hybrid models as problem complexity
//! grows — the paper's headline result.
//!
//! ```sh
//! cargo run -p hqnn-bench --release --bin fig10            # fast profile
//! cargo run -p hqnn-bench --release --bin fig10 -- --paper # full protocol
//! ```

use hqnn_bench::{ensure_families, write_artifact, Cli};
use hqnn_search::experiments::Family;
use hqnn_search::report;

fn main() {
    let cli = Cli::parse();
    let mut study = cli.load_study();
    if let Some(plan) = ensure_families(&mut study, &Family::ALL) {
        cli.save_study_sharded(&mut study, &plan);
    }
    let csv_path = cli.study_path().with_extension("csv");
    write_artifact(&csv_path, &report::winners_csv(&study));
    println!("{}", report::comparative_table(&study));
    println!(
        "\nshape to reproduce: hybrid (especially SEL) rates of increase sit below the\n\
         classical rate on both metrics, with hybrid parameter counts below classical."
    );
    cli.finish();
}
