//! Fig. 4: the spiral dataset — an ASCII rendering of the first two
//! features (panel a) and the complexity/noise schedule (panel b).
//!
//! ```sh
//! cargo run -p hqnn-bench --release --bin fig4
//! ```

use hqnn_bench::Cli;
use hqnn_data::{complexity_levels, noise_level, Dataset, SpiralConfig};
use hqnn_tensor::SeededRng;

const WIDTH: usize = 64;
const HEIGHT: usize = 28;

fn main() {
    let cli = Cli::parse();
    let mut rng = SeededRng::new(4);
    let dataset = Dataset::spiral(&SpiralConfig::paper(10), &mut rng);

    println!("Fig. 4(a): first two features of the generated spiral (3 classes × 500 points)");
    println!();
    let mut grid = vec![vec![' '; WIDTH]; HEIGHT];
    let marks = ['o', '+', 'x'];
    for (row, &label) in dataset.features().iter_rows().zip(dataset.labels()) {
        let (x, y) = (row[0], row[1]);
        let cx = (((x + 1.3) / 2.6) * (WIDTH as f64 - 1.0)).round();
        let cy = (((1.3 - y) / 2.6) * (HEIGHT as f64 - 1.0)).round();
        if (0.0..WIDTH as f64).contains(&cx) && (0.0..HEIGHT as f64).contains(&cy) {
            grid[cy as usize][cx as usize] = marks[label];
        }
    }
    for line in &grid {
        println!("  {}", line.iter().collect::<String>());
    }
    println!("  (o/+/x = classes 0/1/2)");
    println!();

    println!("Fig. 4(b): the problem-complexity schedule");
    println!();
    println!(
        "{:>10} {:>12} {:>16}",
        "features", "noise σ", "derived dims"
    );
    for features in complexity_levels() {
        println!(
            "{features:>10} {:>12.3} {:>16}",
            noise_level(features),
            features - 2
        );
    }
    println!();
    println!(
        "per-class counts at 10 features: {:?} (balanced by construction)",
        dataset.class_counts()
    );
    cli.finish();
}
