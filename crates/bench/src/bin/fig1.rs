//! Fig. 1: the three architecture families the paper illustrates —
//! (a) a purely classical NN, (b) an HQNN whose only hidden layer is
//! quantum, (c) an HQNN mixing classical and quantum hidden layers —
//! instantiated as real models with their complexity metrics.
//!
//! ```sh
//! cargo run -p hqnn-bench --release --bin fig1
//! ```

use hqnn_bench::Cli;
use hqnn_core::prelude::*;

fn main() {
    let cli = Cli::parse();
    let n_features = 10;
    let cost = CostModel::default();
    let mut rng = SeededRng::new(1);

    // (a) Classical NN (Fig. 1a).
    let classical = ClassicalSpec::new(n_features, vec![8, 6], 3);
    let model_a = classical.build(&mut rng);
    println!("Fig. 1(a) — classical NN");
    println!("  {}", model_a.describe());
    println!(
        "  {} params | {} FLOPs/sample\n",
        classical.param_count(),
        classical.flops(&cost).total()
    );

    // (b) HQNN with only a quantum hidden layer (Fig. 1b).
    let hybrid = HybridSpec::new(n_features, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong));
    let model_b = hybrid.build(&mut rng);
    println!("Fig. 1(b) — HQNN, quantum hidden layer only");
    println!("  {}", model_b.describe());
    let f = hybrid.flops(&cost);
    println!(
        "  {} params | {} FLOPs/sample (CL {} + Enc {} + QL {})\n",
        hybrid.param_count(),
        f.total(),
        f.classical,
        f.encoding,
        f.quantum
    );

    // (c) HQNN with classical *and* quantum hidden layers (Fig. 1c) —
    // assembled directly from layers; the grid search only varies (b).
    let mut model_c = Sequential::new();
    model_c.push(Dense::new(n_features, 8, &mut rng));
    model_c.push(Activation::relu());
    model_c.push(Dense::new(8, 3, &mut rng));
    model_c.push(QuantumLayer::new(
        QnnTemplate::new(3, 2, EntanglerKind::Strong),
        &mut rng,
    ));
    model_c.push(Dense::new(3, 3, &mut rng));
    println!("Fig. 1(c) — HQNN, classical + quantum hidden layers");
    println!("  {}", model_c.describe());
    println!("  {} params\n", model_c.param_count());

    // All three are trainable through the same loop; show one forward pass.
    let x = Matrix::zeros(2, n_features);
    for (label, model) in [("(a)", model_a), ("(b)", model_b), ("(c)", model_c)] {
        let mut model = model;
        let out = model.forward(&x, false);
        println!(
            "{label} forward pass: input (2, {n_features}) → logits {:?}",
            out.shape()
        );
    }
    cli.finish();
}
