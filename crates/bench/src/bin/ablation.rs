//! Design-choice ablations beyond the paper's Table I:
//!
//! 1. **FLOPs accounting convention** — profiler-calibrated vs honest
//!    simulation cost, for the paper's hybrid configurations;
//! 2. **Gradient engine** — adjoint vs parameter-shift backward FLOPs as
//!    circuits grow (why the workspace trains with adjoint);
//! 3. **Template expressibility** — the quantitative version of the paper's
//!    "SEL is more expressive" claim;
//! 4. **Noise robustness** — how depolarizing gate error damps a trained
//!    SEL(3,2) readout (the NISQ caveat the paper's ideal simulation skips).
//!
//! ```sh
//! cargo run -p hqnn-bench --release --bin ablation
//! ```

use hqnn_bench::Cli;
use hqnn_core::prelude::*;
use hqnn_qsim::metrics::expressibility;

fn main() {
    let cli = Cli::parse();
    convention_ablation();
    gradient_engine_ablation();
    expressibility_ablation();
    noise_ablation();
    cli.finish();
}

fn convention_ablation() {
    println!("— ablation 1: FLOPs accounting convention —\n");
    let profiler = CostModel::default();
    let simulation = CostModel::simulation();
    println!(
        "{:<16} {:>14} {:>16} {:>8}",
        "model", "profiler-style", "simulation-cost", "ratio"
    );
    for (label, spec) in [
        (
            "SEL(3,2)@110f",
            HybridSpec::new(110, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong)),
        ),
        (
            "BEL(4,4)@110f",
            HybridSpec::new(110, 3, QnnTemplate::new(4, 4, EntanglerKind::Basic)),
        ),
    ] {
        let p = spec.flops(&profiler).total();
        let s = spec.flops(&simulation).total();
        println!("{label:<16} {p:>14} {s:>16} {:>7.1}×", s as f64 / p as f64);
    }
    println!(
        "\nthe honest convention makes the simulated quantum layer ~10× the profiler\n\
         numbers — the \"simulation overhead\" the paper's argument discounts.\n"
    );
}

fn gradient_engine_ablation() {
    println!("— ablation 2: adjoint vs parameter-shift backward FLOPs —\n");
    let cost = CostModel::simulation();
    println!(
        "{:<14} {:>8} {:>14} {:>16} {:>8}",
        "template", "params", "adjoint", "param-shift", "ratio"
    );
    for (q, d) in [(3usize, 2usize), (4, 4), (5, 6), (5, 10)] {
        let t = QnnTemplate::new(q, d, EntanglerKind::Strong);
        let census = t.build().op_census();
        let adj = cost.circuit_backward_adjoint(&census, q, q).total();
        let shift = cost.circuit_backward_parameter_shift(&census, q, q);
        println!(
            "{:<14} {:>8} {adj:>14} {shift:>16} {:>7.1}×",
            t.label(),
            t.param_count(),
            shift as f64 / adj as f64
        );
    }
    println!(
        "\nthe shift rule re-simulates twice per parameter, so its cost ratio grows\n\
         with depth — adjoint keeps hybrid training linear in gate count.\n"
    );
}

fn expressibility_ablation() {
    println!("— ablation 3: template expressibility (KL to Haar, lower = better) —\n");
    println!("{:<10} {:>10} {:>10}", "shape", "BEL", "SEL");
    for (q, d) in [(3usize, 1usize), (3, 2), (4, 2)] {
        let mut rng = SeededRng::new(77);
        let bel = expressibility(
            &QnnTemplate::new(q, d, EntanglerKind::Basic),
            4000,
            20,
            &mut rng,
        );
        let sel = expressibility(
            &QnnTemplate::new(q, d, EntanglerKind::Strong),
            4000,
            20,
            &mut rng,
        );
        println!("({q},{d})      {bel:>10.4} {sel:>10.4}");
    }
    println!(
        "\nSEL dominates at every shape — the structural reason its (3,2) instance\n\
         keeps passing the accuracy threshold where BEL's must grow.\n"
    );
}

fn noise_ablation() {
    println!("— ablation 4: depolarizing gate error vs quantum-layer readout —\n");
    let template = QnnTemplate::new(3, 2, EntanglerKind::Strong);
    let circuit = template.build();
    let mut rng = SeededRng::new(5);
    let params: Vec<f64> = (0..template.param_count())
        .map(|_| rng.uniform(0.0, std::f64::consts::TAU))
        .collect();
    let inputs = [0.4, -0.8, 1.2];
    println!(
        "{:>10} {:>12} {:>12} {:>12} {:>10}",
        "p", "⟨Z₀⟩", "⟨Z₁⟩", "⟨Z₂⟩", "purity"
    );
    for p in [0.0, 0.01, 0.05, 0.1, 0.3] {
        let rho =
            DensityMatrix::run_noisy(&circuit, &inputs, &params, &NoiseModel::depolarizing(p));
        println!(
            "{p:>10.2} {:>12.4} {:>12.4} {:>12.4} {:>10.4}",
            rho.expectation_z(0),
            rho.expectation_z(1),
            rho.expectation_z(2),
            rho.purity()
        );
    }
    println!(
        "\nreadouts decay smoothly toward 0 and the state toward maximal mixing as\n\
         gate error grows — run the `noisy_training` example for the end-to-end\n\
         training counterpart."
    );
}
