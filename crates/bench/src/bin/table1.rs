//! Table I: ablation — breakdown of per-sample FLOPs across the hybrid
//! pipeline's stages (classical layers / encoding / quantum layer).
//!
//! Two variants are printed: the table priced at the paper's reported best
//! combinations (analytic, instant), and — when a cached study exists — the
//! table priced at the combinations *this* reproduction's searches selected.
//!
//! ```sh
//! cargo run -p hqnn-bench --release --bin table1
//! ```

use hqnn_bench::Cli;
use hqnn_flops::{CostModel, QuantumBackwardCost};
use hqnn_search::experiments::{table_one_from_study, table_one_paper_combos};
use hqnn_search::report;

fn main() {
    let cli = Cli::parse();
    let cost = cli.profile.experiment_config().cost;

    println!("— priced at the paper's reported best combinations —\n");
    println!("{}", report::table_one(&table_one_paper_combos(&cost)));
    println!(
        "paper values for comparison: BEL rows TF 977/1517/2537/4797, Enc 466 (3q) / 1132 (4q),\n\
         QL 228/228/528/896; SEL rows TF 1589/2129/2849/3389 with constant QL 840.\n"
    );

    let study = cli.load_study();
    let rows = table_one_from_study(&study);
    if rows.is_empty() {
        println!(
            "(no cached hybrid search results for this profile — run fig7/fig8 first to also\n\
             price the combinations this reproduction's searches selected)"
        );
    } else {
        println!("— priced at this reproduction's search winners —\n");
        println!("{}", report::table_one(&rows));
    }

    // Extra ablation: the same circuits under the honest simulation-cost
    // convention, quantifying the real overhead of classical simulation.
    let sim = CostModel {
        quantum_backward: QuantumBackwardCost::Adjoint,
        ..CostModel::simulation()
    };
    println!("— same combinations under the honest simulation-cost convention —\n");
    println!("{}", report::table_one(&table_one_paper_combos(&sim)));
    println!(
        "(complex multiplies counted as 6 real FLOPs and the backward pass costed as the\n\
         adjoint sweep the simulator actually executes — the quantum-layer share is an\n\
         order of magnitude above the profiler-convention numbers, which is exactly the\n\
         simulation overhead the paper argues HQNNs pay on classical hardware)"
    );
    cli.finish();
}
