//! Fig. 9: trainable parameter counts of the winning classical / BEL / SEL
//! models per problem complexity level.
//!
//! ```sh
//! cargo run -p hqnn-bench --release --bin fig9            # fast profile
//! cargo run -p hqnn-bench --release --bin fig9 -- --paper # full protocol
//! ```

use hqnn_bench::{ensure_families, Cli};
use hqnn_search::experiments::Family;
use hqnn_search::report;

fn main() {
    let cli = Cli::parse();
    let mut study = cli.load_study();
    if let Some(plan) = ensure_families(&mut study, &Family::ALL) {
        cli.save_study_sharded(&mut study, &plan);
    }
    println!("{}", report::parameter_table(&study));
    println!(
        "paper reference: classical winners add ≈ +520.8 params (+88.5%) from 10 to 110\n\
         features; BEL +441 (+89.6%); SEL only +276 (+81.4%), with hybrids below classical\n\
         at every level."
    );
    cli.finish();
}
