//! Fig. 7: FLOPs of the best-performing **hybrid (BEL)** models per problem
//! complexity level.
//!
//! ```sh
//! cargo run -p hqnn-bench --release --bin fig7            # fast profile
//! cargo run -p hqnn-bench --release --bin fig7 -- --paper # full protocol
//! ```

use hqnn_bench::{ensure_families, Cli};
use hqnn_search::experiments::Family;
use hqnn_search::report;

fn main() {
    let cli = Cli::parse();
    let mut study = cli.load_study();
    if let Some(plan) = ensure_families(&mut study, &[Family::HybridBel]) {
        cli.save_study_sharded(&mut study, &plan);
    }
    println!(
        "{}",
        report::scaling_table("hybrid (BEL)", &study.hybrid_bel)
    );
    println!(
        "paper reference: BEL hybrids keep (3 qubits, 2 layers) up to ~40 features, then grow;\n\
         FLOPs rise ≈ +80.1% (absolute +3941.6) from 10 to 110 features."
    );
    cli.finish();
}
