//! One-shot reproduction driver: runs every search the paper's evaluation
//! needs (Figs. 6–10), prices Table I, and writes a consolidated markdown
//! report plus the winners CSV next to the study cache.
//!
//! ```sh
//! cargo run -p hqnn-bench --release --bin repro             # fast profile
//! cargo run -p hqnn-bench --release --bin repro -- --paper  # full protocol
//! ```

use std::fmt::Write as _;

use hqnn_bench::{ensure_families, write_artifact, Cli};
use hqnn_search::experiments::{table_one_from_study, table_one_paper_combos, Family};
use hqnn_search::report;

fn main() {
    let cli = Cli::parse();
    let mut study = cli.load_study();
    if let Some(plan) = ensure_families(&mut study, &Family::ALL) {
        cli.save_study_sharded(&mut study, &plan);
    }

    let mut md = String::new();
    let _ = writeln!(md, "# hqnn reproduction report\n");
    let _ = writeln!(
        md,
        "protocol: threshold {:.0}%, {} runs × {} repetitions, levels {:?}, {} samples\n",
        100.0 * study.config.search.accuracy_threshold,
        study.config.search.runs_per_combo,
        study.config.search.repetitions,
        study.config.levels,
        study.config.search.dataset_samples,
    );
    let _ = writeln!(
        md,
        "## Fig. 6 — classical\n\n```\n{}```\n",
        report::scaling_table("classical", &study.classical)
    );
    let _ = writeln!(
        md,
        "## Fig. 7 — hybrid (BEL)\n\n```\n{}```\n",
        report::scaling_table("hybrid (BEL)", &study.hybrid_bel)
    );
    let _ = writeln!(
        md,
        "## Fig. 8 — hybrid (SEL)\n\n```\n{}```\n",
        report::scaling_table("hybrid (SEL)", &study.hybrid_sel)
    );
    let _ = writeln!(
        md,
        "## Fig. 9 — parameters\n\n```\n{}```\n",
        report::parameter_table(&study)
    );
    let _ = writeln!(
        md,
        "## Fig. 10 — comparative rates\n\n```\n{}```\n",
        report::comparative_table(&study)
    );
    let _ = writeln!(
        md,
        "## Table I — paper combos\n\n```\n{}```\n",
        report::table_one(&table_one_paper_combos(&study.config.cost))
    );
    let from_study = table_one_from_study(&study);
    if !from_study.is_empty() {
        let _ = writeln!(
            md,
            "## Table I — this run's winners\n\n```\n{}```\n",
            report::table_one(&from_study)
        );
    }

    print!("{md}");

    let report_path = cli.study_path().with_extension("md");
    let csv_path = cli.study_path().with_extension("csv");
    write_artifact(&report_path, &md);
    write_artifact(&csv_path, &report::winners_csv(&study));
    cli.finish();
}
