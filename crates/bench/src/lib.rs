//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary accepts the same flags:
//!
//! * `--paper` — the paper's full protocol (all 11 levels, 5 runs × 5
//!   repetitions; hours on one core);
//! * `--fast` — the default: 3 levels, 2 runs × 2 repetitions (minutes);
//! * `--smoke` — a seconds-scale miniature (CI / demos);
//! * `--cache <dir>` — where the study JSON is stored (default
//!   `experiment-results/`);
//! * `--fresh` — ignore any cached study and re-run;
//! * `--log-json <path>` — write every telemetry event as one JSON object
//!   per line to `path`;
//! * `--trace-out <path>` — write a Chrome trace-event JSON of every span
//!   (plus a sibling `.folded` flamegraph input) at exit;
//! * `--quiet` — suppress stderr progress (result tables still print).
//!
//! Every invocation emits a `run.manifest` event (git SHA, build profile,
//! thread count, config hash) into its JSONL log, and stamps the same
//! manifest into the cached study JSON it writes.
//!
//! Progress goes through [`hqnn_telemetry`]: stderr verbosity follows
//! `HQNN_LOG` (default `info` for binaries), and every binary ends by
//! printing a span-tree profile via [`Cli::finish`].
//!
//! Search results are cached per profile in a single JSON file, so running
//! `fig6` then `fig9` reuses the classical search instead of repeating it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::exit;

use hqnn_search::experiments::Family;
use hqnn_search::{ExperimentConfig, ShardPlan, StudyResult};
use hqnn_telemetry as telemetry;

/// Which protocol profile a binary runs with.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Profile {
    /// The paper's full protocol.
    Paper,
    /// Reduced protocol (default).
    Fast,
    /// Fast statistical power (2 runs × 2 repetitions) but all 11 of the
    /// paper's complexity levels — the full Fig. 6–10 x-axis in a fraction
    /// of the paper protocol's time.
    FullLevels,
    /// Miniature protocol for CI.
    Smoke,
}

impl Profile {
    /// The experiment configuration for this profile.
    pub fn experiment_config(self) -> ExperimentConfig {
        match self {
            Profile::Paper => ExperimentConfig::paper(),
            Profile::Fast => ExperimentConfig::fast(),
            Profile::FullLevels => {
                let mut config = ExperimentConfig::fast();
                config.levels = hqnn_data::complexity_levels();
                config
            }
            Profile::Smoke => ExperimentConfig::smoke(),
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Profile::Paper => "paper",
            Profile::Fast => "fast",
            Profile::FullLevels => "full-levels",
            Profile::Smoke => "smoke",
        }
    }
}

/// Parsed command-line options shared by every binary.
#[derive(Clone, Debug)]
pub struct Cli {
    /// Selected protocol profile.
    pub profile: Profile,
    /// Directory holding cached study JSON.
    pub cache_dir: PathBuf,
    /// Ignore caches and re-run searches.
    pub fresh: bool,
    /// Mirror every telemetry event to this JSONL file.
    pub log_json: Option<PathBuf>,
    /// Write a Chrome trace-event JSON of every span to this file (plus a
    /// sibling `.folded` collapsed-stack file for flamegraphs).
    pub trace_out: Option<PathBuf>,
    /// Suppress stderr progress output.
    pub quiet: bool,
}

impl Cli {
    /// Parses `std::env::args`, exiting with usage text on `--help` or an
    /// unknown flag.
    pub fn parse() -> Self {
        let mut cli = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--paper" => cli.profile = Profile::Paper,
                "--fast" => cli.profile = Profile::Fast,
                "--full-levels" => cli.profile = Profile::FullLevels,
                "--smoke" => cli.profile = Profile::Smoke,
                "--fresh" => cli.fresh = true,
                "--quiet" | "-q" => cli.quiet = true,
                "--cache" => {
                    let Some(dir) = args.next() else {
                        eprintln!("--cache requires a directory argument");
                        exit(2);
                    };
                    cli.cache_dir = PathBuf::from(dir);
                }
                "--log-json" => {
                    let Some(path) = args.next() else {
                        eprintln!("--log-json requires a file argument");
                        exit(2);
                    };
                    cli.log_json = Some(PathBuf::from(path));
                }
                "--trace-out" => {
                    let Some(path) = args.next() else {
                        eprintln!("--trace-out requires a file argument");
                        exit(2);
                    };
                    cli.trace_out = Some(PathBuf::from(path));
                }
                "--help" | "-h" => {
                    println!(
                        "usage: <figure-binary> [--paper|--fast|--full-levels|--smoke] [--cache DIR] [--fresh]\n\
                         \n\
                         --paper        full protocol from the paper (hours)\n\
                         --fast         reduced protocol, same shape (default, minutes)\n\
                         --full-levels  fast protocol over all 11 complexity levels\n\
                         --smoke        miniature protocol (seconds)\n\
                         --cache        study cache directory (default experiment-results/)\n\
                         --fresh        ignore cached results and re-run\n\
                         --log-json     mirror telemetry events to a JSONL file\n\
                         --trace-out    write a Chrome trace JSON (+ .folded flamegraph input)\n\
                         --quiet        suppress stderr progress (tables still print)"
                    );
                    exit(0);
                }
                other => {
                    eprintln!("unknown flag {other}; try --help");
                    exit(2);
                }
            }
        }
        cli.init_telemetry();
        cli
    }

    /// Applies this invocation's telemetry policy: `--quiet` silences the
    /// console, otherwise binaries default to `info` when `HQNN_LOG` is
    /// unset (libraries and tests keep the quieter `error` default), and
    /// `--log-json` attaches the JSONL sink.
    fn init_telemetry(&self) {
        if self.quiet {
            telemetry::set_level(telemetry::Level::Off);
        } else if !telemetry::env::is_set("HQNN_LOG") {
            telemetry::set_level(telemetry::Level::Info);
        }
        if let Some(path) = &self.log_json {
            if let Err(e) = telemetry::add_jsonl_sink(path) {
                eprintln!("could not open --log-json file {}: {e}", path.display());
                exit(2);
            }
        }
        if self.trace_out.is_some() {
            telemetry::trace::enable();
        }
        // Stamp provenance into the run log before any measurement happens,
        // so every JSONL file is self-describing.
        telemetry::event(
            telemetry::Level::Info,
            "run.manifest",
            &self.manifest().fields(),
        );
    }

    /// The provenance record for this invocation: host/git/build context plus
    /// the hash of the selected profile's experiment configuration.
    pub fn manifest(&self) -> telemetry::RunManifest {
        telemetry::RunManifest::capture(self.profile.tag())
            .with_config_hash(&self.profile.experiment_config())
    }

    /// Flushes sinks and prints the end-of-run span-tree profile to stderr
    /// (suppressed by `--quiet` / `HQNN_LOG=off`). Call last in every
    /// binary, after the result tables.
    pub fn finish(&self) {
        telemetry::flush();
        if let Some(path) = &self.trace_out {
            match std::fs::write(path, telemetry::trace::chrome_trace_json()) {
                Ok(()) => telemetry::event(
                    telemetry::Level::Info,
                    "trace.written",
                    &[
                        ("path", path.display().to_string().into()),
                        ("dropped", telemetry::trace::dropped().into()),
                    ],
                ),
                Err(e) => telemetry::event(
                    telemetry::Level::Error,
                    "trace.write_failed",
                    &[
                        ("path", path.display().to_string().into()),
                        ("error", e.to_string().into()),
                    ],
                ),
            }
            let folded = path.with_extension("folded");
            if let Err(e) = std::fs::write(&folded, telemetry::trace::collapsed_stacks()) {
                telemetry::event(
                    telemetry::Level::Error,
                    "trace.write_failed",
                    &[
                        ("path", folded.display().to_string().into()),
                        ("error", e.to_string().into()),
                    ],
                );
            }
        }
        if telemetry::enabled(telemetry::Level::Error) {
            eprintln!("{}", telemetry::report());
        }
    }

    /// The cache path for this profile's study JSON.
    pub fn study_path(&self) -> PathBuf {
        self.cache_dir
            .join(format!("study-{}.json", self.profile.tag()))
    }

    /// Loads the cached study if compatible, otherwise starts a fresh one.
    pub fn load_study(&self) -> StudyResult {
        let config = self.profile.experiment_config();
        if !self.fresh {
            if let Ok(study) = StudyResult::load(self.study_path()) {
                if study.config == config {
                    telemetry::event(
                        telemetry::Level::Info,
                        "bench.cache_hit",
                        &[("path", self.study_path().display().to_string().into())],
                    );
                    return study;
                }
                telemetry::event(
                    telemetry::Level::Info,
                    "bench.cache_stale",
                    &[("path", self.study_path().display().to_string().into())],
                );
            }
        }
        StudyResult::new(config)
    }

    /// Saves the study back to the cache, stamping it with this run's
    /// manifest first; failures warn rather than abort (the printed tables
    /// are the primary output).
    pub fn save_study(&self, study: &mut StudyResult) {
        self.save_with_manifest(study, self.manifest());
    }

    /// Like [`Cli::save_study`], but records the [`ShardPlan`] the searches
    /// were scheduled with in the manifest's `shard_plan` field, so cached
    /// study JSON carries its scheduling provenance.
    pub fn save_study_sharded(&self, study: &mut StudyResult, plan: &ShardPlan) {
        self.save_with_manifest(study, self.manifest().with_shard_plan(&plan.descriptor()));
    }

    fn save_with_manifest(&self, study: &mut StudyResult, manifest: telemetry::RunManifest) {
        study.manifest = Some(manifest);
        if let Err(e) = study.save(self.study_path()) {
            telemetry::event(
                telemetry::Level::Error,
                "bench.cache_write_failed",
                &[
                    ("path", self.study_path().display().to_string().into()),
                    ("error", e.to_string().into()),
                ],
            );
        }
    }
}

impl Default for Cli {
    /// The defaults `parse()` starts from: fast profile, cache in
    /// `experiment-results/`, caches honoured.
    fn default() -> Self {
        Self {
            profile: Profile::Fast,
            cache_dir: PathBuf::from("experiment-results"),
            fresh: false,
            log_json: None,
            trace_out: None,
            quiet: false,
        }
    }
}

/// Ensures `family`'s search results are present in the study, running the
/// search (with progress logging to stderr) when they are missing.
/// Returns `true` when a search actually ran.
pub fn ensure_family(study: &mut StudyResult, family: Family) -> bool {
    if !study.family(family).is_empty() {
        return false;
    }
    // Per-combo progress is emitted by `search_level` itself as
    // `search.combo` events; here we only mark the family boundary.
    telemetry::event(
        telemetry::Level::Info,
        "search.family_start",
        &[
            ("family", family.name().into()),
            ("levels", format!("{:?}", study.config.levels).into()),
            ("threshold", study.config.search.accuracy_threshold.into()),
            ("runs", study.config.search.runs_per_combo.into()),
            ("reps", study.config.search.repetitions.into()),
        ],
    );
    study.run_family(family, &mut |_, _, _| {});
    true
}

/// Ensures every listed family's search results are present in the study,
/// running all the missing ones together as one sharded study — their
/// (family × level) cells fan out over `hqnn_runtime::par_map_budgeted`, so
/// a multi-family regeneration parallelises across the study's outermost
/// loop instead of only within levels. Bitwise identical to running
/// [`ensure_family`] per family, at any thread budget.
///
/// Returns the [`ShardPlan`] the missing families were scheduled with, or
/// `None` when every family was already cached (pass it to
/// [`Cli::save_study_sharded`] to record the provenance).
pub fn ensure_families(study: &mut StudyResult, families: &[Family]) -> Option<ShardPlan> {
    let missing: Vec<Family> = families
        .iter()
        .copied()
        .filter(|&family| study.family(family).is_empty())
        .collect();
    if missing.is_empty() {
        return None;
    }
    for &family in &missing {
        telemetry::event(
            telemetry::Level::Info,
            "search.family_start",
            &[
                ("family", family.name().into()),
                ("levels", format!("{:?}", study.config.levels).into()),
                ("threshold", study.config.search.accuracy_threshold.into()),
                ("runs", study.config.search.runs_per_combo.into()),
                ("reps", study.config.search.repetitions.into()),
            ],
        );
    }
    Some(study.run_study_sharded(&missing, &mut |_, _, _, _| {}))
}

/// Writes a generated artifact (markdown report, CSV export) and reports
/// the outcome as a telemetry event; failures warn rather than abort, since
/// the stdout tables are the primary output.
pub fn write_artifact(path: &std::path::Path, contents: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => telemetry::event(
            telemetry::Level::Info,
            "bench.artifact",
            &[("path", path.display().to_string().into())],
        ),
        Err(e) => telemetry::event(
            telemetry::Level::Error,
            "bench.artifact_write_failed",
            &[
                ("path", path.display().to_string().into()),
                ("error", e.to_string().into()),
            ],
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_map_to_configs() {
        assert_eq!(
            Profile::Paper.experiment_config(),
            ExperimentConfig::paper()
        );
        assert_eq!(Profile::Fast.experiment_config(), ExperimentConfig::fast());
        assert_eq!(
            Profile::Smoke.experiment_config(),
            ExperimentConfig::smoke()
        );
    }

    #[test]
    fn study_path_encodes_profile() {
        let mut cli = Cli::default();
        assert!(cli.study_path().ends_with("study-fast.json"));
        cli.profile = Profile::Paper;
        assert!(cli.study_path().ends_with("study-paper.json"));
        cli.profile = Profile::Smoke;
        cli.cache_dir = PathBuf::from("/tmp/x");
        assert_eq!(cli.study_path(), PathBuf::from("/tmp/x/study-smoke.json"));
    }

    #[test]
    fn load_study_falls_back_to_fresh_on_missing_cache() {
        let cli = Cli {
            cache_dir: PathBuf::from("/nonexistent-hqnn-cache"),
            ..Cli::default()
        };
        let study = cli.load_study();
        assert!(study.classical.is_empty());
        assert_eq!(study.config, ExperimentConfig::fast());
    }

    #[test]
    fn ensure_family_skips_already_run_families() {
        let mut study = StudyResult::new(ExperimentConfig::smoke());
        study.run_classical();
        assert!(!ensure_family(&mut study, Family::Classical));
    }

    #[test]
    fn ensure_families_shards_only_the_missing_ones() {
        let mut study = StudyResult::new(ExperimentConfig::smoke());
        study.run_classical();
        let cached = study.clone();
        let plan = ensure_families(&mut study, &[Family::Classical, Family::HybridBel])
            .expect("BEL was missing, a search must run");
        // Only BEL's cells were scheduled; classical results are untouched.
        assert!(plan.cells.iter().all(|c| c.family == Family::HybridBel));
        assert_eq!(plan.cells.len(), study.config.levels.len());
        assert_eq!(study.classical, cached.classical);
        assert!(!study.hybrid_bel.is_empty());
        // Second call: everything present, nothing runs.
        assert!(ensure_families(&mut study, &[Family::Classical, Family::HybridBel]).is_none());
    }
}
