//! Dense `f64` linear algebra substrate for the `hqnn` workspace.
//!
//! The paper's original experiments used TensorFlow; this crate supplies the
//! small, self-contained matrix/vector kernel the rest of the workspace is
//! built on: row-major [`Matrix`], elementwise ops, matrix products, reductions,
//! and deterministic random initialisation via [`rng::SeededRng`].
//!
//! Everything is `f64`: the models in the study are tiny (≤ 10 neurons,
//! ≤ 5 qubits), so numerical robustness matters more than raw throughput.
//!
//! # Example
//!
//! ```
//! use hqnn_tensor::Matrix;
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fold;
pub mod matrix;
pub mod rng;

pub use matrix::Matrix;
pub use rng::SeededRng;

/// Absolute tolerance used across the workspace when comparing floating-point
/// results that should agree analytically (gradient checks, unitarity, …).
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns `true` when `a` and `b` agree to within `tol` absolutely **or**
/// relatively (whichever is more permissive), the standard mixed criterion
/// for comparing quantities whose magnitude is not known a priori.
///
/// # Example
///
/// ```
/// assert!(hqnn_tensor::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!hqnn_tensor::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    let diff = (a - b).abs();
    diff <= tol || diff <= tol * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(0.0, 1e-12, 1e-9));
        assert!(!approx_eq(0.0, 1e-6, 1e-9));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 1e-9));
        assert!(!approx_eq(1e12, 1.01e12, 1e-9));
    }

    #[test]
    fn approx_eq_symmetric() {
        assert_eq!(approx_eq(3.0, 3.1, 0.1), approx_eq(3.1, 3.0, 0.1));
    }
}
