//! Row-major dense `f64` matrix.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub};

use serde::{Deserialize, Serialize};

use crate::rng::SeededRng;

/// Minimum `rows · inner · cols` product (≈ multiply-add count) before
/// [`Matrix::matmul`] fans rows out across the parallel runtime. Below this,
/// scoped-thread spawn overhead (tens of µs) exceeds the whole product.
const PAR_MATMUL_MIN_WORK: usize = 32 * 1024;

/// A dense, row-major `f64` matrix.
///
/// `Matrix` is the single tensor type of the workspace: a batch of samples is
/// a `(batch, features)` matrix, a dense-layer weight is `(in, out)`, a vector
/// is a `(1, n)` or `(n, 1)` matrix.
///
/// # Example
///
/// ```
/// use hqnn_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
/// assert_eq!(m.shape(), (2, 3));
/// assert_eq!(m[(1, 2)], 6.0);
/// assert_eq!(m.transpose().shape(), (3, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            // lint:allow(panic): allocation-size overflow is unrecoverable
            .expect("matrix dimensions overflow usize");
        Self {
            rows,
            cols,
            data: vec![0.0; len],
        }
    }

    /// Creates a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        let mut m = Self::zeros(rows, cols);
        m.data.fill(value);
        m
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a slice of row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have equal length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Builds a `1 × n` row vector from a slice.
    pub fn row_vector(values: &[f64]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Samples every entry i.i.d. uniformly from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut SeededRng) -> Self {
        assert!(lo < hi, "uniform bounds must satisfy lo < hi");
        let mut m = Self::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.uniform(lo, hi);
        }
        m
    }

    /// Samples every entry i.i.d. from `N(mean, std²)`.
    pub fn normal(rows: usize, cols: usize, mean: f64, std: f64, rng: &mut SeededRng) -> Self {
        let mut m = Self::zeros(rows, cols);
        for v in &mut m.data {
            *v = rng.normal(mean, std);
        }
        m
    }

    /// Glorot/Xavier uniform initialisation for a `(fan_in, fan_out)` weight,
    /// the Keras `Dense` default the paper's models were initialised with.
    pub fn glorot_uniform(fan_in: usize, fan_out: usize, rng: &mut SeededRng) -> Self {
        let limit = (6.0 / (fan_in + fan_out) as f64).sqrt();
        Self::uniform(fan_in, fan_out, -limit, limit, rng)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns its flat row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {} out of bounds ({})", r, self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns column `c` as an owned `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= cols`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols, "col {} out of bounds ({})", c, self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterator over rows as slices — always yields exactly `rows` items,
    /// including `rows` empty slices for a zero-column matrix (where
    /// `chunks` on the empty backing store would yield nothing).
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f64]> {
        (0..self.rows).map(move |r| &self.data[r * self.cols..(r + 1) * self.cols])
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        let mut t = Self::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Self) -> Self {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        hqnn_telemetry::counter("tensor.matmuls", 1);
        hqnn_telemetry::counter(
            "tensor.matmul_flops",
            2 * (self.rows * self.cols * other.cols) as u64,
        );
        let mut out = Self::zeros(self.rows, other.cols);
        // Output rows are independent, so large products fan rows out across
        // the runtime; each row runs the identical inner loop either way, so
        // the gate only changes wall-clock, never a single bit of the result.
        // Small products stay inline — thread spawn would dominate them.
        let work = self.rows * self.cols * other.cols;
        if self.rows > 1 && work >= PAR_MATMUL_MIN_WORK && hqnn_runtime::threads() > 1 {
            let rows = hqnn_runtime::par_map_range(self.rows, |r| {
                let mut dst = vec![0.0; other.cols];
                self.matmul_row(other, r, &mut dst);
                dst
            });
            for (r, row) in rows.iter().enumerate() {
                out.data[r * other.cols..(r + 1) * other.cols].copy_from_slice(row);
            }
        } else {
            for r in 0..self.rows {
                self.matmul_row(
                    other,
                    r,
                    &mut out.data[r * other.cols..(r + 1) * other.cols],
                );
            }
        }
        out
    }

    /// Accumulates row `r` of `self · other` into the zeroed slice `dst`.
    /// Both matmul paths share this loop so their results are identical.
    fn matmul_row(&self, other: &Self, r: usize, dst: &mut [f64]) {
        for k in 0..self.cols {
            let a = self[(r, k)];
            if a == 0.0 {
                continue;
            }
            let src = &other.data[k * other.cols..(k + 1) * other.cols];
            for (d, s) in dst.iter_mut().zip(src) {
                *d += a * s;
            }
        }
    }

    /// Elementwise map, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        let mut out = self.clone();
        for v in &mut out.data {
            *v = f(*v);
        }
        out
    }

    /// Elementwise map in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn hadamard(&self, other: &Self) -> Self {
        self.zip_with(other, |a, b| a * b)
    }

    /// Combines two equal-shape matrices elementwise.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip_with(&self, other: &Self, f: impl Fn(f64, f64) -> f64) -> Self {
        assert_eq!(
            self.shape(),
            other.shape(),
            "elementwise shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Self {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiplies every entry by `s`, returning a new matrix.
    pub fn scale(&self, s: f64) -> Self {
        self.map(|v| v * s)
    }

    /// Adds `other * s` into `self` (fused AXPY update, used by optimizers).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Self, s: f64) {
        assert_eq!(self.shape(), other.shape(), "add_scaled shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// Broadcast-adds a `1 × cols` row vector to every row (bias add).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × self.cols()`.
    pub fn add_row_broadcast(&self, bias: &Self) -> Self {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = &mut out.data[r * out.cols..(r + 1) * out.cols];
            for (v, b) in row.iter_mut().zip(&bias.data) {
                *v += b;
            }
        }
        out
    }

    /// Sums each column into a `1 × cols` row vector (bias gradient reduction).
    pub fn sum_rows(&self) -> Self {
        let mut out = Self::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(0, c)] += self[(r, c)];
            }
        }
        out
    }

    /// Sum of all entries (strict left-to-right fold in storage order).
    pub fn sum(&self) -> f64 {
        crate::fold::ordered_sum_f64(self.data.iter().copied())
    }

    /// Mean of all entries; `0.0` for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum entry; `f64::NEG_INFINITY` for an empty matrix.
    pub fn max(&self) -> f64 {
        crate::fold::ordered_max_f64(self.data.iter().copied())
    }

    /// Minimum entry; `f64::INFINITY` for an empty matrix.
    pub fn min(&self) -> f64 {
        crate::fold::ordered_min_f64(self.data.iter().copied())
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        crate::fold::ordered_sum_f64(self.data.iter().map(|v| v * v)).sqrt()
    }

    /// Index of the maximum entry in each row (`argmax` over columns),
    /// the prediction rule for classification heads.
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.iter_rows()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.total_cmp(b.1))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Extracts the sub-matrix made of the given row indices, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Self {
        let mut out = Self::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// `true` when every entry is finite (no NaN/inf), used as a training
    /// sanity check.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Elementwise approximate equality with mixed absolute/relative
    /// tolerance `tol`. Shapes must match for `true`.
    pub fn approx_eq(&self, other: &Self, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(&a, &b)| crate::approx_eq(a, b, tol))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a + b)
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        self.zip_with(rhs, |a, b| a - b)
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, rhs: f64) -> Matrix {
        self.scale(rhs)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scale(-1.0)
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        self.add_scaled(rhs, 1.0);
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for row in self.iter_rows() {
            write!(f, "  [")?;
            for (i, v) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.6}")?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn zeros_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_is_diagonal() {
        let id = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(id[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_round_trips_indexing() {
        let m = sample();
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1), vec![2.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn from_rows_rejects_ragged() {
        let _ = Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]);
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn transpose_involution() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = sample();
        assert_eq!(m.matmul(&Matrix::identity(3)), m);
        assert_eq!(Matrix::identity(2).matmul(&m), m);
    }

    #[test]
    fn matmul_zero_dimension_operands() {
        // 0-row left operand: (0×3)·(3×2) = (0×2).
        let right = Matrix::zeros(3, 2);
        let out = Matrix::zeros(0, 3).matmul(&right);
        assert_eq!(out.shape(), (0, 2));
        assert!(out.is_empty());
        // 0-col right operand: (2×3)·(3×0) = (2×0).
        let out = sample().matmul(&Matrix::zeros(3, 0));
        assert_eq!(out.shape(), (2, 0));
        // 0 inner dimension: (2×0)·(0×4) = the 2×4 zero matrix.
        let out = Matrix::zeros(2, 0).matmul(&Matrix::zeros(0, 4));
        assert_eq!(out, Matrix::zeros(2, 4));
        // Same answers when the runtime would otherwise parallelise.
        hqnn_runtime::with_threads(4, || {
            let out = Matrix::zeros(0, 3).matmul(&Matrix::zeros(3, 7));
            assert_eq!(out.shape(), (0, 7));
        });
    }

    #[test]
    fn iter_rows_yields_every_row_even_with_zero_cols() {
        assert_eq!(sample().iter_rows().count(), 2);
        let wide_empty = Matrix::zeros(3, 0);
        let rows: Vec<&[f64]> = wide_empty.iter_rows().collect();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.is_empty()));
        assert_eq!(Matrix::zeros(0, 5).iter_rows().count(), 0);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_mismatch() {
        let _ = sample().matmul(&sample());
    }

    #[test]
    fn hadamard_and_zip() {
        let m = sample();
        let sq = m.hadamard(&m);
        assert_eq!(sq[(1, 2)], 36.0);
    }

    #[test]
    fn add_sub_scale_ops() {
        let m = sample();
        let two = m.scale(2.0);
        assert_eq!(&(&m + &m), &two);
        assert_eq!((&two - &m), m);
        assert_eq!((&m * 0.0), Matrix::zeros(2, 3));
        assert_eq!((-&m).sum(), -m.sum());
    }

    #[test]
    fn add_row_broadcast_adds_bias() {
        let m = sample();
        let bias = Matrix::row_vector(&[10.0, 20.0, 30.0]);
        let out = m.add_row_broadcast(&bias);
        assert_eq!(out[(0, 0)], 11.0);
        assert_eq!(out[(1, 2)], 36.0);
    }

    #[test]
    fn sum_rows_reduces_batch() {
        let m = sample();
        assert_eq!(m.sum_rows(), Matrix::row_vector(&[5.0, 7.0, 9.0]));
    }

    #[test]
    fn reductions() {
        let m = sample();
        assert_eq!(m.sum(), 21.0);
        assert_eq!(m.mean(), 3.5);
        assert_eq!(m.max(), 6.0);
        assert_eq!(m.min(), 1.0);
        assert!((m.frobenius_norm() - (91.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn argmax_rows_picks_largest() {
        let m = Matrix::from_rows(&[&[0.1, 0.9, 0.0], &[5.0, 1.0, 2.0]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn select_rows_orders_and_repeats() {
        let m = sample();
        let s = m.select_rows(&[1, 1, 0]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(0), m.row(1));
        assert_eq!(s.row(2), m.row(0));
    }

    #[test]
    fn glorot_uniform_respects_limit() {
        let mut rng = SeededRng::new(7);
        let w = Matrix::glorot_uniform(10, 3, &mut rng);
        let limit = (6.0 / 13.0f64).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= limit));
        assert_eq!(w.shape(), (10, 3));
    }

    #[test]
    fn normal_has_roughly_correct_moments() {
        let mut rng = SeededRng::new(11);
        let m = Matrix::normal(100, 100, 2.0, 0.5, &mut rng);
        assert!((m.mean() - 2.0).abs() < 0.02);
        let var = m
            .as_slice()
            .iter()
            .map(|v| (v - m.mean()).powi(2))
            .sum::<f64>()
            / m.len() as f64;
        assert!((var.sqrt() - 0.5).abs() < 0.02);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut m = sample();
        assert!(m.all_finite());
        m[(0, 0)] = f64::NAN;
        assert!(!m.all_finite());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(format!("{}", sample()).contains("Matrix 2x3"));
    }

    #[test]
    fn parallel_matmul_bitwise_matches_sequential() {
        // Big enough to clear PAR_MATMUL_MIN_WORK (64³ = 262144), with a few
        // exact zeros sprinkled in to exercise the skip branch on both paths.
        let mut rng = SeededRng::new(42);
        let mut a = Matrix::uniform(64, 64, -1.0, 1.0, &mut rng);
        let b = Matrix::uniform(64, 64, -1.0, 1.0, &mut rng);
        for i in 0..64 {
            a[(i, (i * 7) % 64)] = 0.0;
        }
        let seq = hqnn_runtime::with_threads(1, || a.matmul(&b));
        for threads in [2, 3, 7] {
            let par = hqnn_runtime::with_threads(threads, || a.matmul(&b));
            assert_eq!(par.shape(), seq.shape());
            for (x, y) in par.as_slice().iter().zip(seq.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits(), "threads={threads}");
            }
        }
    }
}
