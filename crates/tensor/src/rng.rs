//! Deterministic random number generation.
//!
//! Every stochastic component in the workspace (weight init, dataset noise,
//! batch shuffling, grid-search repetitions) draws from a [`SeededRng`] so
//! that experiments are exactly reproducible from a single `u64` seed — the
//! paper averages over 5 independent runs precisely because NN training is
//! stochastic, and reproducing that protocol requires controlled streams.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};

/// A seeded pseudo-random generator with the handful of distributions the
/// workspace needs (uniform, standard normal via Box–Muller, shuffling,
/// stream splitting).
///
/// # Example
///
/// ```
/// use hqnn_tensor::SeededRng;
///
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug)]
pub struct SeededRng {
    inner: StdRng,
    seed: u64,
}

impl SeededRng {
    /// Creates a generator from a `u64` seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was constructed from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent child stream. Children with different `salt`
    /// values are decorrelated from each other and from the parent, letting
    /// e.g. every grid-search run own its own stream without consuming the
    /// parent's state.
    pub fn split(&self, salt: u64) -> Self {
        // SplitMix64-style mixing of (seed, salt) into a fresh seed.
        let mut z = self
            .seed
            .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(salt.wrapping_add(1)));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Self::new(z)
    }

    /// Uniform sample from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "uniform bounds must satisfy lo < hi");
        self.inner.random_range(lo..hi)
    }

    /// Uniform sample from `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.random_range(0..n)
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid ln(0) by sampling u1 from (0, 1].
        let u1 = 1.0 - self.unit();
        let u2 = self.unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Sample from `N(mean, std²)`.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.standard_normal()
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        slice.shuffle(&mut self.inner);
    }

    /// Returns a shuffled permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..n).collect();
        self.shuffle(&mut idx);
        idx
    }
}

impl Default for SeededRng {
    /// The default generator uses seed `0`.
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SeededRng::new(123);
        let mut b = SeededRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.unit() == b.unit()).count();
        assert!(same < 4);
    }

    #[test]
    fn split_is_deterministic_and_decorrelated() {
        let parent = SeededRng::new(99);
        let mut c1 = parent.split(0);
        let mut c1_again = parent.split(0);
        let mut c2 = parent.split(1);
        assert_eq!(c1.unit(), c1_again.unit());
        assert_ne!(c1.unit(), c2.unit());
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = SeededRng::new(5);
        for _ in 0..1000 {
            let v = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "lo < hi")]
    fn uniform_rejects_bad_bounds() {
        SeededRng::new(0).uniform(1.0, 1.0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SeededRng::new(17);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = SeededRng::new(3);
        let mut p = rng.permutation(50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_in_range() {
        let mut rng = SeededRng::new(8);
        for _ in 0..200 {
            assert!(rng.index(7) < 7);
        }
    }
}
