//! Sanctioned ordered reductions over floating-point sequences.
//!
//! Floating-point addition is not associative, so the *grouping* of a
//! reduction is part of this workspace's bitwise-determinism contract: every
//! float fold must run strictly left to right, in the element order the
//! caller iterated, starting from a fixed identity. These helpers are the
//! one place that contract is written down — `hqnn-lint`'s `float-fold`
//! rule denies ad-hoc `.sum::<f64>()` / `.fold(0.0, …)` reductions in the
//! numeric crates and points offenders here instead.
//!
//! Every helper is a plain sequential left fold, bitwise identical to the
//! `Iterator::sum` / `Iterator::fold` expression it replaces (std's
//! `Sum for f64` is itself `fold(0.0, Add::add)`), so migrating a call site
//! never changes a single result bit. Parallel callers fold the
//! order-preserving `Vec` a `par_map` returns — the helper then regroups
//! additions exactly like the sequential loop would have.

use std::ops::Add;

/// Left-to-right sum of an `f64` sequence starting from `0.0`.
///
/// Bitwise identical to `it.sum::<f64>()` for the same iteration order.
///
/// # Example
///
/// ```
/// let xs = [0.1, 0.2, 0.7];
/// assert_eq!(
///     hqnn_tensor::fold::ordered_sum_f64(xs.iter().copied()),
///     xs.iter().sum::<f64>(),
/// );
/// ```
#[inline]
pub fn ordered_sum_f64(it: impl Iterator<Item = f64>) -> f64 {
    it.fold(0.0, |acc, x| acc + x)
}

/// Left-to-right sum of any additive sequence (complex amplitudes, partial
/// gradients) from an explicit identity element.
///
/// Bitwise identical to `it.fold(zero, |a, b| a + b)`.
#[inline]
pub fn ordered_sum<T: Copy + Add<Output = T>>(zero: T, it: impl Iterator<Item = T>) -> T {
    it.fold(zero, |acc, x| acc + x)
}

/// Left-to-right maximum starting from `f64::NEG_INFINITY`, using
/// [`f64::max`]'s NaN-ignoring semantics in a fixed order.
#[inline]
pub fn ordered_max_f64(it: impl Iterator<Item = f64>) -> f64 {
    it.fold(f64::NEG_INFINITY, f64::max)
}

/// Left-to-right minimum starting from `f64::INFINITY`, using
/// [`f64::min`]'s NaN-ignoring semantics in a fixed order.
#[inline]
pub fn ordered_min_f64(it: impl Iterator<Item = f64>) -> f64 {
    it.fold(f64::INFINITY, f64::min)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_matches_iterator_sum_bitwise() {
        // Values chosen so grouping matters: (a + b) + c != a + (b + c).
        let xs: Vec<f64> = (0..257).map(|i| ((i * 37) as f64).sin() * 1e3).collect();
        assert_eq!(
            ordered_sum_f64(xs.iter().copied()).to_bits(),
            xs.iter().sum::<f64>().to_bits(),
        );
        assert_eq!(
            ordered_sum(0.0f64, xs.iter().copied()).to_bits(),
            xs.iter().fold(0.0, |a, b| a + b).to_bits(),
        );
    }

    #[test]
    fn sum_is_order_sensitive_hence_ordered() {
        // The helper must NOT sort or regroup: a reversed input is allowed
        // to produce different bits, proving the order is the caller's.
        let xs = [1e16, 1.0, -1e16, 1.0];
        let fwd = ordered_sum_f64(xs.iter().copied());
        let rev = ordered_sum_f64(xs.iter().rev().copied());
        assert_ne!(fwd.to_bits(), rev.to_bits());
    }

    #[test]
    fn empty_sequences_yield_identities() {
        assert_eq!(ordered_sum_f64(std::iter::empty()), 0.0);
        assert_eq!(ordered_sum(0.0, std::iter::empty()), 0.0);
        assert_eq!(ordered_max_f64(std::iter::empty()), f64::NEG_INFINITY);
        assert_eq!(ordered_min_f64(std::iter::empty()), f64::INFINITY);
    }

    #[test]
    fn min_max_match_fold_bitwise() {
        let xs = [3.5, -2.0, 9.25, 0.0, -7.75];
        assert_eq!(
            ordered_max_f64(xs.iter().copied()).to_bits(),
            xs.iter().copied().fold(f64::NEG_INFINITY, f64::max).to_bits(),
        );
        assert_eq!(
            ordered_min_f64(xs.iter().copied()).to_bits(),
            xs.iter().copied().fold(f64::INFINITY, f64::min).to_bits(),
        );
    }
}
