//! Property-based tests of the linear-algebra kernel.

use hqnn_tensor::{Matrix, SeededRng};
use proptest::prelude::*;

/// Strategy producing a matrix of the given shape with entries in [-10, 10].
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f64..10.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// Strategy producing a shape in 1..=6 on both axes.
fn shape() -> impl Strategy<Value = (usize, usize)> {
    (1usize..=6, 1usize..=6)
}

proptest! {
    #[test]
    fn transpose_is_involutive((r, c) in shape(), seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let m = Matrix::uniform(r, c, -5.0, 5.0, &mut rng);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_identity_left_right((r, c) in shape(), seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let m = Matrix::uniform(r, c, -5.0, 5.0, &mut rng);
        prop_assert!(m.matmul(&Matrix::identity(c)).approx_eq(&m, 1e-12));
        prop_assert!(Matrix::identity(r).matmul(&m).approx_eq(&m, 1e-12));
    }

    #[test]
    fn matmul_transpose_identity(
        a in matrix(3, 4),
        b in matrix(4, 2),
    ) {
        // (A·B)ᵀ = Bᵀ·Aᵀ
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.approx_eq(&rhs, 1e-9));
    }

    #[test]
    fn matmul_distributes_over_addition(
        a in matrix(3, 3),
        b in matrix(3, 3),
        c in matrix(3, 3),
    ) {
        let lhs = a.matmul(&(&b + &c));
        let rhs = &a.matmul(&b) + &a.matmul(&c);
        prop_assert!(lhs.approx_eq(&rhs, 1e-8));
    }

    #[test]
    fn matmul_is_associative(
        a in matrix(2, 3),
        b in matrix(3, 4),
        c in matrix(4, 2),
    ) {
        let lhs = a.matmul(&b).matmul(&c);
        let rhs = a.matmul(&b.matmul(&c));
        prop_assert!(lhs.approx_eq(&rhs, 1e-7));
    }

    #[test]
    fn addition_commutes(a in matrix(4, 4), b in matrix(4, 4)) {
        prop_assert!((&a + &b).approx_eq(&(&b + &a), 1e-12));
    }

    #[test]
    fn hadamard_commutes(a in matrix(3, 5), b in matrix(3, 5)) {
        prop_assert!(a.hadamard(&b).approx_eq(&b.hadamard(&a), 1e-12));
    }

    #[test]
    fn scale_is_linear(a in matrix(3, 3), s in -4.0f64..4.0, t in -4.0f64..4.0) {
        let lhs = a.scale(s + t);
        let rhs = &a.scale(s) + &a.scale(t);
        prop_assert!(lhs.approx_eq(&rhs, 1e-10));
    }

    #[test]
    fn sum_rows_preserves_total(a in matrix(5, 3)) {
        prop_assert!(hqnn_tensor::approx_eq(a.sum_rows().sum(), a.sum(), 1e-9));
    }

    #[test]
    fn frobenius_norm_nonnegative_and_zero_only_for_zero((r, c) in shape()) {
        let z = Matrix::zeros(r, c);
        prop_assert_eq!(z.frobenius_norm(), 0.0);
        let mut nz = z.clone();
        nz[(0, 0)] = 1.0;
        prop_assert!(nz.frobenius_norm() > 0.0);
    }

    #[test]
    fn select_rows_matches_manual(a in matrix(6, 3), i in 0usize..6, j in 0usize..6) {
        let s = a.select_rows(&[i, j]);
        prop_assert_eq!(s.row(0), a.row(i));
        prop_assert_eq!(s.row(1), a.row(j));
    }

    #[test]
    fn rng_split_streams_are_reproducible(seed in 0u64..10_000, salt in 0u64..64) {
        let parent = SeededRng::new(seed);
        let mut a = parent.split(salt);
        let mut b = parent.split(salt);
        for _ in 0..8 {
            prop_assert_eq!(a.unit(), b.unit());
        }
    }

    #[test]
    fn argmax_rows_within_bounds(a in matrix(4, 5)) {
        for idx in a.argmax_rows() {
            prop_assert!(idx < 5);
        }
    }
}
