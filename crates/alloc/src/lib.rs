//! Opt-in counting global allocator for span-attributed memory profiling.
//!
//! Installing `#[global_allocator]` is process-wide, so this lives in its own
//! leaf crate: linking `hqnn-telemetry` (which depends on this) is enough to
//! make every workspace binary countable. The allocator delegates straight to
//! [`std::alloc::System`]; when counting is *off* (the default) the only
//! overhead is one relaxed atomic load per allocator call, and it **never**
//! changes allocation behaviour — sizes, alignment, and addresses are
//! whatever `System` returns, so enabling `HQNN_ALLOC=1` cannot perturb
//! numerics.
//!
//! When counting is on, each thread ticks four thread-local [`Cell`]s
//! (allocation count, allocated bytes, live bytes, peak live bytes). The
//! counting path allocates nothing itself (plain `Cell<u64>`/`Cell<i64>`
//! with const initialisers, no destructors), so it cannot recurse into the
//! allocator. Span guards read the cells before and after their scope and
//! attribute the delta — see `hqnn_telemetry`'s alloc module.
//!
//! Counters are *per thread*: deltas taken on the thread that runs a span
//! are deterministic for deterministic workloads, which is what keeps the
//! JSONL alloc columns byte-identical at any `HQNN_THREADS`.

// This crate is the one place in the workspace that must write `unsafe`:
// `GlobalAlloc` is an unsafe trait. Every unsafe block below only forwards
// to `std::alloc::System` with the caller's own contract.
// lint:allow(forbid-unsafe): GlobalAlloc is an unsafe trait; all unsafe here delegates verbatim to std::alloc::System
#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};

/// Global switch; off by default so the counting branch is never taken in
/// uninstrumented runs.
static ENABLED: AtomicBool = AtomicBool::new(false);

thread_local! {
    /// Allocations observed on this thread while counting was enabled.
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
    /// Bytes requested by those allocations (realloc growth included).
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    /// Live bytes: allocated minus freed. Signed — a thread may free memory
    /// another thread allocated, so this can go negative locally.
    static LIVE_BYTES: Cell<i64> = const { Cell::new(0) };
    /// High-water mark of [`LIVE_BYTES`] since the last window reset.
    static PEAK_LIVE: Cell<i64> = const { Cell::new(0) };
}

/// Turns counting on or off process-wide. Reads taken while counting was off
/// simply see frozen counters.
pub fn set_enabled(enabled: bool) {
    ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether allocation counting is currently on.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A point-in-time copy of the calling thread's allocation counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ThreadAllocStats {
    /// Allocations observed on this thread (allocs + reallocs).
    pub count: u64,
    /// Total bytes requested by those allocations.
    pub bytes: u64,
    /// Currently-live bytes as seen from this thread (may be negative when
    /// the thread frees memory allocated elsewhere).
    pub live_bytes: i64,
    /// High-water mark of `live_bytes` since the last [`begin_window`].
    pub peak_live_bytes: i64,
}

/// Reads the calling thread's counters. Cheap (four `Cell` reads); safe to
/// call whether or not counting is enabled.
pub fn thread_stats() -> ThreadAllocStats {
    ThreadAllocStats {
        count: ALLOC_COUNT.try_with(Cell::get).unwrap_or(0),
        bytes: ALLOC_BYTES.try_with(Cell::get).unwrap_or(0),
        live_bytes: LIVE_BYTES.try_with(Cell::get).unwrap_or(0),
        peak_live_bytes: PEAK_LIVE.try_with(Cell::get).unwrap_or(0),
    }
}

/// Starts a peak-tracking window on this thread: resets the peak to the
/// current live level and returns the previous peak so nested windows can
/// restore it via [`end_window`].
pub fn begin_window() -> i64 {
    LIVE_BYTES
        .try_with(|live| {
            let saved = PEAK_LIVE.try_with(Cell::get).unwrap_or(0);
            let _ = PEAK_LIVE.try_with(|peak| peak.set(live.get()));
            saved
        })
        .unwrap_or(0)
}

/// Ends a peak-tracking window: restores the enclosing window's peak to the
/// larger of its `saved` value and the peak reached inside this window.
pub fn end_window(saved: i64) {
    let _ = PEAK_LIVE.try_with(|peak| peak.set(peak.get().max(saved)));
}

#[inline]
fn note_alloc(size: usize) {
    let size = size as i64;
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
    let _ = ALLOC_BYTES.try_with(|b| b.set(b.get().wrapping_add(size as u64)));
    let _ = LIVE_BYTES.try_with(|live| {
        let now = live.get().wrapping_add(size);
        live.set(now);
        let _ = PEAK_LIVE.try_with(|peak| {
            if now > peak.get() {
                peak.set(now);
            }
        });
    });
}

#[inline]
fn note_dealloc(size: usize) {
    let _ = LIVE_BYTES.try_with(|live| live.set(live.get().wrapping_sub(size as i64)));
}

/// The counting allocator: a transparent wrapper over [`System`].
pub struct CountingAllocator;

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() && is_enabled() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() && is_enabled() {
            note_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        if is_enabled() {
            note_dealloc(layout.size());
        }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() && is_enabled() {
            // Accounted as free-old + alloc-new: one allocation event whose
            // bytes are the new size, live delta is the size change.
            note_dealloc(layout.size());
            note_alloc(new_size);
        }
        new_ptr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Tests share the process-wide ENABLED switch; serialise them.
    fn serial(f: impl FnOnce()) {
        use std::sync::Mutex;
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        f();
        set_enabled(false);
    }

    #[test]
    fn disabled_counting_is_frozen() {
        serial(|| {
            let before = thread_stats();
            let v = vec![0u8; 4096];
            drop(v);
            let after = thread_stats();
            assert_eq!(before.count, after.count);
            assert_eq!(before.bytes, after.bytes);
        });
    }

    #[test]
    fn enabled_counting_tracks_alloc_and_live() {
        serial(|| {
            set_enabled(true);
            let before = thread_stats();
            let v = vec![7u8; 10_000];
            let mid = thread_stats();
            drop(v);
            let after = thread_stats();
            set_enabled(false);
            assert!(mid.count > before.count, "allocation counted");
            assert!(
                mid.bytes - before.bytes >= 10_000,
                "bytes cover the vec: {} -> {}",
                before.bytes,
                mid.bytes
            );
            assert!(
                mid.live_bytes - before.live_bytes >= 10_000,
                "live rises while held"
            );
            assert!(after.live_bytes < mid.live_bytes, "live falls after drop");
        });
    }

    #[test]
    fn windows_reset_and_restore_peaks() {
        serial(|| {
            set_enabled(true);
            // Outer window: a large spike, then release it.
            let outer_saved = begin_window();
            let big = vec![1u8; 1 << 16];
            drop(big);
            let outer_peak = thread_stats().peak_live_bytes;
            let live_now = thread_stats().live_bytes;
            // Inner window: the peak collapses to the current live level...
            let inner_saved = begin_window();
            assert_eq!(thread_stats().peak_live_bytes, live_now);
            let small = vec![2u8; 1 << 8];
            drop(small);
            end_window(inner_saved);
            // ...and restoring merges: the outer peak still covers the spike.
            assert!(thread_stats().peak_live_bytes >= outer_peak);
            end_window(outer_saved);
            set_enabled(false);
        });
    }

    #[test]
    fn realloc_counts_as_one_event_with_growth() {
        serial(|| {
            set_enabled(true);
            let before = thread_stats();
            let mut v: Vec<u8> = vec![0; 16];
            v.reserve_exact(4096); // forces realloc
            let after = thread_stats();
            drop(v);
            set_enabled(false);
            assert!(after.count >= before.count + 2, "alloc + realloc counted");
            assert!(after.bytes >= before.bytes + 16 + 4096);
        });
    }
}
