//! Reverse-mode automatic differentiation over dense matrices.
//!
//! The paper's original pipeline computed backward-pass FLOPs by tracing
//! TensorFlow's `GradientTape`; this crate is the equivalent substrate: a
//! define-by-run tape ([`Graph`]) recording matrix operations, with a single
//! [`Graph::backward`] sweep producing exact gradients for every recorded
//! variable.
//!
//! Inside the workspace it serves two roles:
//!
//! 1. **Gradient oracle** — `hqnn-nn` implements layer-wise backprop by hand
//!    for speed; its tests rebuild the same computations on this tape and
//!    require the gradients to agree to machine precision.
//! 2. **Standalone engine** — small models can be trained directly against
//!    the tape (see the `train_linear_regression` test).
//!
//! # Example
//!
//! ```
//! use hqnn_autodiff::Graph;
//! use hqnn_tensor::Matrix;
//!
//! let mut g = Graph::new();
//! let x = g.input(Matrix::from_rows(&[&[2.0]]));
//! let y = g.mul(x, x);      // y = x²
//! let loss = g.sum(y);
//! g.backward(loss);
//! assert_eq!(g.grad(x)[(0, 0)], 4.0); // dy/dx = 2x = 4
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use hqnn_tensor::Matrix;

/// Handle to a value recorded on a [`Graph`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Var(usize);

/// The operation that produced a node, with whatever the backward pass needs.
#[derive(Clone, Debug)]
enum OpKind {
    /// Leaf value supplied by the caller.
    Input,
    /// `a · b` matrix product.
    MatMul(Var, Var),
    /// `a + b` elementwise.
    Add(Var, Var),
    /// `a - b` elementwise.
    Sub(Var, Var),
    /// `a ⊙ b` elementwise product.
    Mul(Var, Var),
    /// `a * s` by a constant scalar.
    Scale(Var, f64),
    /// Broadcast row-vector `bias` onto every row of `a`.
    AddBias(Var, Var),
    /// `max(0, a)` elementwise.
    Relu(Var),
    /// `tanh(a)` elementwise.
    Tanh(Var),
    /// `1 / (1 + e^{-a})` elementwise.
    Sigmoid(Var),
    /// Sum of all entries (scalar output).
    Sum(Var),
    /// Mean of all entries (scalar output).
    Mean(Var),
    /// Mean softmax cross-entropy of logits against one-hot `targets`;
    /// caches the softmax for the backward pass.
    SoftmaxCrossEntropy {
        logits: Var,
        targets: Matrix,
        softmax: Matrix,
    },
}

#[derive(Clone, Debug)]
struct Node {
    value: Matrix,
    grad: Matrix,
    op: OpKind,
}

/// A define-by-run tape of matrix operations.
///
/// Values are recorded as they are computed; [`Graph::backward`] then walks
/// the tape in reverse, accumulating `d(output)/d(node)` into every node.
/// Gradients of leaves created with [`Graph::input`] are read back with
/// [`Graph::grad`].
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
}

impl Graph {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn record(&mut self, value: Matrix, op: OpKind) -> Var {
        let (r, c) = value.shape();
        self.nodes.push(Node {
            value,
            grad: Matrix::zeros(r, c),
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Records a leaf value (a parameter or a data batch).
    pub fn input(&mut self, value: Matrix) -> Var {
        self.record(value, OpKind::Input)
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].value
    }

    /// The accumulated gradient of the last [`Graph::backward`] output with
    /// respect to `v` (zeros before any backward pass).
    pub fn grad(&self, v: Var) -> &Matrix {
        &self.nodes[v.0].grad
    }

    /// Records `a · b`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.record(value, OpKind::MatMul(a, b))
    }

    /// Records `a + b` (same shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let value = &self.nodes[a.0].value + &self.nodes[b.0].value;
        self.record(value, OpKind::Add(a, b))
    }

    /// Records `a - b` (same shapes).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let value = &self.nodes[a.0].value - &self.nodes[b.0].value;
        self.record(value, OpKind::Sub(a, b))
    }

    /// Records the elementwise product `a ⊙ b` (same shapes).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let value = self.nodes[a.0].value.hadamard(&self.nodes[b.0].value);
        self.record(value, OpKind::Mul(a, b))
    }

    /// Records `a * s` for a constant scalar `s`.
    pub fn scale(&mut self, a: Var, s: f64) -> Var {
        let value = self.nodes[a.0].value.scale(s);
        self.record(value, OpKind::Scale(a, s))
    }

    /// Records a broadcast bias addition: `bias` must be `1 × cols(a)`.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let value = self.nodes[a.0]
            .value
            .add_row_broadcast(&self.nodes[bias.0].value);
        self.record(value, OpKind::AddBias(a, bias))
    }

    /// Records `relu(a)`.
    pub fn relu(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|v| v.max(0.0));
        self.record(value, OpKind::Relu(a))
    }

    /// Records `tanh(a)`.
    pub fn tanh(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(f64::tanh);
        self.record(value, OpKind::Tanh(a))
    }

    /// Records the logistic sigmoid of `a`.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let value = self.nodes[a.0].value.map(|v| 1.0 / (1.0 + (-v).exp()));
        self.record(value, OpKind::Sigmoid(a))
    }

    /// Records the scalar sum of all entries of `a` (a `1 × 1` node).
    pub fn sum(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.nodes[a.0].value.sum()]);
        self.record(value, OpKind::Sum(a))
    }

    /// Records the scalar mean of all entries of `a` (a `1 × 1` node).
    pub fn mean(&mut self, a: Var) -> Var {
        let value = Matrix::from_vec(1, 1, vec![self.nodes[a.0].value.mean()]);
        self.record(value, OpKind::Mean(a))
    }

    /// Records the batch-mean softmax cross-entropy of `logits` against
    /// one-hot `targets` (same shape as the logits). Output is `1 × 1`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn softmax_cross_entropy(&mut self, logits: Var, targets: &Matrix) -> Var {
        let z = &self.nodes[logits.0].value;
        assert_eq!(
            z.shape(),
            targets.shape(),
            "targets must match logits shape"
        );
        let batch = z.rows();
        let mut softmax = Matrix::zeros(z.rows(), z.cols());
        let mut loss = 0.0;
        for r in 0..batch {
            let row = z.row(r);
            let max = hqnn_tensor::fold::ordered_max_f64(row.iter().copied());
            let exps: Vec<f64> = row.iter().map(|v| (v - max).exp()).collect();
            let denom: f64 = hqnn_tensor::fold::ordered_sum_f64(exps.iter().copied());
            for (c, e) in exps.iter().enumerate() {
                let p = e / denom;
                softmax[(r, c)] = p;
                if targets[(r, c)] != 0.0 {
                    loss -= targets[(r, c)] * p.max(1e-300).ln();
                }
            }
        }
        let value = Matrix::from_vec(1, 1, vec![loss / batch as f64]);
        self.record(
            value,
            OpKind::SoftmaxCrossEntropy {
                logits,
                targets: targets.clone(),
                softmax,
            },
        )
    }

    /// Runs the reverse sweep from `output`, accumulating gradients into
    /// every node that contributed to it. `output` must be a `1 × 1` scalar.
    /// Gradients from previous sweeps are cleared first.
    ///
    /// # Panics
    ///
    /// Panics if `output` is not scalar.
    pub fn backward(&mut self, output: Var) {
        assert_eq!(
            self.nodes[output.0].value.shape(),
            (1, 1),
            "backward() needs a scalar output"
        );
        let _span = hqnn_telemetry::span("autodiff.backward");
        hqnn_telemetry::counter("autodiff.backward_passes", 1);
        for node in &mut self.nodes {
            node.grad.map_inplace(|_| 0.0);
        }
        self.nodes[output.0].grad[(0, 0)] = 1.0;

        for i in (0..=output.0).rev() {
            let grad = self.nodes[i].grad.clone();
            if grad.as_slice().iter().all(|&g| g == 0.0) {
                continue;
            }
            match self.nodes[i].op.clone() {
                OpKind::Input => {}
                OpKind::MatMul(a, b) => {
                    // dA = G · Bᵀ ; dB = Aᵀ · G
                    let da = grad.matmul(&self.nodes[b.0].value.transpose());
                    let db = self.nodes[a.0].value.transpose().matmul(&grad);
                    self.nodes[a.0].grad += &da;
                    self.nodes[b.0].grad += &db;
                }
                OpKind::Add(a, b) => {
                    self.nodes[a.0].grad += &grad;
                    self.nodes[b.0].grad += &grad;
                }
                OpKind::Sub(a, b) => {
                    self.nodes[a.0].grad += &grad;
                    self.nodes[b.0].grad.add_scaled(&grad, -1.0);
                }
                OpKind::Mul(a, b) => {
                    let da = grad.hadamard(&self.nodes[b.0].value);
                    let db = grad.hadamard(&self.nodes[a.0].value);
                    self.nodes[a.0].grad += &da;
                    self.nodes[b.0].grad += &db;
                }
                OpKind::Scale(a, s) => {
                    self.nodes[a.0].grad.add_scaled(&grad, s);
                }
                OpKind::AddBias(a, bias) => {
                    self.nodes[a.0].grad += &grad;
                    let db = grad.sum_rows();
                    self.nodes[bias.0].grad += &db;
                }
                OpKind::Relu(a) => {
                    let mask = self.nodes[a.0]
                        .value
                        .map(|v| if v > 0.0 { 1.0 } else { 0.0 });
                    let da = grad.hadamard(&mask);
                    self.nodes[a.0].grad += &da;
                }
                OpKind::Tanh(a) => {
                    // d tanh = 1 - tanh²; the node's value *is* tanh(a).
                    let dt = self.nodes[i].value.map(|t| 1.0 - t * t);
                    let da = grad.hadamard(&dt);
                    self.nodes[a.0].grad += &da;
                }
                OpKind::Sigmoid(a) => {
                    let ds = self.nodes[i].value.map(|s| s * (1.0 - s));
                    let da = grad.hadamard(&ds);
                    self.nodes[a.0].grad += &da;
                }
                OpKind::Sum(a) => {
                    let g = grad[(0, 0)];
                    let (r, c) = self.nodes[a.0].value.shape();
                    self.nodes[a.0]
                        .grad
                        .add_scaled(&Matrix::filled(r, c, 1.0), g);
                }
                OpKind::Mean(a) => {
                    let (r, c) = self.nodes[a.0].value.shape();
                    let g = grad[(0, 0)] / (r * c) as f64;
                    self.nodes[a.0]
                        .grad
                        .add_scaled(&Matrix::filled(r, c, 1.0), g);
                }
                OpKind::SoftmaxCrossEntropy {
                    logits,
                    targets,
                    softmax,
                } => {
                    let g = grad[(0, 0)] / softmax.rows() as f64;
                    let dz = (&softmax - &targets).scale(g);
                    self.nodes[logits.0].grad += &dz;
                }
            }
        }
    }
}

/// Numerically checks `d(scalar output)/d(leaf)` against the tape gradient.
///
/// `build` must reconstruct the *same* computation from scratch given the
/// leaf value (it is invoked repeatedly with perturbed copies). Returns the
/// maximum absolute deviation between tape and central-difference gradients.
pub fn gradient_check(
    leaf_value: &Matrix,
    eps: f64,
    build: impl Fn(&mut Graph, Var) -> Var,
) -> f64 {
    let mut g = Graph::new();
    let leaf = g.input(leaf_value.clone());
    let out = build(&mut g, leaf);
    g.backward(out);
    let analytic = g.grad(leaf).clone();

    let mut worst: f64 = 0.0;
    for idx in 0..leaf_value.len() {
        let run = |delta: f64| {
            let mut perturbed = leaf_value.clone();
            perturbed.as_mut_slice()[idx] += delta;
            let mut g = Graph::new();
            let leaf = g.input(perturbed);
            let out = build(&mut g, leaf);
            g.value(out)[(0, 0)]
        };
        let fd = (run(eps) - run(-eps)) / (2.0 * eps);
        worst = worst.max((analytic.as_slice()[idx] - fd).abs());
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqnn_tensor::SeededRng;

    #[test]
    fn square_gradient() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[3.0]]));
        let y = g.mul(x, x);
        let s = g.sum(y);
        g.backward(s);
        assert_eq!(g.grad(x)[(0, 0)], 6.0);
    }

    #[test]
    fn matmul_gradients_match_formula() {
        let mut g = Graph::new();
        let a = g.input(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = g.input(Matrix::from_rows(&[&[5.0], &[6.0]]));
        let c = g.matmul(a, b);
        let s = g.sum(c);
        g.backward(s);
        // dS/dA = 1·Bᵀ broadcast over rows.
        assert_eq!(g.grad(a), &Matrix::from_rows(&[&[5.0, 6.0], &[5.0, 6.0]]));
        // dS/dB = Aᵀ·1 = column sums of A.
        assert_eq!(g.grad(b), &Matrix::from_rows(&[&[4.0], &[6.0]]));
    }

    #[test]
    fn chained_ops_accumulate() {
        // f(x) = sum(x² + 2x); df/dx = 2x + 2.
        let mut g = Graph::new();
        let x = g.input(Matrix::row_vector(&[1.0, -2.0, 0.5]));
        let sq = g.mul(x, x);
        let lin = g.scale(x, 2.0);
        let tot = g.add(sq, lin);
        let s = g.sum(tot);
        g.backward(s);
        assert_eq!(g.grad(x), &Matrix::row_vector(&[4.0, -2.0, 3.0]));
    }

    #[test]
    fn relu_masks_gradient() {
        let mut g = Graph::new();
        let x = g.input(Matrix::row_vector(&[-1.0, 2.0]));
        let r = g.relu(x);
        let s = g.sum(r);
        g.backward(s);
        assert_eq!(g.grad(x), &Matrix::row_vector(&[0.0, 1.0]));
    }

    #[test]
    fn tanh_and_sigmoid_gradcheck() {
        let mut rng = SeededRng::new(5);
        let x = Matrix::uniform(2, 3, -2.0, 2.0, &mut rng);
        let worst_tanh = gradient_check(&x, 1e-6, |g, v| {
            let t = g.tanh(v);
            g.sum(t)
        });
        assert!(worst_tanh < 1e-7, "tanh gradcheck off by {worst_tanh}");
        let worst_sig = gradient_check(&x, 1e-6, |g, v| {
            let s = g.sigmoid(v);
            g.mean(s)
        });
        assert!(worst_sig < 1e-7, "sigmoid gradcheck off by {worst_sig}");
    }

    #[test]
    fn add_bias_gradcheck() {
        let mut rng = SeededRng::new(9);
        let bias = Matrix::uniform(1, 4, -1.0, 1.0, &mut rng);
        let data = Matrix::uniform(3, 4, -1.0, 1.0, &mut rng);
        let worst = gradient_check(&bias, 1e-6, |g, b| {
            let x = g.input(data.clone());
            let y = g.add_bias(x, b);
            let t = g.tanh(y);
            g.sum(t)
        });
        assert!(worst < 1e-7, "bias gradcheck off by {worst}");
    }

    #[test]
    fn softmax_cross_entropy_gradient_is_softmax_minus_target() {
        let mut g = Graph::new();
        let logits = g.input(Matrix::from_rows(&[&[2.0, 1.0, 0.0]]));
        let targets = Matrix::from_rows(&[&[1.0, 0.0, 0.0]]);
        let loss = g.softmax_cross_entropy(logits, &targets);
        g.backward(loss);
        let z = [2.0f64, 1.0, 0.0];
        let denom: f64 = z.iter().map(|v| v.exp()).sum();
        for (c, zc) in z.iter().enumerate() {
            let p = zc.exp() / denom;
            let expected = p - if c == 0 { 1.0 } else { 0.0 };
            assert!((g.grad(logits)[(0, c)] - expected).abs() < 1e-12);
        }
    }

    #[test]
    fn softmax_cross_entropy_gradcheck() {
        let mut rng = SeededRng::new(13);
        let logits = Matrix::uniform(4, 3, -3.0, 3.0, &mut rng);
        let mut targets = Matrix::zeros(4, 3);
        for r in 0..4 {
            targets[(r, r % 3)] = 1.0;
        }
        let worst = gradient_check(&logits, 1e-6, |g, v| g.softmax_cross_entropy(v, &targets));
        assert!(worst < 1e-7, "softmax-ce gradcheck off by {worst}");
    }

    #[test]
    fn mlp_end_to_end_gradcheck() {
        // Two-layer MLP: tanh(x·W1 + b1)·W2 + b2 → softmax CE.
        let mut rng = SeededRng::new(21);
        let x = Matrix::uniform(5, 4, -1.0, 1.0, &mut rng);
        let w1 = Matrix::glorot_uniform(4, 6, &mut rng);
        let b1 = Matrix::zeros(1, 6);
        let w2 = Matrix::glorot_uniform(6, 3, &mut rng);
        let b2 = Matrix::zeros(1, 3);
        let mut targets = Matrix::zeros(5, 3);
        for r in 0..5 {
            targets[(r, (r * 2) % 3)] = 1.0;
        }
        let worst = gradient_check(&w1, 1e-6, |g, w1v| {
            let xv = g.input(x.clone());
            let b1v = g.input(b1.clone());
            let w2v = g.input(w2.clone());
            let b2v = g.input(b2.clone());
            let h = g.matmul(xv, w1v);
            let h = g.add_bias(h, b1v);
            let h = g.tanh(h);
            let z = g.matmul(h, w2v);
            let z = g.add_bias(z, b2v);
            g.softmax_cross_entropy(z, &targets)
        });
        assert!(worst < 1e-6, "mlp gradcheck off by {worst}");
    }

    #[test]
    fn train_linear_regression() {
        // Fit y = 2x - 1 by gradient descent directly on the tape.
        let mut rng = SeededRng::new(33);
        let xs = Matrix::uniform(32, 1, -1.0, 1.0, &mut rng);
        let ys = xs.map(|x| 2.0 * x - 1.0);
        let mut w = Matrix::from_rows(&[&[0.0]]);
        let mut b = Matrix::from_rows(&[&[0.0]]);
        for _ in 0..500 {
            let mut g = Graph::new();
            let wv = g.input(w.clone());
            let bv = g.input(b.clone());
            let xv = g.input(xs.clone());
            let yv = g.input(ys.clone());
            let pred = g.matmul(xv, wv);
            let pred = g.add_bias(pred, bv);
            let err = g.sub(pred, yv);
            let sq = g.mul(err, err);
            let loss = g.mean(sq);
            g.backward(loss);
            w.add_scaled(g.grad(wv), -0.5);
            b.add_scaled(g.grad(bv), -0.5);
        }
        assert!((w[(0, 0)] - 2.0).abs() < 1e-3, "w = {}", w[(0, 0)]);
        assert!((b[(0, 0)] + 1.0).abs() < 1e-3, "b = {}", b[(0, 0)]);
    }

    #[test]
    fn backward_clears_previous_gradients() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0]]));
        let y = g.scale(x, 3.0);
        let s = g.sum(y);
        g.backward(s);
        g.backward(s);
        assert_eq!(g.grad(x)[(0, 0)], 3.0); // not 6.0
    }

    #[test]
    #[should_panic(expected = "scalar output")]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let x = g.input(Matrix::row_vector(&[1.0, 2.0]));
        g.backward(x);
    }

    #[test]
    fn disconnected_nodes_get_zero_gradient() {
        let mut g = Graph::new();
        let x = g.input(Matrix::from_rows(&[&[1.0]]));
        let unused = g.input(Matrix::from_rows(&[&[5.0]]));
        let s = g.sum(x);
        g.backward(s);
        assert_eq!(g.grad(unused)[(0, 0)], 0.0);
    }
}
