//! Nested budget accounting: `par_map_budgeted` splits the caller's thread
//! budget across shards so a shard's own parallel maps still fan out, and
//! the total concurrency — outer shard workers × their inner budgets —
//! never exceeds the global `HQNN_THREADS`/`with_threads` budget. This is
//! the scheduling contract the sharded study runner is built on.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use hqnn_runtime::{par_map_budgeted, par_map_range, split_budget, threads, with_threads};

#[test]
fn split_budget_never_exceeds_total() {
    for total in 1..=32 {
        for shards in 0..=40 {
            let (outer, inner) = split_budget(total, shards);
            assert!(outer >= 1, "total={total} shards={shards}");
            assert!(inner >= 1, "total={total} shards={shards}");
            assert!(
                outer * inner <= total,
                "oversubscribed: total={total} shards={shards} outer={outer} inner={inner}"
            );
            assert!(outer <= shards.max(1), "total={total} shards={shards}");
        }
    }
    // Degenerate budgets saturate at 1×1.
    assert_eq!(split_budget(0, 5), (1, 1));
    // A lone shard inherits the whole budget.
    assert_eq!(split_budget(8, 1), (1, 8));
    // An even split uses every thread.
    assert_eq!(split_budget(8, 4), (4, 2));
    // More shards than threads: one thread each, claimed dynamically.
    assert_eq!(split_budget(4, 33), (4, 1));
}

#[test]
fn shards_observe_their_inner_budget() {
    // 8 threads over 4 shards → each shard sees an inner budget of 2.
    let inner = with_threads(8, || par_map_budgeted(4, |_| threads()));
    assert_eq!(inner, vec![2; 4]);
    // A single shard keeps the entire budget.
    let solo = with_threads(8, || par_map_budgeted(1, |_| threads()));
    assert_eq!(solo, vec![8]);
    // Budget 1 runs shards inline at budget 1 — plain sequential nesting.
    let seq = with_threads(1, || par_map_budgeted(3, |_| threads()));
    assert_eq!(seq, vec![1; 3]);
    // Leaf workers below a shard are still pinned to 1: depth stops at two.
    let leaf = with_threads(8, || {
        par_map_budgeted(4, |_| par_map_range(2, |_| threads()))
    });
    assert_eq!(leaf, vec![vec![1; 2]; 4]);
}

#[test]
fn nested_fanout_concurrency_stays_within_global_budget() {
    // Every leaf work item bumps a live counter around a short sleep; the
    // observed peak is a lower bound on true concurrency, so asserting
    // peak <= budget can only fail if the runtime oversubscribes.
    const BUDGET: usize = 6;
    let live = AtomicUsize::new(0);
    let peak = AtomicUsize::new(0);
    with_threads(BUDGET, || {
        par_map_budgeted(3, |_| {
            par_map_range(8, |_| {
                let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(Duration::from_millis(2));
                live.fetch_sub(1, Ordering::SeqCst);
            });
        });
    });
    let peak = peak.load(Ordering::SeqCst);
    assert!(peak >= 1, "work actually ran");
    assert!(
        peak <= BUDGET,
        "leaf concurrency {peak} exceeded the global budget {BUDGET}"
    );
    assert_eq!(live.load(Ordering::SeqCst), 0);
}

#[test]
fn budgeted_results_bitwise_identical_to_sequential_nesting() {
    // Shards that themselves fan out: the composed result must match the
    // fully sequential run bit for bit at every budget.
    let shard = |s: usize| {
        par_map_range(5, move |i| {
            let mut acc = 0.0f64;
            for k in 1..=32 {
                acc += ((s * 31 + i * k) as f64).sin() / (k as f64).sqrt();
            }
            acc
        })
    };
    let seq: Vec<Vec<u64>> = with_threads(1, || {
        (0..7)
            .map(|s| shard(s).into_iter().map(f64::to_bits).collect())
            .collect()
    });
    for budget in [2, 4, 8, 13] {
        let par: Vec<Vec<u64>> = with_threads(budget, || {
            par_map_budgeted(7, shard)
                .into_iter()
                .map(|row| row.into_iter().map(f64::to_bits).collect())
                .collect()
        });
        assert_eq!(par, seq, "budget={budget}");
    }
}
