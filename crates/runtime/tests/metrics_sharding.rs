//! Snapshot determinism of sharded telemetry metrics under the parallel
//! runtime: counters incremented inside `par_map_range` workers merge into
//! a snapshot that is bitwise identical to a sequential run, at every
//! thread budget — the metric analogue of the runtime's bitwise-result
//! guarantee.
//!
//! These tests mutate the process-global telemetry registry, so they
//! serialise on a mutex and diff only their own `shardtest.*` names (the
//! runtime's own `runtime.par_*` counters differ between sequential and
//! parallel legs by design).

use hqnn_telemetry as telemetry;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;

static GUARD: Mutex<()> = Mutex::new(());

const NAMES: [&str; 3] = [
    "shardtest.alpha_ticks",
    "shardtest.beta_ticks",
    "shardtest.gamma_ticks",
];

/// Counters/gauges under the test namespace, with f64 gauges as raw bits so
/// equality is bitwise, not approximate.
fn observed() -> (BTreeMap<String, u64>, BTreeMap<String, u64>) {
    let snap = telemetry::snapshot();
    let counters = snap
        .counters
        .into_iter()
        .filter(|(k, _)| k.starts_with("shardtest."))
        .collect();
    let gauges = snap
        .gauges
        .into_iter()
        .filter(|(k, _)| k.starts_with("shardtest."))
        .map(|(k, v)| (k, v.to_bits()))
        .collect();
    (counters, gauges)
}

/// One workload item: which counter to bump, by how much, and a gauge level.
fn apply_op(op: &(usize, u8, u32)) {
    let (which, delta, level) = *op;
    telemetry::counter(NAMES[which % NAMES.len()], delta as u64);
    telemetry::gauge_max("shardtest.peak_level", level as f64);
}

proptest! {
    // Each case resets global telemetry state; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn merged_snapshot_is_bitwise_equal_to_sequential(
        ops in proptest::collection::vec(
            (0usize..NAMES.len(), 0u8..50, 0u32..1000), 1..120),
    ) {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());

        // Sequential reference: single thread, everything on one shard.
        telemetry::reset();
        telemetry::set_level(telemetry::Level::Off);
        hqnn_runtime::with_threads(1, || {
            hqnn_runtime::par_map(&ops, |_, op| apply_op(op))
        });
        let reference = observed();

        // The satellite's thread budgets: serial, even split, odd split.
        for threads in [1usize, 2, 7] {
            telemetry::reset();
            telemetry::set_level(telemetry::Level::Off);
            hqnn_runtime::with_threads(threads, || {
                hqnn_runtime::par_map(&ops, |_, op| apply_op(op))
            });
            // Workers drained their shards at scope exit; the snapshot
            // right after par_map must already be complete.
            prop_assert_eq!(&observed(), &reference, "threads={}", threads);
        }
        telemetry::reset();
    }
}

#[test]
fn worker_counters_visible_immediately_after_par_map() {
    let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::reset();
    telemetry::set_level(telemetry::Level::Off);
    hqnn_runtime::with_threads(7, || {
        hqnn_runtime::par_map_range(100, |_| telemetry::counter("shardtest.immediate_ticks", 3))
    });
    let snap = telemetry::snapshot();
    assert_eq!(snap.counters["shardtest.immediate_ticks"], 300);
    telemetry::reset();
}
