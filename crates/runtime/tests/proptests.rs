//! Property tests: the parallel map is an exact drop-in for the sequential
//! loop at every (length, thread-count) combination, bit for bit.

use proptest::prelude::*;

/// Non-associative f64 work whose result would drift under any reordering
/// or regrouping of the accumulation.
fn work(seed: u64, i: usize) -> f64 {
    let mut acc = seed as f64 * 1e-9;
    for k in 1..=48 {
        acc += (((i + 1) * k) as f64).sin() / ((k as f64) + acc.abs()).sqrt();
    }
    acc
}

proptest! {
    #[test]
    fn par_map_range_bitwise_matches_sequential(
        seed in 0u64..1_000_000_000,
        len in 0usize..300,
        threads in 1usize..9,
    ) {
        let seq: Vec<u64> = (0..len).map(|i| work(seed, i).to_bits()).collect();
        let par: Vec<u64> = hqnn_runtime::with_threads(threads, || {
            hqnn_runtime::par_map_range(len, |i| work(seed, i))
        })
        .into_iter()
        .map(f64::to_bits)
        .collect();
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn par_map_bitwise_matches_sequential(
        items in proptest::collection::vec(0u32..1_000_000, 0..200),
        threads in 1usize..9,
    ) {
        let seq: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| work(*x as u64, i).to_bits())
            .collect();
        let par: Vec<u64> = hqnn_runtime::with_threads(threads, || {
            hqnn_runtime::par_map(&items, |i, x| work(*x as u64, i))
        })
        .into_iter()
        .map(f64::to_bits)
        .collect();
        prop_assert_eq!(par, seq);
    }
}
