//! Causal-ID and alloc-counter determinism across thread counts.
//!
//! The contract under test: the set of (path, span_id, parent_id) triples a
//! workload produces — and, with `HQNN_ALLOC=1`, the per-path allocation
//! aggregates — is *byte-identical* at `HQNN_THREADS` ∈ {1, 2, 7}. IDs are
//! derived from (parent ID, name, per-parent sequence), and `par_map` keys
//! each item's sequence base on the item index, so which worker ran an item
//! must never show through.

use hqnn_telemetry as telemetry;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// The trace buffer, registry, level, and alloc switch are process-global;
/// serialize every test that touches them.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(Mutex::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Runs `len` items under `threads`, each item opening a root span and a
/// nested child span, and returns the sorted begin-edge identity triples
/// rendered in the JSONL wire format (16-digit hex).
fn edge_triples(threads: usize, len: usize) -> Vec<String> {
    telemetry::trace::enable();
    telemetry::trace::clear();
    hqnn_runtime::with_threads(threads, || {
        hqnn_runtime::par_map_range(len, |i| {
            let item = telemetry::span("causal.item");
            let _ = item.span_id();
            if i % 3 == 0 {
                let _inner = telemetry::span("causal.inner");
            }
        })
    });
    let mut triples: Vec<String> = telemetry::trace::span_edges()
        .into_iter()
        .filter(|e| e.begin)
        .map(|e| format!("{} {:016x} {:016x}", e.name, e.span_id, e.parent_id))
        .collect();
    telemetry::trace::clear();
    telemetry::trace::disable();
    triples.sort();
    triples
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn span_ids_byte_identical_at_1_2_7_threads(len in 0usize..60) {
        let _guard = serial();
        let at_1 = edge_triples(1, len);
        let at_2 = edge_triples(2, len);
        let at_7 = edge_triples(7, len);
        prop_assert_eq!(&at_1, &at_2);
        prop_assert_eq!(&at_1, &at_7);
        // Every item contributes exactly one root span plus the nested one
        // on i % 3 == 0 — nothing lost, nothing duplicated.
        prop_assert_eq!(at_1.len(), len + len.div_ceil(3));
    }
}

/// Per-path (count, alloc_count, alloc_bytes) registry deltas for one run.
/// Peak bytes are a max (not a sum), so they don't diff across cumulative
/// snapshots and are deliberately excluded here; the per-occurrence peaks
/// are covered by the telemetry crate's own tests.
fn alloc_deltas(threads: usize, len: usize) -> String {
    let before = telemetry::snapshot();
    hqnn_runtime::with_threads(threads, || {
        hqnn_runtime::par_map_range(len, |i| {
            // Flat span per item: the allocation window sees exactly the
            // closure's own allocations (deterministic per item), with the
            // span's bookkeeping excluded by the open-late/close-early
            // window placement.
            let _s = telemetry::span("causal.alloc_item");
            let v: Vec<u64> = (0..(32 + i % 7) as u64).collect();
            let s = format!("item-{i}");
            v.len() + s.len()
        })
    });
    let after = telemetry::snapshot();
    let mut out = String::new();
    for (path, stats) in &after.spans {
        if !path.contains("causal.alloc_item") {
            continue;
        }
        let (c0, ac0, ab0) = before
            .spans
            .get(path)
            .map(|s| (s.count, s.alloc_count, s.alloc_bytes))
            .unwrap_or((0, 0, 0));
        out.push_str(&format!(
            "{path} count={} allocs={} bytes={}\n",
            stats.count - c0,
            stats.alloc_count - ac0,
            stats.alloc_bytes - ab0,
        ));
    }
    out
}

#[test]
fn alloc_counters_byte_identical_at_1_2_7_threads() {
    let _guard = serial();
    let was_enabled = telemetry::alloc::is_enabled();
    telemetry::alloc::set_enabled(true);
    let at_1 = alloc_deltas(1, 23);
    let at_2 = alloc_deltas(2, 23);
    let at_7 = alloc_deltas(7, 23);
    telemetry::alloc::set_enabled(was_enabled);
    assert!(at_1.contains("allocs="), "spans carry alloc data: {at_1}");
    assert!(!at_1.contains("allocs=0"), "items allocate: {at_1}");
    assert_eq!(at_1, at_2);
    assert_eq!(at_1, at_7);
}

/// The JSONL wire form itself: span events serialized with their causal
/// identity (timing fields zeroed — wall-clock durations are real
/// measurements, not replayable values) are byte-identical across thread
/// counts.
#[test]
fn span_event_jsonl_identity_is_schedule_independent() {
    let _guard = serial();
    let mem = telemetry::add_memory_sink();
    let prior_level = telemetry::level();
    telemetry::set_level(telemetry::Level::Debug);

    let lines_at = |threads: usize| -> Vec<String> {
        mem.clear();
        hqnn_runtime::with_threads(threads, || {
            hqnn_runtime::par_map_range(11, |_| {
                let _s = telemetry::span("causal.wire_item");
            })
        });
        let mut lines: Vec<String> = mem
            .events_named("span")
            .into_iter()
            .filter(|ev| {
                ev.fields
                    .iter()
                    .any(|(k, v)| k == "path" && v.to_string().contains("causal.wire_item"))
            })
            .map(|mut ev| {
                ev.ts_us = 0;
                ev.fields.retain(|(k, _)| k == "path");
                serde_json::to_string(&ev).expect("serialize span event")
            })
            .collect();
        lines.sort();
        lines
    };

    let at_1 = lines_at(1);
    let at_2 = lines_at(2);
    let at_7 = lines_at(7);
    telemetry::set_level(prior_level);
    assert_eq!(at_1.len(), 11);
    assert!(at_1[0].contains("span_id"), "{}", at_1[0]);
    assert_eq!(at_1, at_2);
    assert_eq!(at_1, at_7);
}
