//! Schedule-permutation model check: the parallel maps must produce
//! bitwise-identical results under *adversarial* worker interleavings, not
//! just the one schedule the OS happens to pick on the test machine.
//!
//! Each case sweeps seeds through [`hqnn_runtime::check::Interleaver`],
//! which injects a seed-deterministic delay in front of every task. The
//! delays shuffle which worker reaches the claim cursor first, so each seed
//! replays the same work under a different schedule; the assertion is
//! always the same — `to_bits()`-level equality with the sequential
//! reference. A failing seed is replayable by construction.
//!
//! This suite is a required CI gate (see `.github/workflows/ci.yml`); the
//! budgeted sweep below is the acceptance bar of ≥ 50 distinct
//! interleavings of `par_map_budgeted` across budgets {2, 4, 8}.

use hqnn_runtime::check::Interleaver;
use hqnn_runtime::{par_chunks_mut, par_map, par_map_budgeted, with_threads};

/// Seeds swept per budget. Three budgets × 17 seeds = 51 interleavings,
/// which keeps the suite above the ≥ 50 bar with margin.
const SEEDS_PER_BUDGET: u64 = 17;

/// Budgets under test: the sanctioned nesting split behaves differently at
/// each (8 shards at budget 2 queue four deep; at budget 8 they all run).
const BUDGETS: [usize; 3] = [2, 4, 8];

/// Mixed non-associative f64 work — wrong re-association shows up in the
/// low mantissa bits, which `to_bits` equality catches and `==` on rounded
/// values would not.
fn work(i: usize) -> f64 {
    let mut acc = 0.0f64;
    for k in 1..=48 {
        acc += ((i * k + 1) as f64).sin() / (k as f64).sqrt();
    }
    acc
}

#[test]
fn par_map_budgeted_is_bitwise_stable_across_interleavings() {
    const LEN: usize = 24;
    let reference: Vec<u64> = (0..LEN).map(|i| work(i).to_bits()).collect();
    let mut schedules = 0u64;
    for budget in BUDGETS {
        for seed in 0..SEEDS_PER_BUDGET {
            let il = Interleaver::new(seed);
            let got: Vec<u64> = with_threads(budget, || {
                par_map_budgeted(LEN, |i| {
                    let _g = il.perturb(i as u64);
                    work(i)
                })
            })
            .into_iter()
            .map(f64::to_bits)
            .collect();
            assert_eq!(got, reference, "budget={budget} seed={seed}");
            assert_eq!(il.live(), 0, "all shards finished before return");
            schedules += 1;
        }
    }
    assert!(schedules >= 50, "swept only {schedules} interleavings");
}

#[test]
fn par_map_is_bitwise_stable_across_interleavings() {
    let items: Vec<usize> = (0..40).collect();
    let reference: Vec<u64> = items.iter().map(|&i| work(i).to_bits()).collect();
    for budget in BUDGETS {
        for seed in 0..8 {
            let il = Interleaver::new(seed);
            let got: Vec<u64> = with_threads(budget, || {
                par_map(&items, |i, &x| {
                    let _g = il.perturb(i as u64);
                    work(x)
                })
            })
            .into_iter()
            .map(f64::to_bits)
            .collect();
            assert_eq!(got, reference, "budget={budget} seed={seed}");
        }
    }
}

#[test]
fn par_chunks_mut_is_bitwise_stable_across_interleavings() {
    const LEN: usize = 61;
    const CHUNK: usize = 7;
    let fill = |data: &mut [f64], il: &Interleaver| {
        par_chunks_mut(data, CHUNK, |ci, chunk| {
            let _g = il.perturb(ci as u64);
            for (j, v) in chunk.iter_mut().enumerate() {
                *v = work(ci * CHUNK + j);
            }
        })
    };
    let mut reference = vec![0.0f64; LEN];
    with_threads(1, || fill(&mut reference, &Interleaver::new(0)));
    let reference: Vec<u64> = reference.iter().map(|v| v.to_bits()).collect();
    for budget in BUDGETS {
        for seed in 0..8 {
            let il = Interleaver::new(seed);
            let mut data = vec![0.0f64; LEN];
            with_threads(budget, || fill(&mut data, &il));
            let got: Vec<u64> = data.iter().map(|v| v.to_bits()).collect();
            assert_eq!(got, reference, "budget={budget} seed={seed}");
        }
    }
}

#[test]
fn budget_is_a_hard_bound_on_live_shards() {
    // More shards than budget, every shard sleeping: without a real bound
    // the probe's peak would reach the shard count.
    const LEN: usize = 16;
    for budget in BUDGETS {
        let il = Interleaver::new(3);
        with_threads(budget, || {
            par_map_budgeted(LEN, |i| {
                let _g = il.perturb(i as u64);
                std::thread::sleep(std::time::Duration::from_micros(200));
            })
        });
        assert!(
            il.peak() <= budget,
            "budget={budget} but {} shards ran concurrently",
            il.peak()
        );
        assert!(il.peak() >= 1);
        assert_eq!(il.live(), 0);
    }
}

#[test]
fn nested_fanout_respects_the_budget_product() {
    // Each budgeted shard fans out an inner par_map; the leaves audited
    // together must never exceed the caller's total budget — the
    // outer × inner ≤ total invariant observed from inside the tasks.
    const SHARDS: usize = 4;
    const INNER_ITEMS: usize = 6;
    for budget in BUDGETS {
        let leaves = Interleaver::new(7);
        with_threads(budget, || {
            par_map_budgeted(SHARDS, |s| {
                hqnn_runtime::par_map_range(INNER_ITEMS, |i| {
                    let _g = leaves.perturb((s * INNER_ITEMS + i) as u64);
                    std::thread::sleep(std::time::Duration::from_micros(150));
                })
            })
        });
        assert!(
            leaves.peak() <= budget,
            "budget={budget} but {} leaf tasks ran concurrently",
            leaves.peak()
        );
        assert_eq!(leaves.live(), 0);
    }
}

#[test]
fn worker_metrics_drain_before_return_under_contention() {
    // Metric shards recorded inside perturbed workers must be merged by the
    // time the map returns — the drain happens before the scope joins, and
    // no interleaving may lose a count.
    const LEN: usize = 12;
    let il = Interleaver::new(11);
    let before = hqnn_telemetry::snapshot()
        .counters
        .get("sched_check.items")
        .copied()
        .unwrap_or(0);
    with_threads(4, || {
        par_map_budgeted(LEN, |i| {
            let _g = il.perturb(i as u64);
            hqnn_telemetry::counter("sched_check.items", 1);
        })
    });
    let after = hqnn_telemetry::snapshot()
        .counters
        .get("sched_check.items")
        .copied()
        .unwrap_or(0);
    assert_eq!(
        after - before,
        LEN as u64,
        "every worker's counter shard is visible immediately after the call"
    );
}
