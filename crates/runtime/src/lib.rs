//! Deterministic parallel runtime for the hqnn workspace.
//!
//! Every expensive loop in this workspace — per-sample circuit simulation,
//! per-sample adjoint gradients, dense-layer row blocks, independent grid
//! combos of the architecture search — is embarrassingly parallel, and all of
//! them must stay **bitwise reproducible**: the paper protocol's published
//! numbers are seed-deterministic, and the test suite asserts byte-identical
//! study JSON regardless of the machine. This crate squares those two
//! requirements with three rules:
//!
//! 1. **Order-preserving map.** [`par_map`]/[`par_map_range`] return results
//!    indexed exactly like their inputs. Work is distributed dynamically
//!    (workers pull fixed-boundary chunks from an atomic cursor) but results
//!    are reassembled in chunk order, so the output is the same `Vec` the
//!    sequential loop would have produced — bit for bit, because each item's
//!    computation is independent and f64 accumulation stays *inside* items.
//!    Callers that reduce across items must fold the returned `Vec`
//!    sequentially; left-folding per-item partials in index order regroups
//!    additions identically to the sequential loop.
//! 2. **Explicit thread budget.** The pool width resolves, in order: a
//!    scoped [`with_threads`] override on the calling thread, the
//!    `HQNN_THREADS` environment variable, then the machine's available
//!    parallelism. `threads() == 1` runs inline with zero scheduling.
//! 3. **No unaccounted nested fan-out.** [`par_map`]/[`par_map_range`]
//!    worker closures run with an implicit `with_threads(1)`, so a parallel
//!    search wave doesn't multiply into a parallel batch inside each combo.
//!    The one sanctioned nesting level is [`par_map_budgeted`]: it splits
//!    the caller's budget across shards via [`split_budget`] so each
//!    shard's *own* nested maps still fan out, with the invariant
//!    `outer_workers × inner_budget ≤ threads()` — the budget stays a real
//!    upper bound on concurrency even two levels deep.
//!
//! Telemetry integrates across the fan-out: workers inherit the spawning
//! thread's open span path ([`hqnn_telemetry::propagate_span_path`]), so
//! spans recorded inside workers merge into the same tree one `report()`
//! prints.
//!
//! # Example
//!
//! ```
//! // Results are ordered like the input no matter how chunks are scheduled.
//! let squares = hqnn_runtime::par_map_range(5, |i| (i * i) as u64);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16]);
//!
//! let doubled = hqnn_runtime::par_map(&[1.0, 2.0, 3.0], |_i, x| x * 2.0);
//! assert_eq!(doubled, vec![2.0, 4.0, 6.0]);
//!
//! // Scoped override: everything inside the closure runs single-threaded.
//! let n = hqnn_runtime::with_threads(1, hqnn_runtime::threads);
//! assert_eq!(n, 1);
//! ```

#![forbid(unsafe_code)]

pub mod check;
mod pool;

pub use pool::{par_chunks_mut, par_map, par_map_budgeted, par_map_range, split_budget};

use std::cell::Cell;
use std::sync::OnceLock;

thread_local! {
    /// Scoped override installed by [`with_threads`] (0 = no override).
    static OVERRIDE: Cell<usize> = const { Cell::new(0) };
}

/// The thread budget parsed from `HQNN_THREADS` (via the central
/// [`hqnn_telemetry::env`] registry), read once per process. `None` when
/// unset or invalid (invalid values warn loudly, once).
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        let raw = hqnn_telemetry::env::var("HQNN_THREADS")?;
        match hqnn_telemetry::env::parse_threads(&raw) {
            Some(n) => Some(n),
            None => {
                hqnn_telemetry::event(
                    hqnn_telemetry::Level::Error,
                    "runtime.bad_threads",
                    &[
                        ("value", raw.into()),
                        ("hint", "HQNN_THREADS must be a positive integer".into()),
                    ],
                );
                None
            }
        }
    })
}

/// The number of worker threads parallel maps use on this thread, resolved
/// as: [`with_threads`] override → `HQNN_THREADS` → available parallelism.
/// Always ≥ 1.
pub fn threads() -> usize {
    let overridden = OVERRIDE.with(Cell::get);
    if overridden >= 1 {
        return overridden;
    }
    env_threads().unwrap_or_else(hqnn_telemetry::env::hardware_parallelism)
}

/// Runs `f` with the thread budget pinned to `n` on the calling thread
/// (nested calls nest; the previous budget is restored afterwards, also on
/// panic). This is how tests assert thread-count invariance without touching
/// process-global environment, and how workers suppress nested fan-out.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "thread budget must be at least 1");
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(n)));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threads_is_at_least_one() {
        assert!(threads() >= 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let ambient = threads();
        let inner = with_threads(7, || {
            let mid = threads();
            let nested = with_threads(2, threads);
            assert_eq!(nested, 2);
            // Restored to the enclosing override, not the ambient value.
            assert_eq!(threads(), 7);
            mid
        });
        assert_eq!(inner, 7);
        assert_eq!(threads(), ambient);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let ambient = threads();
        let result = std::panic::catch_unwind(|| with_threads(5, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(threads(), ambient);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_budget_rejected() {
        with_threads(0, || ());
    }
}
