//! Order-preserving chunked parallel map over scoped threads.
//!
//! There is no persistent thread pool: each call spins up scoped workers
//! (`std::thread::scope`), which keeps the crate dependency-free, makes
//! panics propagate like a plain loop, and lets worker closures borrow the
//! caller's data without `'static` bounds. Spawn cost is a few tens of
//! microseconds per worker — negligible against the batch-level work units
//! this workspace parallelises (circuit simulations, gradient sweeps, grid
//! combos), which is why the seams are placed at batch level and not inside
//! per-gate loops.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Chunks handed out per worker. More than one so dynamic scheduling can
/// absorb uneven per-item cost (e.g. mixed circuit widths in a search wave);
/// small enough that chunk bookkeeping stays invisible next to the work.
const CHUNKS_PER_THREAD: usize = 4;

/// Maps `f` over `items` in parallel, returning results in input order.
///
/// The closure receives `(index, &item)`. Output is bitwise identical to
/// `items.iter().enumerate().map(|(i, x)| f(i, x)).collect()` at every
/// thread count — see the crate docs for why.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    par_map_range(items.len(), |i| f(i, &items[i]))
}

/// Maps `f` over `0..len` in parallel, returning `vec![f(0), f(1), …]`.
///
/// Work is split into fixed-boundary chunks that idle workers claim from an
/// atomic cursor; completed chunks are reassembled in index order, so the
/// result is independent of which worker ran what. Runs inline (no threads)
/// when the resolved budget is 1 or `len <= 1`.
///
/// A panic inside `f` finishes in-flight chunks on other workers, then
/// resurfaces on the caller — the same observable behaviour as a panicking
/// sequential loop, minus any wasted sibling work being visible.
pub fn par_map_range<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = crate::threads().min(len.max(1));
    // Workers record spans under the caller's currently-open span path and
    // causal parent, so the profile report shows one merged tree (and the
    // JSONL trace one causal chain) instead of per-thread roots. The context
    // is installed around each *item*, keyed by its index, which is what
    // keeps span IDs byte-identical whether the item runs inline or on any
    // worker — so the inline path installs it too.
    let ctx = hqnn_telemetry::current_causal_context();
    if threads <= 1 || len <= 1 {
        return (0..len)
            .map(|i| {
                let _causal = hqnn_telemetry::propagate_causal_context(&ctx, i as u64);
                f(i)
            })
            .collect();
    }

    let chunk_size = len.div_ceil((threads * CHUNKS_PER_THREAD).min(len));
    let n_chunks = len.div_ceil(chunk_size);
    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(n_chunks));

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                // Budget 1 inside workers: the outermost parallel seam owns
                // the threads; nested par_map calls run inline.
                crate::with_threads(1, || loop {
                    let chunk = cursor.fetch_add(1, Ordering::Relaxed);
                    if chunk >= n_chunks {
                        break;
                    }
                    let start = chunk * chunk_size;
                    let end = (start + chunk_size).min(len);
                    let part: Vec<R> = (start..end)
                        .map(|i| {
                            let _causal = hqnn_telemetry::propagate_causal_context(&ctx, i as u64);
                            f(i)
                        })
                        .collect();
                    done.lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((chunk, part));
                });
                // Merge this worker's metric shard before the scope joins,
                // so a snapshot taken right after par_map returns already
                // sees every worker counter (thread exit would drain too,
                // but only after TLS destructors run).
                hqnn_telemetry::drain_local_metrics();
            });
        }
    });

    hqnn_telemetry::counter("runtime.par_calls", 1);
    hqnn_telemetry::counter("runtime.par_items", len as u64);

    let mut chunks = done.into_inner().unwrap_or_else(|e| e.into_inner());
    chunks.sort_unstable_by_key(|(idx, _)| *idx);
    let mut out = Vec::with_capacity(len);
    for (_, mut part) in chunks {
        out.append(&mut part);
    }
    debug_assert_eq!(out.len(), len);
    out
}

/// Splits a total thread budget across `shards` concurrent work units,
/// returning `(outer, inner)`: at most `outer` shards run concurrently and
/// each runs with an inner budget of `inner` threads for its own nested
/// parallel maps. The split never oversubscribes: `outer * inner <= total`
/// (with both factors ≥ 1), `outer` never exceeds the shard count, and one
/// shard inherits the whole budget — so a [`par_map_budgeted`] over a
/// single item degenerates to the plain nested call.
pub fn split_budget(total: usize, shards: usize) -> (usize, usize) {
    let total = total.max(1);
    if shards <= 1 {
        return (1, total);
    }
    let outer = total.min(shards);
    let inner = (total / outer).max(1);
    (outer, inner)
}

/// Maps `f` over `0..len` like [`par_map_range`], but treats each item as a
/// **shard** that may itself call parallel maps: instead of pinning workers
/// to budget 1, the total budget is split by [`split_budget`] and each
/// worker runs under `with_threads(inner)`, so a shard's nested
/// `par_map_range` still fans out while total concurrency stays ≤ the
/// caller's budget (`outer * inner <= threads()`).
///
/// Items are claimed one at a time from an atomic cursor (shards are few
/// and uneven — e.g. hybrid levels cost more than classical ones — so
/// dynamic item-granular scheduling matters more than chunk bookkeeping),
/// and results are reassembled in index order: output is bitwise identical
/// to the sequential loop at every budget, exactly like [`par_map_range`].
/// The caller's span path and causal parent propagate into each shard keyed
/// by its index, so shard telemetry is schedule-independent too.
pub fn par_map_budgeted<R, F>(len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let total = crate::threads();
    let (outer, inner) = split_budget(total, len);
    let ctx = hqnn_telemetry::current_causal_context();
    if outer <= 1 || len <= 1 {
        // Inline: a lone shard (or a budget of 1) keeps the whole inner
        // budget — with one shard that is the full caller budget.
        return (0..len)
            .map(|i| {
                let _causal = hqnn_telemetry::propagate_causal_context(&ctx, i as u64);
                crate::with_threads(inner, || f(i))
            })
            .collect();
    }

    let cursor = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(len));
    std::thread::scope(|scope| {
        for _ in 0..outer {
            scope.spawn(|| {
                // Inner budget instead of the flat pool's budget 1: this is
                // the one sanctioned nesting level. The shard's own nested
                // par_map workers still pin to 1, so depth stops at two.
                crate::with_threads(inner, || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    let _causal = hqnn_telemetry::propagate_causal_context(&ctx, i as u64);
                    let item = f(i);
                    done.lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push((i, item));
                });
                hqnn_telemetry::drain_local_metrics();
            });
        }
    });

    hqnn_telemetry::counter("runtime.par_calls", 1);
    hqnn_telemetry::counter("runtime.par_items", len as u64);

    let mut items = done.into_inner().unwrap_or_else(|e| e.into_inner());
    items.sort_unstable_by_key(|(idx, _)| *idx);
    debug_assert_eq!(items.len(), len);
    items.into_iter().map(|(_, item)| item).collect()
}

/// Runs `f` over disjoint consecutive chunks of `data` in parallel, in
/// place — the mutable-slice counterpart of [`par_map_range`] that lets
/// callers write results straight into a preallocated buffer instead of
/// collecting and reassembling per-item vectors.
///
/// The closure receives `(chunk_index, chunk)` where chunk `i` covers
/// `data[i·chunk_size .. (i+1)·chunk_size]` (the last chunk may be short).
/// Chunk boundaries depend only on `data.len()` and `chunk_size`, never on
/// the thread budget, so any per-chunk effects (telemetry spans, causal
/// IDs) are identical at every `HQNN_THREADS`. Like [`par_map_range`], the
/// causal context is installed around each chunk keyed by its index, and
/// the whole call runs inline when the resolved budget is 1 or there is
/// only one chunk.
///
/// # Panics
///
/// Panics if `chunk_size == 0` (with non-empty data); a panic inside `f`
/// propagates to the caller after in-flight chunks finish.
pub fn par_chunks_mut<T, F>(data: &mut [T], chunk_size: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(chunk_size > 0, "chunk_size must be positive");
    let n_chunks = data.len().div_ceil(chunk_size);
    let threads = crate::threads().min(n_chunks);
    let ctx = hqnn_telemetry::current_causal_context();
    if threads <= 1 || n_chunks <= 1 {
        for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
            let _causal = hqnn_telemetry::propagate_causal_context(&ctx, i as u64);
            f(i, chunk);
        }
        return;
    }

    // Each chunk is a disjoint `&mut [T]` parked in its own slot; workers
    // claim slots through an atomic cursor and take the slice out exactly
    // once. The Mutex-of-Option wrapping is what hands a mutable borrow to
    // exactly one worker without unsafe.
    type ChunkSlot<'a, T> = Mutex<Option<(usize, &'a mut [T])>>;
    let slots: Vec<ChunkSlot<T>> = data
        .chunks_mut(chunk_size)
        .enumerate()
        .map(|(i, c)| Mutex::new(Some((i, c))))
        .collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                crate::with_threads(1, || loop {
                    let slot = cursor.fetch_add(1, Ordering::Relaxed);
                    if slot >= slots.len() {
                        break;
                    }
                    let (idx, chunk) = slots[slot]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .take()
                        // lint:allow(panic): the atomic cursor hands each slot index out once
                        .expect("each chunk is claimed exactly once");
                    let _causal = hqnn_telemetry::propagate_causal_context(&ctx, idx as u64);
                    f(idx, chunk);
                });
                hqnn_telemetry::drain_local_metrics();
            });
        }
    });

    hqnn_telemetry::counter("runtime.par_calls", 1);
    hqnn_telemetry::counter("runtime.par_items", n_chunks as u64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_threads;

    #[test]
    fn preserves_input_order() {
        for threads in [1, 2, 3, 8, 33] {
            let got = with_threads(threads, || par_map_range(100, |i| i * 10));
            let want: Vec<usize> = (0..100).map(|i| i * 10).collect();
            assert_eq!(got, want, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map_range(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_range(1, |i| i + 41), vec![41]);
        assert_eq!(par_map(&[] as &[u8], |_, b| *b), Vec::<u8>::new());
    }

    #[test]
    fn empty_inputs_under_thread_overrides() {
        // Zero items must never spawn workers or call the closure, whatever
        // the configured budget — including budgets larger than the host.
        for threads in [1, 2, 7, 64] {
            let calls = AtomicUsize::new(0);
            let got: Vec<usize> = with_threads(threads, || {
                par_map_range(0, |i| {
                    calls.fetch_add(1, Ordering::Relaxed);
                    i
                })
            });
            assert!(got.is_empty(), "threads={threads}");
            assert_eq!(calls.load(Ordering::Relaxed), 0, "threads={threads}");
            let empty: Vec<u8> = with_threads(threads, || par_map(&[] as &[u8], |_, b| *b));
            assert!(empty.is_empty(), "threads={threads}");
        }
    }

    #[test]
    fn par_map_passes_index_and_item() {
        let items = ["a", "bb", "ccc"];
        let got = with_threads(2, || par_map(&items, |i, s| (i, s.len())));
        assert_eq!(got, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn f64_results_bitwise_identical_across_thread_counts() {
        // Per-item work mixes non-associative f64 ops; equality must hold
        // bit-for-bit, not just approximately.
        let work = |i: usize| {
            let mut acc = 0.0f64;
            for k in 1..=64 {
                acc += ((i * k) as f64).sin() / (k as f64).sqrt();
            }
            acc
        };
        let seq: Vec<u64> = (0..257).map(|i| work(i).to_bits()).collect();
        for threads in [2, 5, 16] {
            let par: Vec<u64> = with_threads(threads, || par_map_range(257, work))
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn nested_calls_run_inline_in_workers() {
        let nested_budgets = with_threads(4, || par_map_range(8, |_| crate::threads()));
        assert_eq!(nested_budgets, vec![1; 8]);
    }

    #[test]
    fn worker_panic_propagates_to_caller() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map_range(16, |i| {
                    if i == 11 {
                        panic!("item 11 exploded");
                    }
                    i
                })
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn par_chunks_mut_writes_every_chunk_once() {
        for threads in [1, 2, 3, 8] {
            for len in [0usize, 1, 5, 16, 100, 257] {
                let mut data = vec![0usize; len];
                with_threads(threads, || {
                    par_chunks_mut(&mut data, 7, |ci, chunk| {
                        for (j, v) in chunk.iter_mut().enumerate() {
                            *v = ci * 7 + j + 1;
                        }
                    })
                });
                let want: Vec<usize> = (1..=len).collect();
                assert_eq!(data, want, "threads={threads} len={len}");
            }
        }
    }

    #[test]
    fn par_chunks_mut_results_identical_across_thread_counts() {
        let fill = |data: &mut [f64]| {
            par_chunks_mut(data, 5, |ci, chunk| {
                for (j, v) in chunk.iter_mut().enumerate() {
                    let i = ci * 5 + j;
                    let mut acc = 0.0f64;
                    for k in 1..=32 {
                        acc += ((i * k) as f64).sin() / (k as f64).sqrt();
                    }
                    *v = acc;
                }
            })
        };
        let mut seq = vec![0.0f64; 123];
        with_threads(1, || fill(&mut seq));
        for threads in [2, 5, 16] {
            let mut par = vec![0.0f64; 123];
            with_threads(threads, || fill(&mut par));
            let a: Vec<u64> = seq.iter().map(|v| v.to_bits()).collect();
            let b: Vec<u64> = par.iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "threads={threads}");
        }
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn par_chunks_mut_rejects_zero_chunk_size() {
        let mut data = [1u8, 2];
        par_chunks_mut(&mut data, 0, |_, _| {});
    }

    #[test]
    fn par_chunks_mut_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            let mut data = vec![0usize; 64];
            with_threads(4, || {
                par_chunks_mut(&mut data, 4, |ci, _| {
                    if ci == 7 {
                        panic!("chunk 7 exploded");
                    }
                })
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn budgeted_map_preserves_order_and_results() {
        let want: Vec<usize> = (0..23).map(|i| i * 3).collect();
        for threads in [1, 2, 5, 8, 33] {
            let got = with_threads(threads, || par_map_budgeted(23, |i| i * 3));
            assert_eq!(got, want, "threads={threads}");
        }
        assert_eq!(par_map_budgeted(0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_budgeted(1, |i| i + 9), vec![9]);
    }

    #[test]
    fn budgeted_map_f64_bitwise_identical_across_budgets() {
        let work = |i: usize| {
            let mut acc = 0.0f64;
            for k in 1..=48 {
                acc += ((i * k) as f64).cos() / (k as f64).sqrt();
            }
            acc
        };
        let seq: Vec<u64> = (0..37).map(|i| work(i).to_bits()).collect();
        for threads in [2, 6, 16] {
            let par: Vec<u64> = with_threads(threads, || par_map_budgeted(37, work))
                .into_iter()
                .map(f64::to_bits)
                .collect();
            assert_eq!(par, seq, "threads={threads}");
        }
    }

    #[test]
    fn budgeted_map_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                par_map_budgeted(8, |i| {
                    if i == 5 {
                        panic!("shard 5 exploded");
                    }
                    i
                })
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn worker_spans_merge_under_caller_path() {
        // Uses record_duration via a real span inside workers; the recorded
        // path must be prefixed by the span open on the calling thread.
        let _outer = hqnn_telemetry::span("pool_test_outer");
        with_threads(2, || {
            par_map_range(4, |_| {
                let _inner = hqnn_telemetry::span("pool_test_inner");
            })
        });
        let snap = hqnn_telemetry::snapshot();
        let key = snap
            .spans
            .keys()
            .find(|k| k.contains("pool_test_inner"))
            .expect("inner span recorded");
        assert!(
            key.contains("pool_test_outer/pool_test_inner"),
            "got path {key:?}"
        );
    }
}
