//! Schedule-permutation harness: deterministic adversarial interleavings
//! for the parallel maps.
//!
//! The pool's determinism claim is *schedule independence*: whatever order
//! workers claim chunks or shards in, the reassembled output is bitwise
//! identical to the sequential loop. Plain tests only exercise whatever
//! interleaving the OS scheduler happens to produce on the test machine —
//! almost always the boring one where worker 0 wins every race. This module
//! turns the schedule into a controlled input: a seeded delay injector
//! perturbs each task's start by a pseudo-random (but seed-deterministic)
//! amount, so different seeds drive workers through genuinely different
//! claim orders, and a concurrency probe checks that the thread budget is a
//! hard bound while the races are running.
//!
//! The harness is `pub` because the schedule-permutation suite lives in
//! `tests/` (integration tests cannot see `#[cfg(test)]` items), but it is
//! test infrastructure: nothing in the production call graph touches it.
//! It stays dependency-free and wall-clock-free — delays are `thread::sleep`
//! with durations derived from the seed, never measured time.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// Upper bound on an injected delay, in microseconds. Large enough that the
/// OS actually reorders wakeups (sleeps below ~10µs round to "no sleep" on
/// most schedulers), small enough that a 50-seed sweep stays well under a
/// second.
const MAX_DELAY_MICROS: u64 = 120;

/// The seed-deterministic delay injected before task `task` runs under
/// `seed`: a SplitMix64-style hash of the pair, folded to
/// `0..=MAX_DELAY_MICROS` µs. Pure function — the same `(seed, task)` always
/// maps to the same `Duration`, which is what makes a failing seed
/// replayable.
pub fn adversarial_delay(seed: u64, task: u64) -> Duration {
    let mut z = seed ^ task.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^= z >> 31;
    Duration::from_micros(z % (MAX_DELAY_MICROS + 1))
}

/// Live/peak concurrency tracker for closures running under a parallel map.
///
/// Workers call [`ConcurrencyProbe::enter`] at the top of the task closure;
/// the returned guard decrements on drop (including on panic), so `live`
/// counts exactly the closures currently executing and `peak` records the
/// high-water mark. All counters are `SeqCst`: the probe asserts cross-
/// thread invariants, so its own reads must not be allowed to reorder.
#[derive(Debug, Default)]
pub struct ConcurrencyProbe {
    live: AtomicUsize,
    peak: AtomicUsize,
}

impl ConcurrencyProbe {
    /// A fresh probe with zero live tasks.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a task as running; drop the guard when it finishes.
    pub fn enter(&self) -> ProbeGuard<'_> {
        let now = self.live.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak.fetch_max(now, Ordering::SeqCst);
        ProbeGuard { probe: self }
    }

    /// Number of task closures executing right now.
    pub fn live(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    /// Highest number of simultaneously-live tasks observed so far.
    pub fn peak(&self) -> usize {
        self.peak.load(Ordering::SeqCst)
    }
}

/// RAII guard returned by [`ConcurrencyProbe::enter`].
#[derive(Debug)]
pub struct ProbeGuard<'a> {
    probe: &'a ConcurrencyProbe,
}

impl Drop for ProbeGuard<'_> {
    fn drop(&mut self) {
        self.probe.live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One adversarial schedule: a seed plus the probe that audits it.
///
/// Task closures call [`Interleaver::perturb`] first thing; it sleeps the
/// seed-derived delay for that task and returns the probe guard, so the
/// body of the task runs "inside" the probe. Different seeds shuffle which
/// worker reaches the claim cursor first, producing distinct interleavings
/// from the *same* test body.
#[derive(Debug)]
pub struct Interleaver {
    seed: u64,
    probe: ConcurrencyProbe,
}

impl Interleaver {
    /// A new schedule for `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            probe: ConcurrencyProbe::new(),
        }
    }

    /// Delays task `task` by its seed-derived amount and registers it with
    /// the probe. Call at the top of the task closure and hold the guard for
    /// the task's duration.
    pub fn perturb(&self, task: u64) -> ProbeGuard<'_> {
        std::thread::sleep(adversarial_delay(self.seed, task));
        self.probe.enter()
    }

    /// The audited high-water concurrency across all perturbed tasks.
    pub fn peak(&self) -> usize {
        self.probe.peak()
    }

    /// Live perturbed tasks right now (zero once a parallel map returned).
    pub fn live(&self) -> usize {
        self.probe.live()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_are_deterministic_and_bounded() {
        for seed in 0..8u64 {
            for task in 0..32u64 {
                let d = adversarial_delay(seed, task);
                assert_eq!(d, adversarial_delay(seed, task), "pure in (seed, task)");
                assert!(d <= Duration::from_micros(MAX_DELAY_MICROS));
            }
        }
    }

    #[test]
    fn seeds_produce_distinct_delay_patterns() {
        // Not a randomness test — just that the injector does not collapse
        // every seed onto one schedule, which would silence the sweep.
        let pattern = |seed: u64| -> Vec<Duration> {
            (0..16).map(|t| adversarial_delay(seed, t)).collect()
        };
        let base = pattern(0);
        let differing = (1..=20u64).filter(|s| pattern(*s) != base).count();
        assert!(differing >= 19, "only {differing}/20 seeds diverged");
    }

    #[test]
    fn probe_tracks_live_and_peak() {
        let probe = ConcurrencyProbe::new();
        assert_eq!((probe.live(), probe.peak()), (0, 0));
        {
            let _a = probe.enter();
            let _b = probe.enter();
            assert_eq!(probe.live(), 2);
        }
        assert_eq!(probe.live(), 0, "guards decrement on drop");
        assert_eq!(probe.peak(), 2, "peak sticks after tasks finish");
    }

    #[test]
    fn probe_decrements_on_panic() {
        let probe = ConcurrencyProbe::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = probe.enter();
            panic!("task died");
        }));
        assert!(result.is_err());
        assert_eq!(probe.live(), 0, "guard unwound with the panic");
    }
}
