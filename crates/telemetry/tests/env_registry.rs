//! End-to-end checks of the central `HQNN_*` registry: a typo'd variable in
//! the environment produces a loud `env.unknown_var` event with a
//! did-you-mean hint, exactly once per process.

use hqnn_telemetry as telemetry;

#[test]
fn unknown_hqnn_variable_warns_once_with_suggestion() {
    // Safe in edition 2021; this test binary is single-threaded at this
    // point (one #[test] in the file touches the environment).
    std::env::set_var("HQNN_THREAD", "8");
    std::env::set_var("HQNN_LOG", "off");

    let mem = telemetry::add_memory_sink();
    telemetry::env::warn_unknown_vars();

    let warnings = mem.events_named("env.unknown_var");
    assert_eq!(warnings.len(), 1, "one event per unknown variable");
    let rendered = warnings[0].human_readable();
    assert!(
        rendered.contains("HQNN_THREAD"),
        "names the offender: {rendered}"
    );
    assert!(
        rendered.contains("HQNN_THREADS"),
        "suggests the nearest registered name: {rendered}"
    );

    // The scan is once-per-process: a second call must not re-warn.
    telemetry::env::warn_unknown_vars();
    assert_eq!(mem.events_named("env.unknown_var").len(), 1);
}

#[test]
fn registry_is_the_single_source_of_truth() {
    let names = telemetry::env::registered_names();
    for expected in ["HQNN_LOG", "HQNN_THREADS", "HQNN_FUSE", "HQNN_ALLOC"] {
        assert!(names.contains(&expected), "{expected} must be registered");
    }
    for var in telemetry::env::REGISTRY {
        assert!(!var.purpose.is_empty() && !var.accepted.is_empty());
    }
}
