//! End-to-end tests of the telemetry crate: cross-thread span nesting,
//! percentile aggregation, JSONL round-trips, and level filtering.
//!
//! All tests mutate the process-global registry/sink state, so they share a
//! mutex and restore a clean slate before and after each body.

use hqnn_telemetry as telemetry;
use std::sync::Mutex;
use std::time::Duration;

fn with_clean_state(f: impl FnOnce()) {
    static GUARD: Mutex<()> = Mutex::new(());
    let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
    telemetry::reset();
    telemetry::set_level(telemetry::Level::Off);
    f();
    telemetry::reset();
}

#[test]
fn span_nesting_is_tracked_per_thread() {
    with_clean_state(|| {
        let _outer = telemetry::span("main");
        let workers: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    // A fresh thread starts with an empty span stack: its
                    // spans must NOT nest under the main thread's `main`.
                    let outer = telemetry::span("worker");
                    assert_eq!(outer.path(), "worker");
                    for _ in 0..3 {
                        let inner = telemetry::span("step");
                        assert_eq!(inner.path(), "worker/step");
                        std::thread::sleep(Duration::from_micros(50));
                    }
                })
            })
            .collect();
        for w in workers {
            w.join().unwrap();
        }

        let snap = telemetry::snapshot();
        assert_eq!(snap.spans["worker"].count, 4);
        assert_eq!(snap.spans["worker/step"].count, 12);
        assert!(!snap.spans.contains_key("main/worker"));
        // Total time of a parent covers its children.
        assert!(snap.spans["worker"].total >= snap.spans["worker/step"].total);
    });
}

#[test]
fn percentiles_match_known_distribution_within_histogram_bound() {
    with_clean_state(|| {
        // 1..=1000 µs, shuffled order must not matter. Count/min/max/total
        // are exact; quantiles come from the log-linear histogram and may
        // overshoot the exact nearest-rank value by at most 1/64.
        for i in (1..=1000u64).rev() {
            telemetry::record_duration("dist", Duration::from_micros(i));
        }
        let stats = &telemetry::snapshot().spans["dist"];
        assert_eq!(stats.count, 1000);
        assert_eq!(stats.min, Duration::from_micros(1));
        assert_eq!(stats.max, Duration::from_micros(1000));
        assert_eq!(stats.total, Duration::from_micros(500_500));
        for (reported, exact_us) in [(stats.p50, 500u64), (stats.p95, 950), (stats.p99, 990)] {
            let reported_ns = reported.as_nanos() as u64;
            let exact_ns = exact_us * 1000;
            assert!(reported_ns >= exact_ns, "{reported_ns} < exact {exact_ns}");
            assert!(
                (reported_ns - exact_ns) as f64
                    <= exact_ns as f64 * telemetry::hist::RELATIVE_ERROR,
                "{reported_ns} outside error bound of exact {exact_ns}"
            );
        }
    });
}

#[test]
fn percentiles_stay_bounded_for_large_streams() {
    with_clean_state(|| {
        // 100_000 samples uniform in 0..100ms. The histogram keeps bounded
        // memory regardless of stream length, and its quantiles must track
        // the true quantiles within the 1/64 relative-error bound (loose
        // bands here because the stream itself is pseudo-random).
        for i in 0..100_000u64 {
            let us = i.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1) % 100_000;
            telemetry::record_duration("big", Duration::from_micros(us));
        }
        let stats = &telemetry::snapshot().spans["big"];
        assert_eq!(stats.count, 100_000);
        let p50_ms = stats.p50.as_secs_f64() * 1e3;
        let p95_ms = stats.p95.as_secs_f64() * 1e3;
        let p99_ms = stats.p99.as_secs_f64() * 1e3;
        assert!((48.0..52.0).contains(&p50_ms), "p50 {p50_ms}ms");
        assert!((93.0..97.0).contains(&p95_ms), "p95 {p95_ms}ms");
        assert!(p99_ms > 97.0, "p99 {p99_ms}ms");
        assert!(stats.p99 <= stats.max);
    });
}

#[test]
fn worker_thread_counters_reach_jsonl_on_flush() {
    with_clean_state(|| {
        // Regression test for flush ordering: a counter incremented on a
        // worker thread that is still alive at flush() time must appear in
        // the JSONL file — flush drains the shards *before* the sinks.
        let path =
            std::env::temp_dir().join(format!("hqnn-telemetry-flush-{}.jsonl", std::process::id()));
        telemetry::add_jsonl_sink(&path).unwrap();

        let (ready_tx, ready_rx) = std::sync::mpsc::channel();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<()>();
        let worker = std::thread::spawn(move || {
            telemetry::counter("test.worker_ticks", 7);
            ready_tx.send(()).unwrap();
            // Hold the thread (and its undrained shard) open across flush.
            done_rx.recv().unwrap();
        });
        ready_rx.recv().unwrap();

        telemetry::flush();
        done_tx.send(()).unwrap();
        worker.join().unwrap();

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let metrics_line = text
            .lines()
            .find(|l| l.contains("\"event\":\"telemetry.metrics\""))
            .expect("flush emits a telemetry.metrics event");
        let ev: telemetry::Event = serde_json::from_str(metrics_line).unwrap();
        assert_eq!(
            ev.fields.iter().find(|(k, _)| k == "test.worker_ticks"),
            Some(&("test.worker_ticks".to_string(), 7u64.into()))
        );
    });
}

#[test]
fn jsonl_sink_round_trips_through_serde_json() {
    with_clean_state(|| {
        let path =
            std::env::temp_dir().join(format!("hqnn-telemetry-test-{}.jsonl", std::process::id()));
        telemetry::add_jsonl_sink(&path).unwrap();

        telemetry::event(
            telemetry::Level::Info,
            "nn.epoch",
            &[
                ("epoch", 3u64.into()),
                ("train_loss", 0.25f64.into()),
                ("passed", true.into()),
                ("model", "C-8-6".into()),
                ("delta", (-2i64).into()),
            ],
        );
        telemetry::event(telemetry::Level::Error, "bare", &[]);
        telemetry::flush();

        let text = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);

        // Each line is a flat JSON object: ts_us/level/event + the fields.
        let ev: telemetry::Event = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(ev.level, telemetry::Level::Info);
        assert_eq!(ev.name, "nn.epoch");
        assert_eq!(ev.fields.len(), 5);
        assert_eq!(ev.fields[0], ("epoch".to_string(), 3u64.into()));
        assert_eq!(ev.fields[1], ("train_loss".to_string(), 0.25f64.into()));
        assert_eq!(ev.fields[2], ("passed".to_string(), true.into()));
        assert_eq!(ev.fields[3], ("model".to_string(), "C-8-6".into()));
        assert_eq!(ev.fields[4], ("delta".to_string(), (-2i64).into()));

        // Byte-level schema check on the bare event.
        let value: serde_json::Value = serde_json::from_str(lines[1]).unwrap();
        let entries = value.as_map("event").unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].0, "ts_us");
        assert_eq!(entries[1].0, "level");
        assert_eq!(entries[2].0, "event");

        // Re-serialising an event reproduces the exact line (f64 fields
        // survive bit-exactly thanks to shortest-roundtrip formatting).
        assert_eq!(serde_json::to_string(&ev).unwrap(), lines[0]);
    });
}

#[test]
fn memory_sink_sees_all_levels_but_console_filter_applies() {
    with_clean_state(|| {
        telemetry::set_level(telemetry::Level::Info);
        let mem = telemetry::add_memory_sink();
        telemetry::event(telemetry::Level::Info, "visible", &[]);
        telemetry::event(telemetry::Level::Trace, "hidden_from_console", &[]);
        // Recording sinks capture everything regardless of level.
        assert_eq!(mem.events().len(), 2);
        assert_eq!(mem.events_named("visible").len(), 1);
        assert_eq!(mem.events_named("hidden_from_console").len(), 1);
        assert!(!telemetry::enabled(telemetry::Level::Trace));
        assert!(telemetry::enabled(telemetry::Level::Info));
    });
}

#[test]
fn env_var_levels_parse() {
    // Pure parser test — no global state involved.
    for (s, expected) in [
        ("off", telemetry::Level::Off),
        ("error", telemetry::Level::Error),
        ("info", telemetry::Level::Info),
        ("debug", telemetry::Level::Debug),
        ("trace", telemetry::Level::Trace),
        ("INFO", telemetry::Level::Info),
    ] {
        assert_eq!(s.parse::<telemetry::Level>().unwrap(), expected, "{s}");
    }
    assert!("verbose".parse::<telemetry::Level>().is_err());
}

#[test]
fn spans_emit_first_occurrence_events_below_debug() {
    with_clean_state(|| {
        telemetry::set_level(telemetry::Level::Info);
        let mem = telemetry::add_memory_sink();
        for _ in 0..5 {
            let _s = telemetry::span("qsim.adjoint");
        }
        // Below debug, only the first completion of a path emits an event;
        // the registry still aggregates every occurrence.
        let span_events = mem.events_named("span");
        assert_eq!(span_events.len(), 1);
        assert_eq!(
            span_events[0].fields[0],
            ("path".to_string(), "qsim.adjoint".into())
        );
        assert_eq!(telemetry::snapshot().spans["qsim.adjoint"].count, 5);

        // At debug, every completion emits.
        telemetry::set_level(telemetry::Level::Debug);
        mem.clear();
        for _ in 0..3 {
            let _s = telemetry::span("qsim.adjoint");
        }
        assert_eq!(mem.events_named("span").len(), 3);
    });
}

#[test]
fn chrome_trace_pairs_begin_and_end_events() {
    with_clean_state(|| {
        telemetry::trace::enable();
        {
            let _outer = telemetry::span("bench");
            for _ in 0..3 {
                let _inner = telemetry::span("iter");
            }
        }
        // A span still open at render time gets a synthetic closing event.
        let _open = telemetry::span("unclosed");

        let json = telemetry::trace::chrome_trace_json();
        let doc: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let top = doc.as_map("trace doc").unwrap();
        let events = match top.iter().find(|(k, _)| k == "traceEvents") {
            Some((_, serde_json::Value::Seq(events))) => events,
            other => panic!("missing traceEvents array: {other:?}"),
        };
        // bench + 3×iter + unclosed = 5 pairs.
        assert_eq!(events.len(), 10);

        // Begin/end counts must match per (tid, name), and per-thread
        // nesting must be well formed (no stack underflow, empty at end).
        let mut stacks: std::collections::HashMap<u64, Vec<String>> =
            std::collections::HashMap::new();
        let mut last_ts = 0u64;
        for ev in events {
            let fields = ev.as_map("event").unwrap();
            let get_str = |key: &str| match fields.iter().find(|(k, _)| k == key) {
                Some((_, serde_json::Value::Str(s))) => s.clone(),
                other => panic!("missing string {key}: {other:?}"),
            };
            let get_u64 = |key: &str| match fields.iter().find(|(k, _)| k == key) {
                Some((_, serde_json::Value::U64(v))) => *v,
                other => panic!("missing integer {key}: {other:?}"),
            };
            let name = get_str("name");
            let ph = get_str("ph");
            let ts = get_u64("ts");
            let tid = get_u64("tid");
            assert_eq!(get_u64("pid"), 1);
            assert!(ts >= last_ts, "events are time-ordered");
            last_ts = ts;
            let stack = stacks.entry(tid).or_default();
            match ph.as_str() {
                "B" => stack.push(name),
                "E" => assert_eq!(stack.pop().as_ref(), Some(&name), "E matches open B"),
                other => panic!("unexpected phase {other}"),
            }
        }
        for (tid, stack) in stacks {
            assert!(stack.is_empty(), "tid {tid} left open spans {stack:?}");
        }
        assert_eq!(telemetry::trace::dropped(), 0);
        drop(_open);
    });
}

#[test]
fn trace_recording_is_inert_until_enabled() {
    with_clean_state(|| {
        {
            let _s = telemetry::span("ignored");
        }
        let json = telemetry::trace::chrome_trace_json();
        assert!(json.contains("\"traceEvents\":[]"), "{json}");
    });
}

#[test]
fn collapsed_stacks_fold_paths_with_self_time() {
    with_clean_state(|| {
        telemetry::record_duration("repro", Duration::from_micros(500));
        telemetry::record_duration("repro/train", Duration::from_micros(300));
        let folded = telemetry::trace::collapsed_stacks();
        // Parent line carries self time = 500 - 300 µs.
        assert!(folded.contains("repro 200\n"), "{folded}");
        assert!(folded.contains("repro;train 300\n"), "{folded}");
    });
}

#[test]
fn report_renders_nested_tree_with_percentiles() {
    with_clean_state(|| {
        {
            let _a = telemetry::span("repro");
            for _ in 0..10 {
                let _b = telemetry::span("train");
                let _c = telemetry::span("epoch");
            }
        }
        telemetry::counter("qsim.gate_applies", 1234);
        telemetry::gauge("flops.winner", 2537.0);
        let report = telemetry::report();
        assert!(report.contains("repro"), "{report}");
        assert!(report.contains("  train"), "{report}");
        assert!(report.contains("    epoch"), "{report}");
        assert!(report.contains("p50"), "{report}");
        assert!(report.contains("p99"), "{report}");
        assert!(report.contains("qsim.gate_applies"), "{report}");
        assert!(report.contains("1234"), "{report}");
        assert!(report.contains("flops.winner"), "{report}");
    });
}
