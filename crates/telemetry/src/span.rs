//! RAII span guards with per-thread nesting.

use crate::event::{FieldValue, Level};
use crate::registry;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// The stack of open span names on this thread. Paths are the stack
    /// joined with `/`, so nesting is tracked per thread while aggregation
    /// is global.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Guard returned by [`crate::span`]; records the elapsed time under the
/// span's full path when dropped.
pub struct SpanGuard {
    path: String,
    start: Instant,
}

impl SpanGuard {
    pub(crate) fn enter(name: &'static str) -> SpanGuard {
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.join("/")
        });
        crate::trace::record(true, name);
        SpanGuard {
            path,
            start: Instant::now(),
        }
    }

    /// The full `/`-joined path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let name = STACK.with(|stack| stack.borrow_mut().pop());
        crate::trace::record(false, name.unwrap_or_default());
        let first = registry::global().record_span(&self.path, elapsed);
        // Every occurrence is visible at debug level; below that, the first
        // completion per path still emits one event so recording sinks
        // (JSONL/memory) always capture an example of every span path
        // without drowning in per-sample records.
        if first || crate::enabled(Level::Debug) {
            crate::event(
                Level::Debug,
                "span",
                &[
                    ("path", FieldValue::Str(self.path.clone())),
                    ("dur_us", FieldValue::U64(elapsed.as_micros() as u64)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn guard_exposes_path() {
        let a = crate::span("alpha");
        assert_eq!(a.path(), "alpha");
        let b = crate::span("beta");
        assert_eq!(b.path(), "alpha/beta");
    }
}
