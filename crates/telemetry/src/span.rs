//! RAII span guards with per-thread nesting and deterministic causal IDs.
//!
//! # Causal identity
//!
//! Every span gets a `span_id` and a `parent_id` derived with FNV-1a from
//! `(parent_id, name, sequence)` — the sequence being "how many children has
//! this parent opened before me". Because the derivation walks the *logical*
//! call tree (parent link + per-parent child counter) and never touches
//! thread ids, clocks, or addresses, the IDs are byte-identical at any
//! `HQNN_THREADS`: item `i` of a `par_map` fan-out gets the same IDs whether
//! it ran inline, on worker 0, or on worker 7.
//!
//! Cross-thread (and cross-item) linkage flows through [`CausalContext`]:
//! the pool captures [`current_causal_context`] once on the calling thread
//! and installs it around each work item with [`propagate_causal_context`],
//! which seeds the item's spans with the caller's span as parent and an
//! item-indexed sequence base (`(i + 1) << 32`, so item-root sequences can
//! never collide with the caller's direct children).

use crate::event::{FieldValue, Level};
use crate::registry;
use std::cell::{Cell, RefCell};
use std::sync::Arc;
use std::time::Instant;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0100_0000_01b3;

fn fnv1a(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// `span_id = FNV-1a(parent_id ∥ name ∥ seq)`, remapped off zero so that
/// `0` can keep meaning "no span".
fn derive_span_id(parent_id: u64, name: &str, seq: u64) -> u64 {
    let hash = fnv1a(FNV_OFFSET, &parent_id.to_le_bytes());
    let hash = fnv1a(hash, name.as_bytes());
    let hash = fnv1a(hash, &seq.to_le_bytes());
    if hash == 0 {
        // Vanishingly unlikely; any fixed nonzero value keeps determinism.
        0x9e37_79b9_7f4a_7c15
    } else {
        hash
    }
}

/// One open span on this thread's stack.
struct SpanFrame {
    name: &'static str,
    id: u64,
    /// Direct children opened so far — the child sequence counter.
    children: u64,
}

/// Inherited causal state installed by [`propagate_span_path`] /
/// [`propagate_causal_context`].
struct InheritedCtx {
    /// Path prefix spans opened under this context aggregate beneath.
    path: Option<Arc<str>>,
    /// Causal parent for first-level spans opened under this context.
    parent_id: u64,
    /// Sequence base for those first-level spans (item-indexed for pool
    /// items, 0 for the legacy path-only propagation).
    base_seq: u64,
    /// First-level spans opened under this context so far.
    opened: u64,
    /// Local stack frames below this install that the context's `path`
    /// already covers — masked out of path building and parent lookup.
    mask_depth: usize,
}

thread_local! {
    /// The stack of open spans on this thread. Paths are the visible part
    /// of the stack joined with `/`, so nesting is tracked per thread while
    /// aggregation is global.
    static STACK: RefCell<Vec<SpanFrame>> = const { RefCell::new(Vec::new()) };
    /// Inherited causal context for spans opened on this thread — set by
    /// worker threads (and around pool work items) so their span trees and
    /// causal links merge under the spawning thread's open span.
    static CTX: RefCell<Option<InheritedCtx>> = const { RefCell::new(None) };
    /// Sequence numbers for spans opened with no parent and no context.
    static ROOT_SEQ: Cell<u64> = const { Cell::new(0) };
}

fn visible_mask() -> usize {
    CTX.with(|ctx| ctx.borrow().as_ref().map_or(0, |c| c.mask_depth))
}

/// The `/`-joined path of the innermost span currently open on this thread
/// (including any inherited prefix), or `None` outside every span.
///
/// Thread pools capture this on the spawning thread and install it in their
/// workers with [`propagate_span_path`], which is what keeps one `report()`
/// span tree across a fan-out.
pub fn current_span_path() -> Option<String> {
    let mask = visible_mask();
    let local = STACK.with(|stack| {
        let stack = stack.borrow();
        if stack.len() <= mask {
            None
        } else {
            let names: Vec<&str> = stack.iter().skip(mask).map(|f| f.name).collect();
            Some(names.join("/"))
        }
    });
    CTX.with(
        |ctx| match (ctx.borrow().as_ref().and_then(|c| c.path.as_deref()), local) {
            (Some(p), Some(l)) => Some(format!("{p}/{l}")),
            (Some(p), None) => Some(p.to_string()),
            (None, l) => l,
        },
    )
}

/// The causal ID of the innermost span visible on this thread (inherited
/// context included), or `0` outside every span.
pub fn current_span_id() -> u64 {
    let mask = visible_mask();
    let local = STACK.with(|stack| stack.borrow().iter().skip(mask).last().map(|f| f.id));
    match local {
        Some(id) => id,
        None => CTX.with(|ctx| ctx.borrow().as_ref().map_or(0, |c| c.parent_id)),
    }
}

/// A capture of the calling thread's span path and causal parent, taken on
/// the spawning side of a fan-out and installed around each work item with
/// [`propagate_causal_context`]. Cheap to clone (the path is shared).
#[derive(Clone, Debug)]
pub struct CausalContext {
    path: Option<Arc<str>>,
    parent_id: u64,
}

/// Captures the current span path + causal parent for propagation into
/// pool workers (see [`propagate_causal_context`]).
pub fn current_causal_context() -> CausalContext {
    CausalContext {
        path: current_span_path().map(Arc::from),
        parent_id: current_span_id(),
    }
}

/// Installs `ctx` for one work item until the returned guard drops. Spans
/// opened while the guard lives aggregate under the captured path and are
/// causally parented to the captured span, with sequence numbers seeded by
/// `task_index` — which is what makes span IDs independent of which worker
/// (or the caller itself, inline) runs the item.
#[must_use = "the context is removed when the guard drops"]
pub fn propagate_causal_context(ctx: &CausalContext, task_index: u64) -> PropagatedPathGuard {
    let mask_depth = STACK.with(|stack| stack.borrow().len());
    install(InheritedCtx {
        path: ctx.path.clone(),
        parent_id: ctx.parent_id,
        base_seq: task_index.wrapping_add(1) << 32,
        opened: 0,
        mask_depth,
    })
}

/// Installs `path` as this thread's span-path prefix until the returned
/// guard drops (restoring the previous prefix). Spans opened while the guard
/// lives aggregate under `path/...`, merging worker-thread span trees into
/// the spawning thread's tree.
///
/// Path-only propagation: spans opened under it carry no causal parent.
/// Fan-outs that want linked `span_id`/`parent_id` chains should use
/// [`propagate_causal_context`] instead.
#[must_use = "the prefix is removed when the guard drops"]
pub fn propagate_span_path(path: Option<String>) -> PropagatedPathGuard {
    install(InheritedCtx {
        path: path.map(Arc::from),
        parent_id: 0,
        base_seq: 0,
        opened: 0,
        mask_depth: 0,
    })
}

fn install(ctx: InheritedCtx) -> PropagatedPathGuard {
    let previous = CTX.with(|cell| cell.borrow_mut().replace(ctx));
    PropagatedPathGuard { previous }
}

/// Guard returned by [`propagate_span_path`] / [`propagate_causal_context`];
/// restores the thread's previous context on drop.
pub struct PropagatedPathGuard {
    previous: Option<InheritedCtx>,
}

impl Drop for PropagatedPathGuard {
    fn drop(&mut self) {
        CTX.with(|cell| *cell.borrow_mut() = self.previous.take());
    }
}

/// Guard returned by [`crate::span`]; records the elapsed time (and, with
/// `HQNN_ALLOC=1`, the thread's allocation delta) under the span's full
/// path when dropped.
pub struct SpanGuard {
    path: String,
    name: &'static str,
    id: u64,
    parent_id: u64,
    alloc_start: Option<crate::alloc::WindowStart>,
    start: Instant,
}

impl SpanGuard {
    pub(crate) fn enter(name: &'static str) -> SpanGuard {
        let (id, parent_id, path) = CTX.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                let mask = ctx.as_ref().map_or(0, |c| c.mask_depth).min(stack.len());
                let (parent_id, seq) = if stack.len() > mask {
                    let last = stack.len() - 1;
                    let top = &mut stack[last];
                    let seq = top.children;
                    top.children += 1;
                    (top.id, seq)
                } else if let Some(c) = ctx.as_mut() {
                    let seq = c.base_seq.wrapping_add(c.opened);
                    c.opened += 1;
                    (c.parent_id, seq)
                } else {
                    let seq = ROOT_SEQ.with(|r| {
                        let s = r.get();
                        r.set(s.wrapping_add(1));
                        s
                    });
                    (0, seq)
                };
                let id = derive_span_id(parent_id, name, seq);
                stack.push(SpanFrame {
                    name,
                    id,
                    children: 0,
                });
                let names: Vec<&str> = stack.iter().skip(mask).map(|f| f.name).collect();
                let local = names.join("/");
                let path = match ctx.as_ref().and_then(|c| c.path.as_deref()) {
                    Some(p) => format!("{p}/{local}"),
                    None => local,
                };
                (id, parent_id, path)
            })
        });
        crate::trace::record(true, name, id, parent_id);
        // The allocation window opens *after* the guard's own bookkeeping
        // (frame push, path build, trace record) so a span's delta is the
        // workload's, not the instrumentation's.
        let alloc_start = crate::alloc::window_start();
        SpanGuard {
            path,
            name,
            id,
            parent_id,
            alloc_start,
            start: Instant::now(),
        }
    }

    /// The full `/`-joined path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// This span's deterministic causal ID.
    pub fn span_id(&self) -> u64 {
        self.id
    }

    /// The causal ID of this span's parent (`0` for a root span).
    pub fn parent_span_id(&self) -> u64 {
        self.parent_id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        // Close the allocation window before any drop-side bookkeeping
        // allocates (pop, registry, event) so the delta is workload-only.
        let alloc = self.alloc_start.take().map(crate::alloc::window_end);
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        crate::trace::record(false, self.name, self.id, self.parent_id);
        let first = registry::global().record_span_full(&self.path, elapsed, alloc);
        // Every occurrence is visible at debug level; below that, the first
        // completion per path still emits one event so recording sinks
        // (JSONL/memory) always capture an example of every span path
        // without drowning in per-sample records.
        if first || crate::enabled(Level::Debug) {
            let mut fields = vec![
                ("path", FieldValue::Str(self.path.clone())),
                ("dur_us", FieldValue::U64(elapsed.as_micros() as u64)),
            ];
            if let Some(alloc) = alloc {
                fields.push(("alloc_count", FieldValue::U64(alloc.count)));
                fields.push(("alloc_bytes", FieldValue::U64(alloc.bytes)));
                fields.push(("peak_bytes", FieldValue::U64(alloc.peak_bytes)));
            }
            crate::emit(
                Level::Debug,
                "span",
                &fields,
                Some(self.id),
                (self.parent_id != 0).then_some(self.parent_id),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn guard_exposes_path() {
        let a = crate::span("alpha");
        assert_eq!(a.path(), "alpha");
        let b = crate::span("beta");
        assert_eq!(b.path(), "alpha/beta");
    }

    #[test]
    fn propagated_prefix_nests_and_restores() {
        assert_eq!(super::current_span_path(), None);
        let outer = crate::span("outer");
        assert_eq!(super::current_span_path().as_deref(), Some("outer"));
        {
            let _g = super::propagate_span_path(Some("parent/worker".to_string()));
            assert_eq!(
                super::current_span_path().as_deref(),
                Some("parent/worker/outer")
            );
            let inner = crate::span("inner");
            assert_eq!(inner.path(), "parent/worker/outer/inner");
        }
        // Guard dropped: prefix restored.
        assert_eq!(super::current_span_path().as_deref(), Some("outer"));
        drop(outer);
        assert_eq!(super::current_span_path(), None);
    }

    #[test]
    fn ids_link_parent_and_child() {
        let a = crate::span("id_parent");
        let b = crate::span("id_child");
        assert_ne!(a.span_id(), 0);
        assert_ne!(b.span_id(), 0);
        assert_eq!(b.parent_span_id(), a.span_id());
        assert_eq!(super::current_span_id(), b.span_id());
        drop(b);
        assert_eq!(super::current_span_id(), a.span_id());
    }

    #[test]
    fn sibling_spans_of_same_name_get_distinct_ids() {
        let parent = crate::span("dup_parent");
        let first = {
            let g = crate::span("dup_child");
            g.span_id()
        };
        let second = {
            let g = crate::span("dup_child");
            g.span_id()
        };
        drop(parent);
        assert_ne!(
            first, second,
            "sequence numbers separate same-name siblings"
        );
    }

    #[test]
    fn propagated_context_masks_local_frames_and_links_parent() {
        let caller = crate::span("ctx_caller");
        let ctx = super::current_causal_context();
        {
            // Same thread (the inline par_map path): the caller's frame is
            // masked, so the item span's path is not doubled ...
            let _g = super::propagate_causal_context(&ctx, 3);
            let item = crate::span("ctx_item");
            assert_eq!(item.path(), "ctx_caller/ctx_item");
            // ... and its causal parent is the caller's span.
            assert_eq!(item.parent_span_id(), caller.span_id());
        }
        drop(caller);
    }

    #[test]
    fn item_ids_are_task_indexed_not_schedule_dependent() {
        let caller = crate::span("seq_caller");
        let ctx = super::current_causal_context();
        let id_for = |task: u64| {
            let _g = super::propagate_causal_context(&ctx, task);
            crate::span("seq_item").span_id()
        };
        // Re-running the same task index reproduces the same ID; different
        // indices differ.
        assert_eq!(id_for(5), id_for(5));
        assert_ne!(id_for(5), id_for(6));
        drop(caller);
    }
}
