//! RAII span guards with per-thread nesting.

use crate::event::{FieldValue, Level};
use crate::registry;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// The stack of open span names on this thread. Paths are the stack
    /// joined with `/`, so nesting is tracked per thread while aggregation
    /// is global.
    static STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    /// Inherited path prefix for spans opened on this thread — set by worker
    /// threads (via [`propagate_span_path`]) so their span trees merge under
    /// the spawning thread's open span instead of forming disconnected roots.
    static PREFIX: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// The `/`-joined path of the innermost span currently open on this thread
/// (including any inherited prefix), or `None` outside every span.
///
/// Thread pools capture this on the spawning thread and install it in their
/// workers with [`propagate_span_path`], which is what keeps one `report()`
/// span tree across a fan-out.
pub fn current_span_path() -> Option<String> {
    let local = STACK.with(|stack| {
        let stack = stack.borrow();
        if stack.is_empty() {
            None
        } else {
            Some(stack.join("/"))
        }
    });
    PREFIX.with(|prefix| match (prefix.borrow().as_deref(), local) {
        (Some(p), Some(l)) => Some(format!("{p}/{l}")),
        (Some(p), None) => Some(p.to_string()),
        (None, l) => l,
    })
}

/// Installs `path` as this thread's span-path prefix until the returned
/// guard drops (restoring the previous prefix). Spans opened while the guard
/// lives aggregate under `path/...`, merging worker-thread span trees into
/// the spawning thread's tree.
#[must_use = "the prefix is removed when the guard drops"]
pub fn propagate_span_path(path: Option<String>) -> PropagatedPathGuard {
    let previous = PREFIX.with(|prefix| prefix.replace(path));
    PropagatedPathGuard { previous }
}

/// Guard returned by [`propagate_span_path`]; restores the thread's previous
/// prefix on drop.
pub struct PropagatedPathGuard {
    previous: Option<String>,
}

impl Drop for PropagatedPathGuard {
    fn drop(&mut self) {
        PREFIX.with(|prefix| *prefix.borrow_mut() = self.previous.take());
    }
}

/// Guard returned by [`crate::span`]; records the elapsed time under the
/// span's full path when dropped.
pub struct SpanGuard {
    path: String,
    start: Instant,
}

impl SpanGuard {
    pub(crate) fn enter(name: &'static str) -> SpanGuard {
        let local = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            stack.push(name);
            stack.join("/")
        });
        let path = PREFIX.with(|prefix| match prefix.borrow().as_deref() {
            Some(p) => format!("{p}/{local}"),
            None => local,
        });
        crate::trace::record(true, name);
        SpanGuard {
            path,
            start: Instant::now(),
        }
    }

    /// The full `/`-joined path of this span.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        let name = STACK.with(|stack| stack.borrow_mut().pop());
        crate::trace::record(false, name.unwrap_or_default());
        let first = registry::global().record_span(&self.path, elapsed);
        // Every occurrence is visible at debug level; below that, the first
        // completion per path still emits one event so recording sinks
        // (JSONL/memory) always capture an example of every span path
        // without drowning in per-sample records.
        if first || crate::enabled(Level::Debug) {
            crate::event(
                Level::Debug,
                "span",
                &[
                    ("path", FieldValue::Str(self.path.clone())),
                    ("dur_us", FieldValue::U64(elapsed.as_micros() as u64)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn guard_exposes_path() {
        let a = crate::span("alpha");
        assert_eq!(a.path(), "alpha");
        let b = crate::span("beta");
        assert_eq!(b.path(), "alpha/beta");
    }

    #[test]
    fn propagated_prefix_nests_and_restores() {
        assert_eq!(super::current_span_path(), None);
        let outer = crate::span("outer");
        assert_eq!(super::current_span_path().as_deref(), Some("outer"));
        {
            let _g = super::propagate_span_path(Some("parent/worker".to_string()));
            assert_eq!(
                super::current_span_path().as_deref(),
                Some("parent/worker/outer")
            );
            let inner = crate::span("inner");
            assert_eq!(inner.path(), "parent/worker/outer/inner");
        }
        // Guard dropped: prefix restored.
        assert_eq!(super::current_span_path().as_deref(), Some("outer"));
        drop(outer);
        assert_eq!(super::current_span_path(), None);
    }
}
