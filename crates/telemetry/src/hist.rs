//! Bounded log-linear duration histograms (HDR-style).
//!
//! Values are bucketed into 64 linear sub-buckets per power-of-two octave,
//! so any recorded value lands in a bucket whose width is at most 1/64 of
//! its lower bound. Reported quantiles are bucket *upper* bounds, giving the
//! guarantee `true_quantile <= reported <= true_quantile * (1 + 1/64)` —
//! exact-bounded error with O(log range) memory, no retained samples, and a
//! merge that is a plain bucket-wise sum (commutative and associative, so
//! shard merge order cannot change the result).

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 6;
/// Linear sub-buckets per octave; also the inverse relative error bound.
const SUB: u64 = 1 << SUB_BITS;

/// Worst-case relative error of a reported quantile: `1 / 64`.
pub const RELATIVE_ERROR: f64 = 1.0 / SUB as f64;

/// A log-linear histogram over `u64` values (nanoseconds in practice).
///
/// Bucket counts grow on demand: a histogram never allocates past the
/// octave of its largest recorded value (~4.5 KB of `u64` counts even for
/// hour-long spans measured in nanoseconds).
#[derive(Clone, Debug, Default)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
}

/// Bucket index for `value`. Values below `SUB` get exact unit buckets;
/// above that, each octave splits into `SUB` linear sub-buckets.
fn index_of(value: u64) -> usize {
    if value < SUB {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros(); // exp >= SUB_BITS here
    let block = (exp - SUB_BITS + 1) as usize;
    let offset = ((value >> (exp - SUB_BITS)) & (SUB - 1)) as usize;
    block * SUB as usize + offset
}

/// Inclusive upper bound of bucket `index` (the value reported for any
/// sample that landed there).
fn bucket_high(index: usize) -> u64 {
    let block = index / SUB as usize;
    let offset = (index % SUB as usize) as u64;
    if block == 0 {
        return offset;
    }
    let shift = (block - 1) as u32;
    // Lower bound of the bucket plus (width − 1); summed in this order so
    // the top octave (values near `u64::MAX`) cannot overflow.
    ((SUB + offset) << shift) + ((1u64 << shift) - 1)
}

impl LogHistogram {
    /// Records one value.
    pub fn record(&mut self, value: u64) {
        let idx = index_of(value);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Nearest-rank quantile, `q` in `[0, 1]`, reported as the containing
    /// bucket's upper bound. Returns 0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(idx);
            }
        }
        bucket_high(self.counts.len().saturating_sub(1))
    }

    /// Adds every bucket of `other` into `self` (bucket-wise sum).
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (slot, &c) in self.counts.iter_mut().zip(&other.counts) {
            *slot += c;
        }
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank quantile for comparison.
    fn exact_quantile(samples: &mut [u64], q: f64) -> u64 {
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        samples[rank - 1]
    }

    #[test]
    fn small_values_are_exact() {
        // Every value below SUB has a dedicated unit bucket.
        for v in 0..SUB {
            let idx = index_of(v);
            assert_eq!(bucket_high(idx), v, "value {v}");
        }
    }

    #[test]
    fn bucket_bounds_contain_their_values() {
        let probes = [
            0u64,
            1,
            63,
            64,
            65,
            127,
            128,
            1_000,
            4_095,
            4_096,
            1_000_000,
            u64::MAX / 2,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = index_of(v);
            let high = bucket_high(idx);
            assert!(high >= v, "bucket high {high} below value {v}");
            // Bound: high <= v * (1 + 1/SUB), checked without overflow.
            assert!(
                high - v <= v / SUB,
                "value {v}: bucket high {high} overshoots error bound"
            );
        }
    }

    #[test]
    fn indices_are_monotone_in_value() {
        let mut prev = 0;
        for v in 0..10_000u64 {
            let idx = index_of(v);
            assert!(idx >= prev, "index regressed at {v}");
            prev = idx;
        }
    }

    #[test]
    fn quantiles_track_exact_within_bound() {
        // Deterministic pseudo-random samples over several octaves.
        let mut samples: Vec<u64> = (0..5_000u64)
            .map(|i| i.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1) % 1_000_000)
            .collect();
        let mut hist = LogHistogram::default();
        for &s in &samples {
            hist.record(s);
        }
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = exact_quantile(&mut samples, q);
            let approx = hist.quantile(q);
            assert!(approx >= exact, "q={q}: {approx} < exact {exact}");
            assert!(
                approx - exact <= exact / SUB + 1,
                "q={q}: {approx} outside error bound of exact {exact}"
            );
        }
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let mut a = LogHistogram::default();
        let mut b = LogHistogram::default();
        let mut combined = LogHistogram::default();
        for v in [1u64, 70, 5_000, 123_456] {
            a.record(v);
            combined.record(v);
        }
        for v in [3u64, 70, 999_999] {
            b.record(v);
            combined.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), combined.count());
        for q in [0.1, 0.5, 0.9, 1.0] {
            assert_eq!(a.quantile(q), combined.quantile(q), "q={q}");
        }
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let hist = LogHistogram::default();
        assert_eq!(hist.count(), 0);
        assert_eq!(hist.quantile(0.5), 0);
    }
}
