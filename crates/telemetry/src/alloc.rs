//! Span-attributed allocation tracking (opt-in via `HQNN_ALLOC=1`).
//!
//! The counting itself lives in the leaf crate `hqnn-alloc` (the installed
//! `#[global_allocator]`); this module turns its per-thread counters into
//! per-span deltas. A span guard snapshots the calling thread's counters on
//! entry and attributes the difference on drop, so the recorded numbers are
//! the allocations made *on the span's own thread* while it was open —
//! including same-thread children, excluding work fanned out to pool
//! workers (those workers' item spans carry their own deltas).
//!
//! Peaks are recorded *relative to the live level at span entry*
//! (`peak_bytes = max live during span − live at entry`), which makes them
//! deterministic for deterministic workloads at any `HQNN_THREADS`, unlike
//! absolute process peaks.
//!
//! Counting never changes allocation behaviour or numeric results; it only
//! reads and ticks thread-local cells (see `hqnn-alloc`).

use std::sync::atomic::{AtomicBool, Ordering};

pub use hqnn_alloc::{is_enabled, set_enabled, thread_stats, ThreadAllocStats};

/// Allocation activity attributed to one span (same-thread subtree).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct AllocDelta {
    /// Allocations made while the span was open.
    pub count: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
    /// Peak live bytes above the level at span entry.
    pub peak_bytes: u64,
}

/// Counter snapshot taken at span entry; consumed by [`window_end`].
pub(crate) struct WindowStart {
    count: u64,
    bytes: u64,
    live: i64,
    saved_peak: i64,
}

/// Opens a measurement window on the calling thread, or `None` when
/// counting is disabled (the hot path then costs one atomic load).
pub(crate) fn window_start() -> Option<WindowStart> {
    if !is_enabled() {
        return None;
    }
    let saved_peak = hqnn_alloc::begin_window();
    let stats = thread_stats();
    Some(WindowStart {
        count: stats.count,
        bytes: stats.bytes,
        live: stats.live_bytes,
        saved_peak,
    })
}

/// Closes a window and returns the delta. Reads the counters *before*
/// restoring the enclosing window's peak so the span's own numbers are not
/// polluted by the bookkeeping.
pub(crate) fn window_end(start: WindowStart) -> AllocDelta {
    let stats = thread_stats();
    hqnn_alloc::end_window(start.saved_peak);
    AllocDelta {
        count: stats.count.wrapping_sub(start.count),
        bytes: stats.bytes.wrapping_sub(start.bytes),
        peak_bytes: (stats.peak_live_bytes.saturating_sub(start.live)).max(0) as u64,
    }
}

/// Runs `f` inside a measurement window and returns its result plus the
/// allocation delta (`None` when counting is disabled). The hook perfbench
/// uses to add alloc columns around its timed loops.
pub fn measure<R>(f: impl FnOnce() -> R) -> (R, Option<AllocDelta>) {
    let start = window_start();
    let out = f();
    (out, start.map(window_end))
}

/// Reads `HQNN_ALLOC` once per process and enables counting when the flag
/// parses as on (`1`/`true`/`on`). Later [`set_enabled`] calls still win —
/// the env var only sets the starting state.
pub(crate) fn init_from_env() {
    static READ: AtomicBool = AtomicBool::new(false);
    if READ.swap(true, Ordering::SeqCst) {
        return;
    }
    if let Some(raw) = crate::env::var("HQNN_ALLOC") {
        if crate::env::parse_flag(&raw) {
            set_enabled(true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Shares the process-wide switch with other tests; serialise.
    fn serial(f: impl FnOnce()) {
        use std::sync::Mutex;
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_enabled(false);
        f();
        set_enabled(false);
    }

    #[test]
    fn measure_is_none_when_disabled() {
        serial(|| {
            let (out, delta) = measure(|| vec![1u8; 256].len());
            assert_eq!(out, 256);
            assert!(delta.is_none());
        });
    }

    #[test]
    fn measure_attributes_workload_allocations() {
        serial(|| {
            set_enabled(true);
            let (_, delta) = measure(|| {
                let v = vec![0u8; 50_000];
                v.len()
            });
            set_enabled(false);
            let delta = delta.expect("counting enabled");
            assert!(delta.count >= 1);
            assert!(delta.bytes >= 50_000, "bytes {}", delta.bytes);
            assert!(delta.peak_bytes >= 50_000, "peak {}", delta.peak_bytes);
        });
    }

    #[test]
    fn nested_windows_keep_independent_peaks() {
        serial(|| {
            set_enabled(true);
            let (_, outer) = measure(|| {
                let big = vec![0u8; 100_000];
                drop(big);
                let (_, inner) = measure(|| {
                    let small = vec![0u8; 1_000];
                    small.len()
                });
                inner.expect("enabled").peak_bytes
            });
            set_enabled(false);
            let outer = outer.expect("enabled");
            // The inner window saw only its own spike; the outer window's
            // peak still covers the big one.
            assert!(outer.peak_bytes >= 100_000, "outer {:?}", outer);
        });
    }
}
