//! End-of-run profile rendering: indented span tree + counters + gauges.

use crate::registry::{self, SpanStats};
use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

/// Self time (cumulative minus direct children's cumulative) for every span
/// path, in stable depth-first order. Shared by the profile report and the
/// collapsed-stack trace export.
pub(crate) fn self_time_by_path(spans: &HashMap<String, SpanStats>) -> BTreeMap<String, Duration> {
    let ordered: BTreeMap<&str, &SpanStats> = spans.iter().map(|(k, v)| (k.as_str(), v)).collect();
    ordered
        .iter()
        .map(|(path, stats)| {
            let children_total: Duration = ordered
                .iter()
                .filter(|(p, _)| {
                    p.strip_prefix(*path)
                        .and_then(|rest| rest.strip_prefix('/'))
                        .is_some_and(|rest| !rest.contains('/'))
                })
                .map(|(_, s)| s.total)
                .sum();
            (path.to_string(), stats.total.saturating_sub(children_total))
        })
        .collect()
}

/// Renders the global registry as an indented span-tree profile with
/// cumulative vs. self time and p50/p95/p99 latencies, followed by counters and
/// gauges. Designed to be printed once at the end of a bench binary:
///
/// ```text
/// ── telemetry profile ─────────────────────────────────────────
/// span                          count      total       self    p50      p99
/// repro                             1    12.41s      180ms     …        …
///   search                          1    12.23s      1.02s     …        …
///     combo                        24    11.21s     11.21s   310ms    890ms
/// counters
///   qsim.gate_applies        1203412
/// ```
pub fn report() -> String {
    let snapshot = registry::global().snapshot();
    let mut out = String::new();
    out.push_str("── telemetry profile ───────────────────────────────────────────────────────\n");

    if snapshot.spans.is_empty() {
        out.push_str("(no spans recorded)\n");
    } else {
        // Allocation columns appear only when some span actually carries
        // alloc data (i.e. HQNN_ALLOC counting was on), so uninstrumented
        // profiles keep their familiar width.
        let has_alloc = snapshot
            .spans
            .values()
            .any(|s| s.alloc_count > 0 || s.alloc_bytes > 0 || s.peak_bytes > 0);
        out.push_str(&format!(
            "{:<44} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9}",
            "span", "count", "total", "self", "p50", "p95", "p99"
        ));
        if has_alloc {
            out.push_str(&format!(
                " {:>9} {:>10} {:>10}",
                "allocs", "alloc-mem", "peak"
            ));
        }
        out.push('\n');
        // Sorted paths give a stable depth-first tree: `a` < `a/b` < `ab`
        // does not hold in general, but `/` sorts before alphanumerics in
        // the keys we build (span names avoid punctuation below `/`).
        let ordered: BTreeMap<&str, &SpanStats> = snapshot
            .spans
            .iter()
            .map(|(k, v)| (k.as_str(), v))
            .collect();
        let self_times = self_time_by_path(&snapshot.spans);
        for (path, stats) in &ordered {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            let self_time = self_times.get(*path).copied().unwrap_or_default();
            out.push_str(&format!(
                "{:<44} {:>9} {:>10} {:>10} {:>9} {:>9} {:>9}",
                format!("{}{}", "  ".repeat(depth), name),
                stats.count,
                fmt_duration(stats.total),
                fmt_duration(self_time),
                fmt_duration(stats.p50),
                fmt_duration(stats.p95),
                fmt_duration(stats.p99),
            ));
            if has_alloc {
                out.push_str(&format!(
                    " {:>9} {:>10} {:>10}",
                    stats.alloc_count,
                    fmt_bytes(stats.alloc_bytes),
                    fmt_bytes(stats.peak_bytes),
                ));
            }
            out.push('\n');
        }
    }

    if !snapshot.counters.is_empty() {
        // Derived rates are averaged over the whole process lifetime — a
        // coarse but honest throughput figure (gate-applies/sec,
        // train-steps/sec, …) for end-of-run profiles.
        let elapsed_s = (crate::now_us() as f64 / 1e6).max(1e-9);
        out.push_str(&format!(
            "{:<44} {:>20} {:>12}\n",
            "counters", "total", "avg/s"
        ));
        let ordered: BTreeMap<_, _> = snapshot.counters.iter().collect();
        for (name, value) in ordered {
            out.push_str(&format!(
                "  {:<42} {:>20} {:>12}\n",
                name,
                value,
                fmt_rate(*value as f64 / elapsed_s)
            ));
        }
    }

    if !snapshot.gauges.is_empty() {
        out.push_str("gauges\n");
        let ordered: BTreeMap<_, _> = snapshot.gauges.iter().collect();
        for (name, value) in ordered {
            out.push_str(&format!("  {name:<42} {value:>20}\n"));
        }
    }

    out.push_str("────────────────────────────────────────────────────────────────────────────\n");
    out
}

/// Formats an events-per-second rate with a metric suffix.
pub(crate) fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.2}G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.2}M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.2}k", per_sec / 1e3)
    } else {
        format!("{per_sec:.1}")
    }
}

/// Formats a byte count with a binary-ish metric suffix (powers of 1024).
pub(crate) fn fmt_bytes(bytes: u64) -> String {
    const KIB: u64 = 1 << 10;
    const MIB: u64 = 1 << 20;
    const GIB: u64 = 1 << 30;
    if bytes >= GIB {
        format!("{:.2}GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2}MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1}KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes}B")
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_formatting() {
        assert_eq!(fmt_rate(3.0), "3.0");
        assert_eq!(fmt_rate(1_500.0), "1.50k");
        assert_eq!(fmt_rate(2_500_000.0), "2.50M");
        assert_eq!(fmt_rate(3_000_000_000.0), "3.00G");
    }

    #[test]
    fn byte_formatting() {
        assert_eq!(fmt_bytes(12), "12B");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
        assert_eq!(fmt_bytes(3 << 20), "3.00MiB");
        assert_eq!(fmt_bytes(5 << 30), "5.00GiB");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(250)), "250.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
