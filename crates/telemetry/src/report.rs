//! End-of-run profile rendering: indented span tree + counters + gauges.

use crate::registry::{self, SpanStats};
use std::collections::BTreeMap;
use std::time::Duration;

/// Renders the global registry as an indented span-tree profile with
/// cumulative vs. self time and p50/p99 latencies, followed by counters and
/// gauges. Designed to be printed once at the end of a bench binary:
///
/// ```text
/// ── telemetry profile ─────────────────────────────────────────
/// span                          count      total       self    p50      p99
/// repro                             1    12.41s      180ms     …        …
///   search                          1    12.23s      1.02s     …        …
///     combo                        24    11.21s     11.21s   310ms    890ms
/// counters
///   qsim.gate_applies        1203412
/// ```
pub fn report() -> String {
    let snapshot = registry::global().snapshot();
    let mut out = String::new();
    out.push_str("── telemetry profile ───────────────────────────────────────────────────────\n");

    if snapshot.spans.is_empty() {
        out.push_str("(no spans recorded)\n");
    } else {
        out.push_str(&format!(
            "{:<44} {:>9} {:>10} {:>10} {:>9} {:>9}\n",
            "span", "count", "total", "self", "p50", "p99"
        ));
        // Sorted paths give a stable depth-first tree: `a` < `a/b` < `ab`
        // does not hold in general, but `/` sorts before alphanumerics in
        // the keys we build (span names avoid punctuation below `/`).
        let ordered: BTreeMap<&str, &SpanStats> = snapshot
            .spans
            .iter()
            .map(|(k, v)| (k.as_str(), v))
            .collect();
        for (path, stats) in &ordered {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            // Self time = cumulative minus direct children's cumulative.
            let children_total: Duration = ordered
                .iter()
                .filter(|(p, _)| {
                    p.strip_prefix(*path)
                        .and_then(|rest| rest.strip_prefix('/'))
                        .is_some_and(|rest| !rest.contains('/'))
                })
                .map(|(_, s)| s.total)
                .sum();
            let self_time = stats.total.saturating_sub(children_total);
            out.push_str(&format!(
                "{:<44} {:>9} {:>10} {:>10} {:>9} {:>9}\n",
                format!("{}{}", "  ".repeat(depth), name),
                stats.count,
                fmt_duration(stats.total),
                fmt_duration(self_time),
                fmt_duration(stats.p50),
                fmt_duration(stats.p99),
            ));
        }
    }

    if !snapshot.counters.is_empty() {
        out.push_str("counters\n");
        let ordered: BTreeMap<_, _> = snapshot.counters.iter().collect();
        for (name, value) in ordered {
            out.push_str(&format!("  {name:<42} {value:>20}\n"));
        }
    }

    if !snapshot.gauges.is_empty() {
        out.push_str("gauges\n");
        let ordered: BTreeMap<_, _> = snapshot.gauges.iter().collect();
        for (name, value) in ordered {
            out.push_str(&format!("  {name:<42} {value:>20}\n"));
        }
    }

    out.push_str("────────────────────────────────────────────────────────────────────────────\n");
    out
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12ns");
        assert_eq!(fmt_duration(Duration::from_micros(3)), "3.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(250)), "250.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
