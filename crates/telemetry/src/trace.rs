//! Trace export: Chrome trace-event JSON and collapsed-stack (flamegraph)
//! renderings of the span registry.
//!
//! Recording is off by default (a single relaxed atomic load on the span hot
//! path). Once [`enable`]d, every span records a begin event on entry and an
//! end event on drop into a bounded global buffer; [`chrome_trace_json`]
//! renders the buffer as a `chrome://tracing` / Perfetto-loadable document
//! and [`collapsed_stacks`] folds the aggregate registry into
//! `inferno`/`flamegraph.pl`-compatible lines.

use crate::registry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

/// Cap on buffered trace records; beyond it new records are counted but
/// dropped (the rendering stays valid — unmatched records are reconciled).
const TRACE_CAP: usize = 1 << 20;

#[derive(Clone, Debug)]
struct TraceRecord {
    begin: bool,
    name: String,
    ts_us: u64,
    tid: u64,
    span_id: u64,
    parent_id: u64,
}

/// One span begin/end edge with its causal identity — the raw material of
/// determinism tests ([`span_edges`]) and the Chrome export's `args`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEdge {
    /// `true` for a begin edge, `false` for an end edge.
    pub begin: bool,
    /// Span name (not the full path — the per-thread stack restores it).
    pub name: String,
    /// Deterministic causal ID of the span.
    pub span_id: u64,
    /// Causal ID of its parent (`0` for roots).
    pub parent_id: u64,
}

#[derive(Default)]
struct TraceBuf {
    records: Vec<TraceRecord>,
    dropped: u64,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::SeqCst);
}

fn buffer() -> &'static Mutex<TraceBuf> {
    static BUF: OnceLock<Mutex<TraceBuf>> = OnceLock::new();
    BUF.get_or_init(|| Mutex::new(TraceBuf::default()))
}

/// Starts recording span begin/end events.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops recording (the buffer is kept until [`clear`]).
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether trace recording is active.
pub fn is_enabled() -> bool {
    // lint:allow(atomic-ordering): hot-path flag check on every span; a stale
    // read only delays when tracing kicks in, never reorders recorded data
    ENABLED.load(Ordering::Relaxed)
}

/// Discards all buffered trace records.
pub fn clear() {
    let mut buf = buffer()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    buf.records.clear();
    buf.dropped = 0;
}

/// Records one begin/end edge (called from the span guard).
pub(crate) fn record(begin: bool, name: &str, span_id: u64, parent_id: u64) {
    if !is_enabled() {
        return;
    }
    let record = TraceRecord {
        begin,
        name: name.to_string(),
        ts_us: crate::now_us(),
        tid: TID.with(|t| *t),
        span_id,
        parent_id,
    };
    let mut buf = buffer()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    if buf.records.len() >= TRACE_CAP {
        buf.dropped += 1;
        return;
    }
    buf.records.push(record);
}

/// Per-thread balanced begin/end pairs: end records with no open begin are
/// dropped, begins still open at render time get a synthetic end at the
/// final timestamp — so consumers always see matching pairs.
fn balanced_records() -> Vec<TraceRecord> {
    let buf = buffer()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    let mut out = Vec::with_capacity(buf.records.len());
    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut last_ts = 0u64;
    for r in &buf.records {
        last_ts = last_ts.max(r.ts_us);
        let stack = stacks.entry(r.tid).or_default();
        if r.begin {
            stack.push(r.name.clone());
            out.push(r.clone());
        } else if stack.last() == Some(&r.name) {
            stack.pop();
            out.push(r.clone());
        }
        // End with no matching begin (recording enabled mid-span): dropped.
    }
    for (tid, stack) in stacks {
        for name in stack.into_iter().rev() {
            out.push(TraceRecord {
                begin: false,
                name,
                ts_us: last_ts,
                tid,
                span_id: 0,
                parent_id: 0,
            });
        }
    }
    out
}

/// Copies out the buffered span edges (unbalanced, in record order) with
/// their causal IDs. Determinism tests compare these across thread counts;
/// synthetic balancing is left to the renderers.
pub fn span_edges() -> Vec<SpanEdge> {
    let buf = buffer()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    buf.records
        .iter()
        .map(|r| SpanEdge {
            begin: r.begin,
            name: r.name.clone(),
            span_id: r.span_id,
            parent_id: r.parent_id,
        })
        .collect()
}

/// Renders the buffered spans as a Chrome trace-event document
/// (`{"traceEvents": [...]}`) loadable in `chrome://tracing` and Perfetto.
/// Begin/end events are guaranteed to pair up per thread.
pub fn chrome_trace_json() -> String {
    use serde::Content;
    let events: Vec<Content> = balanced_records()
        .into_iter()
        .map(|r| {
            let mut entries = vec![
                ("name".to_string(), Content::Str(r.name)),
                ("cat".to_string(), Content::Str("span".to_string())),
                (
                    "ph".to_string(),
                    Content::Str(if r.begin { "B" } else { "E" }.to_string()),
                ),
                ("ts".to_string(), Content::U64(r.ts_us)),
                ("pid".to_string(), Content::U64(1)),
                ("tid".to_string(), Content::U64(r.tid)),
            ];
            // Causal identity rides along on begin edges so Perfetto's
            // span detail pane shows the cross-reference into JSONL logs.
            if r.begin && r.span_id != 0 {
                entries.push((
                    "args".to_string(),
                    Content::Map(vec![
                        (
                            "span_id".to_string(),
                            Content::Str(crate::event::format_span_id(r.span_id)),
                        ),
                        (
                            "parent_id".to_string(),
                            Content::Str(crate::event::format_span_id(r.parent_id)),
                        ),
                    ]),
                ));
            }
            Content::Map(entries)
        })
        .collect();
    let doc = Content::Map(vec![
        ("traceEvents".to_string(), Content::Seq(events)),
        (
            "displayTimeUnit".to_string(),
            Content::Str("ms".to_string()),
        ),
    ]);
    // lint:allow(panic): document built from plain strings/numbers only
    serde_json::to_string(&doc).expect("trace document serializes")
}

/// Renders the span registry as collapsed stacks — one `a;b;c <µs>` line per
/// span path, value = *self* time in microseconds — the input format of
/// `flamegraph.pl` and `inferno-flamegraph`.
pub fn collapsed_stacks() -> String {
    let snapshot = registry::global().snapshot();
    let mut out = String::new();
    for (path, self_time) in crate::report::self_time_by_path(&snapshot.spans) {
        out.push_str(&path.replace('/', ";"));
        out.push(' ');
        out.push_str(&(self_time.as_micros() as u64).to_string());
        out.push('\n');
    }
    out
}

/// Number of records discarded because the buffer was full.
pub fn dropped() -> u64 {
    buffer()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .dropped
}
