//! Pluggable event sinks: stderr console, JSONL file, in-memory capture.

use crate::event::Event;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};

/// Receives every emitted [`Event`].
pub trait Sink: Send {
    fn record(&mut self, event: &Event);

    fn flush(&mut self) {}

    /// Whether this sink should only see events at or below the active
    /// level. Console sinks return `true`; recording sinks (JSONL, memory)
    /// return `false` and capture everything for later analysis.
    fn respects_level(&self) -> bool {
        true
    }
}

/// Human-readable console logger on stderr (stdout stays reserved for
/// result tables).
pub struct StderrSink;

impl Sink for StderrSink {
    fn record(&mut self, event: &Event) {
        eprintln!(
            "[{:>10.3}ms {:>5}] {}",
            event.ts_us as f64 / 1000.0,
            event.level,
            event.human_readable()
        );
    }
}

/// Machine-readable sink: one JSON object per line.
pub struct JsonlSink {
    writer: BufWriter<File>,
}

impl JsonlSink {
    pub fn create(path: &Path) -> std::io::Result<JsonlSink> {
        Ok(JsonlSink {
            writer: BufWriter::new(File::create(path)?),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&mut self, event: &Event) {
        if let Ok(line) = serde_json::to_string(event) {
            // Log I/O failures must never take down a run.
            let _ = writeln!(self.writer, "{line}");
        }
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }

    fn respects_level(&self) -> bool {
        false
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Captures events in memory; clone the handle to inspect from a test while
/// the sink registry owns the other clone.
#[derive(Clone, Default)]
pub struct MemorySink {
    events: Arc<Mutex<Vec<Event>>>,
}

impl MemorySink {
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Copies out everything captured so far.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Captured events with the given name.
    pub fn events_named(&self, name: &str) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .filter(|e| e.name == name)
            .cloned()
            .collect()
    }

    pub fn clear(&self) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clear();
    }
}

impl Sink for MemorySink {
    fn record(&mut self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(event.clone());
    }

    fn respects_level(&self) -> bool {
        false
    }
}
