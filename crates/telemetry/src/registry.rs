//! Global aggregation: span timings, counters, gauges.
//!
//! # Sharded metric cells
//!
//! Counters and max-gauges are the workspace's hottest telemetry path
//! (`qsim.gate_applies` ticks once per gate). Routing every increment
//! through one global mutex makes parallel workers contend, so each thread
//! instead owns a private *shard* — registered in a global list on first
//! use, drained back into the base maps when the thread exits (worker
//! threads additionally drain at scope exit via
//! [`crate::drain_local_metrics`]). The hot path locks only its own shard's
//! uncontended mutex.
//!
//! Merging is deterministic regardless of thread count or schedule:
//! counters merge by sum and max-gauges by max — both commutative and
//! associative — and [`Registry::snapshot`] holds the shard-list lock while
//! merging, so a snapshot is an atomic point-in-time view and stays
//! byte-identical at any `HQNN_THREADS`. Plain last-write-wins gauges stay
//! on the base map: their value is schedule-dependent by definition, so
//! sharding could only make them *less* reproducible.

use crate::hist::LogHistogram;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

#[derive(Clone, Debug, Default)]
struct SpanAgg {
    count: u64,
    total_ns: u128,
    min_ns: u64,
    max_ns: u64,
    /// Log-linear latency histogram (nanoseconds): bounded memory, quantile
    /// error ≤ 1/64 — see [`crate::hist`].
    hist: LogHistogram,
    /// Allocation totals across occurrences (zero unless `HQNN_ALLOC=1`).
    alloc_count: u64,
    alloc_bytes: u64,
    /// Largest single-occurrence peak (relative to live at span entry).
    peak_bytes: u64,
}

impl SpanAgg {
    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns as u128;
        self.hist.record(ns);
    }

    fn stats(&self) -> SpanStats {
        // Quantiles are bucket upper bounds; clamping into [min, max] keeps
        // them inside the observed range (and makes q=1.0 exactly `max`).
        let q =
            |q: f64| Duration::from_nanos(self.hist.quantile(q).clamp(self.min_ns, self.max_ns));
        SpanStats {
            count: self.count,
            total: Duration::from_nanos(self.total_ns.min(u64::MAX as u128) as u64),
            min: Duration::from_nanos(self.min_ns),
            max: Duration::from_nanos(self.max_ns),
            p50: q(0.50),
            p95: q(0.95),
            p99: q(0.99),
            alloc_count: self.alloc_count,
            alloc_bytes: self.alloc_bytes,
            peak_bytes: self.peak_bytes,
        }
    }
}

/// Aggregated statistics for one span path. Percentiles come from a
/// log-linear histogram and overshoot the exact sample quantile by at most
/// 1/64 (≈1.6%).
#[derive(Clone, Debug, PartialEq)]
pub struct SpanStats {
    pub count: u64,
    pub total: Duration,
    pub min: Duration,
    pub max: Duration,
    /// Median latency.
    pub p50: Duration,
    /// 95th-percentile latency.
    pub p95: Duration,
    /// 99th-percentile latency.
    pub p99: Duration,
    /// Allocations attributed to this span path across all occurrences
    /// (same-thread subtree; zero unless `HQNN_ALLOC=1` was on).
    pub alloc_count: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
    /// Largest single-occurrence peak of live bytes above the level at
    /// span entry.
    pub peak_bytes: u64,
}

/// A point-in-time copy of the registry, shard deltas included.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Keyed by full span path, e.g. `repro/train/epoch`.
    pub spans: HashMap<String, SpanStats>,
    pub counters: HashMap<String, u64>,
    pub gauges: HashMap<String, f64>,
}

/// Alias kept for API clarity in downstream code.
pub type CounterSnapshot = HashMap<String, u64>;

/// FNV-1a. Metric names are short trusted literals, so the shard hot path
/// trades SipHash's DoS resistance for ~2× cheaper hashing. The base maps
/// keep the default hasher — they are cold and hold externally-visible
/// state.
#[derive(Default)]
struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0100_0000_01b3);
        }
        self.0 = h;
    }
}

type FnvMap<V> = HashMap<String, V, BuildHasherDefault<Fnv1a>>;

/// One thread's private metric cell.
#[derive(Default)]
struct ShardData {
    counters: FnvMap<u64>,
    /// High-water-mark gauges ([`crate::gauge_max`]); merged by max.
    max_gauges: FnvMap<f64>,
}

type Shard = Mutex<ShardData>;

#[derive(Default)]
pub(crate) struct Registry {
    spans: Mutex<HashMap<String, SpanAgg>>,
    counters: Mutex<HashMap<String, u64>>,
    gauges: Mutex<HashMap<String, f64>>,
    /// Live per-thread shards. Snapshot/drain hold this lock while touching
    /// the shards, which serialises them against thread-exit drains — a
    /// snapshot never misses or double-counts a concurrently-retiring shard.
    shards: Mutex<Vec<Arc<Shard>>>,
}

pub(crate) fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Owns one thread's registration in the shard list; dropping (thread exit)
/// drains the shard into the base maps and deregisters it.
struct ShardHandle {
    shard: Arc<Shard>,
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        global().retire_shard(&self.shard);
    }
}

thread_local! {
    static LOCAL_SHARD: ShardHandle = global().register_shard();
}

/// Runs `f` on this thread's shard, registering one on first use. Returns
/// `None` when thread-local storage is gone (thread teardown) — callers
/// fall back to the base maps.
fn with_local_shard<R>(f: impl FnOnce(&mut ShardData) -> R) -> Option<R> {
    LOCAL_SHARD
        .try_with(|handle| f(&mut lock(&handle.shard)))
        .ok()
}

/// Adds `delta` to `name` in this thread's shard (base map during teardown).
/// The hit path (every call after a name's first) is allocation-free: the
/// `String` key is only materialised when the slot doesn't exist yet.
pub(crate) fn add_counter_sharded(name: &str, delta: u64) {
    let direct = with_local_shard(|data| {
        if let Some(slot) = data.counters.get_mut(name) {
            *slot += delta;
        } else {
            data.counters.insert(name.to_string(), delta);
        }
    });
    if direct.is_none() {
        global().add_counter(name, delta);
    }
}

/// Raises `name` to `value` in this thread's shard (base map on teardown).
/// Allocation-free on the hit path, like [`add_counter_sharded`].
pub(crate) fn set_gauge_max_sharded(name: &str, value: f64) {
    let direct = with_local_shard(|data| {
        if let Some(slot) = data.max_gauges.get_mut(name) {
            *slot = slot.max(value);
        } else {
            data.max_gauges.insert(name.to_string(), value);
        }
    });
    if direct.is_none() {
        global().set_gauge_max(name, value);
    }
}

/// Drains this thread's shard into the base maps without deregistering it
/// (the thread keeps recording afterwards).
pub(crate) fn drain_local() {
    let _ = LOCAL_SHARD.try_with(|handle| {
        let reg = global();
        let _shards = lock(&reg.shards); // serialise vs snapshot
        reg.merge_shard_into_base(&handle.shard);
    });
}

impl Registry {
    /// Returns `true` when this is the first record for `path` — used to
    /// emit one example `span` event per path even below debug level.
    pub(crate) fn record_span(&self, path: &str, duration: Duration) -> bool {
        self.record_span_full(path, duration, None)
    }

    /// [`Registry::record_span`] plus the span's allocation delta (when
    /// `HQNN_ALLOC` counting was on for the occurrence).
    pub(crate) fn record_span_full(
        &self,
        path: &str,
        duration: Duration,
        alloc: Option<crate::alloc::AllocDelta>,
    ) -> bool {
        let ns = duration.as_nanos().min(u64::MAX as u128) as u64;
        let mut spans = lock(&self.spans);
        let agg = spans.entry(path.to_string()).or_default();
        agg.record(ns);
        if let Some(alloc) = alloc {
            agg.alloc_count += alloc.count;
            agg.alloc_bytes += alloc.bytes;
            agg.peak_bytes = agg.peak_bytes.max(alloc.peak_bytes);
        }
        agg.count == 1
    }

    pub(crate) fn add_counter(&self, name: &str, delta: u64) {
        *lock(&self.counters).entry(name.to_string()).or_insert(0) += delta;
    }

    pub(crate) fn set_gauge(&self, name: &str, value: f64) {
        lock(&self.gauges).insert(name.to_string(), value);
    }

    /// Raises the gauge to `value` if it is higher than the stored value
    /// (or absent). Unlike [`Registry::set_gauge`]'s last-writer-wins, this
    /// is order-independent, so concurrent writers race-freely converge on
    /// the same high-water mark.
    pub(crate) fn set_gauge_max(&self, name: &str, value: f64) {
        lock(&self.gauges)
            .entry(name.to_string())
            .and_modify(|v| *v = v.max(value))
            .or_insert(value);
    }

    fn register_shard(&self) -> ShardHandle {
        let shard = Arc::new(Mutex::new(ShardData::default()));
        lock(&self.shards).push(Arc::clone(&shard));
        ShardHandle { shard }
    }

    /// Empties `shard` into the base maps. Callers must hold the
    /// shard-list lock (or be inside `retire_shard`, which does).
    fn merge_shard_into_base(&self, shard: &Arc<Shard>) {
        let drained = std::mem::take(&mut *lock(shard));
        if !drained.counters.is_empty() {
            let mut counters = lock(&self.counters);
            for (name, delta) in drained.counters {
                *counters.entry(name).or_insert(0) += delta;
            }
        }
        if !drained.max_gauges.is_empty() {
            let mut gauges = lock(&self.gauges);
            for (name, value) in drained.max_gauges {
                gauges
                    .entry(name)
                    .and_modify(|v| *v = v.max(value))
                    .or_insert(value);
            }
        }
    }

    /// Thread-exit path: drain and deregister in one critical section.
    fn retire_shard(&self, shard: &Arc<Shard>) {
        let mut shards = lock(&self.shards);
        self.merge_shard_into_base(shard);
        shards.retain(|s| !Arc::ptr_eq(s, shard));
    }

    /// Drains every live shard into the base maps (threads stay registered
    /// and keep recording). Used by [`crate::flush`] so exported metrics
    /// include in-flight worker deltas.
    pub(crate) fn drain_all_shards(&self) {
        let shards = lock(&self.shards);
        for shard in shards.iter() {
            self.merge_shard_into_base(shard);
        }
    }

    pub(crate) fn snapshot(&self) -> Snapshot {
        // Shard-list lock held for the whole merge: atomic point in time.
        let shards = lock(&self.shards);
        let mut counters = lock(&self.counters).clone();
        let mut gauges = lock(&self.gauges).clone();
        for shard in shards.iter() {
            let data = lock(shard);
            for (name, delta) in &data.counters {
                *counters.entry(name.clone()).or_insert(0) += delta;
            }
            for (name, value) in &data.max_gauges {
                gauges
                    .entry(name.clone())
                    .and_modify(|v| *v = v.max(*value))
                    .or_insert(*value);
            }
        }
        let spans = lock(&self.spans)
            .iter()
            .map(|(path, agg)| (path.clone(), agg.stats()))
            .collect();
        Snapshot {
            spans,
            counters,
            gauges,
        }
    }

    pub(crate) fn clear(&self) {
        let shards = lock(&self.shards);
        for shard in shards.iter() {
            *lock(shard) = ShardData::default();
        }
        lock(&self.spans).clear();
        lock(&self.counters).clear();
        lock(&self.gauges).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Nearest-rank percentile on an unsorted sample set. `q` in `[0, 1]`.
    /// The exact reference that histogram quantiles are tested against.
    fn percentile_ns(samples: &mut [u64], q: f64) -> u64 {
        if samples.is_empty() {
            return 0;
        }
        samples.sort_unstable();
        let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
        samples[rank - 1]
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&mut s, 0.50), 50);
        assert_eq!(percentile_ns(&mut s, 0.99), 99);
        assert_eq!(percentile_ns(&mut s, 1.0), 100);
        let mut one = vec![7];
        assert_eq!(percentile_ns(&mut one, 0.5), 7);
        assert_eq!(percentile_ns(&mut [][..], 0.5), 0);
    }

    #[test]
    fn span_agg_quantiles_respect_error_bound() {
        let mut agg = SpanAgg::default();
        let mut samples: Vec<u64> = (0..20_000u64)
            .map(|i| i.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1) % 10_000_000)
            .collect();
        for &s in &samples {
            agg.record(s);
        }
        let stats = agg.stats();
        assert_eq!(stats.count, 20_000);
        for (q, reported) in [(0.50, stats.p50), (0.95, stats.p95), (0.99, stats.p99)] {
            let exact = percentile_ns(&mut samples, q);
            let reported = reported.as_nanos() as u64;
            assert!(reported >= exact, "q={q}: {reported} < exact {exact}");
            assert!(
                reported - exact <= exact / 64 + 1,
                "q={q}: {reported} outside 1/64 bound of {exact}"
            );
        }
        assert!(stats.p50 <= stats.p95 && stats.p95 <= stats.p99);
        assert!(stats.p99 <= stats.max);
    }

    // Cross-thread shard merge behaviour is covered in tests/integration.rs
    // and tests/sharding.rs, which serialise access to the global registry;
    // unit tests here stay on thread-private state only.
}
