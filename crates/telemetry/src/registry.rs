//! Global aggregation: span timings, counters, gauges.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// Cap on retained per-span samples; beyond it, reservoir sampling keeps a
/// statistically representative subset so hot spans (millions of calls)
/// stay O(1) in memory while percentiles remain meaningful.
const RESERVOIR_CAP: usize = 4096;

#[derive(Clone, Debug, Default)]
struct SpanAgg {
    count: u64,
    total_ns: u128,
    min_ns: u64,
    max_ns: u64,
    /// Sample reservoir (nanoseconds).
    samples: Vec<u64>,
    /// Deterministic stream state for reservoir replacement decisions.
    rng_state: u64,
}

impl SpanAgg {
    fn record(&mut self, ns: u64) {
        if self.count == 0 {
            self.min_ns = ns;
            self.max_ns = ns;
        } else {
            self.min_ns = self.min_ns.min(ns);
            self.max_ns = self.max_ns.max(ns);
        }
        self.count += 1;
        self.total_ns += ns as u128;
        if self.samples.len() < RESERVOIR_CAP {
            self.samples.push(ns);
        } else {
            // Algorithm R with a SplitMix64 stream.
            self.rng_state = self.rng_state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut x = self.rng_state;
            x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            x ^= x >> 31;
            let slot = ((x as u128 * self.count as u128) >> 64) as u64;
            if (slot as usize) < RESERVOIR_CAP {
                self.samples[slot as usize] = ns;
            }
        }
    }
}

/// Aggregated statistics for one span path.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanStats {
    pub count: u64,
    pub total: Duration,
    pub min: Duration,
    pub max: Duration,
    /// Median latency (from the sample reservoir).
    pub p50: Duration,
    /// 99th-percentile latency (from the sample reservoir).
    pub p99: Duration,
}

/// A point-in-time copy of the registry.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Keyed by full span path, e.g. `repro/train/epoch`.
    pub spans: HashMap<String, SpanStats>,
    pub counters: HashMap<String, u64>,
    pub gauges: HashMap<String, f64>,
}

/// Alias kept for API clarity in downstream code.
pub type CounterSnapshot = HashMap<String, u64>;

#[derive(Default)]
pub(crate) struct Registry {
    spans: Mutex<HashMap<String, SpanAgg>>,
    counters: Mutex<HashMap<String, u64>>,
    gauges: Mutex<HashMap<String, f64>>,
}

pub(crate) fn global() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Nearest-rank percentile on an unsorted sample set. `q` in `[0, 1]`.
pub(crate) fn percentile_ns(samples: &mut [u64], q: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((q * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
    samples[rank - 1]
}

impl Registry {
    /// Returns `true` when this is the first record for `path` — used to
    /// emit one example `span` event per path even below debug level.
    pub(crate) fn record_span(&self, path: &str, duration: Duration) -> bool {
        let ns = duration.as_nanos().min(u64::MAX as u128) as u64;
        let mut spans = self.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let agg = spans.entry(path.to_string()).or_default();
        agg.record(ns);
        agg.count == 1
    }

    pub(crate) fn add_counter(&self, name: &str, delta: u64) {
        let mut counters = self.counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *counters.entry(name.to_string()).or_insert(0) += delta;
    }

    pub(crate) fn set_gauge(&self, name: &str, value: f64) {
        let mut gauges = self.gauges.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        gauges.insert(name.to_string(), value);
    }

    /// Raises the gauge to `value` if it is higher than the stored value
    /// (or absent). Unlike [`Registry::set_gauge`]'s last-writer-wins, this
    /// is order-independent, so concurrent writers race-freely converge on
    /// the same high-water mark.
    pub(crate) fn set_gauge_max(&self, name: &str, value: f64) {
        let mut gauges = self.gauges.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        gauges
            .entry(name.to_string())
            .and_modify(|v| *v = v.max(value))
            .or_insert(value);
    }

    pub(crate) fn snapshot(&self) -> Snapshot {
        let spans = self
            .spans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(path, agg)| {
                let mut samples = agg.samples.clone();
                let p50 = percentile_ns(&mut samples, 0.50);
                let p99 = percentile_ns(&mut samples, 0.99);
                (
                    path.clone(),
                    SpanStats {
                        count: agg.count,
                        total: Duration::from_nanos(agg.total_ns.min(u64::MAX as u128) as u64),
                        min: Duration::from_nanos(agg.min_ns),
                        max: Duration::from_nanos(agg.max_ns),
                        p50: Duration::from_nanos(p50),
                        p99: Duration::from_nanos(p99),
                    },
                )
            })
            .collect();
        Snapshot {
            spans,
            counters: self.counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone(),
            gauges: self.gauges.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone(),
        }
    }

    pub(crate) fn clear(&self) {
        self.spans.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        self.counters.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        self.gauges.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_ns(&mut s, 0.50), 50);
        assert_eq!(percentile_ns(&mut s, 0.99), 99);
        assert_eq!(percentile_ns(&mut s, 1.0), 100);
        let mut one = vec![7];
        assert_eq!(percentile_ns(&mut one, 0.5), 7);
        assert_eq!(percentile_ns(&mut [][..], 0.5), 0);
    }

    #[test]
    fn reservoir_keeps_bounded_memory() {
        let mut agg = SpanAgg::default();
        for i in 0..(RESERVOIR_CAP as u64 * 3) {
            agg.record(i);
        }
        assert_eq!(agg.count, RESERVOIR_CAP as u64 * 3);
        assert_eq!(agg.samples.len(), RESERVOIR_CAP);
        assert_eq!(agg.min_ns, 0);
        assert_eq!(agg.max_ns, RESERVOIR_CAP as u64 * 3 - 1);
    }
}
