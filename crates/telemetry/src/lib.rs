//! Structured tracing, metrics, and profiling for the hqnn workspace.
//!
//! The paper this repo reproduces makes a *cost* claim — FLOPs and parameter
//! counts of the smallest model reaching the accuracy bar — so the workspace
//! needs to see where time and work actually go. This crate provides that
//! observability with **no external dependencies** beyond the workspace's own
//! serde stubs:
//!
//! - **Spans** ([`span`]): RAII-guarded hierarchical timers. Every span
//!   records into a global registry keyed by its full path (e.g.
//!   `repro/train/epoch`), aggregating call count, total/min/max time, and
//!   p50/p95/p99 latency from a bounded log-linear histogram (quantile
//!   error ≤ 1/64, no retained samples — see [`hist`]).
//! - **Counters and gauges** ([`counter`], [`gauge`]): cheap named totals
//!   (`qsim.gate_applies`, `search.combos_evaluated`, …). Counters and
//!   [`gauge_max`] high-water marks write to per-thread shards, merged
//!   deterministically (sum / max) at [`snapshot`], [`flush`], and thread
//!   exit — parallel hot loops never contend on a global lock.
//! - **Events** ([`event`]): leveled, structured records dispatched to
//!   pluggable [`Sink`]s — a human-readable stderr logger (level set by the
//!   `HQNN_LOG` env var: `off|error|info|debug|trace`), a JSONL file sink for
//!   machine-readable run logs, and an in-memory sink for tests.
//! - **Reports** ([`report`]): an indented span-tree profile with self vs.
//!   cumulative time, designed to be printed at the end of a bench binary.
//!
//! # Example
//!
//! ```
//! use hqnn_telemetry as telemetry;
//!
//! telemetry::reset(); // fresh state (tests only)
//! {
//!     let _outer = telemetry::span("outer");
//!     let _inner = telemetry::span("inner");
//!     telemetry::counter("example.widgets", 3);
//! }
//! let stats = telemetry::snapshot();
//! assert_eq!(stats.spans["outer/inner"].count, 1);
//! assert_eq!(stats.counters["example.widgets"], 3);
//! assert!(telemetry::report().contains("outer"));
//! ```

#![forbid(unsafe_code)]

pub mod alloc;
pub mod env;
mod event;
pub mod hist;
pub mod manifest;
mod registry;
mod report;
mod sink;
mod span;
pub mod trace;

pub use event::{Event, FieldValue, Level};
pub use manifest::{config_hash, RunManifest};
pub use registry::{CounterSnapshot, Snapshot, SpanStats};
pub use report::report;
pub use sink::{MemorySink, Sink};
pub use span::{
    current_causal_context, current_span_id, current_span_path, propagate_causal_context,
    propagate_span_path, CausalContext, PropagatedPathGuard, SpanGuard,
};

use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Process-wide epoch: event timestamps are microseconds since this instant.
fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    *START.get_or_init(Instant::now)
}

/// Microseconds elapsed since the process first touched telemetry.
pub fn now_us() -> u64 {
    process_start().elapsed().as_micros() as u64
}

static LEVEL: AtomicU8 = AtomicU8::new(u8::MAX); // MAX = "not yet initialised"

fn sinks() -> &'static Mutex<Vec<Box<dyn Sink>>> {
    static SINKS: OnceLock<Mutex<Vec<Box<dyn Sink>>>> = OnceLock::new();
    SINKS.get_or_init(|| Mutex::new(vec![Box::new(sink::StderrSink)]))
}

/// Initialises the global level from `HQNN_LOG` if not yet set. Called
/// lazily by every emission path; harmless to call again.
pub fn init() {
    if LEVEL.load(Ordering::SeqCst) == u8::MAX {
        let raw = std::env::var("HQNN_LOG").ok();
        apply_env_level(raw.as_deref());
        // With the level established, surface any HQNN_* typos exactly once.
        env::warn_unknown_vars();
        // Allocation counting opt-in (HQNN_ALLOC=1); read once per process.
        alloc::init_from_env();
    }
}

/// Applies an `HQNN_LOG`-style value. An unrecognised value falls back to
/// `error` — but loudly: a one-time `telemetry.bad_log_level` event names the
/// bad value and the accepted spellings instead of silently muting the run.
fn apply_env_level(raw: Option<&str>) {
    match raw.map(str::parse::<Level>) {
        None => LEVEL.store(Level::Error as u8, Ordering::SeqCst),
        Some(Ok(level)) => LEVEL.store(level as u8, Ordering::SeqCst),
        Some(Err(err)) => {
            // Store before emitting: `event` re-enters `init`, which must
            // see an initialised level.
            LEVEL.store(Level::Error as u8, Ordering::SeqCst);
            static WARNED: std::sync::atomic::AtomicBool =
                std::sync::atomic::AtomicBool::new(false);
            if !WARNED.swap(true, Ordering::SeqCst) {
                event(
                    Level::Error,
                    "telemetry.bad_log_level",
                    &[
                        ("value", raw.unwrap_or_default().into()),
                        ("error", err.into()),
                    ],
                );
            }
        }
    }
}

/// Overrides the log level (wins over `HQNN_LOG`).
pub fn set_level(level: Level) {
    LEVEL.store(level as u8, Ordering::SeqCst);
}

/// The currently active log level.
pub fn level() -> Level {
    init();
    Level::from_u8(LEVEL.load(Ordering::SeqCst))
}

/// True when events at `level` would reach the sinks.
pub fn enabled(level: Level) -> bool {
    level as u8 <= self::level() as u8
}

/// Registers a JSONL sink appending one JSON object per event to `path`.
/// Events of every level are written regardless of `HQNN_LOG` — the file is
/// a machine-readable run log, not a console.
pub fn add_jsonl_sink(path: impl AsRef<Path>) -> std::io::Result<()> {
    let jsonl = sink::JsonlSink::create(path.as_ref())?;
    sinks()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(Box::new(jsonl));
    Ok(())
}

/// Registers an in-memory sink and returns a handle for inspecting the
/// captured events (intended for tests).
pub fn add_memory_sink() -> MemorySink {
    let mem = MemorySink::new();
    sinks()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .push(Box::new(mem.clone()));
    mem
}

/// Flushes metrics and sinks (call before reading a JSONL file mid-run and
/// before process exit).
///
/// Ordering matters: per-thread metric shards are drained into the base
/// registry *first*, then a `telemetry.metrics` event carrying the merged
/// counters/gauges is emitted to recording sinks, and only then are the
/// sinks flushed — so a counter incremented on a worker thread is visible
/// in the JSONL file even if that worker never exited.
pub fn flush() {
    registry::global().drain_all_shards();
    emit_metrics_event();
    for sink in sinks()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter_mut()
    {
        sink.flush();
    }
}

/// Emits one debug-level `telemetry.metrics` event with every counter and
/// gauge as a field (sorted by name, counters first). Skipped when there is
/// nothing to report, so event-only runs see no extra lines.
fn emit_metrics_event() {
    let snap = snapshot();
    if snap.counters.is_empty() && snap.gauges.is_empty() {
        return;
    }
    let mut counters: Vec<_> = snap.counters.into_iter().collect();
    counters.sort();
    let mut gauges: Vec<_> = snap.gauges.into_iter().collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    let fields: Vec<(&str, FieldValue)> = counters
        .iter()
        .map(|(k, v)| (k.as_str(), FieldValue::U64(*v)))
        .chain(
            gauges
                .iter()
                .map(|(k, v)| (k.as_str(), FieldValue::F64(*v))),
        )
        .collect();
    event(Level::Debug, "telemetry.metrics", &fields);
}

/// Drains the calling thread's metric shard into the global registry.
///
/// Parallel workers call this at the end of their scope so their deltas are
/// merged before the scope's owner reads a snapshot; it also runs
/// automatically when a thread exits. Calling it on a thread with no shard
/// is a no-op.
pub fn drain_local_metrics() {
    registry::drain_local();
}

/// Emits a structured event. Filtered sinks (stderr) drop events above the
/// active level; recording sinks (JSONL, memory) receive everything. The
/// event is stamped with the causal ID of the innermost open span (if any),
/// linking JSONL records to the span tree they were emitted under.
pub fn event(level: Level, name: &str, fields: &[(&str, FieldValue)]) {
    let span_id = current_span_id();
    emit(level, name, fields, (span_id != 0).then_some(span_id), None);
}

/// Shared emission path: [`event`] auto-stamps the current span; span
/// guards pass their own explicit identity.
pub(crate) fn emit(
    level: Level,
    name: &str,
    fields: &[(&str, FieldValue)],
    span_id: Option<u64>,
    parent_id: Option<u64>,
) {
    init();
    let ev = Event {
        ts_us: now_us(),
        level,
        name: name.to_string(),
        span_id,
        parent_id,
        fields: fields
            .iter()
            .map(|(k, v)| (k.to_string(), v.clone()))
            .collect(),
    };
    let console = enabled(level);
    for sink in sinks()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .iter_mut()
    {
        if console || !sink.respects_level() {
            sink.record(&ev);
        }
    }
}

/// Opens a timed span; the returned guard records into the global registry
/// (and emits a `span` event at debug level) when dropped.
#[must_use = "a span only measures the scope of its guard"]
pub fn span(name: &'static str) -> SpanGuard {
    SpanGuard::enter(name)
}

/// Records a duration under `path` without an enclosing guard — the hook
/// used by hot paths that batch their measurements and by tests that need
/// exact known distributions.
pub fn record_duration(path: &str, duration: Duration) {
    registry::global().record_span(path, duration);
}

/// Adds `delta` to the named counter.
///
/// The increment lands in the calling thread's private shard (uncontended
/// even with many parallel workers) and is merged — by exact integer sum,
/// so the result is schedule-independent — into [`snapshot`]s, [`flush`],
/// and thread exit.
pub fn counter(name: &str, delta: u64) {
    registry::add_counter_sharded(name, delta);
    if enabled(Level::Trace) {
        event(
            Level::Trace,
            "counter",
            &[("name", name.into()), ("delta", delta.into())],
        );
    }
}

/// Adds `delta` to the named counter through the contended global-mutex
/// path, bypassing the per-thread shards. Exists only so `perfbench` can
/// measure the sharded path against the legacy one; production code should
/// always use [`counter`].
#[doc(hidden)]
pub fn counter_unsharded(name: &str, delta: u64) {
    registry::global().add_counter(name, delta);
}

/// Sets the named gauge to `value` (last write wins).
///
/// Under concurrency, last-writer-wins makes the stored value depend on
/// thread scheduling. Gauges that multiple threads write — e.g. a
/// working-set-size gauge updated by parallel workers — should use
/// [`gauge_max`] instead, whose result is schedule-independent.
pub fn gauge(name: &str, value: f64) {
    registry::global().set_gauge(name, value);
    if enabled(Level::Trace) {
        event(
            Level::Trace,
            "gauge",
            &[("name", name.into()), ("value", value.into())],
        );
    }
}

/// Raises the named gauge to `value` if higher than its current value — a
/// high-water mark over the report window (i.e. since the last
/// [`reset`]/startup). Race-free under concurrent writers: whatever the
/// interleaving, the stored value is the maximum ever observed.
pub fn gauge_max(name: &str, value: f64) {
    registry::set_gauge_max_sharded(name, value);
    if enabled(Level::Trace) {
        event(
            Level::Trace,
            "gauge_max",
            &[("name", name.into()), ("value", value.into())],
        );
    }
}

/// A point-in-time copy of every span aggregate, counter, and gauge.
pub fn snapshot() -> Snapshot {
    registry::global().snapshot()
}

/// Clears all recorded spans, counters, gauges, trace records, and sinks
/// except stderr, disables trace recording, and re-reads the level. Intended
/// for tests and between bench phases.
pub fn reset() {
    registry::global().clear();
    trace::disable();
    trace::clear();
    let mut sinks = sinks()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    sinks.clear();
    sinks.push(Box::new(sink::StderrSink));
    LEVEL.store(u8::MAX, Ordering::SeqCst);
    init();
}

#[cfg(test)]
mod tests {
    use super::*;

    // Serialised by a mutex: these tests mutate global state.
    fn with_clean_state(f: impl FnOnce()) {
        static GUARD: Mutex<()> = Mutex::new(());
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_level(Level::Off);
        f();
        reset();
    }

    #[test]
    fn spans_nest_into_paths() {
        with_clean_state(|| {
            {
                let _a = span("a");
                {
                    let _b = span("b");
                }
                {
                    let _b = span("b");
                }
            }
            let snap = snapshot();
            assert_eq!(snap.spans["a"].count, 1);
            assert_eq!(snap.spans["a/b"].count, 2);
        });
    }

    #[test]
    fn counters_and_gauges_accumulate() {
        with_clean_state(|| {
            counter("c", 2);
            counter("c", 3);
            gauge("g", 1.5);
            gauge("g", 2.5);
            let snap = snapshot();
            assert_eq!(snap.counters["c"], 5);
            assert_eq!(snap.gauges["g"], 2.5);
        });
    }

    #[test]
    fn bad_env_level_warns_once_and_falls_back() {
        with_clean_state(|| {
            let mem = add_memory_sink();
            apply_env_level(Some("verbose"));
            assert_eq!(level(), Level::Error, "falls back to error");
            let warnings = mem.events_named("telemetry.bad_log_level");
            assert_eq!(warnings.len(), 1, "warns exactly once");
            let rendered = warnings[0].human_readable();
            assert!(rendered.contains("verbose"), "names the bad value");
            assert!(
                rendered.contains("off|error|info|debug|trace"),
                "lists accepted levels"
            );
            // Re-applying (e.g. another lazy init after reset) must not spam.
            apply_env_level(Some("chatty"));
            assert_eq!(mem.events_named("telemetry.bad_log_level").len(), 1);
        });
    }

    #[test]
    fn level_parsing_and_filtering() {
        with_clean_state(|| {
            assert!(!enabled(Level::Error));
            set_level(Level::Info);
            assert!(enabled(Level::Error));
            assert!(enabled(Level::Info));
            assert!(!enabled(Level::Debug));
            assert_eq!("trace".parse::<Level>().unwrap(), Level::Trace);
            assert!("bogus".parse::<Level>().is_err());
        });
    }
}
