//! Central registry and parsers for `HQNN_*` environment variables.
//!
//! Every knob this workspace reads from the environment is declared in
//! [`REGISTRY`], and every read goes through [`var`]/[`is_set`]. That buys
//! three things:
//!
//! 1. **One source of truth.** The accepted spellings and semantics of each
//!    variable live next to its name, so `--help`-style tooling and docs can
//!    enumerate them (see [`REGISTRY`]).
//! 2. **Typo detection.** The first read scans the process environment for
//!    `HQNN_*` names that are *not* registered and emits a loud
//!    `env.unknown_var` event naming the closest registered variable —
//!    `HQNN_THREAD=8` used to silently run with default parallelism; now it
//!    suggests `HQNN_THREADS`.
//! 3. **Static enforcement.** `hqnn-lint`'s `env-registry` rule checks that
//!    every `"HQNN_*"` string literal in the workspace appears in this
//!    file's registry, so a new knob cannot be added without declaring it
//!    here (and a typo'd name in code cannot compile past CI).
//!
//! This module lives in `hqnn-telemetry` because that is the root of the
//! workspace dependency graph (everything else depends on it); `hqnn-core`
//! re-exports it as `hqnn_core::env` for downstream users.

use std::sync::atomic::{AtomicBool, Ordering};

use crate::{event, Level};

/// One registered environment variable: its name, what it does, and the
/// values it accepts.
#[derive(Copy, Clone, Debug)]
pub struct EnvVar {
    /// The variable name (always `HQNN_`-prefixed).
    pub name: &'static str,
    /// One-line description of what the variable controls.
    pub purpose: &'static str,
    /// Human-readable description of accepted values.
    pub accepted: &'static str,
}

/// Every `HQNN_*` environment variable the workspace reads. `hqnn-lint`
/// checks all `"HQNN_*"` string literals in the workspace against this list.
pub const REGISTRY: &[EnvVar] = &[
    EnvVar {
        name: "HQNN_LOG",
        purpose: "console log level for telemetry events",
        accepted: "off|error|info|debug|trace",
    },
    EnvVar {
        name: "HQNN_THREADS",
        purpose: "thread budget for the deterministic parallel runtime",
        accepted: "positive integer",
    },
    EnvVar {
        name: "HQNN_FUSE",
        purpose: "opt-in gate fusion for forward circuit execution",
        accepted: "1|true|on for single-qubit run fusion; 2 adds two-qubit pair fusion; anything else (or unset) disables",
    },
    EnvVar {
        name: "HQNN_BATCH",
        purpose: "batch execution layout for run_batch/expectations_batch",
        accepted: "gate (sweep each gate across all rows; default) | row (run each row's circuit end to end)",
    },
    EnvVar {
        name: "HQNN_HEALTH",
        purpose: "training-health sentinel action on NaN/Inf loss or exploding gradients",
        accepted: "off|warn|abort (default warn)",
    },
    EnvVar {
        name: "HQNN_ALLOC",
        purpose:
            "opt-in allocation counting attributed to spans (counting only; numerics untouched)",
        accepted: "1|true|on to enable; anything else (or unset) disables",
    },
];

/// What the training-health sentinels do when a monitor trips
/// (`HQNN_HEALTH`). The checks themselves never alter training numerics —
/// the action only controls whether a violation is reported or fatal.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum HealthAction {
    /// Monitors disabled entirely.
    Off,
    /// Emit an `*.health_*` error event and keep training (default).
    Warn,
    /// Emit the event, then panic — fail fast instead of polluting results.
    Abort,
}

/// Parses an `HQNN_HEALTH` value, or `None` when invalid.
pub fn parse_health(raw: &str) -> Option<HealthAction> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "off" | "none" | "0" => Some(HealthAction::Off),
        "warn" => Some(HealthAction::Warn),
        "abort" => Some(HealthAction::Abort),
        _ => None,
    }
}

/// How batched circuit execution walks the (rows × gates) work square
/// (`HQNN_BATCH`). Both layouts are bitwise identical per row; the choice is
/// purely a throughput knob.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum BatchLayout {
    /// Run each row's full circuit before moving to the next row.
    Row,
    /// Sweep each gate across every row in a chunk while its matrix is hot
    /// (default).
    Gate,
}

impl BatchLayout {
    /// The manifest/provenance spelling (`"row"` / `"gate"`).
    pub fn as_str(self) -> &'static str {
        match self {
            BatchLayout::Row => "row",
            BatchLayout::Gate => "gate",
        }
    }
}

/// Parses an `HQNN_BATCH` value, or `None` when invalid.
pub fn parse_batch_layout(raw: &str) -> Option<BatchLayout> {
    match raw.trim().to_ascii_lowercase().as_str() {
        "row" | "row-major" => Some(BatchLayout::Row),
        "gate" | "gate-major" => Some(BatchLayout::Gate),
        _ => None,
    }
}

/// Parses an `HQNN_FUSE` value into a fusion level: `0` disabled,
/// `1` single-qubit run fusion (`1`/`true`/`on`), `2` adds two-qubit pair
/// fusion. Unknown values disable, matching [`parse_flag`] semantics.
pub fn parse_fuse_level(raw: &str) -> u8 {
    if raw.trim() == "2" {
        2
    } else if parse_flag(raw) {
        1
    } else {
        0
    }
}

/// `true` when `name` is declared in [`REGISTRY`].
pub fn is_registered(name: &str) -> bool {
    REGISTRY.iter().any(|v| v.name == name)
}

/// Reads a registered `HQNN_*` variable from the environment. The first
/// call (of any read in this module) also scans the environment for unknown
/// `HQNN_*` names and warns about each one.
///
/// # Panics
///
/// Debug builds panic when `name` is not in [`REGISTRY`] — register the
/// variable instead of reading it ad hoc.
pub fn var(name: &str) -> Option<String> {
    debug_assert!(
        is_registered(name),
        "{name} is not in hqnn_telemetry::env::REGISTRY; declare it there before reading it"
    );
    warn_unknown_vars();
    std::env::var(name).ok()
}

/// `true` when the registered variable is present in the environment (with
/// any value). Same registration contract as [`var`].
pub fn is_set(name: &str) -> bool {
    debug_assert!(
        is_registered(name),
        "{name} is not in hqnn_telemetry::env::REGISTRY; declare it there before reading it"
    );
    warn_unknown_vars();
    std::env::var_os(name).is_some()
}

/// Parses a boolean opt-in flag: `1`/`true`/`on` (case-insensitive,
/// whitespace-trimmed) enable, anything else disables.
pub fn parse_flag(raw: &str) -> bool {
    matches!(
        raw.trim().to_ascii_lowercase().as_str(),
        "1" | "true" | "on"
    )
}

/// Parses a thread budget: a positive integer, or `None` when invalid.
pub fn parse_threads(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n >= 1 => Some(n),
        _ => None,
    }
}

/// The machine's available parallelism (≥ 1), the fallback when
/// `HQNN_THREADS` is unset.
pub fn hardware_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Scans the process environment for `HQNN_*` variables that are not in
/// [`REGISTRY`] and emits one `env.unknown_var` error event per offender,
/// naming the closest registered variable when one is plausibly intended.
/// Runs at most once per process; later calls are free.
pub fn warn_unknown_vars() {
    // An atomic swap (not a OnceLock) so the re-entrant call made while
    // emitting the events (event → init → var("HQNN_LOG") → here) returns
    // immediately instead of deadlocking on its own initialisation.
    static SCANNED: AtomicBool = AtomicBool::new(false);
    if SCANNED.swap(true, Ordering::SeqCst) {
        return;
    }
    let mut unknown: Vec<String> = std::env::vars_os()
        .filter_map(|(key, _)| {
            let key = key.to_string_lossy().into_owned();
            (key.starts_with("HQNN_") && !is_registered(&key)).then_some(key)
        })
        .collect();
    unknown.sort();
    for name in unknown {
        let hint = match closest_registered(&name) {
            Some(suggestion) => format!("did you mean {suggestion}?"),
            None => format!(
                "not a recognised variable; known: {}",
                registered_names().join(", ")
            ),
        };
        event(
            Level::Error,
            "env.unknown_var",
            &[("var", name.into()), ("hint", hint.into())],
        );
    }
}

/// The registered variable names, in declaration order.
pub fn registered_names() -> Vec<&'static str> {
    REGISTRY.iter().map(|v| v.name).collect()
}

/// The registered name within Levenshtein distance 2 of `name`, if any
/// (ties broken by declaration order).
fn closest_registered(name: &str) -> Option<&'static str> {
    REGISTRY
        .iter()
        .map(|v| (v.name, edit_distance(name, v.name)))
        .filter(|&(_, d)| d <= 2)
        .min_by_key(|&(_, d)| d)
        .map(|(n, _)| n)
}

/// Plain Levenshtein distance over bytes (env names are ASCII).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_declares_the_known_knobs() {
        assert!(is_registered("HQNN_LOG"));
        assert!(is_registered("HQNN_THREADS"));
        assert!(is_registered("HQNN_FUSE"));
        assert!(is_registered("HQNN_HEALTH"));
        assert!(is_registered("HQNN_ALLOC"));
        assert!(is_registered("HQNN_BATCH"));
        assert!(!is_registered("HQNN_THREAD"));
        assert!(REGISTRY.iter().all(|v| v.name.starts_with("HQNN_")));
    }

    #[test]
    fn registry_names_are_unique() {
        // hqnn-lint's `load_registry` refuses duplicate entries outright (a
        // shadowed copy would let the did-you-mean hint point at a stale
        // declaration); this guards the real registry against ever
        // tripping that error.
        let mut names: Vec<&str> = REGISTRY.iter().map(|v| v.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len(), "REGISTRY lists a name twice");
    }

    #[test]
    fn health_parsing_accepts_documented_spellings() {
        assert_eq!(parse_health("off"), Some(HealthAction::Off));
        assert_eq!(parse_health("0"), Some(HealthAction::Off));
        assert_eq!(parse_health("warn"), Some(HealthAction::Warn));
        assert_eq!(parse_health(" ABORT "), Some(HealthAction::Abort));
        assert_eq!(parse_health("panic"), None);
        assert_eq!(parse_health(""), None);
    }

    #[test]
    fn flag_parsing_accepts_documented_spellings() {
        for on in ["1", "true", "on", " TRUE ", "On"] {
            assert!(parse_flag(on), "{on:?} should enable");
        }
        for off in ["0", "false", "off", "", "yes", "2"] {
            assert!(!parse_flag(off), "{off:?} should disable");
        }
    }

    #[test]
    fn batch_layout_parsing_accepts_documented_spellings() {
        assert_eq!(parse_batch_layout("row"), Some(BatchLayout::Row));
        assert_eq!(parse_batch_layout(" GATE "), Some(BatchLayout::Gate));
        assert_eq!(parse_batch_layout("gate-major"), Some(BatchLayout::Gate));
        assert_eq!(parse_batch_layout("row-major"), Some(BatchLayout::Row));
        assert_eq!(parse_batch_layout("column"), None);
        assert_eq!(parse_batch_layout(""), None);
        assert_eq!(BatchLayout::Gate.as_str(), "gate");
        assert_eq!(BatchLayout::Row.as_str(), "row");
    }

    #[test]
    fn fuse_level_parsing_covers_all_tiers() {
        assert_eq!(parse_fuse_level("1"), 1);
        assert_eq!(parse_fuse_level("true"), 1);
        assert_eq!(parse_fuse_level(" ON "), 1);
        assert_eq!(parse_fuse_level("2"), 2);
        assert_eq!(parse_fuse_level(" 2 "), 2);
        assert_eq!(parse_fuse_level("0"), 0);
        assert_eq!(parse_fuse_level("3"), 0);
        assert_eq!(parse_fuse_level(""), 0);
    }

    #[test]
    fn thread_parsing_requires_positive_integer() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 12 "), Some(12));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-3"), None);
        assert_eq!(parse_threads("four"), None);
        assert!(hardware_parallelism() >= 1);
    }

    #[test]
    fn typo_suggestions_find_the_nearest_name() {
        assert_eq!(closest_registered("HQNN_THREAD"), Some("HQNN_THREADS"));
        assert_eq!(closest_registered("HQNN_FUS"), Some("HQNN_FUSE"));
        assert_eq!(closest_registered("HQNN_LGO"), Some("HQNN_LOG"));
        // The satellite case from the issue: a dropped letter still maps home.
        assert_eq!(closest_registered("HQNN_HEALT"), Some("HQNN_HEALTH"));
        assert_eq!(closest_registered("HQNN_ALOC"), Some("HQNN_ALLOC"));
        assert_eq!(closest_registered("HQNN_ALLOCS"), Some("HQNN_ALLOC"));
        assert_eq!(closest_registered("HQNN_BATC"), Some("HQNN_BATCH"));
        assert_eq!(closest_registered("HQNN_BACH"), Some("HQNN_BATCH"));
        assert_eq!(closest_registered("HQNN_COMPLETELY_ELSE"), None);
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("abcd", "acd"), 1);
    }

    #[test]
    fn registered_reads_do_not_panic() {
        // Whatever the ambient environment, reading registered names is fine.
        let _ = var("HQNN_LOG");
        let _ = is_set("HQNN_FUSE");
        let _ = var("HQNN_THREADS");
    }
}
