//! Run manifests: the provenance record stamped into every measured artifact.
//!
//! A benchmark number without its context — which commit, which build
//! profile, how many hardware threads, which protocol — cannot be compared
//! against anything later. [`RunManifest::capture`] gathers that context once
//! per run so bench JSON, cached study JSON, and JSONL run logs all carry it.

use crate::event::FieldValue;
use serde::{Deserialize, Serialize};
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// Provenance of one measured run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// `git rev-parse HEAD` (abbreviated), or `"unknown"` outside a repo.
    pub git_sha: String,
    /// Whether the working tree had uncommitted changes.
    pub git_dirty: bool,
    /// Protocol/scale tag the binary ran with (`fast`, `smoke`, `bench`, …).
    pub profile: String,
    /// Cargo build profile the binary was compiled under.
    pub cargo_profile: String,
    /// Operating system (`std::env::consts::OS`).
    pub host_os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub host_arch: String,
    /// Host name, or `"unknown"` when undiscoverable.
    pub hostname: String,
    /// Worker threads the run's parallel runtime was configured with:
    /// `HQNN_THREADS` when set (and valid), otherwise the hardware threads
    /// available to the process. Published numbers are only comparable
    /// between runs with equal `threads`.
    pub threads: usize,
    /// Whether the run's environment enabled the qsim gate-fusion path
    /// (`HQNN_FUSE=1`/`true`/`on` for level 1, `2` for two-qubit pair
    /// fusion). Fused and unfused runs agree only to rounding, so published
    /// numbers are comparable only between runs with equal `fuse`. Defaults
    /// to `false` when absent (pre-fusion manifests).
    #[serde(default)]
    pub fuse: bool,
    /// Batch execution layout the run's environment selected
    /// (`HQNN_BATCH`): `"gate"` (gate-major sweeps, the default) or
    /// `"row"`. Layouts are bitwise identical, so numbers stay comparable
    /// across them — the stamp records which code path produced a timing.
    /// Defaults to `""` when absent (pre-layout manifests, which always ran
    /// row-major).
    #[serde(default)]
    pub batch: String,
    /// Whether the run counted allocations (`HQNN_ALLOC=1`/`true`/`on`).
    /// Counting never changes numerics, but it adds allocator bookkeeping
    /// that can perturb timings, so timed comparisons should match on
    /// `alloc` too. Defaults to `false` when absent (pre-alloc manifests).
    #[serde(default)]
    pub alloc: bool,
    /// Shard plan the run's study was scheduled with, as the compact
    /// `"cells=N;outer=O;inner=I"` descriptor. `""` means the study ran
    /// sequentially (or predates sharding). Sharding is bitwise neutral —
    /// results stay comparable across plans — but the stamp qualifies
    /// wall-clock numbers, which are only comparable between equal plans.
    /// Defaults to `""` when absent (pre-sharding manifests).
    #[serde(default)]
    pub shard_plan: String,
    /// FNV-1a hash of the run's configuration JSON (`"-"` when not set).
    pub config_hash: String,
    /// Seconds since the Unix epoch at capture time.
    pub timestamp_unix: u64,
}

impl RunManifest {
    /// Captures the current process/host/repo context. `profile` tags which
    /// protocol or benchmark scale the run used.
    pub fn capture(profile: &str) -> Self {
        Self {
            git_sha: git_stdout(&["rev-parse", "--short=12", "HEAD"])
                .unwrap_or_else(|| "unknown".to_string()),
            git_dirty: git_stdout(&["status", "--porcelain"])
                .map(|s| !s.is_empty())
                .unwrap_or(false),
            profile: profile.to_string(),
            cargo_profile: if cfg!(debug_assertions) {
                "debug".to_string()
            } else {
                "release".to_string()
            },
            host_os: std::env::consts::OS.to_string(),
            host_arch: std::env::consts::ARCH.to_string(),
            hostname: hostname(),
            threads: configured_threads(),
            fuse: configured_fuse(),
            batch: configured_batch(),
            alloc: configured_alloc(),
            shard_plan: String::new(),
            config_hash: "-".to_string(),
            timestamp_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
        }
    }

    /// Stamps the manifest with the hash of the run's configuration, so two
    /// runs are comparable only when their configs hash identically.
    pub fn with_config_hash<T: Serialize + ?Sized>(mut self, config: &T) -> Self {
        self.config_hash = config_hash(config);
        self
    }

    /// Stamps the manifest with the shard plan descriptor the run's study
    /// was scheduled with (see `ShardPlan::descriptor` in `hqnn-search`).
    pub fn with_shard_plan(mut self, plan: &str) -> Self {
        self.shard_plan = plan.to_string();
        self
    }

    /// The manifest as telemetry event fields (for `run.manifest` events in
    /// JSONL logs).
    pub fn fields(&self) -> Vec<(&'static str, FieldValue)> {
        vec![
            ("git_sha", self.git_sha.clone().into()),
            ("git_dirty", self.git_dirty.into()),
            ("profile", self.profile.clone().into()),
            ("cargo_profile", self.cargo_profile.clone().into()),
            ("host_os", self.host_os.clone().into()),
            ("host_arch", self.host_arch.clone().into()),
            ("hostname", self.hostname.clone().into()),
            ("threads", self.threads.into()),
            ("fuse", self.fuse.into()),
            ("batch", self.batch.clone().into()),
            ("alloc", self.alloc.into()),
            ("shard_plan", self.shard_plan.clone().into()),
            ("config_hash", self.config_hash.clone().into()),
            ("timestamp_unix", self.timestamp_unix.into()),
        ]
    }
}

/// FNV-1a (64-bit) over a value's compact JSON rendering, as a fixed-width
/// hex string. Stable across runs: the vendored serde writes struct fields
/// in declaration order.
pub fn config_hash<T: Serialize + ?Sized>(config: &T) -> String {
    let json = serde_json::to_string(config).unwrap_or_default();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in json.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Whether the environment enables qsim's gate-fusion path. Shares the
/// central [`crate::env`] parser with `hqnn-qsim` (which depends on this
/// crate, not the other way round); scoped `with_fusion` overrides are
/// per-thread test/bench tooling and intentionally not reflected here.
fn configured_fuse() -> bool {
    // `parse_fuse_level`, not `parse_flag`: `HQNN_FUSE=2` (pair fusion)
    // must stamp as fused too.
    crate::env::var("HQNN_FUSE")
        .map(|raw| crate::env::parse_fuse_level(&raw) >= 1)
        .unwrap_or(false)
}

/// Batch layout the run executes with. Mirrors `hqnn-qsim`'s resolution
/// (`HQNN_BATCH` env, gate-major default; invalid values fall back to the
/// default there too).
fn configured_batch() -> String {
    crate::env::var("HQNN_BATCH")
        .and_then(|raw| crate::env::parse_batch_layout(&raw))
        .unwrap_or(crate::env::BatchLayout::Gate)
        .as_str()
        .to_string()
}

/// Whether the environment enables allocation counting (`HQNN_ALLOC`).
fn configured_alloc() -> bool {
    crate::env::var("HQNN_ALLOC")
        .map(|raw| crate::env::parse_flag(&raw))
        .unwrap_or(false)
}

/// Thread count the run executes with. Mirrors `hqnn-runtime`'s resolution
/// order (`HQNN_THREADS` env, then hardware parallelism) through the same
/// central [`crate::env`] parsers `hqnn-runtime` uses.
fn configured_threads() -> usize {
    crate::env::var("HQNN_THREADS")
        .and_then(|raw| crate::env::parse_threads(&raw))
        .unwrap_or_else(crate::env::hardware_parallelism)
}

fn git_stdout(args: &[&str]) -> Option<String> {
    let out = Command::new("git").args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    Some(String::from_utf8_lossy(&out.stdout).trim().to_string())
}

fn hostname() -> String {
    if let Ok(name) = std::fs::read_to_string("/etc/hostname") {
        let name = name.trim();
        if !name.is_empty() {
            return name.to_string();
        }
    }
    std::env::var("HOSTNAME").unwrap_or_else(|_| "unknown".to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_fills_every_field() {
        let m = RunManifest::capture("test-profile");
        assert_eq!(m.profile, "test-profile");
        assert!(!m.git_sha.is_empty());
        assert!(!m.cargo_profile.is_empty());
        assert!(m.threads >= 1);
        assert_eq!(m.config_hash, "-");
        assert!(m.timestamp_unix > 1_600_000_000, "clock is sane");
    }

    #[test]
    fn config_hash_is_deterministic_and_sensitive() {
        let a = config_hash("same config");
        let b = config_hash("same config");
        let c = config_hash("other config");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = RunManifest::capture("rt").with_config_hash(&42u64);
        let json = serde_json::to_string(&m).expect("serialize");
        let back: RunManifest = serde_json::from_str(&json).expect("parse");
        assert_eq!(m, back);
        assert_ne!(m.config_hash, "-");
    }

    #[test]
    fn fields_cover_the_manifest() {
        let m = RunManifest::capture("f");
        let fields = m.fields();
        let names: Vec<&str> = fields.iter().map(|(k, _)| *k).collect();
        for key in ["git_sha", "profile", "threads", "fuse", "config_hash"] {
            assert!(names.contains(&key), "missing {key}");
        }
    }

    #[test]
    fn pre_fusion_manifests_parse_with_fuse_false() {
        // Baselines written before the `fuse` field existed must keep
        // loading — absent means the run could not have fused.
        let json = r#"{
            "git_sha": "abc123",
            "git_dirty": false,
            "profile": "perfbench-full",
            "cargo_profile": "release",
            "host_os": "linux",
            "host_arch": "x86_64",
            "hostname": "vm",
            "threads": 1,
            "config_hash": "-",
            "timestamp_unix": 1700000000
        }"#;
        let m: RunManifest = serde_json::from_str(json).expect("parse");
        assert!(!m.fuse);
        // Pre-layout manifests default to the empty string (those runs
        // always executed row-major; "" distinguishes them from an explicit
        // "row").
        assert_eq!(m.batch, "");
        // Pre-sharding manifests default to "" — those studies ran
        // sequentially.
        assert_eq!(m.shard_plan, "");
    }

    #[test]
    fn with_shard_plan_stamps_the_descriptor() {
        let m = RunManifest::capture("s").with_shard_plan("cells=6;outer=3;inner=2");
        assert_eq!(m.shard_plan, "cells=6;outer=3;inner=2");
        let names: Vec<&str> = m.fields().iter().map(|(k, _)| *k).collect();
        assert!(names.contains(&"shard_plan"));
    }

    #[test]
    fn captured_batch_is_a_valid_layout_name() {
        let m = RunManifest::capture("b");
        assert!(
            crate::env::parse_batch_layout(&m.batch).is_some(),
            "captured batch {:?} must parse as a layout",
            m.batch
        );
    }
}
