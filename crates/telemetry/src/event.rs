//! Event model: levels, field values, and the structured event record.

use serde::{Content, DeError, Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Severity / verbosity levels, most severe first.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    Off = 0,
    Error = 1,
    Info = 2,
    Debug = 3,
    Trace = 4,
}

impl Level {
    pub(crate) fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Off,
            1 => Level::Error,
            2 => Level::Info,
            3 => Level::Debug,
            _ => Level::Trace,
        }
    }

    pub fn as_str(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Parses the `HQNN_LOG` syntax: `off|error|info|debug|trace`.
impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "none" | "0" => Ok(Level::Off),
            "error" => Ok(Level::Error),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            "trace" => Ok(Level::Trace),
            other => Err(format!(
                "unknown log level `{other}` (expected off|error|info|debug|trace)"
            )),
        }
    }
}

/// A dynamically-typed event field.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
        }
    }
}

macro_rules! impl_from_field {
    ($($t:ty => $variant:ident ($conv:expr)),* $(,)?) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self { FieldValue::$variant($conv(v)) }
        }
    )*};
}

impl_from_field! {
    u64 => U64(|v| v),
    u32 => U64(|v: u32| v as u64),
    usize => U64(|v: usize| v as u64),
    i64 => I64(|v| v),
    i32 => I64(|v: i32| v as i64),
    f64 => F64(|v| v),
    f32 => F64(|v: f32| v as f64),
    bool => Bool(|v| v),
    String => Str(|v| v),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

/// One structured telemetry record.
///
/// Serializes to a *flat* JSON object so JSONL logs stay grep- and
/// jq-friendly: `{"ts_us":1234,"level":"info","event":"nn.epoch","epoch":3,…}`.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Microseconds since process start.
    pub ts_us: u64,
    pub level: Level,
    /// Event name, dot-namespaced by subsystem (`qsim.circuit`, `nn.epoch`,
    /// `search.combo`, …).
    pub name: String,
    /// Causal ID of the span this event belongs to (its own ID for `span`
    /// completion events), or `None` outside every span. Serialized as a
    /// 16-digit hex string — JSON consumers (jq, Python) lose u64 precision
    /// past 2^53. Absent in pre-causal-ID logs, hence optional.
    pub span_id: Option<u64>,
    /// Causal ID of the owning span's parent (`span` events only; `None`
    /// for root spans and in pre-causal-ID logs).
    pub parent_id: Option<u64>,
    pub fields: Vec<(String, FieldValue)>,
}

impl Event {
    /// Renders `name key=value key=value` for console output.
    pub fn human_readable(&self) -> String {
        let mut out = self.name.clone();
        for (k, v) in &self.fields {
            out.push(' ');
            out.push_str(k);
            out.push('=');
            out.push_str(&v.to_string());
        }
        out
    }
}

impl Serialize for FieldValue {
    fn to_content(&self) -> Content {
        match self {
            FieldValue::U64(v) => Content::U64(*v),
            FieldValue::I64(v) => Content::I64(*v),
            FieldValue::F64(v) => Content::F64(*v),
            FieldValue::Bool(v) => Content::Bool(*v),
            FieldValue::Str(v) => Content::Str(v.clone()),
        }
    }
}

impl Deserialize for FieldValue {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        match c {
            Content::U64(v) => Ok(FieldValue::U64(*v)),
            Content::I64(v) => Ok(FieldValue::I64(*v)),
            Content::F64(v) => Ok(FieldValue::F64(*v)),
            Content::Bool(v) => Ok(FieldValue::Bool(*v)),
            Content::Str(v) => Ok(FieldValue::Str(v.clone())),
            other => Err(DeError(format!(
                "expected scalar field value, found {}",
                other.kind()
            ))),
        }
    }
}

/// Renders a causal ID as the fixed-width hex form used on the wire.
pub(crate) fn format_span_id(id: u64) -> String {
    format!("{id:016x}")
}

fn parse_span_id(raw: &str) -> Result<u64, DeError> {
    u64::from_str_radix(raw, 16).map_err(|e| DeError(format!("invalid span id {raw:?}: {e}")))
}

impl Serialize for Event {
    fn to_content(&self) -> Content {
        let mut entries = Vec::with_capacity(self.fields.len() + 5);
        entries.push(("ts_us".to_string(), Content::U64(self.ts_us)));
        entries.push((
            "level".to_string(),
            Content::Str(self.level.as_str().to_string()),
        ));
        entries.push(("event".to_string(), Content::Str(self.name.clone())));
        if let Some(id) = self.span_id {
            entries.push(("span_id".to_string(), Content::Str(format_span_id(id))));
        }
        if let Some(id) = self.parent_id {
            entries.push(("parent_id".to_string(), Content::Str(format_span_id(id))));
        }
        for (k, v) in &self.fields {
            entries.push((k.clone(), v.to_content()));
        }
        Content::Map(entries)
    }
}

impl Deserialize for Event {
    fn from_content(c: &Content) -> Result<Self, DeError> {
        let entries = c.as_map("Event")?;
        let mut ts_us = None;
        let mut level = None;
        let mut name = None;
        let mut span_id = None;
        let mut parent_id = None;
        let mut fields = Vec::new();
        for (k, v) in entries {
            match k.as_str() {
                "ts_us" => ts_us = Some(u64::from_content(v)?),
                "level" => {
                    let s = String::from_content(v)?;
                    level = Some(s.parse::<Level>().map_err(DeError::custom)?);
                }
                "event" => name = Some(String::from_content(v)?),
                // Optional for backward compatibility: logs written before
                // causal IDs existed simply leave both as `None`.
                "span_id" => span_id = Some(parse_span_id(&String::from_content(v)?)?),
                "parent_id" => parent_id = Some(parse_span_id(&String::from_content(v)?)?),
                _ => fields.push((k.clone(), FieldValue::from_content(v)?)),
            }
        }
        Ok(Event {
            ts_us: ts_us.ok_or_else(|| DeError::custom("missing `ts_us`"))?,
            level: level.ok_or_else(|| DeError::custom("missing `level`"))?,
            name: name.ok_or_else(|| DeError::custom("missing `event`"))?,
            span_id,
            parent_id,
            fields,
        })
    }
}
