//! Structured grep over trace events.

use crate::model::{ObsError, Trace};
use hqnn_telemetry::Event;

/// One `key=value` filter. All filters given to [`grep`] must match
/// (logical AND).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Filter {
    /// Field name, or one of the built-ins `event`, `level`, `span_id`,
    /// `parent_id`.
    pub key: String,
    /// Value to match, compared against the field's display rendering.
    pub value: String,
}

impl Filter {
    /// Parses the CLI spelling `key=value`.
    pub fn parse(raw: &str) -> Result<Filter, ObsError> {
        match raw.split_once('=') {
            Some((key, value)) if !key.is_empty() => Ok(Filter {
                key: key.to_string(),
                value: value.to_string(),
            }),
            _ => Err(ObsError::BadRequest(format!(
                "filter {raw:?} is not key=value"
            ))),
        }
    }

    fn matches(&self, ev: &Event) -> bool {
        match self.key.as_str() {
            "event" => ev.name == self.value,
            "level" => ev.level.as_str() == self.value,
            "span_id" => matches_id(ev.span_id, &self.value),
            "parent_id" => matches_id(ev.parent_id, &self.value),
            key => ev
                .fields
                .iter()
                .any(|(k, v)| k == key && v.to_string() == self.value),
        }
    }
}

/// Accepts both the zero-padded wire form (`00000000000000c1`) and a bare
/// hex spelling (`c1`).
fn matches_id(id: Option<u64>, value: &str) -> bool {
    match (id, u64::from_str_radix(value.trim_start_matches("0x"), 16)) {
        (Some(id), Ok(want)) => id == want,
        _ => false,
    }
}

/// Filters the trace's events and re-emits the matches as canonical JSONL
/// (one [`Event`] per line, serialized exactly as the telemetry sink writes
/// them — so grep output is itself a loadable trace).
pub fn grep(trace: &Trace, filters: &[Filter]) -> Result<String, ObsError> {
    let mut out = String::new();
    for ev in &trace.events {
        if filters.iter().all(|f| f.matches(ev)) {
            let line = serde_json::to_string(ev)
                .map_err(|e| ObsError::BadRequest(format!("cannot re-serialize event: {e}")))?;
            out.push_str(&line);
            out.push('\n');
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"ts_us":10,"level":"info","event":"study.start","run":"a"}
{"ts_us":50,"level":"debug","event":"span","span_id":"00000000000000c1","parent_id":"00000000000000b1","path":"repro/search","dur_us":30}
{"ts_us":60,"level":"error","event":"nn.health_nan","epoch":3}
"#;

    fn filters(specs: &[&str]) -> Vec<Filter> {
        specs
            .iter()
            .map(|s| Filter::parse(s).expect("filter"))
            .collect()
    }

    #[test]
    fn filters_by_name_level_and_fields() {
        let t = Trace::parse(SAMPLE).expect("parse");
        let by_name = grep(&t, &filters(&["event=span"])).expect("grep");
        assert_eq!(by_name.lines().count(), 1);
        assert!(by_name.contains("repro/search"));

        let by_level = grep(&t, &filters(&["level=error"])).expect("grep");
        assert!(by_level.contains("nn.health_nan"));

        let by_field = grep(&t, &filters(&["epoch=3"])).expect("grep");
        assert_eq!(by_field.lines().count(), 1);

        let conj = grep(&t, &filters(&["event=span", "path=elsewhere"])).expect("grep");
        assert!(conj.is_empty());
    }

    #[test]
    fn span_ids_match_padded_and_bare_hex() {
        let t = Trace::parse(SAMPLE).expect("parse");
        for spelling in ["span_id=00000000000000c1", "span_id=c1", "span_id=0xc1"] {
            let out = grep(&t, &filters(&[spelling])).expect("grep");
            assert_eq!(out.lines().count(), 1, "{spelling}");
        }
        let parent = grep(&t, &filters(&["parent_id=b1"])).expect("grep");
        assert_eq!(parent.lines().count(), 1);
    }

    #[test]
    fn output_is_itself_a_loadable_trace() {
        let t = Trace::parse(SAMPLE).expect("parse");
        let out = grep(&t, &filters(&["event=span"])).expect("grep");
        let reloaded = Trace::parse(&out).expect("reload");
        assert_eq!(reloaded.spans.len(), 1);
        assert_eq!(reloaded.spans[0].span_id, 0xc1);
    }

    #[test]
    fn bad_filter_spelling_errors() {
        assert!(Filter::parse("no-equals").is_err());
        assert!(Filter::parse("=value").is_err());
        assert!(Filter::parse("key=").is_ok()); // empty value is a legal match target
    }
}
