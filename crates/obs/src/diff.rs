//! Per-span-path median comparison of two traces, with a MAD noise band.

use crate::model::{fmt_us, mad_u64, median_u64, Trace};
use hqnn_perfbench::GateConfig;
use std::collections::BTreeSet;

/// Compares span durations between a baseline and a current trace.
///
/// For every span path present in either trace, the per-occurrence duration
/// medians are compared; the relative delta is judged against the same
/// noise band the perfbench regression gate uses —
/// `max(rel_threshold, mad_multiplier × max(MAD_a, MAD_b) / median_a)` with
/// the default [`GateConfig`] (±10 %, 4×MAD). Paths outside the band are
/// flagged `REGRESSION`/`IMPROVEMENT`; inside it, `within noise`. Paths on
/// only one side are listed as `new`/`gone` (never flagged: a renamed span
/// is not a perf change).
pub fn diff(baseline: &Trace, current: &Trace, config: &GateConfig) -> String {
    let base = baseline.durations_by_path();
    let cur = current.durations_by_path();
    let paths: BTreeSet<&str> = base.keys().chain(cur.keys()).copied().collect();

    let mut out = String::new();
    if paths.is_empty() {
        out.push_str("no spans in either trace\n");
        return out;
    }
    out.push_str(&format!(
        "{:<44} {:>7} {:>10} {:>10} {:>8} {:>8}  {}\n",
        "span path", "n(a/b)", "median a", "median b", "delta", "band", "verdict"
    ));
    let mut regressions = 0usize;
    let mut improvements = 0usize;
    for path in paths {
        match (base.get(path), cur.get(path)) {
            (Some(a), Some(b)) => {
                let med_a = median_u64(a);
                let med_b = median_u64(b);
                let (rel, allowed) = band(a, b, med_a, med_b, config);
                let verdict = if rel > allowed {
                    regressions += 1;
                    "REGRESSION"
                } else if rel < -allowed {
                    improvements += 1;
                    "IMPROVEMENT"
                } else {
                    "within noise"
                };
                out.push_str(&format!(
                    "{:<44} {:>7} {:>10} {:>10} {:>7.1}% {:>7.1}%  {}\n",
                    path,
                    format!("{}/{}", a.len(), b.len()),
                    fmt_us(med_a),
                    fmt_us(med_b),
                    rel * 100.0,
                    allowed * 100.0,
                    verdict
                ));
            }
            (None, Some(b)) => {
                out.push_str(&format!(
                    "{:<44} {:>7} {:>10} {:>10} {:>8} {:>8}  new\n",
                    path,
                    format!("0/{}", b.len()),
                    "-",
                    fmt_us(median_u64(b)),
                    "-",
                    "-"
                ));
            }
            (Some(a), None) => {
                out.push_str(&format!(
                    "{:<44} {:>7} {:>10} {:>10} {:>8} {:>8}  gone\n",
                    path,
                    format!("{}/0", a.len()),
                    fmt_us(median_u64(a)),
                    "-",
                    "-",
                    "-"
                ));
            }
            (None, None) => {}
        }
    }
    out.push_str(&format!(
        "summary: {regressions} regression(s), {improvements} improvement(s)\n"
    ));
    out
}

/// `(relative delta, allowed band)` for one path's sample sets.
fn band(a: &[u64], b: &[u64], med_a: u64, med_b: u64, config: &GateConfig) -> (f64, f64) {
    if med_a == 0 {
        // A zero baseline median (sub-µs spans) makes relative deltas
        // meaningless; call everything noise rather than divide by zero.
        return (0.0, config.rel_threshold);
    }
    let rel = (med_b as f64 - med_a as f64) / med_a as f64;
    let mad = mad_u64(a).max(mad_u64(b)) as f64;
    let allowed = config
        .rel_threshold
        .max(config.mad_multiplier * mad / med_a as f64);
    (rel, allowed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_line(ts: u64, path: &str, dur: u64) -> String {
        format!(r#"{{"ts_us":{ts},"level":"debug","event":"span","path":"{path}","dur_us":{dur}}}"#)
    }

    fn trace_of(durs: &[(&str, u64)]) -> Trace {
        let lines: Vec<String> = durs
            .iter()
            .enumerate()
            .map(|(i, (p, d))| span_line(i as u64, p, *d))
            .collect();
        Trace::parse(&lines.join("\n")).expect("parse")
    }

    #[test]
    fn flags_large_deltas_and_tolerates_noise() {
        let a = trace_of(&[("run/hot", 100), ("run/hot", 102), ("run/cold", 50)]);
        let b = trace_of(&[("run/hot", 160), ("run/hot", 158), ("run/cold", 52)]);
        let report = diff(&a, &b, &GateConfig::default());
        assert!(report.contains("REGRESSION"), "{report}");
        assert!(report.contains("within noise"), "{report}");
        assert!(
            report.contains("summary: 1 regression(s), 0 improvement(s)"),
            "{report}"
        );
    }

    #[test]
    fn improvements_and_membership_changes_are_reported() {
        let a = trace_of(&[("run/slow", 200), ("run/gone", 10)]);
        let b = trace_of(&[("run/slow", 100), ("run/new", 10)]);
        let report = diff(&a, &b, &GateConfig::default());
        assert!(report.contains("IMPROVEMENT"), "{report}");
        assert!(report.contains("new"), "{report}");
        assert!(report.contains("gone"), "{report}");
        assert!(report.contains("1 improvement(s)"), "{report}");
    }

    #[test]
    fn wide_mad_widens_the_band() {
        // Baseline is noisy (MAD 40 around median 100 → band 160%), so even
        // a 50% delta stays within noise.
        let a = trace_of(&[("p", 60), ("p", 100), ("p", 140)]);
        let b = trace_of(&[("p", 150), ("p", 150), ("p", 150)]);
        let report = diff(&a, &b, &GateConfig::default());
        assert!(report.contains("within noise"), "{report}");
    }

    #[test]
    fn empty_traces_say_so() {
        let empty = Trace::parse("").expect("parse");
        assert_eq!(
            diff(&empty, &empty, &GateConfig::default()),
            "no spans in either trace\n"
        );
    }
}
