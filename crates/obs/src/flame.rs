//! Collapsed-stack flamegraph diff output.

use crate::model::Trace;
use std::collections::BTreeMap;

/// What a collapsed stack's weight counts.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FlameWeight {
    /// Self time in microseconds (cumulative minus direct children).
    TimeUs,
    /// Self allocated bytes (requires traces recorded with `HQNN_ALLOC=1`).
    AllocBytes,
}

impl FlameWeight {
    /// Parses the CLI spelling (`time` | `bytes`).
    pub fn parse(raw: &str) -> Option<FlameWeight> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "time" | "us" | "time-us" => Some(FlameWeight::TimeUs),
            "bytes" | "alloc" | "alloc-bytes" => Some(FlameWeight::AllocBytes),
            _ => None,
        }
    }
}

/// Emits a two-column collapsed-stack diff in the `difffolded.pl` format
/// consumed by `flamegraph.pl --negate`:
///
/// ```text
/// repro;search;combo 1200 1500
/// ```
///
/// Each line is a semicolon-joined span path followed by the baseline and
/// current *self* weight (time in µs, or allocated bytes with
/// `FlameWeight::AllocBytes`). Self weight is the path's total minus its
/// direct children's totals, clamped at zero — children that ran on worker
/// threads can out-measure their parent's same-thread window, and a
/// negative flame frame is meaningless. Stacks are sorted, so byte-equal
/// inputs give byte-equal output.
pub fn flamegraph_diff(baseline: &Trace, current: &Trace, weight: FlameWeight) -> String {
    let base = self_weights(baseline, weight);
    let cur = self_weights(current, weight);
    let stacks: std::collections::BTreeSet<&str> =
        base.keys().chain(cur.keys()).map(String::as_str).collect();
    let mut out = String::new();
    for stack in stacks {
        let a = base.get(stack).copied().unwrap_or(0);
        let b = cur.get(stack).copied().unwrap_or(0);
        out.push_str(&format!("{} {} {}\n", stack.replace('/', ";"), a, b));
    }
    out
}

/// Per-path self weight: total minus direct-children totals, clamped at 0.
fn self_weights(trace: &Trace, weight: FlameWeight) -> BTreeMap<String, u64> {
    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for s in &trace.spans {
        let w = match weight {
            FlameWeight::TimeUs => s.dur_us,
            FlameWeight::AllocBytes => s.alloc_bytes,
        };
        *totals.entry(s.path.as_str()).or_default() += w;
    }
    totals
        .iter()
        .map(|(path, total)| {
            let children: u64 = totals
                .iter()
                .filter(|(p, _)| {
                    p.strip_prefix(*path)
                        .and_then(|rest| rest.strip_prefix('/'))
                        .is_some_and(|rest| !rest.contains('/'))
                })
                .map(|(_, w)| w)
                .sum();
            (path.to_string(), total.saturating_sub(children))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace_of(spans: &[(&str, u64, u64)]) -> Trace {
        let lines: Vec<String> = spans
            .iter()
            .enumerate()
            .map(|(i, (p, dur, bytes))| {
                format!(
                    r#"{{"ts_us":{i},"level":"debug","event":"span","path":"{p}","dur_us":{dur},"alloc_bytes":{bytes},"alloc_count":1,"peak_bytes":0}}"#
                )
            })
            .collect();
        Trace::parse(&lines.join("\n")).expect("parse")
    }

    #[test]
    fn time_weights_are_self_time() {
        let a = trace_of(&[("run", 100, 0), ("run/step", 60, 0)]);
        let b = trace_of(&[("run", 130, 0), ("run/step", 70, 0)]);
        let out = flamegraph_diff(&a, &b, FlameWeight::TimeUs);
        assert_eq!(out, "run 40 60\nrun;step 60 70\n");
    }

    #[test]
    fn byte_weights_and_missing_stacks_are_zero_filled() {
        let a = trace_of(&[("run", 100, 4096)]);
        let b = trace_of(&[("run", 100, 1024), ("run/new", 10, 512)]);
        let out = flamegraph_diff(&a, &b, FlameWeight::AllocBytes);
        assert_eq!(out, "run 4096 512\nrun;new 0 512\n");
    }

    #[test]
    fn worker_heavy_children_clamp_to_zero() {
        // A parent whose same-thread window saw less than its (worker-side)
        // children must not produce a negative frame.
        let a = trace_of(&[("run", 10, 0), ("run/w", 100, 0)]);
        let out = flamegraph_diff(&a, &a, FlameWeight::TimeUs);
        assert_eq!(out, "run 0 0\nrun;w 100 100\n");
    }

    #[test]
    fn weight_parsing() {
        assert_eq!(FlameWeight::parse("time"), Some(FlameWeight::TimeUs));
        assert_eq!(FlameWeight::parse("BYTES"), Some(FlameWeight::AllocBytes));
        assert_eq!(FlameWeight::parse("flops"), None);
    }
}
