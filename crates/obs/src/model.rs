//! Loading and indexing JSONL telemetry traces.

use hqnn_telemetry::{Event, FieldValue};
use std::collections::BTreeMap;
use std::fmt;
use std::path::Path;

/// Error loading or analysing a trace.
#[derive(Debug)]
pub enum ObsError {
    /// Reading the file failed.
    Io {
        /// The path that failed to read.
        path: String,
        /// The underlying IO error, rendered.
        error: String,
    },
    /// A line was not a valid telemetry event.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// What went wrong.
        error: String,
    },
    /// The request itself was malformed (bad filter syntax, unknown weight).
    BadRequest(
        /// Human-readable description of the problem.
        String,
    ),
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Io { path, error } => write!(f, "cannot read {path}: {error}"),
            ObsError::Parse { line, error } => write!(f, "line {line}: {error}"),
            ObsError::BadRequest(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ObsError {}

/// One completed span occurrence reconstructed from a `span` event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Slash-separated span path (`repro/search/combo`).
    pub path: String,
    /// Wall-clock duration in microseconds.
    pub dur_us: u64,
    /// Timestamp of the completion event (µs since process start).
    pub ts_us: u64,
    /// Causal ID of this occurrence; `0` in logs that predate causal IDs.
    pub span_id: u64,
    /// Causal ID of the parent occurrence; `0` for roots and legacy logs.
    pub parent_id: u64,
    /// Allocations inside the span's same-thread subtree (`HQNN_ALLOC=1`).
    pub alloc_count: u64,
    /// Bytes allocated inside the span's same-thread subtree.
    pub alloc_bytes: u64,
    /// Peak live bytes above the level at span entry.
    pub peak_bytes: u64,
}

/// A fully-parsed JSONL trace: raw events plus the span and metric indexes
/// every analysis works from.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    /// Every event, in file order.
    pub events: Vec<Event>,
    /// Every span completion, in file order.
    pub spans: Vec<SpanRecord>,
    /// Counter values from the *first* `telemetry.metrics` event.
    pub counters_first: BTreeMap<String, u64>,
    /// Counter values from the *last* `telemetry.metrics` event. With one
    /// flush per run (the common case) this is the run total.
    pub counters_last: BTreeMap<String, u64>,
    /// Gauge values from the last `telemetry.metrics` event.
    pub gauges: BTreeMap<String, f64>,
    /// How many `telemetry.metrics` events the trace carried.
    pub metrics_events: usize,
}

impl Trace {
    /// Loads and parses a JSONL trace file.
    pub fn load(path: &Path) -> Result<Trace, ObsError> {
        let text = std::fs::read_to_string(path).map_err(|e| ObsError::Io {
            path: path.display().to_string(),
            error: e.to_string(),
        })?;
        Trace::parse(&text)
    }

    /// Parses a JSONL trace from text. Blank lines are skipped; any other
    /// unparsable line is an error (truncated tails should be fixed at the
    /// source, not silently dropped from analyses).
    pub fn parse(text: &str) -> Result<Trace, ObsError> {
        let mut trace = Trace::default();
        for (idx, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let ev: Event = serde_json::from_str(line).map_err(|e| ObsError::Parse {
                line: idx + 1,
                error: e.to_string(),
            })?;
            trace.index(&ev);
            trace.events.push(ev);
        }
        Ok(trace)
    }

    fn index(&mut self, ev: &Event) {
        if ev.name == "span" {
            if let Some(path) = field_str(ev, "path") {
                self.spans.push(SpanRecord {
                    path: path.to_string(),
                    dur_us: field_u64(ev, "dur_us").unwrap_or(0),
                    ts_us: ev.ts_us,
                    span_id: ev.span_id.unwrap_or(0),
                    parent_id: ev.parent_id.unwrap_or(0),
                    alloc_count: field_u64(ev, "alloc_count").unwrap_or(0),
                    alloc_bytes: field_u64(ev, "alloc_bytes").unwrap_or(0),
                    peak_bytes: field_u64(ev, "peak_bytes").unwrap_or(0),
                });
            }
        } else if ev.name == "telemetry.metrics" {
            self.metrics_events += 1;
            let mut counters = BTreeMap::new();
            let mut gauges = BTreeMap::new();
            for (k, v) in &ev.fields {
                match v {
                    FieldValue::U64(n) => {
                        counters.insert(k.clone(), *n);
                    }
                    FieldValue::F64(g) => {
                        gauges.insert(k.clone(), *g);
                    }
                    _ => {}
                }
            }
            if self.metrics_events == 1 {
                self.counters_first = counters.clone();
            }
            self.counters_last = counters;
            self.gauges = gauges;
        }
    }

    /// `true` when any span in the trace carries a causal ID — the signal to
    /// run instance-level (rather than path-aggregate) analyses.
    pub fn has_causal_ids(&self) -> bool {
        self.spans.iter().any(|s| s.span_id != 0)
    }

    /// Counter deltas over the trace: last-minus-first when the trace holds
    /// more than one `telemetry.metrics` flush, else the final totals.
    /// Counters absent from the first flush count from zero.
    pub fn counter_deltas(&self) -> BTreeMap<String, u64> {
        self.counters_last
            .iter()
            .map(|(k, last)| {
                let first = if self.metrics_events > 1 {
                    self.counters_first.get(k).copied().unwrap_or(0)
                } else {
                    0
                };
                (k.clone(), last.saturating_sub(first))
            })
            .collect()
    }

    /// Span durations (µs) grouped by path, in path order. File order is
    /// preserved within each path so medians are reproducible.
    pub fn durations_by_path(&self) -> BTreeMap<&str, Vec<u64>> {
        let mut by_path: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
        for s in &self.spans {
            by_path.entry(s.path.as_str()).or_default().push(s.dur_us);
        }
        by_path
    }
}

/// A `u64`-ish field value (accepts the integer encodings JSON round-trips
/// can produce).
pub(crate) fn field_u64(ev: &Event, key: &str) -> Option<u64> {
    ev.fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::U64(n) => Some(*n),
            FieldValue::I64(n) => u64::try_from(*n).ok(),
            _ => None,
        })
}

/// A string field value.
pub(crate) fn field_str<'a>(ev: &'a Event, key: &str) -> Option<&'a str> {
    ev.fields
        .iter()
        .find(|(k, _)| k == key)
        .and_then(|(_, v)| match v {
            FieldValue::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

/// Upper median of a sorted-on-demand sample set (`sorted[len/2]`): cheap,
/// integer-exact, and stable for the small per-path sample counts traces
/// produce. Returns 0 for an empty set.
pub(crate) fn median_u64(samples: &[u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    sorted[sorted.len() / 2]
}

/// Median absolute deviation around [`median_u64`], same convention.
pub(crate) fn mad_u64(samples: &[u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let med = median_u64(samples);
    let devs: Vec<u64> = samples.iter().map(|&s| s.abs_diff(med)).collect();
    median_u64(&devs)
}

/// Nearest-rank percentile (`p` in 0..=100) of the samples.
pub(crate) fn percentile_u64(samples: &[u64], p: u64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (p * sorted.len() as u64).div_ceil(100).max(1) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Renders a µs quantity the way the telemetry profile does (ns granularity
/// is below JSONL resolution, so the ladder starts at µs).
pub(crate) fn fmt_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// Renders a byte count with binary suffixes (mirrors the profile report).
pub(crate) fn fmt_bytes(bytes: u64) -> String {
    const KIB: u64 = 1 << 10;
    const MIB: u64 = 1 << 20;
    const GIB: u64 = 1 << 30;
    if bytes >= GIB {
        format!("{:.2}GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.2}MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1}KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{"ts_us":10,"level":"info","event":"study.start","run":"a"}
{"ts_us":50,"level":"debug","event":"span","span_id":"00000000000000c1","parent_id":"00000000000000b1","path":"repro/search/combo","dur_us":30,"alloc_count":4,"alloc_bytes":2048,"peak_bytes":1024}
{"ts_us":90,"level":"debug","event":"span","span_id":"00000000000000b1","parent_id":"00000000000000a1","path":"repro/search","dur_us":80}
{"ts_us":95,"level":"debug","event":"span","span_id":"00000000000000a1","path":"repro","dur_us":92}
{"ts_us":99,"level":"debug","event":"telemetry.metrics","qsim.gate_applies":1000,"train.loss":0.5}
"#;

    #[test]
    fn parses_spans_metrics_and_ids() {
        let t = Trace::parse(SAMPLE).expect("parse");
        assert_eq!(t.events.len(), 5);
        assert_eq!(t.spans.len(), 3);
        assert!(t.has_causal_ids());
        assert_eq!(t.spans[0].span_id, 0xc1);
        assert_eq!(t.spans[0].parent_id, 0xb1);
        assert_eq!(t.spans[0].alloc_bytes, 2048);
        assert_eq!(t.spans[2].parent_id, 0);
        assert_eq!(t.counters_last.get("qsim.gate_applies"), Some(&1000));
        assert_eq!(t.gauges.get("train.loss"), Some(&0.5));
        assert_eq!(t.counter_deltas().get("qsim.gate_applies"), Some(&1000));
    }

    #[test]
    fn legacy_lines_without_ids_parse_as_zero() {
        let legacy =
            r#"{"ts_us":123,"level":"debug","event":"span","path":"repro/train","dur_us":1000}"#;
        let t = Trace::parse(legacy).expect("parse");
        assert_eq!(t.spans.len(), 1);
        assert!(!t.has_causal_ids());
        assert_eq!(t.spans[0].span_id, 0);
        assert_eq!(t.spans[0].parent_id, 0);
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        let bad = "{\"ts_us\":1,\"level\":\"info\",\"event\":\"x\"}\nnot json\n";
        match Trace::parse(bad) {
            Err(ObsError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn stats_helpers_are_integer_exact() {
        assert_eq!(median_u64(&[5, 1, 9]), 5);
        assert_eq!(median_u64(&[4, 2]), 4);
        assert_eq!(median_u64(&[]), 0);
        assert_eq!(mad_u64(&[10, 10, 16]), 0);
        assert_eq!(percentile_u64(&[1, 2, 3, 4], 50), 2);
        assert_eq!(percentile_u64(&[1, 2, 3, 4], 99), 4);
        assert_eq!(fmt_us(950), "950µs");
        assert_eq!(fmt_us(1500), "1.50ms");
        assert_eq!(fmt_us(2_000_000), "2.00s");
        assert_eq!(fmt_bytes(2048), "2.0KiB");
    }
}
