//! Span-tree rendering with latency percentiles, alloc columns, and
//! counter deltas.

use crate::model::{fmt_bytes, fmt_us, median_u64, percentile_u64, Trace};
use std::collections::BTreeMap;

struct PathAgg {
    count: u64,
    total_us: u64,
    samples: Vec<u64>,
    alloc_count: u64,
    alloc_bytes: u64,
    peak_bytes: u64,
}

/// Renders the span tree of a trace: one row per span path in depth-first
/// order with occurrence count, cumulative time, p50/p95/p99 durations
/// (nearest-rank over the path's occurrences), and — when the trace was
/// recorded with `HQNN_ALLOC=1` — allocation totals per path. Counter
/// deltas (see [`Trace::counter_deltas`]) follow the tree.
pub fn tree(trace: &Trace) -> String {
    let mut out = String::new();
    if trace.spans.is_empty() {
        out.push_str("no spans in trace\n");
    } else {
        let mut aggs: BTreeMap<&str, PathAgg> = BTreeMap::new();
        for s in &trace.spans {
            let agg = aggs.entry(s.path.as_str()).or_insert_with(|| PathAgg {
                count: 0,
                total_us: 0,
                samples: Vec::new(),
                alloc_count: 0,
                alloc_bytes: 0,
                peak_bytes: 0,
            });
            agg.count += 1;
            agg.total_us += s.dur_us;
            agg.samples.push(s.dur_us);
            agg.alloc_count += s.alloc_count;
            agg.alloc_bytes += s.alloc_bytes;
            agg.peak_bytes = agg.peak_bytes.max(s.peak_bytes);
        }
        let has_alloc = aggs
            .values()
            .any(|a| a.alloc_count > 0 || a.alloc_bytes > 0 || a.peak_bytes > 0);
        out.push_str(&format!(
            "{:<44} {:>7} {:>10} {:>9} {:>9} {:>9}",
            "span", "count", "total", "p50", "p95", "p99"
        ));
        if has_alloc {
            out.push_str(&format!(
                " {:>9} {:>10} {:>10}",
                "allocs", "alloc-mem", "peak"
            ));
        }
        out.push('\n');
        for (path, agg) in &aggs {
            let depth = path.matches('/').count();
            let name = path.rsplit('/').next().unwrap_or(path);
            out.push_str(&format!(
                "{:<44} {:>7} {:>10} {:>9} {:>9} {:>9}",
                format!("{}{}", "  ".repeat(depth), name),
                agg.count,
                fmt_us(agg.total_us),
                fmt_us(median_u64(&agg.samples)),
                fmt_us(percentile_u64(&agg.samples, 95)),
                fmt_us(percentile_u64(&agg.samples, 99)),
            ));
            if has_alloc {
                out.push_str(&format!(
                    " {:>9} {:>10} {:>10}",
                    agg.alloc_count,
                    fmt_bytes(agg.alloc_bytes),
                    fmt_bytes(agg.peak_bytes),
                ));
            }
            out.push('\n');
        }
    }

    let deltas = trace.counter_deltas();
    if !deltas.is_empty() {
        out.push_str(&format!(
            "counters ({})\n",
            if trace.metrics_events > 1 {
                "delta last-first"
            } else {
                "run totals"
            }
        ));
        for (name, value) in &deltas {
            out.push_str(&format!("  {name:<42} {value:>20}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_tree_percentiles_and_counters() {
        let trace = Trace::parse(concat!(
            r#"{"ts_us":10,"level":"debug","event":"span","path":"run/step","dur_us":40}"#,
            "\n",
            r#"{"ts_us":20,"level":"debug","event":"span","path":"run/step","dur_us":60}"#,
            "\n",
            r#"{"ts_us":30,"level":"debug","event":"span","path":"run","dur_us":120}"#,
            "\n",
            r#"{"ts_us":40,"level":"debug","event":"telemetry.metrics","par.items":64}"#,
        ))
        .expect("parse");
        let report = tree(&trace);
        assert!(report.contains("run"), "{report}");
        assert!(report.contains("  step"), "{report}");
        assert!(report.contains("60µs"), "{report}"); // p50 upper median of {40,60}
        assert!(report.contains("counters (run totals)"), "{report}");
        assert!(report.contains("par.items"), "{report}");
        assert!(!report.contains("alloc-mem"), "{report}");
        assert_eq!(report, tree(&trace));
    }

    #[test]
    fn alloc_columns_appear_when_trace_has_alloc_data() {
        let trace = Trace::parse(
            r#"{"ts_us":10,"level":"debug","event":"span","path":"run","dur_us":40,"alloc_count":3,"alloc_bytes":4096,"peak_bytes":2048}"#,
        )
        .expect("parse");
        let report = tree(&trace);
        assert!(report.contains("alloc-mem"), "{report}");
        assert!(report.contains("4.0KiB"), "{report}");
        assert!(report.contains("2.0KiB"), "{report}");
    }
}
