//! Critical-path extraction: the longest causal chain of spans.

use crate::model::{fmt_us, Trace};
use std::collections::BTreeMap;

/// Renders the critical path of a trace: the chain of span occurrences,
/// root to leaf, that dominates wall-clock time, with per-hop self time
/// (duration minus the duration of its direct children on the chain's
/// instance tree).
///
/// With causal IDs the chain follows real parent→child edges between span
/// *occurrences*; ties are broken by (duration desc, path asc, span ID asc)
/// so the output is deterministic. Legacy traces (no `span_id`) fall back
/// to aggregating durations by span path and descending the path-prefix
/// tree — coarser, but still a faithful "where did the time go" answer.
pub fn critical_path(trace: &Trace) -> String {
    let mut out = String::new();
    if trace.spans.is_empty() {
        out.push_str("no spans in trace\n");
        return out;
    }
    if trace.has_causal_ids() {
        out.push_str("critical path (causal span instances)\n");
        render_causal(trace, &mut out);
    } else {
        out.push_str("critical path (path aggregate; trace has no span IDs)\n");
        render_aggregate(trace, &mut out);
    }
    out
}

/// One hop of the rendered chain.
struct Hop {
    path: String,
    dur_us: u64,
    self_us: u64,
    span_id: u64,
}

fn render_hops(hops: &[Hop], show_ids: bool, out: &mut String) {
    out.push_str(&format!(
        "{:<52} {:>10} {:>10} {:>7}{}\n",
        "span",
        "dur",
        "self",
        "self%",
        if show_ids { "  span_id" } else { "" }
    ));
    let total: u64 = hops.first().map(|h| h.dur_us).unwrap_or(0);
    for (depth, hop) in hops.iter().enumerate() {
        let name = hop.path.rsplit('/').next().unwrap_or(&hop.path);
        let pct = if total > 0 {
            100.0 * hop.self_us as f64 / total as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:<52} {:>10} {:>10} {:>6.1}%{}\n",
            format!("{}{}", "  ".repeat(depth), name),
            fmt_us(hop.dur_us),
            fmt_us(hop.self_us),
            pct,
            if show_ids {
                format!("  {:016x}", hop.span_id)
            } else {
                String::new()
            }
        ));
    }
    if let Some(first) = hops.first() {
        out.push_str(&format!(
            "chain: {} hops, {} total\n",
            hops.len(),
            fmt_us(first.dur_us)
        ));
    }
}

fn render_causal(trace: &Trace, out: &mut String) {
    // Index occurrences by ID; a duplicate ID (malformed trace) keeps the
    // longer occurrence so the analysis stays total rather than failing.
    let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, s) in trace.spans.iter().enumerate() {
        if s.span_id == 0 {
            continue;
        }
        match by_id.get(&s.span_id) {
            Some(&prev) if trace.spans[prev].dur_us >= s.dur_us => {}
            _ => {
                by_id.insert(s.span_id, i);
            }
        }
    }
    let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
    let mut roots: Vec<usize> = Vec::new();
    for &i in by_id.values() {
        let s = &trace.spans[i];
        if s.parent_id != 0 && by_id.contains_key(&s.parent_id) {
            children.entry(s.parent_id).or_default().push(i);
        } else {
            roots.push(i);
        }
    }

    let pick = |candidates: &[usize]| -> Option<usize> {
        candidates.iter().copied().min_by(|&a, &b| {
            let (sa, sb) = (&trace.spans[a], &trace.spans[b]);
            sb.dur_us
                .cmp(&sa.dur_us)
                .then_with(|| sa.path.cmp(&sb.path))
                .then_with(|| sa.span_id.cmp(&sb.span_id))
        })
    };

    let mut hops: Vec<Hop> = Vec::new();
    let mut cursor = pick(&roots);
    while let Some(i) = cursor {
        let s = &trace.spans[i];
        let kids = children.get(&s.span_id).map(Vec::as_slice).unwrap_or(&[]);
        let kids_total: u64 = kids.iter().map(|&k| trace.spans[k].dur_us).sum();
        hops.push(Hop {
            path: s.path.clone(),
            dur_us: s.dur_us,
            self_us: s.dur_us.saturating_sub(kids_total),
            span_id: s.span_id,
        });
        cursor = pick(kids);
    }
    render_hops(&hops, true, out);
}

fn render_aggregate(trace: &Trace, out: &mut String) {
    let mut totals: BTreeMap<&str, u64> = BTreeMap::new();
    for s in &trace.spans {
        *totals.entry(s.path.as_str()).or_default() += s.dur_us;
    }
    let direct_children = |path: &str| -> Vec<&str> {
        totals
            .keys()
            .copied()
            .filter(|p| {
                p.strip_prefix(path)
                    .and_then(|rest| rest.strip_prefix('/'))
                    .is_some_and(|rest| !rest.contains('/'))
            })
            .collect()
    };
    let pick = |candidates: &[&str]| -> Option<String> {
        candidates
            .iter()
            .min_by(|a, b| totals[*b].cmp(&totals[*a]).then_with(|| a.cmp(b)))
            .map(|p| p.to_string())
    };

    let roots: Vec<&str> = totals
        .keys()
        .copied()
        .filter(|p| !p.contains('/'))
        .collect();
    let mut hops: Vec<Hop> = Vec::new();
    let mut cursor = pick(&roots);
    while let Some(path) = cursor {
        let kids = direct_children(&path);
        let kids_total: u64 = kids.iter().map(|k| totals[k]).sum();
        let dur = totals[path.as_str()];
        hops.push(Hop {
            path: path.clone(),
            dur_us: dur,
            self_us: dur.saturating_sub(kids_total),
            span_id: 0,
        });
        cursor = pick(&kids);
    }
    render_hops(&hops, false, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn causal_chain_follows_instance_edges() {
        let trace = Trace::parse(concat!(
            r#"{"ts_us":50,"level":"debug","event":"span","span_id":"00000000000000c1","parent_id":"00000000000000b1","path":"root/mid/leaf","dur_us":30}"#,
            "\n",
            r#"{"ts_us":60,"level":"debug","event":"span","span_id":"00000000000000c2","parent_id":"00000000000000b1","path":"root/mid/leaf","dur_us":45}"#,
            "\n",
            r#"{"ts_us":90,"level":"debug","event":"span","span_id":"00000000000000b1","parent_id":"00000000000000a1","path":"root/mid","dur_us":80}"#,
            "\n",
            r#"{"ts_us":95,"level":"debug","event":"span","span_id":"00000000000000a1","path":"root","dur_us":92}"#,
        ))
        .expect("parse");
        let report = critical_path(&trace);
        assert!(report.contains("causal"), "{report}");
        // The chain picks the *longer* leaf occurrence (c2, 45µs).
        assert!(report.contains("00000000000000c2"), "{report}");
        assert!(!report.contains("00000000000000c1"), "{report}");
        assert!(report.contains("chain: 3 hops"), "{report}");
        // Root self time: 92 - 80 = 12µs.
        assert!(report.contains("12µs"), "{report}");
    }

    #[test]
    fn legacy_trace_uses_path_aggregate_fallback() {
        let trace = Trace::parse(concat!(
            r#"{"ts_us":10,"level":"debug","event":"span","path":"run/step","dur_us":40}"#,
            "\n",
            r#"{"ts_us":20,"level":"debug","event":"span","path":"run/step","dur_us":50}"#,
            "\n",
            r#"{"ts_us":30,"level":"debug","event":"span","path":"run","dur_us":100}"#,
        ))
        .expect("parse");
        let report = critical_path(&trace);
        assert!(report.contains("path aggregate"), "{report}");
        assert!(report.contains("chain: 2 hops"), "{report}");
        // run self = 100 - 90 aggregated children.
        assert!(report.contains("10µs"), "{report}");
    }

    #[test]
    fn empty_trace_says_so() {
        let trace = Trace::parse("").expect("parse");
        assert_eq!(critical_path(&trace), "no spans in trace\n");
    }

    #[test]
    fn deterministic_output() {
        let src = concat!(
            r#"{"ts_us":50,"level":"debug","event":"span","span_id":"0000000000000001","path":"a","dur_us":30}"#,
            "\n",
            r#"{"ts_us":51,"level":"debug","event":"span","span_id":"0000000000000002","path":"b","dur_us":30}"#,
        );
        let t = Trace::parse(src).expect("parse");
        let first = critical_path(&t);
        // Equal-duration roots tie-break on path: `a` wins, every time.
        assert!(
            first.lines().nth(2).is_some_and(|l| l.starts_with('a')),
            "{first}"
        );
        assert_eq!(first, critical_path(&t));
    }
}
