//! `hqnn-obs` — trace analysis for hqnn JSONL telemetry logs.
//!
//! ```text
//! hqnn-obs critical-path trace.jsonl
//! hqnn-obs tree trace.jsonl
//! hqnn-obs diff baseline.jsonl current.jsonl
//! hqnn-obs grep trace.jsonl event=span level=debug
//! hqnn-obs flamegraph-diff baseline.jsonl current.jsonl --weight bytes
//! ```

use hqnn_obs::{critical_path, diff, flamegraph_diff, grep, tree, Filter, FlameWeight, Trace};
use hqnn_perfbench::GateConfig;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: hqnn-obs <subcommand> [args]\n\
     \n\
     subcommands:\n\
     \x20 critical-path <trace.jsonl>              longest causal span chain with per-hop self time\n\
     \x20 tree <trace.jsonl>                       span tree with p50/p95/p99, alloc columns, counters\n\
     \x20 diff <a.jsonl> <b.jsonl>                 per-span-path median deltas with a MAD noise band\n\
     \x20 grep <trace.jsonl> key=value [key=value ...]\n\
     \x20                                          filter events; emits matching JSONL lines\n\
     \x20 flamegraph-diff <a.jsonl> <b.jsonl> [--weight time|bytes]\n\
     \x20                                          collapsed stacks with base/current self weights";

fn load(path: &str) -> Result<Trace, String> {
    Trace::load(Path::new(path)).map_err(|e| e.to_string())
}

fn run(argv: &[String]) -> Result<String, String> {
    let sub = argv.first().map(String::as_str).ok_or(USAGE)?;
    match (sub, &argv[1..]) {
        ("critical-path", [trace]) => Ok(critical_path(&load(trace)?)),
        ("tree", [trace]) => Ok(tree(&load(trace)?)),
        ("diff", [a, b]) => Ok(diff(&load(a)?, &load(b)?, &GateConfig::default())),
        ("grep", [trace, specs @ ..]) if !specs.is_empty() => {
            let filters = specs
                .iter()
                .map(|s| Filter::parse(s).map_err(|e| e.to_string()))
                .collect::<Result<Vec<_>, _>>()?;
            grep(&load(trace)?, &filters).map_err(|e| e.to_string())
        }
        ("flamegraph-diff", rest) => {
            let mut paths = Vec::new();
            let mut weight = FlameWeight::TimeUs;
            let mut it = rest.iter();
            while let Some(arg) = it.next() {
                if arg == "--weight" {
                    let raw = it.next().ok_or("--weight needs a value (time|bytes)")?;
                    weight = FlameWeight::parse(raw)
                        .ok_or_else(|| format!("unknown weight {raw:?} (time|bytes)"))?;
                } else {
                    paths.push(arg.clone());
                }
            }
            match paths.as_slice() {
                [a, b] => Ok(flamegraph_diff(&load(a)?, &load(b)?, weight)),
                _ => Err(USAGE.to_string()),
            }
        }
        ("--help" | "-h" | "help", _) => Ok(format!("{USAGE}\n")),
        _ => Err(USAGE.to_string()),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(&argv) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("hqnn-obs: {msg}");
            ExitCode::from(2)
        }
    }
}
