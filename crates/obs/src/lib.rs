//! Trace-analysis engine for hqnn JSONL telemetry logs.
//!
//! Every analysis consumes the JSONL files written by
//! `hqnn_telemetry::add_jsonl_sink` (one [`hqnn_telemetry::Event`] per line)
//! and produces a deterministic plain-text report — same file in, same bytes
//! out, independent of host, thread count, or locale. That makes the outputs
//! safe to commit as golden files and safe to cite in perf discussions.
//!
//! The analyses:
//!
//! - [`critical::critical_path`] — the longest causal chain of spans, with
//!   per-hop self time. Uses `span_id`/`parent_id` causal edges when the
//!   trace carries them, and falls back to path-prefix aggregation for logs
//!   written before causal IDs existed.
//! - [`tree::tree`] — the span tree with per-path count, total, p50/p95/p99,
//!   allocation columns (when `HQNN_ALLOC=1` was set), and counter deltas.
//! - [`diff::diff`] — per-span-path median deltas between two traces, gated
//!   by the same MAD-based noise band the perfbench regression gate uses.
//! - [`grep::grep`] — structured field filtering (`key=value`), re-emitting
//!   matching records as canonical JSONL.
//! - [`flame::flamegraph_diff`] — collapsed-stack output with base/current
//!   weight columns, weighted by self time or by allocated bytes.
//!
//! The `hqnn-obs` binary wraps each of these as a subcommand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod critical;
pub mod diff;
pub mod flame;
pub mod grep;
pub mod model;

pub use critical::critical_path;
pub use diff::diff;
pub use flame::{flamegraph_diff, FlameWeight};
pub use grep::{grep, Filter};
pub use model::{ObsError, SpanRecord, Trace};

/// The span-tree analysis (kept in its own module for symmetry with the
/// other subcommands).
pub mod tree;
pub use tree::tree;
