//! Golden-file tests: every analysis must reproduce the committed output
//! byte-for-byte on the committed fixture pair, and legacy (pre-causal-ID)
//! logs must keep loading.

use hqnn_obs::{critical_path, diff, flamegraph_diff, grep, tree, Filter, FlameWeight, Trace};
use hqnn_perfbench::GateConfig;
use hqnn_telemetry::Event;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn load(name: &str) -> Trace {
    Trace::load(&fixture(name)).expect("fixture loads")
}

#[test]
fn critical_path_matches_golden() {
    assert_eq!(
        critical_path(&load("a.jsonl")),
        golden("critical_path_a.txt")
    );
}

#[test]
fn critical_path_legacy_fallback_matches_golden() {
    let trace = load("legacy.jsonl");
    assert!(!trace.has_causal_ids());
    assert_eq!(critical_path(&trace), golden("critical_path_legacy.txt"));
}

#[test]
fn diff_matches_golden() {
    let report = diff(&load("a.jsonl"), &load("b.jsonl"), &GateConfig::default());
    assert_eq!(report, golden("diff_a_b.txt"));
}

#[test]
fn tree_matches_golden() {
    assert_eq!(tree(&load("a.jsonl")), golden("tree_a.txt"));
}

#[test]
fn flamegraph_diff_matches_golden() {
    let report = flamegraph_diff(&load("a.jsonl"), &load("b.jsonl"), FlameWeight::TimeUs);
    assert_eq!(report, golden("flame_a_b_time.txt"));
}

#[test]
fn analyses_are_deterministic_across_repeated_runs() {
    let (a, b) = (load("a.jsonl"), load("b.jsonl"));
    for _ in 0..3 {
        assert_eq!(critical_path(&a), critical_path(&a));
        assert_eq!(
            diff(&a, &b, &GateConfig::default()),
            diff(&a, &b, &GateConfig::default())
        );
    }
}

/// Legacy JSONL lines (no span_id/parent_id/alloc fields) must round-trip
/// through Event parse → serialize → parse unchanged: the optional fields
/// stay absent instead of materialising as nulls or zeros.
#[test]
fn legacy_events_round_trip_unchanged() {
    let text = std::fs::read_to_string(fixture("legacy.jsonl")).expect("read fixture");
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        let ev: Event = serde_json::from_str(line).expect("parse legacy line");
        assert_eq!(ev.span_id, None, "{line}");
        assert_eq!(ev.parent_id, None, "{line}");
        let re = serde_json::to_string(&ev).expect("serialize");
        assert!(!re.contains("span_id"), "absent IDs must stay absent: {re}");
        let ev2: Event = serde_json::from_str(&re).expect("reparse");
        assert_eq!(ev, ev2);
    }
}

#[test]
fn grep_on_fixture_returns_loadable_subset() {
    let a = load("a.jsonl");
    let combos = grep(
        &a,
        &[
            Filter::parse("event=span").expect("filter"),
            Filter::parse("path=repro/search/combo").expect("filter"),
        ],
    )
    .expect("grep");
    assert_eq!(combos.lines().count(), 2);
    let reloaded = Trace::parse(&combos).expect("grep output reloads");
    assert!(reloaded
        .spans
        .iter()
        .all(|s| s.path == "repro/search/combo"));
}
