//! Acceptance test for the batch execution engine: a full study produces
//! **byte-identical** JSON at `HQNN_THREADS=1` and `HQNN_THREADS=8` with the
//! same seeds. This is the end-to-end determinism criterion the refactor is
//! gated on — every parallel seam (qsim batches, nn reductions, tensor
//! matmul, search combo waves) sits under this study.

use hqnn_search::{ExperimentConfig, StudyResult};

/// One smoke-scale study at the given thread budget, serialised to the same
/// pretty JSON that `StudyResult::save` writes. The manifest stays `None`
/// (as `StudyResult::new` leaves it), so the comparison covers every
/// computed number without provenance noise like timestamps.
fn study_json(threads: usize) -> String {
    hqnn_runtime::with_threads(threads, || {
        let mut config = ExperimentConfig::smoke();
        config.levels = vec![4];
        let mut study = StudyResult::new(config);
        study.run_classical();
        study.run_bel();
        serde_json::to_string_pretty(&study).expect("serialize study")
    })
}

#[test]
fn study_json_is_byte_identical_at_1_and_8_threads() {
    let sequential = study_json(1);
    let parallel = study_json(8);
    assert!(
        sequential == parallel,
        "study JSON diverged between 1 and 8 threads\n\
         first differing byte at offset {:?}",
        sequential
            .bytes()
            .zip(parallel.bytes())
            .position(|(a, b)| a != b)
    );
    // Sanity: the study actually ran something.
    assert!(sequential.contains("\"classical\""));
    assert!(sequential.len() > 1_000);
}
