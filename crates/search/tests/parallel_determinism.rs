//! Acceptance test for the batch execution engine: a full study produces
//! **byte-identical** JSON at `HQNN_THREADS=1` and `HQNN_THREADS=8` with the
//! same seeds, under **both** `HQNN_BATCH` layouts. This is the end-to-end
//! determinism criterion the refactor is gated on — every parallel seam
//! (qsim batches, nn reductions, tensor matmul, search combo waves) sits
//! under this study, and the gate-major sweep must not change a byte of it.

use hqnn_qsim::{with_batch_layout, BatchLayout};
use hqnn_search::experiments::Family;
use hqnn_search::{ExperimentConfig, StudyResult};

/// One smoke-scale study at the given thread budget and batch layout,
/// serialised to the same pretty JSON that `StudyResult::save` writes. The
/// manifest stays `None` (as `StudyResult::new` leaves it), so the
/// comparison covers every computed number without provenance noise like
/// timestamps.
fn study_json(threads: usize, layout: BatchLayout) -> String {
    with_batch_layout(layout, || {
        hqnn_runtime::with_threads(threads, || {
            let mut config = ExperimentConfig::smoke();
            config.levels = vec![4];
            let mut study = StudyResult::new(config);
            study.run_classical();
            study.run_bel();
            serde_json::to_string_pretty(&study).expect("serialize study")
        })
    })
}

#[test]
fn study_json_is_byte_identical_across_threads_and_layouts() {
    let reference = study_json(1, BatchLayout::Row);
    for (threads, layout) in [
        (8, BatchLayout::Row),
        (1, BatchLayout::Gate),
        (8, BatchLayout::Gate),
    ] {
        let other = study_json(threads, layout);
        assert!(
            reference == other,
            "study JSON diverged between (threads=1, row) and (threads={threads}, {layout:?})\n\
             first differing byte at offset {:?}",
            reference
                .bytes()
                .zip(other.bytes())
                .position(|(a, b)| a != b)
        );
    }
    // Sanity: the study actually ran something.
    assert!(reference.contains("\"classical\""));
    assert!(reference.len() > 1_000);
}

/// The same smoke study as [`study_json`], but run through the sharded
/// scheduler (`run_study_sharded`) instead of the sequential per-family
/// loops.
fn sharded_study_json(threads: usize, layout: BatchLayout) -> String {
    with_batch_layout(layout, || {
        hqnn_runtime::with_threads(threads, || {
            let mut config = ExperimentConfig::smoke();
            config.levels = vec![4];
            let mut study = StudyResult::new(config);
            study.run_study_sharded(&[Family::Classical, Family::HybridBel], &mut |_, _, _, _| {});
            serde_json::to_string_pretty(&study).expect("serialize study")
        })
    })
}

#[test]
fn sharded_study_json_is_byte_identical_to_sequential() {
    // The sequential runner at one thread is the ground truth; the sharded
    // scheduler must reproduce it byte for byte at every thread budget and
    // batch layout. This is the acceptance gate for study-level sharding.
    let reference = study_json(1, BatchLayout::Row);
    for (threads, layout) in [
        (1, BatchLayout::Row),
        (8, BatchLayout::Row),
        (1, BatchLayout::Gate),
        (8, BatchLayout::Gate),
    ] {
        let sharded = sharded_study_json(threads, layout);
        assert!(
            reference == sharded,
            "sharded study JSON diverged from the sequential reference at \
             (threads={threads}, {layout:?})\nfirst differing byte at offset {:?}",
            reference
                .bytes()
                .zip(sharded.bytes())
                .position(|(a, b)| a != b)
        );
    }
}
