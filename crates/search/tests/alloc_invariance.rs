//! Acceptance test for allocation counting: `HQNN_ALLOC=1` is observation
//! only. A study serialised with counting enabled must be byte-identical to
//! the same study with counting disabled — the instrumented allocator may
//! count, but it must never change a number.

use hqnn_search::{ExperimentConfig, StudyResult};
use hqnn_telemetry as telemetry;

/// One smoke-scale study with the allocator counting switch in the given
/// state, serialised exactly as `StudyResult::save` writes it. The manifest
/// stays `None` so the comparison covers computed numbers only (provenance
/// carries timestamps, which differ by construction).
fn study_json(alloc_counting: bool) -> String {
    let was_enabled = telemetry::alloc::is_enabled();
    telemetry::alloc::set_enabled(alloc_counting);
    let json = {
        let mut config = ExperimentConfig::smoke();
        config.levels = vec![4];
        let mut study = StudyResult::new(config);
        study.run_classical();
        study.run_bel();
        serde_json::to_string_pretty(&study).expect("serialize study")
    };
    telemetry::alloc::set_enabled(was_enabled);
    json
}

#[test]
fn study_json_is_bitwise_unchanged_by_alloc_counting() {
    let without = study_json(false);
    let with = study_json(true);
    assert!(
        without == with,
        "HQNN_ALLOC counting changed study output\n\
         first differing byte at offset {:?}",
        without.bytes().zip(with.bytes()).position(|(a, b)| a != b)
    );
    assert!(without.contains("\"classical\""));
    assert!(without.len() > 1_000);

    // And the counting run did actually attribute allocations to spans —
    // the invariance above must not hold vacuously.
    let snap = telemetry::snapshot();
    assert!(
        snap.spans.values().any(|s| s.alloc_count > 0),
        "no span recorded any allocations while counting was enabled"
    );
}
