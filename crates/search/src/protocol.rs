//! The train-until-threshold search protocol (paper §III-E/F).

use hqnn_core::ModelSpec;
use hqnn_data::{Dataset, SpiralConfig, Standardizer};
use hqnn_flops::{CostModel, FlopsBreakdown};
use hqnn_nn::{train, Adam, TrainConfig};
use hqnn_telemetry as telemetry;
use hqnn_tensor::{Matrix, SeededRng};
use serde::{Deserialize, Serialize};

/// Hyperparameters of one grid search.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Accuracy both train and validation averages must reach (paper: 0.90).
    pub accuracy_threshold: f64,
    /// Independent training runs averaged per combination (paper: 5).
    pub runs_per_combo: usize,
    /// Full protocol repetitions, each yielding one winner (paper: 5).
    pub repetitions: usize,
    /// Adam learning rate. The paper trains at 0.001 for 100 epochs on its
    /// TF stack; this workspace's calibrated default is 0.005 (see
    /// EXPERIMENTS.md — it reaches the same accuracies in the same epoch
    /// budget on this implementation).
    pub learning_rate: f64,
    /// Epoch/batch configuration per run.
    pub train: TrainConfig,
    /// Samples in the generated dataset (paper: 1500).
    pub dataset_samples: usize,
    /// Fraction of samples in the training split.
    pub train_fraction: f64,
    /// Master seed; every repetition/run derives an independent stream.
    pub seed: u64,
    /// Upper bound on combinations examined per repetition (a wall-clock
    /// guard for the fast profile; the paper walks the full list).
    pub max_combos_per_repetition: usize,
}

impl SearchConfig {
    /// The paper's protocol: threshold 0.90, 5 runs × 5 repetitions,
    /// 1500 samples, 150 epochs at lr 0.005 (epoch budget calibrated to
    /// this stack; see EXPERIMENTS.md).
    pub fn paper() -> Self {
        Self {
            accuracy_threshold: 0.90,
            runs_per_combo: 5,
            repetitions: 5,
            learning_rate: 0.005,
            train: TrainConfig::paper().with_epochs(150),
            dataset_samples: 1500,
            train_fraction: 0.8,
            seed: 2025,
            max_combos_per_repetition: usize::MAX,
        }
    }

    /// A reduced protocol that regenerates every figure in minutes on one
    /// core: 2 runs × 2 repetitions, full-size dataset, same threshold.
    pub fn fast() -> Self {
        Self {
            runs_per_combo: 2,
            repetitions: 2,
            // Large enough to walk past the 31 narrow-first C[2,…]
            // architectures that precede C[4] in FLOPs order at 110
            // features (and the full 30-combo hybrid spaces).
            max_combos_per_repetition: 40,
            ..Self::paper()
        }
    }

    /// A miniature protocol for tests and benches (seconds, not minutes).
    pub fn smoke() -> Self {
        Self {
            accuracy_threshold: 0.85,
            runs_per_combo: 1,
            repetitions: 1,
            learning_rate: 0.01,
            train: TrainConfig::fast().with_epochs(30),
            dataset_samples: 450,
            train_fraction: 0.8,
            seed: 7,
            max_combos_per_repetition: 4,
        }
    }

    /// Overrides the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Best-across-epochs accuracies of one training run.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Highest training accuracy seen in any epoch.
    pub train_accuracy: f64,
    /// Highest validation accuracy seen in any epoch.
    pub val_accuracy: f64,
}

/// Aggregated result for one architecture at one complexity level.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ComboOutcome {
    /// The architecture.
    pub spec: ModelSpec,
    /// Its per-sample FLOPs breakdown under the study's cost model.
    pub flops: FlopsBreakdown,
    /// Its trainable parameter count.
    pub param_count: usize,
    /// Per-run best accuracies.
    pub runs: Vec<RunSummary>,
    /// Mean best training accuracy across runs.
    pub avg_train_accuracy: f64,
    /// Mean best validation accuracy across runs.
    pub avg_val_accuracy: f64,
    /// Whether both averages reached the threshold.
    pub passed: bool,
}

/// One protocol repetition: the combos examined (in FLOPs order) and the
/// first passing one, if any.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RepetitionOutcome {
    /// Index of this repetition.
    pub repetition: usize,
    /// Every combination trained, cheapest first.
    pub evaluated: Vec<ComboOutcome>,
    /// Index into `evaluated` of the winner, if one passed.
    pub winner: Option<usize>,
}

impl RepetitionOutcome {
    /// The winning combination, if any.
    pub fn winning_combo(&self) -> Option<&ComboOutcome> {
        self.winner.map(|i| &self.evaluated[i])
    }
}

/// Search output for one complexity level.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct LevelResult {
    /// The complexity level (feature count).
    pub n_features: usize,
    /// One outcome per protocol repetition.
    pub repetitions: Vec<RepetitionOutcome>,
}

impl LevelResult {
    /// The winners of all repetitions that found one.
    pub fn winners(&self) -> Vec<&ComboOutcome> {
        self.repetitions
            .iter()
            .filter_map(|r| r.winning_combo())
            .collect()
    }

    /// Mean total FLOPs of the winners (`None` if no repetition passed).
    pub fn mean_winner_flops(&self) -> Option<f64> {
        let winners = self.winners();
        if winners.is_empty() {
            return None;
        }
        Some(
            hqnn_tensor::fold::ordered_sum_f64(winners.iter().map(|w| w.flops.total() as f64))
                / winners.len() as f64,
        )
    }

    /// Mean parameter count of the winners.
    pub fn mean_winner_params(&self) -> Option<f64> {
        let winners = self.winners();
        if winners.is_empty() {
            return None;
        }
        Some(
            hqnn_tensor::fold::ordered_sum_f64(winners.iter().map(|w| w.param_count as f64))
                / winners.len() as f64,
        )
    }

    /// The smallest (fewest-FLOPs) winner across repetitions — the model the
    /// paper's comparative analysis (§IV-E) selects per level.
    pub fn smallest_winner(&self) -> Option<&ComboOutcome> {
        self.winners().into_iter().min_by_key(|w| w.flops.total())
    }
}

/// A dataset split prepared for training: standardised features + labels.
#[derive(Clone, Debug)]
pub struct PreparedData {
    /// Standardised training features.
    pub x_train: Matrix,
    /// Training labels.
    pub y_train: Vec<usize>,
    /// Standardised validation features.
    pub x_val: Matrix,
    /// Validation labels.
    pub y_val: Vec<usize>,
    /// Number of classes.
    pub n_classes: usize,
}

/// Generates and prepares the spiral instance for one complexity level,
/// deterministically from the config's seed.
pub fn prepare_level_data(config: &SearchConfig, n_features: usize) -> PreparedData {
    let _span = telemetry::span("search.prepare_data");
    let parent = SeededRng::new(config.seed);
    let mut data_rng = parent.split(n_features as u64);
    let spiral = SpiralConfig::paper(n_features).with_samples(config.dataset_samples);
    let dataset = Dataset::spiral(&spiral, &mut data_rng);
    let (train_set, val_set) = dataset.split(config.train_fraction, &mut data_rng);
    let (standardizer, x_train) = Standardizer::fit_transform(train_set.features());
    let x_val = standardizer.transform(val_set.features());
    PreparedData {
        x_train,
        y_train: train_set.labels().to_vec(),
        x_val,
        y_val: val_set.labels().to_vec(),
        n_classes: dataset.n_classes(),
    }
}

/// Trains one architecture `config.runs_per_combo` times and aggregates the
/// outcome. `stream_salt` decorrelates the RNG streams of different combos
/// and repetitions.
pub fn evaluate_combo(
    spec: &ModelSpec,
    data: &PreparedData,
    config: &SearchConfig,
    cost: &CostModel,
    stream_salt: u64,
) -> ComboOutcome {
    let parent = SeededRng::new(config.seed).split(stream_salt);
    let mut runs = Vec::with_capacity(config.runs_per_combo);
    for run in 0..config.runs_per_combo {
        let mut rng = parent.split(run as u64);
        let mut model = spec.build(&mut rng);
        let mut optimizer = Adam::new(config.learning_rate);
        let report = train(
            &mut model,
            &mut optimizer,
            &data.x_train,
            &data.y_train,
            &data.x_val,
            &data.y_val,
            data.n_classes,
            &config.train,
            &mut rng,
        );
        // Attribute divergence to the exact (combo, run) pair: the health
        // sentinels already reported each bad step, this names the victim
        // so frontier readers can discount it without replaying the search.
        if !report.final_train_loss.is_finite() {
            telemetry::event(
                telemetry::Level::Error,
                "search.combo_diverged",
                &[
                    ("model", spec.label().into()),
                    ("run", run.into()),
                    ("salt", stream_salt.into()),
                    ("final_train_loss", report.final_train_loss.into()),
                ],
            );
        }
        runs.push(RunSummary {
            train_accuracy: report.best_train_accuracy,
            val_accuracy: report.best_val_accuracy,
        });
    }
    let avg_train = hqnn_tensor::fold::ordered_sum_f64(runs.iter().map(|r| r.train_accuracy))
        / runs.len().max(1) as f64;
    let avg_val = hqnn_tensor::fold::ordered_sum_f64(runs.iter().map(|r| r.val_accuracy))
        / runs.len().max(1) as f64;
    ComboOutcome {
        flops: spec.flops(cost),
        param_count: spec.param_count(),
        spec: spec.clone(),
        runs,
        avg_train_accuracy: avg_train,
        avg_val_accuracy: avg_val,
        passed: avg_train >= config.accuracy_threshold && avg_val >= config.accuracy_threshold,
    }
}

/// Trains a contiguous wave of combos concurrently, one outcome per spec in
/// input order. `salts[i]` seeds `specs[i]`'s RNG streams, so each outcome
/// is independent of wave composition and thread count — this is the unit
/// the parallel search speculates on, and what the `search.combo_parallel`
/// benchmark measures.
///
/// # Panics
///
/// Panics if `salts.len() != specs.len()`.
pub fn evaluate_combo_wave(
    specs: &[&ModelSpec],
    data: &PreparedData,
    config: &SearchConfig,
    cost: &CostModel,
    salts: &[u64],
) -> Vec<ComboOutcome> {
    assert_eq!(specs.len(), salts.len(), "one salt per spec");
    hqnn_runtime::par_map_range(specs.len(), |i| {
        let _combo_span = telemetry::span("search.combo");
        evaluate_combo(specs[i], data, config, cost, salts[i])
    })
}

/// Runs the full protocol for one complexity level over a search space:
/// sorts by FLOPs, trains cheapest-first until a combo passes, and repeats
/// `config.repetitions` times with independent random streams.
///
/// Combos are trained in speculative waves of `hqnn_runtime::threads()`
/// concurrent evaluations. Because every combo's outcome is determined by
/// its salt alone, scanning each wave in FLOPs order and truncating at the
/// first pass reproduces the sequential early-stop **exactly**: the
/// evaluated list, winner, telemetry counters, and `progress` calls are
/// byte-identical at every thread count. (Speculative combos past the first
/// pass are trained and discarded — that cost shows in the `search.combo`
/// span count but never in results.)
///
/// `progress` is invoked for every *retained* combo evaluation — binaries
/// use it for live logging; pass `|_,_| {}` to ignore.
///
/// # Panics
///
/// Panics if `space` is empty or the specs' feature counts disagree.
pub fn search_level(
    space: &[ModelSpec],
    n_features: usize,
    config: &SearchConfig,
    cost: &CostModel,
    progress: &mut dyn FnMut(usize, &ComboOutcome),
) -> LevelResult {
    assert!(!space.is_empty(), "search space is empty");
    assert!(
        space.iter().all(|s| s.n_features() == n_features),
        "spec feature counts disagree with the level"
    );
    let _level_span = telemetry::span("search.level");
    telemetry::event(
        telemetry::Level::Info,
        "search.level_start",
        &[
            ("n_features", n_features.into()),
            ("space", space.len().into()),
            ("repetitions", config.repetitions.into()),
        ],
    );
    let mut sorted: Vec<&ModelSpec> = space.iter().collect();
    sorted.sort_by_key(|s| s.flops(cost).total());

    let data = prepare_level_data(config, n_features);
    let total = sorted.len().min(config.max_combos_per_repetition);
    let wave_size = hqnn_runtime::threads();
    let mut repetitions = Vec::with_capacity(config.repetitions);
    for rep in 0..config.repetitions {
        let mut evaluated = Vec::new();
        let mut winner = None;
        let mut next = 0;
        while next < total && winner.is_none() {
            let wave_end = (next + wave_size).min(total);
            // Salt layout: (level, repetition, combo) → independent streams.
            let salts: Vec<u64> = (next..wave_end)
                .map(|combo_idx| (n_features as u64) << 32 | (rep as u64) << 16 | combo_idx as u64)
                .collect();
            let outcomes =
                evaluate_combo_wave(&sorted[next..wave_end], &data, config, cost, &salts);
            // Scan the wave cheapest-first and truncate at the first pass:
            // combos after it were speculative work and are discarded
            // unreported, keeping results and telemetry identical to the
            // sequential early-stop.
            for (offset, outcome) in outcomes.into_iter().enumerate() {
                let combo_idx = next + offset;
                telemetry::counter("search.combos_evaluated", 1);
                telemetry::counter("flops.estimated_total", outcome.flops.total());
                telemetry::event(
                    telemetry::Level::Info,
                    "search.combo",
                    &[
                        ("n_features", n_features.into()),
                        ("rep", rep.into()),
                        ("combo", combo_idx.into()),
                        ("model", outcome.spec.label().into()),
                        ("params", outcome.param_count.into()),
                        ("flops", outcome.flops.total().into()),
                        ("train_acc", outcome.avg_train_accuracy.into()),
                        ("val_acc", outcome.avg_val_accuracy.into()),
                        ("passed", outcome.passed.into()),
                    ],
                );
                progress(rep, &outcome);
                let passed = outcome.passed;
                evaluated.push(outcome);
                if passed {
                    winner = Some(evaluated.len() - 1);
                    break;
                }
            }
            next = wave_end;
        }
        repetitions.push(RepetitionOutcome {
            repetition: rep,
            evaluated,
            winner,
        });
    }
    LevelResult {
        n_features,
        repetitions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::classical_space;
    use hqnn_core::ClassicalSpec;

    fn smoke() -> SearchConfig {
        SearchConfig::smoke()
    }

    #[test]
    fn prepare_level_data_is_deterministic() {
        let config = smoke();
        let a = prepare_level_data(&config, 6);
        let b = prepare_level_data(&config, 6);
        assert_eq!(a.x_train, b.x_train);
        assert_eq!(a.y_val, b.y_val);
        assert_eq!(a.n_classes, 3);
        assert_eq!(a.x_train.cols(), 6);
    }

    #[test]
    fn evaluate_combo_aggregates_runs() {
        let config = SearchConfig {
            runs_per_combo: 3,
            ..smoke()
        };
        let cost = CostModel::default();
        let data = prepare_level_data(&config, 4);
        let spec: ModelSpec = ClassicalSpec::new(4, vec![8], 3).into();
        let outcome = evaluate_combo(&spec, &data, &config, &cost, 1);
        assert_eq!(outcome.runs.len(), 3);
        let manual_avg = outcome.runs.iter().map(|r| r.train_accuracy).sum::<f64>() / 3.0;
        assert!((outcome.avg_train_accuracy - manual_avg).abs() < 1e-12);
        assert_eq!(outcome.param_count, spec.param_count());
    }

    #[test]
    fn evaluate_combo_is_deterministic_per_salt() {
        let config = smoke();
        let cost = CostModel::default();
        let data = prepare_level_data(&config, 4);
        let spec: ModelSpec = ClassicalSpec::new(4, vec![4], 3).into();
        let a = evaluate_combo(&spec, &data, &config, &cost, 9);
        let b = evaluate_combo(&spec, &data, &config, &cost, 9);
        let c = evaluate_combo(&spec, &data, &config, &cost, 10);
        assert_eq!(a, b);
        assert_ne!(a.runs, c.runs);
    }

    #[test]
    fn search_level_stops_at_first_pass() {
        let config = smoke();
        let cost = CostModel::default();
        let space = classical_space(4, 3);
        let mut seen = 0;
        let result = search_level(&space, 4, &config, &cost, &mut |_, _| seen += 1);
        assert_eq!(result.repetitions.len(), 1);
        let rep = &result.repetitions[0];
        assert_eq!(seen, rep.evaluated.len());
        if let Some(idx) = rep.winner {
            // Everything before the winner failed; the winner passed.
            assert!(rep.evaluated[idx].passed);
            assert!(rep.evaluated[..idx].iter().all(|c| !c.passed));
            // FLOPs ascending order was respected.
            let flops: Vec<u64> = rep.evaluated.iter().map(|c| c.flops.total()).collect();
            assert!(flops.windows(2).all(|w| w[0] <= w[1]));
        }
    }

    #[test]
    fn search_level_is_byte_identical_across_thread_counts() {
        let config = smoke();
        let cost = CostModel::default();
        let space = classical_space(4, 3);
        let baseline = hqnn_runtime::with_threads(1, || {
            search_level(&space, 4, &config, &cost, &mut |_, _| {})
        });
        let baseline_json = serde_json::to_string(&baseline).expect("serialize");
        for threads in [2, 7] {
            let mut progress = Vec::new();
            let result = hqnn_runtime::with_threads(threads, || {
                search_level(&space, 4, &config, &cost, &mut |rep, combo| {
                    progress.push((rep, combo.spec.label()));
                })
            });
            assert_eq!(result, baseline, "threads={threads}");
            let json = serde_json::to_string(&result).expect("serialize");
            assert_eq!(json, baseline_json, "threads={threads}");
            // Progress callbacks fire only for retained combos, in order.
            let evaluated: Vec<(usize, String)> = baseline
                .repetitions
                .iter()
                .flat_map(|r| r.evaluated.iter().map(|c| (r.repetition, c.spec.label())))
                .collect();
            assert_eq!(progress, evaluated, "threads={threads}");
        }
    }

    #[test]
    fn evaluate_combo_wave_matches_individual_evaluations() {
        let config = smoke();
        let cost = CostModel::default();
        let data = prepare_level_data(&config, 4);
        let space = classical_space(4, 3);
        let specs: Vec<&ModelSpec> = space.iter().take(3).collect();
        let salts = [11u64, 22, 33];
        let wave = hqnn_runtime::with_threads(3, || {
            evaluate_combo_wave(&specs, &data, &config, &cost, &salts)
        });
        for (i, outcome) in wave.iter().enumerate() {
            let solo = evaluate_combo(specs[i], &data, &config, &cost, salts[i]);
            assert_eq!(outcome, &solo, "combo {i}");
        }
    }

    #[test]
    fn level_result_aggregations() {
        let config = SearchConfig {
            repetitions: 2,
            ..smoke()
        };
        let cost = CostModel::default();
        let space = classical_space(4, 3);
        let result = search_level(&space, 4, &config, &cost, &mut |_, _| {});
        assert_eq!(result.repetitions.len(), 2);
        let winners = result.winners();
        if !winners.is_empty() {
            let mean = result.mean_winner_flops().expect("has winners");
            assert!(mean > 0.0);
            let smallest = result.smallest_winner().expect("has winners");
            assert!(winners
                .iter()
                .all(|w| w.flops.total() >= smallest.flops.total()));
            assert!(result.mean_winner_params().expect("has winners") > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "search space is empty")]
    fn search_level_rejects_empty_space() {
        let config = smoke();
        let cost = CostModel::default();
        let _ = search_level(&[], 4, &config, &cost, &mut |_, _| {});
    }

    #[test]
    #[should_panic(expected = "feature counts disagree")]
    fn search_level_rejects_mismatched_features() {
        let config = smoke();
        let cost = CostModel::default();
        let space = classical_space(6, 3);
        let _ = search_level(&space, 4, &config, &cost, &mut |_, _| {});
    }

    #[test]
    fn config_profiles() {
        assert_eq!(SearchConfig::paper().runs_per_combo, 5);
        assert_eq!(SearchConfig::paper().repetitions, 5);
        assert_eq!(SearchConfig::paper().accuracy_threshold, 0.90);
        assert!(SearchConfig::fast().max_combos_per_repetition < usize::MAX);
        assert!(SearchConfig::smoke().dataset_samples < SearchConfig::paper().dataset_samples);
        assert_eq!(SearchConfig::default(), SearchConfig::paper());
        assert_eq!(SearchConfig::paper().with_seed(1).seed, 1);
    }
}
