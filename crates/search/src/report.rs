//! Text rendering of experiment results — the tables the figure binaries
//! print, mirroring what the paper plots.

use std::fmt::Write as _;

use crate::experiments::{StudyResult, TableOneRow};
use crate::protocol::LevelResult;

/// Percentage rate of increase from `first` to `last`
/// (the paper's §IV-E metric, e.g. "+88.5%").
///
/// # Example
///
/// ```
/// assert_eq!(hqnn_search::report::rate_of_increase(100.0, 150.0), 50.0);
/// ```
pub fn rate_of_increase(first: f64, last: f64) -> f64 {
    if first == 0.0 {
        return f64::NAN;
    }
    100.0 * (last - first) / first
}

/// Formats a [`rate_of_increase`] for the tables: `"+88.5%"` for finite
/// rates, `"n/a"` when the rate is undefined (NaN/∞ from a zero or missing
/// baseline) — matching the `—` convention for absent cells.
fn fmt_rate(rate: f64) -> String {
    if rate.is_finite() {
        format!("{rate:+.1}%")
    } else {
        "n/a".to_string()
    }
}

/// Renders one family's per-level winners — the content of one of the
/// paper's Fig. 6/7/8 panels: per complexity level, each repetition's
/// winning architecture with its FLOPs, plus the level mean.
pub fn scaling_table(family_name: &str, levels: &[LevelResult]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "FLOPs of best-performing {family_name} models per complexity level"
    );
    let _ = writeln!(
        out,
        "{:>9} | {:<18} {:>10} {:>9} {:>11} {:>9}",
        "features", "winner", "FLOPs", "params", "train acc", "val acc"
    );
    for level in levels {
        if level.winners().is_empty() {
            let _ = writeln!(
                out,
                "{:>9} | (no combination reached the threshold)",
                level.n_features
            );
            continue;
        }
        for rep in &level.repetitions {
            if let Some(w) = rep.winning_combo() {
                let _ = writeln!(
                    out,
                    "{:>9} | {:<18} {:>10} {:>9} {:>10.1}% {:>8.1}%",
                    level.n_features,
                    w.spec.label(),
                    w.flops.total(),
                    w.param_count,
                    100.0 * w.avg_train_accuracy,
                    100.0 * w.avg_val_accuracy,
                );
            }
        }
        if let (Some(mf), Some(mp)) = (level.mean_winner_flops(), level.mean_winner_params()) {
            let _ = writeln!(
                out,
                "{:>9} | {:<18} {:>10.1} {:>9.1}",
                level.n_features, "  → mean", mf, mp
            );
        }
    }
    out
}

/// Renders the paper's Fig. 9: parameter counts of the winners for all three
/// families at each level.
pub fn parameter_table(study: &StudyResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Trainable parameters of winning models (mean over repetitions)"
    );
    let _ = writeln!(
        out,
        "{:>9} | {:>12} {:>14} {:>14}",
        "features", "classical", "hybrid (BEL)", "hybrid (SEL)"
    );
    for (i, &features) in study.config.levels.iter().enumerate() {
        let cell = |levels: &[LevelResult]| -> String {
            levels
                .get(i)
                .and_then(|l| l.mean_winner_params())
                .map(|p| format!("{p:.1}"))
                .unwrap_or_else(|| "—".to_string())
        };
        let _ = writeln!(
            out,
            "{:>9} | {:>12} {:>14} {:>14}",
            features,
            cell(&study.classical),
            cell(&study.hybrid_bel),
            cell(&study.hybrid_sel),
        );
    }
    out
}

/// Renders the paper's Fig. 10: the smallest winner per level per family
/// (FLOPs and parameters), followed by the low→high rates of increase.
pub fn comparative_table(study: &StudyResult) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Smallest winning model per complexity level (paper §IV-E selection)"
    );
    let _ = writeln!(
        out,
        "{:>9} | {:>22} | {:>22} | {:>22}",
        "features", "classical", "hybrid BEL", "hybrid SEL"
    );
    let _ = writeln!(
        out,
        "{:>9} | {:>10} {:>11} | {:>10} {:>11} | {:>10} {:>11}",
        "", "FLOPs", "params", "FLOPs", "params", "FLOPs", "params"
    );

    let families = [&study.classical, &study.hybrid_bel, &study.hybrid_sel];
    let mut series: [Vec<Option<(u64, usize)>>; 3] = Default::default();
    for (f, family) in families.iter().enumerate() {
        for i in 0..study.config.levels.len() {
            series[f].push(
                family
                    .get(i)
                    .and_then(|l| l.smallest_winner())
                    .map(|w| (w.flops.total(), w.param_count)),
            );
        }
    }
    for (i, &features) in study.config.levels.iter().enumerate() {
        let cell = |v: &Option<(u64, usize)>| match v {
            Some((flops, params)) => format!("{flops:>10} {params:>11}"),
            None => format!("{:>10} {:>11}", "—", "—"),
        };
        let _ = writeln!(
            out,
            "{:>9} | {} | {} | {}",
            features,
            cell(&series[0][i]),
            cell(&series[1][i]),
            cell(&series[2][i]),
        );
    }

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "rate of increase, {} → {} features (paper: classical +88.5% FLOPs, BEL +80.1%, SEL +53.1%):",
        study.config.levels.first().copied().unwrap_or(0),
        study.config.levels.last().copied().unwrap_or(0),
    );
    let names = ["classical ", "hybrid BEL", "hybrid SEL"];
    for (f, name) in names.iter().enumerate() {
        let first = series[f].first().and_then(|v| *v);
        let last = series[f].last().and_then(|v| *v);
        match (first, last) {
            (Some((f0, p0)), Some((f1, p1))) => {
                let _ = writeln!(
                    out,
                    "  {name}: FLOPs {}  params {}",
                    fmt_rate(rate_of_increase(f0 as f64, f1 as f64)),
                    fmt_rate(rate_of_increase(p0 as f64, p1 as f64)),
                );
            }
            _ => {
                let _ = writeln!(out, "  {name}: (incomplete — some level had no winner)");
            }
        }
    }
    out
}

/// Renders Table I (the Enc/CL/QL ablation).
pub fn table_one(rows: &[TableOneRow]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Breakdown of per-sample FLOPs across hybrid model stages (Table I)"
    );
    let _ = writeln!(
        out,
        "{:<13} {:>6} {:>8} {:>7} {:>8} {:>6} {:>6} {:>6}",
        "Model", "FS", "BC", "TF", "Enc+CL", "CL", "Enc", "QL"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<13} {:>6} {:>8} {:>7} {:>8} {:>6} {:>6} {:>6}",
            r.model,
            r.feature_size,
            format!("({},{})", r.best_combo.0, r.best_combo.1),
            r.total,
            r.enc_plus_cl,
            r.classical,
            r.encoding,
            r.quantum,
        );
    }
    out
}

/// Serialises every winner of a study as CSV
/// (`family,features,repetition,label,flops,params,train_acc,val_acc`) —
/// the machine-readable companion of the printed tables, convenient for
/// replotting the figures with external tooling. Commas inside model labels
/// (e.g. `SEL(3q,2l)`) are replaced by `;` so rows split cleanly.
pub fn winners_csv(study: &StudyResult) -> String {
    let mut out = String::from("family,features,repetition,label,flops,params,train_acc,val_acc\n");
    for (family, levels) in [
        ("classical", &study.classical),
        ("hybrid_bel", &study.hybrid_bel),
        ("hybrid_sel", &study.hybrid_sel),
    ] {
        for level in levels.iter() {
            for rep in &level.repetitions {
                if let Some(w) = rep.winning_combo() {
                    let _ = writeln!(
                        out,
                        "{family},{},{},{},{},{},{:.6},{:.6}",
                        level.n_features,
                        rep.repetition,
                        w.spec.label().replace(',', ";"),
                        w.flops.total(),
                        w.param_count,
                        w.avg_train_accuracy,
                        w.avg_val_accuracy,
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{table_one_paper_combos, ExperimentConfig, StudyResult};
    use hqnn_flops::CostModel;

    fn smoke_study() -> StudyResult {
        let mut study = StudyResult::new(ExperimentConfig::smoke());
        study.run_classical();
        study.run_sel();
        study
    }

    #[test]
    fn rate_of_increase_formula() {
        assert_eq!(rate_of_increase(100.0, 188.5), 88.5);
        assert_eq!(rate_of_increase(200.0, 100.0), -50.0);
        assert!(rate_of_increase(0.0, 5.0).is_nan());
    }

    #[test]
    fn scaling_table_renders_every_level() {
        let study = smoke_study();
        let txt = scaling_table("classical", &study.classical);
        for level in &study.config.levels {
            assert!(txt.contains(&level.to_string()), "missing level {level}");
        }
        assert!(txt.contains("FLOPs"));
    }

    #[test]
    fn parameter_table_has_three_family_columns() {
        let study = smoke_study();
        let txt = parameter_table(&study);
        assert!(txt.contains("classical"));
        assert!(txt.contains("hybrid (BEL)"));
        assert!(txt.contains("hybrid (SEL)"));
        // BEL was not run → its cells render as em-dashes.
        assert!(txt.contains('—'));
    }

    #[test]
    fn comparative_table_includes_rates() {
        let study = smoke_study();
        let txt = comparative_table(&study);
        assert!(txt.contains("rate of increase"));
        assert!(txt.contains("classical"));
    }

    #[test]
    fn comparative_table_renders_undefined_rate_as_na() {
        // Regression: a zero-FLOPs baseline winner used to print
        // "FLOPs NaN%". The rate is undefined there and must render "n/a".
        use crate::protocol::{ComboOutcome, LevelResult, RepetitionOutcome};
        let spec = crate::space::classical_space(4, 3)[0].clone();
        let level = |n_features: usize, flops: u64, params: usize| LevelResult {
            n_features,
            repetitions: vec![RepetitionOutcome {
                repetition: 0,
                evaluated: vec![ComboOutcome {
                    spec: spec.clone(),
                    flops: hqnn_flops::FlopsBreakdown {
                        classical: flops,
                        encoding: 0,
                        quantum: 0,
                    },
                    param_count: params,
                    runs: Vec::new(),
                    avg_train_accuracy: 1.0,
                    avg_val_accuracy: 1.0,
                    passed: true,
                }],
                winner: Some(0),
            }],
        };
        let mut study = StudyResult::new(ExperimentConfig::smoke());
        let (first, last) = (study.config.levels[0], *study.config.levels.last().unwrap());
        study.classical = vec![level(first, 0, 5), level(last, 10, 5)];
        let txt = comparative_table(&study);
        assert!(
            txt.contains("  classical : FLOPs n/a  params +0.0%"),
            "golden line missing from:\n{txt}"
        );
        assert!(!txt.contains("NaN"), "NaN leaked into:\n{txt}");
    }

    #[test]
    fn winners_csv_has_header_and_valid_rows() {
        let study = smoke_study();
        let csv = winners_csv(&study);
        let mut lines = csv.lines();
        assert_eq!(
            lines.next(),
            Some("family,features,repetition,label,flops,params,train_acc,val_acc")
        );
        for line in lines {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields.len(), 8, "bad row: {line}");
            assert!(["classical", "hybrid_bel", "hybrid_sel"].contains(&fields[0]));
            assert!(fields[4].parse::<u64>().is_ok());
            assert!(fields[6].parse::<f64>().is_ok());
        }
    }

    #[test]
    fn table_one_renders_all_rows() {
        let rows = table_one_paper_combos(&CostModel::default());
        let txt = table_one(&rows);
        assert_eq!(txt.lines().count(), 2 + rows.len());
        assert!(txt.contains("Hybrid (SEL)"));
        assert!(txt.contains("(4,4)"));
    }
}
