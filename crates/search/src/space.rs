//! Model search spaces (paper §III-B and §III-C).

use hqnn_core::{ClassicalSpec, HybridSpec, ModelSpec};
use hqnn_qsim::{EntanglerKind, QnnTemplate};

/// The number of architectures with 1..=n layers and m width options per
/// layer: `m·(mⁿ − 1)/(m − 1)` (the paper's §III-B formula; `n` for `m = 1`).
/// Saturates at `usize::MAX` when the exact count overflows — deep spaces
/// the GA arc will enumerate must degrade to "effectively unbounded", not
/// panic in debug or silently wrap in release.
///
/// # Example
///
/// ```
/// // The paper's example: m = 2 options, up to n = 2 layers → 6 combos.
/// assert_eq!(hqnn_search::combination_count(2, 2), 6);
/// // The paper's classical space: 5 widths, ≤ 3 layers → 155 combos.
/// assert_eq!(hqnn_search::combination_count(5, 3), 155);
/// // Past the overflow boundary the count saturates instead of wrapping.
/// assert_eq!(hqnn_search::combination_count(2, 64), usize::MAX);
/// ```
pub fn combination_count(m: usize, n: usize) -> usize {
    if m == 0 || n == 0 {
        return 0;
    }
    if m == 1 {
        return n;
    }
    let Ok(exp) = u32::try_from(n) else {
        return usize::MAX;
    };
    m.checked_pow(exp)
        // mⁿ ≥ m ≥ 2 here, so the subtraction itself cannot underflow.
        .and_then(|p| m.checked_mul(p - 1))
        .map(|num| num / (m - 1))
        .unwrap_or(usize::MAX)
}

/// The paper's neuron options for classical hidden layers.
pub const NEURON_OPTIONS: [usize; 5] = [2, 4, 6, 8, 10];

/// Maximum number of classical hidden layers.
pub const MAX_HIDDEN_LAYERS: usize = 3;

/// The paper's qubit options for hybrid quantum layers.
pub const QUBIT_OPTIONS: [usize; 3] = [3, 4, 5];

/// The paper's depth options for hybrid quantum layers.
pub const DEPTH_OPTIONS: std::ops::RangeInclusive<usize> = 1..=10;

/// Enumerates the classical search space for one complexity level: every
/// MLP with 1 to [`MAX_HIDDEN_LAYERS`] hidden layers whose widths are drawn
/// from [`NEURON_OPTIONS`] — 155 architectures.
///
/// # Example
///
/// ```
/// let space = hqnn_search::classical_space(10, 3);
/// assert_eq!(space.len(), 155);
/// ```
pub fn classical_space(n_features: usize, n_classes: usize) -> Vec<ModelSpec> {
    let mut specs = Vec::with_capacity(combination_count(NEURON_OPTIONS.len(), MAX_HIDDEN_LAYERS));
    let mut stack: Vec<Vec<usize>> = NEURON_OPTIONS.iter().map(|&w| vec![w]).collect();
    while let Some(hidden) = stack.pop() {
        if hidden.len() < MAX_HIDDEN_LAYERS {
            for &w in NEURON_OPTIONS.iter() {
                let mut next = hidden.clone();
                next.push(w);
                stack.push(next);
            }
        }
        specs.push(ModelSpec::Classical(ClassicalSpec::new(
            n_features, hidden, n_classes,
        )));
    }
    specs
}

/// Enumerates the hybrid search space for one complexity level and one
/// entangler kind: qubits from [`QUBIT_OPTIONS`] × depth from
/// [`DEPTH_OPTIONS`] — 30 architectures.
///
/// # Example
///
/// ```
/// use hqnn_qsim::EntanglerKind;
///
/// let space = hqnn_search::hybrid_space(10, 3, EntanglerKind::Strong);
/// assert_eq!(space.len(), 30);
/// ```
pub fn hybrid_space(n_features: usize, n_classes: usize, kind: EntanglerKind) -> Vec<ModelSpec> {
    let mut specs = Vec::with_capacity(QUBIT_OPTIONS.len() * DEPTH_OPTIONS.count());
    for &qubits in QUBIT_OPTIONS.iter() {
        for depth in DEPTH_OPTIONS {
            specs.push(ModelSpec::Hybrid(HybridSpec::new(
                n_features,
                n_classes,
                QnnTemplate::new(qubits, depth, kind),
            )));
        }
    }
    specs
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqnn_flops::CostModel;
    use std::collections::HashSet;

    #[test]
    fn combination_count_matches_formula() {
        assert_eq!(combination_count(2, 2), 6);
        assert_eq!(combination_count(5, 3), 155);
        assert_eq!(combination_count(5, 1), 5);
        assert_eq!(combination_count(1, 4), 4);
        assert_eq!(combination_count(0, 3), 0);
        assert_eq!(combination_count(3, 0), 0);
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn combination_count_saturates_at_the_overflow_boundary() {
        // Largest powers of two that stay exact on 64-bit usize:
        // 2·(2⁶² − 1) = 2⁶³ − 2 and 2·(2⁶³ − 1) = 2⁶⁴ − 2.
        assert_eq!(combination_count(2, 62), (1usize << 63) - 2);
        assert_eq!(combination_count(2, 63), usize::MAX - 1);
        // 2⁶⁴ overflows the pow step → saturate.
        assert_eq!(combination_count(2, 64), usize::MAX);
        // 3⁴⁰ fits but 3·(3⁴⁰ − 1) overflows the mul step → saturate.
        assert_eq!(combination_count(3, 40), usize::MAX);
        // n beyond u32 saturates without panicking on the cast.
        assert_eq!(combination_count(2, u32::MAX as usize + 1), usize::MAX);
        // Unchanged exact values right below the boundary.
        assert_eq!(combination_count(3, 39), 3 * (3usize.pow(39) - 1) / 2);
    }

    #[test]
    fn classical_space_has_155_unique_members() {
        let space = classical_space(10, 3);
        assert_eq!(space.len(), 155);
        let labels: HashSet<String> = space.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 155);
    }

    #[test]
    fn classical_space_respects_bounds() {
        for spec in classical_space(20, 3) {
            let ModelSpec::Classical(c) = spec else {
                panic!("classical space produced a hybrid spec")
            };
            assert!((1..=MAX_HIDDEN_LAYERS).contains(&c.hidden.len()));
            assert!(c.hidden.iter().all(|w| NEURON_OPTIONS.contains(w)));
            assert_eq!(c.n_features, 20);
            assert_eq!(c.n_classes, 3);
        }
    }

    #[test]
    fn classical_space_contains_papers_example_shapes() {
        let labels: HashSet<String> = classical_space(10, 3).iter().map(|s| s.label()).collect();
        for expected in ["C[2]@10f", "C[10]@10f", "C[2,4]@10f", "C[10,10,10]@10f"] {
            assert!(labels.contains(expected), "missing {expected}");
        }
    }

    #[test]
    fn hybrid_space_has_30_members_per_kind() {
        for kind in [EntanglerKind::Basic, EntanglerKind::Strong] {
            let space = hybrid_space(40, 3, kind);
            assert_eq!(space.len(), 30);
            for spec in &space {
                let ModelSpec::Hybrid(h) = spec else {
                    panic!("hybrid space produced a classical spec")
                };
                assert!(QUBIT_OPTIONS.contains(&h.template.n_qubits()));
                assert!(DEPTH_OPTIONS.contains(&h.template.depth()));
                assert_eq!(h.template.kind(), kind);
            }
        }
    }

    #[test]
    fn spaces_price_monotonically_after_sorting() {
        let cost = CostModel::default();
        let mut space = classical_space(10, 3);
        space.sort_by_key(|s| s.flops(&cost).total());
        let totals: Vec<u64> = space.iter().map(|s| s.flops(&cost).total()).collect();
        assert!(totals.windows(2).all(|w| w[0] <= w[1]));
        // The cheapest classical model is the single smallest layer.
        assert_eq!(space[0].label(), "C[2]@10f");
    }
}
