//! Experiment drivers for the paper's figures and table.
//!
//! | Paper artifact | Driver |
//! |----------------|--------|
//! | Fig. 6 (classical FLOPs scaling)   | [`StudyResult::run_classical`] |
//! | Fig. 7 (hybrid BEL FLOPs scaling)  | [`StudyResult::run_bel`] |
//! | Fig. 8 (hybrid SEL FLOPs scaling)  | [`StudyResult::run_sel`] |
//! | Fig. 9 (parameter counts)          | winners of the above |
//! | Fig. 10 (comparative rates)        | smallest winners of the above |
//! | Table I (Enc/CL/QL ablation)       | [`table_one_paper_combos`], [`table_one_from_study`] |
//!
//! A [`StudyResult`] is serialisable; the figure binaries cache it as JSON
//! so Fig. 9/10 reuse the searches Figs. 6–8 ran.

use std::fs;
use std::io;
use std::path::Path;

use hqnn_core::HybridSpec;
use hqnn_flops::CostModel;
use hqnn_qsim::{EntanglerKind, QnnTemplate};
use hqnn_telemetry as telemetry;
use serde::{Deserialize, Serialize};

use crate::protocol::{search_level, ComboOutcome, LevelResult, SearchConfig};
use crate::space::{classical_space, hybrid_space};

/// Number of classes in the study's task (3-arm spiral).
pub const N_CLASSES: usize = 3;

/// Which model family an experiment searches over.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Classical MLPs (Fig. 6).
    Classical,
    /// BEL-based hybrids (Fig. 7).
    HybridBel,
    /// SEL-based hybrids (Fig. 8).
    HybridSel,
}

impl Family {
    /// Display name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Family::Classical => "classical",
            Family::HybridBel => "hybrid (BEL)",
            Family::HybridSel => "hybrid (SEL)",
        }
    }

    /// All three families in the order the paper's study runs them.
    pub const ALL: [Family; 3] = [Family::Classical, Family::HybridBel, Family::HybridSel];

    /// The search space of this family at one complexity level.
    pub fn space(self, n_features: usize) -> Vec<hqnn_core::ModelSpec> {
        match self {
            Family::Classical => classical_space(n_features, N_CLASSES),
            Family::HybridBel => hybrid_space(n_features, N_CLASSES, EntanglerKind::Basic),
            Family::HybridSel => hybrid_space(n_features, N_CLASSES, EntanglerKind::Strong),
        }
    }
}

/// One independent (family × level) cell of a sharded study run.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardCell {
    /// The model family this shard searches.
    pub family: Family,
    /// The complexity level (feature count) it searches at.
    pub n_features: usize,
}

/// The schedule a sharded study executed with: the ordered cell list plus
/// the [`hqnn_runtime::split_budget`] factors that bounded its concurrency
/// (`outer` concurrent shards × `inner` threads each ≤ the thread budget).
/// Recorded into [`hqnn_telemetry::RunManifest::shard_plan`] via
/// [`ShardPlan::descriptor`] so cached studies state how they were
/// scheduled.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardPlan {
    /// Every (family, level) cell, in sequential replay order
    /// (family-major, levels ascending within a family).
    pub cells: Vec<ShardCell>,
    /// Concurrent shard workers the run fanned out.
    pub outer: usize,
    /// Thread budget each shard's nested parallel maps ran under.
    pub inner: usize,
}

impl ShardPlan {
    /// Compact provenance string (`"cells=6;outer=4;inner=2"`) stamped into
    /// run manifests. Sharding is bitwise neutral, so the plan qualifies
    /// wall-clock claims only — see EXPERIMENTS.md.
    pub fn descriptor(&self) -> String {
        format!(
            "cells={};outer={};inner={}",
            self.cells.len(),
            self.outer,
            self.inner
        )
    }
}

/// Configuration of a full study (all levels, one or more families).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// The search protocol.
    pub search: SearchConfig,
    /// Complexity levels (feature counts) to sweep.
    pub levels: Vec<usize>,
    /// FLOPs accounting convention.
    pub cost: CostModel,
}

impl ExperimentConfig {
    /// The paper's full sweep: features 10, 20, …, 110 with the paper
    /// protocol.
    pub fn paper() -> Self {
        Self {
            search: SearchConfig::paper(),
            levels: hqnn_data::complexity_levels(),
            cost: CostModel::default(),
        }
    }

    /// A reduced sweep (three levels, fast protocol) that regenerates every
    /// figure's shape in minutes on one core.
    pub fn fast() -> Self {
        Self {
            search: SearchConfig::fast(),
            levels: vec![10, 60, 110],
            cost: CostModel::default(),
        }
    }

    /// A miniature sweep for tests and benches.
    pub fn smoke() -> Self {
        Self {
            search: SearchConfig::smoke(),
            levels: vec![4, 8],
            cost: CostModel::default(),
        }
    }
}

/// The collected outcome of the study: one [`LevelResult`] per complexity
/// level per family that was run (empty `Vec` for families not yet run).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StudyResult {
    /// The configuration the study ran with.
    pub config: ExperimentConfig,
    /// Fig. 6 data.
    pub classical: Vec<LevelResult>,
    /// Fig. 7 data.
    pub hybrid_bel: Vec<LevelResult>,
    /// Fig. 8 data.
    pub hybrid_sel: Vec<LevelResult>,
    /// Provenance of the run that produced these numbers (git SHA, build
    /// profile, thread count, …). `None` in studies cached before manifests
    /// existed — `Option` keeps old JSON loadable.
    pub manifest: Option<hqnn_telemetry::RunManifest>,
}

impl StudyResult {
    /// Creates an empty study for the given configuration.
    pub fn new(config: ExperimentConfig) -> Self {
        Self {
            config,
            classical: Vec::new(),
            hybrid_bel: Vec::new(),
            hybrid_sel: Vec::new(),
            manifest: None,
        }
    }

    /// Runs one family's search over every configured level, storing (and
    /// returning a reference to) its per-level results. `progress` receives
    /// `(n_features, repetition, combo)` after each evaluation.
    pub fn run_family(
        &mut self,
        family: Family,
        progress: &mut dyn FnMut(usize, usize, &ComboOutcome),
    ) -> &[LevelResult] {
        let config = self.config.clone();
        let mut results = Vec::with_capacity(config.levels.len());
        for &n_features in &config.levels {
            let space = family.space(n_features);
            let result = search_level(
                &space,
                n_features,
                &config.search,
                &config.cost,
                &mut |rep, combo| progress(n_features, rep, combo),
            );
            results.push(result);
        }
        let slot = match family {
            Family::Classical => &mut self.classical,
            Family::HybridBel => &mut self.hybrid_bel,
            Family::HybridSel => &mut self.hybrid_sel,
        };
        *slot = results;
        slot
    }

    /// Runs the given families across every configured level as independent
    /// (family × level) shards fanned out over
    /// [`hqnn_runtime::par_map_budgeted`] — the study's outermost (and
    /// longest) loop parallelised, while each shard's inner combo waves
    /// still get threads through the nested budget split.
    ///
    /// **Bitwise-determinism guarantee**: every stored number is identical
    /// to the sequential [`StudyResult::run_family`] loop at every thread
    /// budget. Per-combo `(level, repetition, combo)` RNG salts make each
    /// outcome independent of scheduling, `search_level`'s evaluated
    /// list/winner are wave-size invariant, and shard results are
    /// reassembled in cell order — so study JSON is byte-identical between
    /// sequential and sharded execution (pinned by
    /// `crates/search/tests/parallel_determinism.rs`).
    ///
    /// `progress` receives `(family, n_features, repetition, combo)` for
    /// every retained evaluation. Shards buffer their callbacks and this
    /// method replays them after the fan-out in sequential order
    /// (family-major, levels ascending, FLOPs-ascending combos within a
    /// level) — the exact sequence the sequential loop would have emitted.
    ///
    /// Returns the [`ShardPlan`] the run was scheduled with, for manifest
    /// provenance.
    pub fn run_study_sharded(
        &mut self,
        families: &[Family],
        progress: &mut dyn FnMut(Family, usize, usize, &ComboOutcome),
    ) -> ShardPlan {
        let config = self.config.clone();
        let cells: Vec<ShardCell> = families
            .iter()
            .flat_map(|&family| {
                config.levels.iter().map(move |&n_features| ShardCell {
                    family,
                    n_features,
                })
            })
            .collect();
        let (outer, inner) = hqnn_runtime::split_budget(hqnn_runtime::threads(), cells.len());
        let plan = ShardPlan {
            cells,
            outer,
            inner,
        };
        let _study_span = telemetry::span("search.study");
        telemetry::event(
            telemetry::Level::Info,
            "search.shard_plan",
            &[
                ("cells", plan.cells.len().into()),
                ("families", families.len().into()),
                ("levels", config.levels.len().into()),
                ("outer", plan.outer.into()),
                ("inner", plan.inner.into()),
                ("plan", plan.descriptor().into()),
            ],
        );
        // Fan the cells out. Each shard buffers its progress callbacks
        // (retained combos only, cheap next to training) so they can be
        // replayed in sequential order below.
        let sharded: Vec<(LevelResult, Vec<(usize, ComboOutcome)>)> =
            hqnn_runtime::par_map_budgeted(plan.cells.len(), |i| {
                let cell = plan.cells[i];
                let _shard_span = telemetry::span("search.shard");
                let space = cell.family.space(cell.n_features);
                let mut buffered: Vec<(usize, ComboOutcome)> = Vec::new();
                let result = search_level(
                    &space,
                    cell.n_features,
                    &config.search,
                    &config.cost,
                    &mut |rep, combo| buffered.push((rep, combo.clone())),
                );
                (result, buffered)
            });
        // Replay progress and store per-family results in cell order —
        // exactly the order the sequential family loop produces.
        let mut shards = sharded.into_iter();
        for &family in families {
            let mut results = Vec::with_capacity(config.levels.len());
            for &n_features in &config.levels {
                // lint:allow(panic): par_map_budgeted returns one entry per cell
                let (result, buffered) = shards.next().expect("one shard per cell");
                for (rep, combo) in &buffered {
                    progress(family, n_features, *rep, combo);
                }
                results.push(result);
            }
            let slot = match family {
                Family::Classical => &mut self.classical,
                Family::HybridBel => &mut self.hybrid_bel,
                Family::HybridSel => &mut self.hybrid_sel,
            };
            *slot = results;
        }
        plan
    }

    /// Runs the classical search (Fig. 6) quietly.
    pub fn run_classical(&mut self) -> &[LevelResult] {
        self.run_family(Family::Classical, &mut |_, _, _| {})
    }

    /// Runs the BEL-hybrid search (Fig. 7) quietly.
    pub fn run_bel(&mut self) -> &[LevelResult] {
        self.run_family(Family::HybridBel, &mut |_, _, _| {})
    }

    /// Runs the SEL-hybrid search (Fig. 8) quietly.
    pub fn run_sel(&mut self) -> &[LevelResult] {
        self.run_family(Family::HybridSel, &mut |_, _, _| {})
    }

    /// The stored results for a family (may be empty if not run).
    pub fn family(&self, family: Family) -> &[LevelResult] {
        match family {
            Family::Classical => &self.classical,
            Family::HybridBel => &self.hybrid_bel,
            Family::HybridSel => &self.hybrid_sel,
        }
    }

    /// Serialises the study as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, json)
    }

    /// Loads a study previously written by [`StudyResult::save`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file is missing or not valid study JSON.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(io::Error::other)
    }
}

/// One row of the paper's Table I: per-sample FLOPs of a hybrid model
/// decomposed into total / encoding+classical / classical / encoding /
/// quantum-layer shares.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableOneRow {
    /// `"Hybrid (BEL)"` or `"Hybrid (SEL)"`.
    pub model: String,
    /// Feature size (problem complexity).
    pub feature_size: usize,
    /// Best combination `(qubits, layers)` the row describes.
    pub best_combo: (usize, usize),
    /// Total FLOPs ("TF").
    pub total: u64,
    /// Encoding + classical layers ("Enc+CL").
    pub enc_plus_cl: u64,
    /// Classical layers only ("CL").
    pub classical: u64,
    /// Encoding only ("Enc").
    pub encoding: u64,
    /// Quantum layer ("QL").
    pub quantum: u64,
}

fn table_row(
    kind: EntanglerKind,
    features: usize,
    combo: (usize, usize),
    cost: &CostModel,
) -> TableOneRow {
    let spec = HybridSpec::new(
        features,
        N_CLASSES,
        QnnTemplate::new(combo.0, combo.1, kind),
    );
    let f = spec.flops(cost);
    TableOneRow {
        model: format!("Hybrid ({})", kind.short_name()),
        feature_size: features,
        best_combo: combo,
        total: f.total(),
        enc_plus_cl: f.encoding + f.classical,
        classical: f.classical,
        encoding: f.encoding,
        quantum: f.quantum,
    }
}

/// Table I priced at the paper's reported best combinations:
/// BEL (3,2)/(3,2)/(3,4)/(4,4) and SEL (3,2) throughout, at feature sizes
/// 10/40/80/110.
pub fn table_one_paper_combos(cost: &CostModel) -> Vec<TableOneRow> {
    let mut rows = Vec::with_capacity(8);
    let bel = [(10, (3, 2)), (40, (3, 2)), (80, (3, 4)), (110, (4, 4))];
    for (features, combo) in bel {
        rows.push(table_row(EntanglerKind::Basic, features, combo, cost));
    }
    for features in [10, 40, 80, 110] {
        rows.push(table_row(EntanglerKind::Strong, features, (3, 2), cost));
    }
    rows
}

/// Table I priced at the combinations *this* study's searches actually
/// selected (the smallest winner per level). Levels with no winner are
/// skipped.
pub fn table_one_from_study(study: &StudyResult) -> Vec<TableOneRow> {
    let mut rows = Vec::new();
    for (family, results) in [
        (EntanglerKind::Basic, &study.hybrid_bel),
        (EntanglerKind::Strong, &study.hybrid_sel),
    ] {
        for level in results {
            let Some(winner) = level.smallest_winner() else {
                continue;
            };
            let hqnn_core::ModelSpec::Hybrid(h) = &winner.spec else {
                continue;
            };
            rows.push(table_row(
                family,
                level.n_features,
                (h.template.n_qubits(), h.template.depth()),
                &study.config.cost,
            ));
        }
    }
    rows
}

/// Evaluates **every** combination of a space at one level (no early stop,
/// up to `max_combos`), cheapest first — the exhaustive counterpart of the
/// paper's greedy protocol, used to chart the accuracy-vs-FLOPs landscape.
pub fn accuracy_frontier(
    space: &[hqnn_core::ModelSpec],
    n_features: usize,
    config: &SearchConfig,
    cost: &hqnn_flops::CostModel,
    progress: &mut dyn FnMut(&ComboOutcome),
) -> Vec<ComboOutcome> {
    let mut sorted: Vec<&hqnn_core::ModelSpec> = space.iter().collect();
    sorted.sort_by_key(|s| s.flops(cost).total());
    let data = crate::protocol::prepare_level_data(config, n_features);
    let mut outcomes = Vec::new();
    for (idx, spec) in sorted
        .iter()
        .take(config.max_combos_per_repetition)
        .enumerate()
    {
        let salt = 0xF00D_0000 | idx as u64;
        let outcome = crate::protocol::evaluate_combo(spec, &data, config, cost, salt);
        progress(&outcome);
        outcomes.push(outcome);
    }
    outcomes
}

/// The Pareto-optimal subset of outcomes under the dominance rule: outcome
/// `a` dominates `b` iff `a.flops.total() <= b.flops.total()` and
/// `a.avg_val_accuracy >= b.avg_val_accuracy` with at least one inequality
/// strict. In particular, of two outcomes tied on total FLOPs only the
/// higher-accuracy one can be on the front; outcomes tied on *both* axes
/// are represented once, by the earliest in input order (the sort is
/// stable). Returned sorted by FLOPs ascending with accuracy strictly
/// increasing along the front.
pub fn pareto_front(outcomes: &[ComboOutcome]) -> Vec<&ComboOutcome> {
    let mut sorted: Vec<&ComboOutcome> = outcomes.iter().collect();
    // (FLOPs asc, accuracy desc): the best outcome of a FLOPs tie class is
    // scanned first, so its lower-accuracy tie-mates are correctly rejected
    // as dominated instead of sneaking onto the front ahead of it.
    sorted.sort_by(|a, b| {
        a.flops
            .total()
            .cmp(&b.flops.total())
            .then_with(|| b.avg_val_accuracy.total_cmp(&a.avg_val_accuracy))
    });
    let mut front: Vec<&ComboOutcome> = Vec::new();
    let mut best_acc = f64::NEG_INFINITY;
    for o in sorted {
        if o.avg_val_accuracy > best_acc {
            best_acc = o.avg_val_accuracy;
            front.push(o);
        }
    }
    front
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_study_runs_all_families() {
        let mut study = StudyResult::new(ExperimentConfig::smoke());
        study.run_classical();
        study.run_bel();
        study.run_sel();
        assert_eq!(study.classical.len(), 2);
        assert_eq!(study.hybrid_bel.len(), 2);
        assert_eq!(study.hybrid_sel.len(), 2);
        assert_eq!(study.family(Family::Classical).len(), 2);
        for level in &study.classical {
            assert_eq!(level.repetitions.len(), 1);
            assert!(!level.repetitions[0].evaluated.is_empty());
        }
    }

    #[test]
    fn study_round_trips_through_json() {
        let mut study = StudyResult::new(ExperimentConfig::smoke());
        study.run_classical();
        let dir = std::env::temp_dir().join("hqnn-search-test");
        let path = dir.join("study.json");
        study.save(&path).expect("save study");
        let loaded = StudyResult::load(&path).expect("load study");
        assert_eq!(study, loaded);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(StudyResult::load("/nonexistent/study.json").is_err());
    }

    #[test]
    fn table_one_paper_combos_structure() {
        let rows = table_one_paper_combos(&CostModel::default());
        assert_eq!(rows.len(), 8);
        // Column identity: TF = Enc+CL + QL and Enc+CL = Enc + CL.
        for row in &rows {
            assert_eq!(row.total, row.enc_plus_cl + row.quantum);
            assert_eq!(row.enc_plus_cl, row.encoding + row.classical);
        }
        // SEL rows share a constant QL (the paper's key observation).
        let sel: Vec<&TableOneRow> = rows.iter().filter(|r| r.model.contains("SEL")).collect();
        assert_eq!(sel.len(), 4);
        assert!(sel.iter().all(|r| r.quantum == sel[0].quantum));
        // BEL QL grows once the architecture grows.
        let bel: Vec<&TableOneRow> = rows.iter().filter(|r| r.model.contains("BEL")).collect();
        assert!(bel[3].quantum > bel[0].quantum);
        // CL grows with feature size in both blocks.
        assert!(sel[3].classical > sel[0].classical);
    }

    #[test]
    fn table_one_from_study_uses_winners() {
        let mut study = StudyResult::new(ExperimentConfig::smoke());
        study.run_sel();
        let rows = table_one_from_study(&study);
        // Smoke protocol may or may not find winners; rows must be
        // structurally valid either way.
        for row in rows {
            assert!(row.model.contains("SEL"));
            assert_eq!(row.total, row.enc_plus_cl + row.quantum);
            assert!(study.config.levels.contains(&row.feature_size));
        }
    }

    #[test]
    fn accuracy_frontier_evaluates_in_flops_order() {
        let config = SearchConfig::smoke();
        let cost = CostModel::default();
        let space = crate::space::classical_space(4, 3);
        let mut seen = 0;
        let outcomes = accuracy_frontier(&space, 4, &config, &cost, &mut |_| seen += 1);
        assert_eq!(
            outcomes.len(),
            config.max_combos_per_repetition.min(space.len())
        );
        assert_eq!(seen, outcomes.len());
        let flops: Vec<u64> = outcomes.iter().map(|o| o.flops.total()).collect();
        assert!(flops.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn pareto_front_is_nondominated_and_monotone() {
        let config = SearchConfig::smoke();
        let cost = CostModel::default();
        let space = crate::space::classical_space(4, 3);
        let outcomes = accuracy_frontier(&space, 4, &config, &cost, &mut |_| {});
        let front = pareto_front(&outcomes);
        assert!(!front.is_empty());
        // Monotone: FLOPs ascending and accuracy strictly ascending.
        for pair in front.windows(2) {
            assert!(pair[0].flops.total() <= pair[1].flops.total());
            assert!(pair[0].avg_val_accuracy < pair[1].avg_val_accuracy);
        }
        // Non-dominated: nothing in the full set beats a front member on
        // both axes.
        for member in &front {
            for o in &outcomes {
                assert!(
                    !(o.flops.total() < member.flops.total()
                        && o.avg_val_accuracy > member.avg_val_accuracy),
                    "{} dominates front member {}",
                    o.spec.label(),
                    member.spec.label()
                );
            }
        }
    }

    #[test]
    fn sharded_study_matches_sequential_and_replays_progress_in_order() {
        let config = ExperimentConfig::smoke();
        let families = [Family::Classical, Family::HybridBel];
        let mut seq = StudyResult::new(config.clone());
        let mut seq_calls = Vec::new();
        for family in families {
            seq.run_family(family, &mut |n, rep, combo| {
                seq_calls.push((family, n, rep, combo.spec.label()));
            });
        }
        let mut sharded = StudyResult::new(config);
        let mut shard_calls = Vec::new();
        let plan = hqnn_runtime::with_threads(4, || {
            sharded.run_study_sharded(&families, &mut |family, n, rep, combo| {
                shard_calls.push((family, n, rep, combo.spec.label()));
            })
        });
        assert_eq!(seq, sharded);
        assert_eq!(seq_calls, shard_calls);
        assert_eq!(
            plan.cells.len(),
            families.len() * sharded.config.levels.len()
        );
        assert!(plan.outer * plan.inner <= 4);
        assert_eq!(plan.descriptor(), format!("cells={};outer={};inner={}", plan.cells.len(), plan.outer, plan.inner));
    }

    #[test]
    fn pareto_front_drops_dominated_flops_ties() {
        // Regression: two outcomes tied on total FLOPs, the lower-accuracy
        // one listed first. The old FLOPs-only sort scanned it first and
        // kept the dominated point on the front.
        let spec = crate::space::classical_space(4, 3)[0].clone();
        let outcome = |flops: u64, acc: f64| ComboOutcome {
            spec: spec.clone(),
            flops: hqnn_flops::FlopsBreakdown {
                classical: flops,
                encoding: 0,
                quantum: 0,
            },
            param_count: 1,
            runs: Vec::new(),
            avg_train_accuracy: acc,
            avg_val_accuracy: acc,
            passed: false,
        };
        let outcomes = vec![
            outcome(100, 0.50), // dominated by its 0.90 tie-mate
            outcome(100, 0.90),
            outcome(200, 0.70), // dominated outright
            outcome(200, 0.95),
            outcome(300, 0.95), // equal accuracy at higher cost: dominated
        ];
        let front = pareto_front(&outcomes);
        let kept: Vec<(u64, f64)> = front
            .iter()
            .map(|o| (o.flops.total(), o.avg_val_accuracy))
            .collect();
        assert_eq!(kept, vec![(100, 0.90), (200, 0.95)]);
        // Exact ties on both axes keep a single representative.
        let dup = vec![outcome(100, 0.80), outcome(100, 0.80)];
        assert_eq!(pareto_front(&dup).len(), 1);
    }

    #[test]
    fn experiment_profiles() {
        assert_eq!(ExperimentConfig::paper().levels.len(), 11);
        assert_eq!(ExperimentConfig::fast().levels, vec![10, 60, 110]);
        assert!(ExperimentConfig::smoke().levels.len() < 3);
        assert_eq!(Family::Classical.name(), "classical");
        assert_eq!(Family::HybridSel.name(), "hybrid (SEL)");
    }
}
