//! Grid-search protocol and experiment drivers — the paper's evaluation
//! methodology (§III) as a library.
//!
//! The pipeline mirrors Fig. 3 of the paper:
//!
//! 1. [`space`] enumerates the model search spaces — 155 classical MLP
//!    combinations (≤ 3 hidden layers over widths {2,4,6,8,10}, §III-B) and
//!    30 hybrid combinations per entangler kind (qubits {3,4,5} × depth
//!    1..=10, §III-C);
//! 2. specs are **sorted by FLOPs ascending** (§III-E) so the first
//!    threshold-passing model is automatically the cheapest;
//! 3. [`protocol`] trains each combo `runs_per_combo` times, averages the
//!    best train/val accuracies, stops at the first combo whose averages
//!    reach the threshold (≥ 90%), and repeats the whole procedure
//!    `repetitions` times (§III-F);
//! 4. [`experiments`] packages the per-figure drivers (Figs. 6–10, Table I)
//!    and [`report`] renders them as the tables the binaries print.
//!
//! Everything is deterministic given [`SearchConfig::seed`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod protocol;
pub mod report;
pub mod space;

pub use experiments::{ExperimentConfig, Family, ShardCell, ShardPlan, StudyResult, TableOneRow};
pub use protocol::{ComboOutcome, LevelResult, RepetitionOutcome, RunSummary, SearchConfig};
pub use space::{classical_space, combination_count, hybrid_space};
