//! Property-based tests: the hand-written layer backprop must agree with
//! the independent autodiff tape on random shapes and data, and the losses
//! and optimizers must satisfy their analytic invariants.

use hqnn_autodiff::Graph;
use hqnn_nn::{
    accuracy, one_hot, softmax, Activation, ActivationKind, Adam, Dense, Layer, Optimizer,
    Sequential, SoftmaxCrossEntropy,
};
use hqnn_tensor::{Matrix, SeededRng};
use proptest::prelude::*;

fn dims() -> impl Strategy<Value = (usize, usize, usize, usize)> {
    // (batch, in_dim, hidden, classes)
    (1usize..=6, 1usize..=8, 1usize..=8, 2usize..=4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dense_gradients_match_autodiff((batch, in_dim, out_dim, _c) in dims(), seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let w = Matrix::glorot_uniform(in_dim, out_dim, &mut rng);
        let b = Matrix::uniform(1, out_dim, -0.5, 0.5, &mut rng);
        let x = Matrix::uniform(batch, in_dim, -2.0, 2.0, &mut rng);

        let mut layer = Dense::from_parts(w.clone(), b.clone());
        let out = layer.forward(&x, true);
        let upstream = Matrix::uniform(batch, out_dim, -1.0, 1.0, &mut rng);
        let dx = layer.backward(&upstream);
        let mut grads = Vec::new();
        layer.visit_params(&mut |_v, g| grads.push(g.clone()));

        // Tape path: L = sum(upstream ⊙ (xW + b)).
        let mut g = Graph::new();
        let xv = g.input(x);
        let wv = g.input(w);
        let bv = g.input(b);
        let uv = g.input(upstream);
        let z = g.matmul(xv, wv);
        let z = g.add_bias(z, bv);
        let weighted = g.mul(z, uv);
        let loss = g.sum(weighted);
        g.backward(loss);

        prop_assert!(grads[0].approx_eq(g.grad(wv), 1e-9), "dW mismatch");
        prop_assert!(grads[1].approx_eq(g.grad(bv), 1e-9), "db mismatch");
        prop_assert!(dx.approx_eq(g.grad(xv), 1e-9), "dX mismatch");
        prop_assert_eq!(out.shape(), (batch, out_dim));
    }

    #[test]
    fn activation_gradients_match_autodiff(
        (batch, dim, _h, _c) in dims(),
        kind_idx in 0usize..3,
        seed in 0u64..500,
    ) {
        let kind = [ActivationKind::Relu, ActivationKind::Tanh, ActivationKind::Sigmoid][kind_idx];
        let mut rng = SeededRng::new(seed);
        // Keep values away from relu's kink where the subgradient is ambiguous.
        let x = Matrix::uniform(batch, dim, -2.0, 2.0, &mut rng)
            .map(|v| if v.abs() < 1e-3 { 0.5 } else { v });
        let upstream = Matrix::uniform(batch, dim, -1.0, 1.0, &mut rng);

        let mut layer = Activation::new(kind);
        let _ = layer.forward(&x, true);
        let dx = layer.backward(&upstream);

        let mut g = Graph::new();
        let xv = g.input(x);
        let uv = g.input(upstream);
        let y = match kind {
            ActivationKind::Relu => g.relu(xv),
            ActivationKind::Tanh => g.tanh(xv),
            ActivationKind::Sigmoid => g.sigmoid(xv),
        };
        let weighted = g.mul(y, uv);
        let loss = g.sum(weighted);
        g.backward(loss);
        prop_assert!(dx.approx_eq(g.grad(xv), 1e-9), "{kind:?} gradient mismatch");
    }

    #[test]
    fn full_mlp_gradients_match_autodiff((batch, in_dim, hidden, classes) in dims(), seed in 0u64..200) {
        let mut rng = SeededRng::new(seed);
        let w1 = Matrix::glorot_uniform(in_dim, hidden, &mut rng);
        let b1 = Matrix::uniform(1, hidden, -0.2, 0.2, &mut rng);
        let w2 = Matrix::glorot_uniform(hidden, classes, &mut rng);
        let b2 = Matrix::uniform(1, classes, -0.2, 0.2, &mut rng);
        let x = Matrix::uniform(batch, in_dim, -1.5, 1.5, &mut rng);
        let labels: Vec<usize> = (0..batch).map(|i| i % classes).collect();
        let targets = one_hot(&labels, classes);

        let mut model = Sequential::new();
        model.push(Dense::from_parts(w1.clone(), b1.clone()));
        model.push(Activation::tanh());
        model.push(Dense::from_parts(w2.clone(), b2.clone()));
        let logits = model.forward(&x, true);
        let (loss, dlogits) = SoftmaxCrossEntropy::new().loss_and_grad(&logits, &targets);
        let dx = model.backward(&dlogits);
        let mut grads = Vec::new();
        model.visit_params(&mut |_v, g| grads.push(g.clone()));

        let mut g = Graph::new();
        let xv = g.input(x);
        let w1v = g.input(w1);
        let b1v = g.input(b1);
        let w2v = g.input(w2);
        let b2v = g.input(b2);
        let h = g.matmul(xv, w1v);
        let h = g.add_bias(h, b1v);
        let h = g.tanh(h);
        let z = g.matmul(h, w2v);
        let z = g.add_bias(z, b2v);
        let l = g.softmax_cross_entropy(z, &targets);
        g.backward(l);

        prop_assert!((loss - g.value(l)[(0, 0)]).abs() < 1e-10);
        prop_assert!(grads[0].approx_eq(g.grad(w1v), 1e-8));
        prop_assert!(grads[1].approx_eq(g.grad(b1v), 1e-8));
        prop_assert!(grads[2].approx_eq(g.grad(w2v), 1e-8));
        prop_assert!(grads[3].approx_eq(g.grad(b2v), 1e-8));
        prop_assert!(dx.approx_eq(g.grad(xv), 1e-8));
    }

    #[test]
    fn softmax_rows_are_distributions(batch in 1usize..6, classes in 1usize..6, seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let logits = Matrix::uniform(batch, classes, -20.0, 20.0, &mut rng);
        let p = softmax(&logits);
        for r in 0..batch {
            let row_sum: f64 = p.row(r).iter().sum();
            prop_assert!((row_sum - 1.0).abs() < 1e-9);
            prop_assert!(p.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn cross_entropy_loss_is_nonnegative(batch in 1usize..6, classes in 2usize..5, seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let logits = Matrix::uniform(batch, classes, -5.0, 5.0, &mut rng);
        let labels: Vec<usize> = (0..batch).map(|_| rng.index(classes)).collect();
        let (loss, grad) = SoftmaxCrossEntropy::new()
            .loss_and_grad(&logits, &one_hot(&labels, classes));
        prop_assert!(loss >= 0.0);
        // Gradient rows sum to ~0 (softmax sums to 1, one-hot sums to 1).
        for r in 0..batch {
            let s: f64 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-12);
        }
    }

    #[test]
    fn accuracy_is_a_fraction(batch in 1usize..10, classes in 2usize..4, seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let logits = Matrix::uniform(batch, classes, -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..batch).map(|_| rng.index(classes)).collect();
        let acc = accuracy(&logits, &labels);
        prop_assert!((0.0..=1.0).contains(&acc));
        let scaled = acc * batch as f64;
        prop_assert!((scaled.round() - scaled).abs() < 1e-9);
    }

    #[test]
    fn adam_converges_on_random_quadratics(target in -5.0f64..5.0, seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let start = rng.uniform(-5.0, 5.0);
        let mut opt = Adam::new(0.1);
        let mut w = Matrix::row_vector(&[start]);
        for _ in 0..2000 {
            let g = Matrix::row_vector(&[2.0 * (w[(0, 0)] - target)]);
            opt.begin_step();
            opt.update(0, &mut w, &g);
        }
        prop_assert!((w[(0, 0)] - target).abs() < 1e-2, "w = {}, target = {target}", w[(0, 0)]);
    }
}
