//! The [`Layer`] trait and the classical layers (dense, activations).

use std::fmt;

use hqnn_tensor::{Matrix, SeededRng};

/// A differentiable network layer operating on `(batch, features)` matrices.
///
/// The contract mirrors classic layer-wise backprop:
///
/// 1. [`Layer::forward`] maps a batch to its output and caches whatever the
///    backward pass will need.
/// 2. [`Layer::backward`] receives `dL/d(output)`, **stores** `dL/d(params)`
///    internally (overwriting any previous gradients) and returns
///    `dL/d(input)`. It must be called after a matching `forward`.
/// 3. [`Layer::visit_params`] exposes `(value, grad)` pairs in a stable order
///    so optimizers can update them.
///
/// The trait is object-safe and open: `hqnn-core` implements it for the
/// simulated quantum layer, which is what lets hybrid and classical models
/// share one training loop.
pub trait Layer: fmt::Debug {
    /// Computes the layer output for a batch. `training` distinguishes
    /// train-time from inference-time behaviour (unused by the built-in
    /// layers but part of the contract for e.g. dropout-style layers).
    fn forward(&mut self, input: &Matrix, training: bool) -> Matrix;

    /// Consumes `dL/d(output)` and returns `dL/d(input)`, storing parameter
    /// gradients internally.
    ///
    /// # Panics
    ///
    /// Implementations may panic if called before `forward` or with a
    /// gradient whose shape does not match the cached forward output.
    fn backward(&mut self, grad_output: &Matrix) -> Matrix;

    /// Visits every `(value, grad)` parameter pair in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &Matrix));

    /// Total number of trainable scalars.
    fn param_count(&self) -> usize;

    /// Output feature dimension given the input feature dimension.
    fn output_dim(&self, input_dim: usize) -> usize;

    /// Short human-readable description (e.g. `"Dense(10→3)"`).
    fn describe(&self) -> String;
}

/// A fully connected layer: `y = x·W + b` with Glorot-uniform `W` and zero
/// `b`, matching the Keras `Dense` defaults used in the paper.
///
/// # Example
///
/// ```
/// use hqnn_nn::{Dense, Layer};
/// use hqnn_tensor::{Matrix, SeededRng};
///
/// let mut rng = SeededRng::new(7);
/// let mut dense = Dense::new(3, 2, &mut rng);
/// assert_eq!(dense.param_count(), 3 * 2 + 2);
/// let y = dense.forward(&Matrix::zeros(4, 3), true);
/// assert_eq!(y.shape(), (4, 2));
/// ```
#[derive(Debug, Clone)]
pub struct Dense {
    weight: Matrix,
    bias: Matrix,
    grad_weight: Matrix,
    grad_bias: Matrix,
    cached_input: Option<Matrix>,
}

impl Dense {
    /// Creates a dense layer with `in_dim` inputs and `out_dim` outputs.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_dim: usize, out_dim: usize, rng: &mut SeededRng) -> Self {
        assert!(
            in_dim > 0 && out_dim > 0,
            "dense dimensions must be positive"
        );
        Self {
            weight: Matrix::glorot_uniform(in_dim, out_dim, rng),
            bias: Matrix::zeros(1, out_dim),
            grad_weight: Matrix::zeros(in_dim, out_dim),
            grad_bias: Matrix::zeros(1, out_dim),
            cached_input: None,
        }
    }

    /// Creates a dense layer with explicit weights (tests / serialization).
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not `1 × weight.cols()`.
    pub fn from_parts(weight: Matrix, bias: Matrix) -> Self {
        assert_eq!(bias.shape(), (1, weight.cols()), "bias shape mismatch");
        let (r, c) = weight.shape();
        Self {
            grad_weight: Matrix::zeros(r, c),
            grad_bias: Matrix::zeros(1, c),
            weight,
            bias,
            cached_input: None,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.weight.rows()
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.weight.cols()
    }

    /// The weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.weight
    }

    /// The bias row vector.
    pub fn bias(&self) -> &Matrix {
        &self.bias
    }
}

impl Layer for Dense {
    fn forward(&mut self, input: &Matrix, _training: bool) -> Matrix {
        assert_eq!(
            input.cols(),
            self.in_dim(),
            "Dense expected {} features, got {}",
            self.in_dim(),
            input.cols()
        );
        self.cached_input = Some(input.clone());
        input.matmul(&self.weight).add_row_broadcast(&self.bias)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            // lint:allow(panic): documented Layer API contract
            .expect("backward called before forward");
        assert_eq!(
            grad_output.shape(),
            (input.rows(), self.out_dim()),
            "gradient shape mismatch"
        );
        self.grad_weight = input.transpose().matmul(grad_output);
        self.grad_bias = grad_output.sum_rows();
        grad_output.matmul(&self.weight.transpose())
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &Matrix)) {
        f(&mut self.weight, &self.grad_weight);
        f(&mut self.bias, &self.grad_bias);
    }

    fn param_count(&self) -> usize {
        self.weight.len() + self.bias.len()
    }

    fn output_dim(&self, _input_dim: usize) -> usize {
        self.out_dim()
    }

    fn describe(&self) -> String {
        format!("Dense({}→{})", self.in_dim(), self.out_dim())
    }
}

/// The supported pointwise non-linearities.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ActivationKind {
    /// `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl ActivationKind {
    fn apply(self, x: f64) -> f64 {
        match self {
            ActivationKind::Relu => x.max(0.0),
            ActivationKind::Tanh => x.tanh(),
            ActivationKind::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative expressed in terms of the activation *output* `y` (all
    /// three supported functions admit this form, which avoids caching the
    /// pre-activation).
    fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            ActivationKind::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            ActivationKind::Tanh => 1.0 - y * y,
            ActivationKind::Sigmoid => y * (1.0 - y),
        }
    }
}

/// A parameter-free pointwise activation layer.
///
/// # Example
///
/// ```
/// use hqnn_nn::{Activation, Layer};
/// use hqnn_tensor::Matrix;
///
/// let mut relu = Activation::relu();
/// let y = relu.forward(&Matrix::row_vector(&[-1.0, 2.0]), true);
/// assert_eq!(y.as_slice(), &[0.0, 2.0]);
/// ```
#[derive(Debug, Clone)]
pub struct Activation {
    kind: ActivationKind,
    cached_output: Option<Matrix>,
}

impl Activation {
    /// Creates an activation layer of the given kind.
    pub fn new(kind: ActivationKind) -> Self {
        Self {
            kind,
            cached_output: None,
        }
    }

    /// `relu` activation.
    pub fn relu() -> Self {
        Self::new(ActivationKind::Relu)
    }

    /// `tanh` activation.
    pub fn tanh() -> Self {
        Self::new(ActivationKind::Tanh)
    }

    /// Logistic sigmoid activation.
    pub fn sigmoid() -> Self {
        Self::new(ActivationKind::Sigmoid)
    }

    /// Which non-linearity this layer applies.
    pub fn kind(&self) -> ActivationKind {
        self.kind
    }
}

impl Layer for Activation {
    fn forward(&mut self, input: &Matrix, _training: bool) -> Matrix {
        let out = input.map(|v| self.kind.apply(v));
        self.cached_output = Some(out.clone());
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let out = self
            .cached_output
            .as_ref()
            // lint:allow(panic): documented Layer API contract
            .expect("backward called before forward");
        assert_eq!(grad_output.shape(), out.shape(), "gradient shape mismatch");
        grad_output.zip_with(out, |g, y| g * self.kind.derivative_from_output(y))
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Matrix, &Matrix)) {}

    fn param_count(&self) -> usize {
        0
    }

    fn output_dim(&self, input_dim: usize) -> usize {
        input_dim
    }

    fn describe(&self) -> String {
        format!("{:?}", self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SeededRng {
        SeededRng::new(42)
    }

    #[test]
    fn dense_forward_matches_manual() {
        let w = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::row_vector(&[0.5, -0.5]);
        let mut d = Dense::from_parts(w, b);
        let x = Matrix::from_rows(&[&[1.0, 1.0]]);
        let y = d.forward(&x, true);
        assert_eq!(y, Matrix::from_rows(&[&[4.5, 5.5]]));
    }

    #[test]
    fn dense_backward_gradients_match_formulas() {
        let w = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let b = Matrix::row_vector(&[0.0, 0.0]);
        let mut d = Dense::from_parts(w, b);
        let x = Matrix::from_rows(&[&[2.0, 3.0], &[4.0, 5.0]]);
        let _ = d.forward(&x, true);
        let g = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let dx = d.backward(&g);
        // dX = G·Wᵀ = G (identity W).
        assert_eq!(dx, g);
        let mut seen = Vec::new();
        d.visit_params(&mut |_v, grad| seen.push(grad.clone()));
        // dW = Xᵀ·G.
        assert_eq!(seen[0], x.transpose().matmul(&g));
        // db = column sums of G.
        assert_eq!(seen[1], Matrix::row_vector(&[1.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn dense_backward_requires_forward() {
        let mut d = Dense::new(2, 2, &mut rng());
        let _ = d.backward(&Matrix::zeros(1, 2));
    }

    #[test]
    #[should_panic(expected = "expected 3 features")]
    fn dense_forward_validates_width() {
        let mut d = Dense::new(3, 2, &mut rng());
        let _ = d.forward(&Matrix::zeros(1, 4), true);
    }

    #[test]
    fn dense_param_count() {
        let d = Dense::new(10, 3, &mut rng());
        assert_eq!(d.param_count(), 33);
        assert_eq!(d.output_dim(10), 3);
        assert_eq!(d.describe(), "Dense(10→3)");
    }

    #[test]
    fn activation_forward_values() {
        let x = Matrix::row_vector(&[-2.0, 0.0, 2.0]);
        assert_eq!(
            Activation::relu().forward(&x, true).as_slice(),
            &[0.0, 0.0, 2.0]
        );
        let t = Activation::tanh().forward(&x, true);
        assert!((t.as_slice()[2] - 2.0f64.tanh()).abs() < 1e-15);
        let s = Activation::sigmoid().forward(&x, true);
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-15);
    }

    #[test]
    fn activation_backward_derivatives() {
        for kind in [
            ActivationKind::Relu,
            ActivationKind::Tanh,
            ActivationKind::Sigmoid,
        ] {
            let mut layer = Activation::new(kind);
            let x = Matrix::row_vector(&[-1.0, 0.5, 2.0]);
            let y = layer.forward(&x, true);
            let ones = Matrix::filled(1, 3, 1.0);
            let dx = layer.backward(&ones);
            // Finite-difference check per element.
            let eps = 1e-6;
            for i in 0..3 {
                let mut xp = x.clone();
                xp.as_mut_slice()[i] += eps;
                let mut xm = x.clone();
                xm.as_mut_slice()[i] -= eps;
                let fd =
                    (kind.apply(xp.as_slice()[i]) - kind.apply(xm.as_slice()[i])) / (2.0 * eps);
                assert!(
                    (dx.as_slice()[i] - fd).abs() < 1e-6,
                    "{kind:?} elem {i}: {} vs {fd}",
                    dx.as_slice()[i]
                );
            }
            let _ = y;
        }
    }

    #[test]
    fn activation_has_no_params() {
        let mut a = Activation::tanh();
        assert_eq!(a.param_count(), 0);
        let mut called = false;
        a.visit_params(&mut |_v, _g| called = true);
        assert!(!called);
        assert_eq!(a.output_dim(7), 7);
    }
}
