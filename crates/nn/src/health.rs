//! Training-health sentinels: NaN/Inf loss and gradient-norm monitors.
//!
//! A diverging run (exploding learning rate, saturated quantum layer, bad
//! seed) used to die silently — its NaN loss flowed into the study's
//! accuracy averages and polluted the FLOPs/accuracy frontier without a
//! trace. The sentinels watch every training step and emit structured
//! `nn.health_*` error events carrying the current span path, so a bad
//! combo inside `search_level` is visible *and attributable* in the JSONL
//! log.
//!
//! The action on a tripped monitor is set by the registered `HQNN_HEALTH`
//! env var (`off|warn|abort`, default `warn`). The checks are read-only —
//! they never modify losses, gradients, or optimizer state — so enabling
//! them cannot change training numerics, and study output stays
//! byte-identical at any thread count.

use hqnn_telemetry as telemetry;
use std::sync::atomic::{AtomicU8, Ordering};
use telemetry::env::{self, HealthAction};

/// Gradient L2-norm threshold above which a step is reported as exploding.
/// Healthy runs in this workspace sit many orders of magnitude below this,
/// so the monitor only trips on genuine divergence.
pub const GRAD_NORM_LIMIT: f64 = 1e6;

const UNSET: u8 = u8::MAX;
static ACTION: AtomicU8 = AtomicU8::new(UNSET);

fn encode(action: HealthAction) -> u8 {
    match action {
        HealthAction::Off => 0,
        HealthAction::Warn => 1,
        HealthAction::Abort => 2,
    }
}

fn decode(v: u8) -> HealthAction {
    match v {
        0 => HealthAction::Off,
        2 => HealthAction::Abort,
        _ => HealthAction::Warn,
    }
}

/// The active sentinel action: `HQNN_HEALTH` on first read, `Warn` when
/// unset or invalid (an invalid value warns loudly via `env.bad_value`).
pub fn action() -> HealthAction {
    let raw = ACTION.load(Ordering::SeqCst);
    if raw != UNSET {
        return decode(raw);
    }
    let resolved = match env::var("HQNN_HEALTH") {
        None => HealthAction::Warn,
        Some(value) => env::parse_health(&value).unwrap_or_else(|| {
            telemetry::event(
                telemetry::Level::Error,
                "env.bad_value",
                &[
                    ("var", "HQNN_HEALTH".into()),
                    ("value", value.as_str().into()),
                    ("accepted", "off|warn|abort".into()),
                ],
            );
            HealthAction::Warn
        }),
    };
    ACTION.store(encode(resolved), Ordering::SeqCst);
    resolved
}

/// Overrides the sentinel action (wins over `HQNN_HEALTH`; tests mostly).
pub fn set_action(action: HealthAction) {
    ACTION.store(encode(action), Ordering::SeqCst);
}

/// True when the sentinels should run at all.
pub fn enabled() -> bool {
    action() != HealthAction::Off
}

/// Emits one `nn.health_*` event and applies the configured action.
fn report(event_name: &str, metric: &str, value: f64, epoch: usize, step: u64) {
    let action = action();
    let span = telemetry::current_span_path().unwrap_or_default();
    telemetry::event(
        telemetry::Level::Error,
        event_name,
        &[
            ("metric", metric.into()),
            ("value", value.into()),
            ("epoch", epoch.into()),
            ("step", step.into()),
            ("span", span.as_str().into()),
            (
                "action",
                match action {
                    HealthAction::Abort => "abort",
                    _ => "warn",
                }
                .into(),
            ),
        ],
    );
    if action == HealthAction::Abort {
        // lint:allow(panic): HQNN_HEALTH=abort explicitly requests fail-fast
        panic!(
            "training-health sentinel: {metric} = {value} at epoch {epoch} step {step} \
             (span `{span}`); set HQNN_HEALTH=warn to continue through divergence"
        );
    }
}

/// Checks a mini-batch loss; trips on NaN or ±Inf. Returns `true` when the
/// loss is healthy (always `true` when sentinels are off).
pub fn check_loss(loss: f64, epoch: usize, step: u64) -> bool {
    if !enabled() || loss.is_finite() {
        return true;
    }
    report("nn.health_loss", "train_loss", loss, epoch, step);
    false
}

/// Checks a gradient L2 norm; trips on NaN/Inf or norms above
/// [`GRAD_NORM_LIMIT`]. Returns `true` when the gradient is healthy.
pub fn check_grad_norm(norm: f64, epoch: usize, step: u64) -> bool {
    if !enabled() || (norm.is_finite() && norm <= GRAD_NORM_LIMIT) {
        return true;
    }
    report("nn.health_gradnorm", "grad_norm", norm, epoch, step);
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Dense};
    use crate::model::Sequential;
    use crate::optimizer::Adam;
    use crate::train::{train, TrainConfig};
    use hqnn_tensor::{Matrix, SeededRng};
    use std::sync::Mutex;

    // `ACTION` is process-global, so tests that change it (or that must
    // observe a pinned action while tripping a sentinel) serialise here.
    // Healthy-training tests elsewhere in the crate are unaffected: they
    // never trip a monitor, so the ambient action is irrelevant to them.
    static GUARD: Mutex<()> = Mutex::new(());

    /// A tiny classifier plus inputs extreme enough to diverge on step one.
    fn diverging_setup() -> (Sequential, Matrix, Vec<usize>) {
        let mut rng = SeededRng::new(3);
        let mut model = Sequential::new();
        model.push(Dense::new(2, 4, &mut rng));
        model.push(Activation::relu());
        model.push(Dense::new(4, 2, &mut rng));
        let x = Matrix::filled(8, 2, 1e300);
        let y = (0..8).map(|i| i % 2).collect();
        (model, x, y)
    }

    #[test]
    fn healthy_values_pass_silently() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_action(HealthAction::Warn);
        assert!(check_loss(0.35, 0, 0));
        assert!(check_grad_norm(12.5, 0, 0));
        assert!(check_grad_norm(0.0, 3, 99));
    }

    #[test]
    fn off_disables_all_checks() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_action(HealthAction::Off);
        assert!(!enabled());
        assert!(check_loss(f64::NAN, 0, 0));
        assert!(check_grad_norm(f64::INFINITY, 0, 0));
        set_action(HealthAction::Warn);
    }

    #[test]
    fn warn_reports_but_continues() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_action(HealthAction::Warn);
        telemetry::set_level(telemetry::Level::Off);
        assert!(!check_loss(f64::NAN, 2, 17));
        assert!(!check_loss(f64::NEG_INFINITY, 2, 18));
        assert!(!check_grad_norm(GRAD_NORM_LIMIT * 10.0, 2, 19));
        assert!(!check_grad_norm(f64::NAN, 2, 20));
    }

    #[test]
    fn abort_panics_with_context() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_action(HealthAction::Abort);
        telemetry::set_level(telemetry::Level::Off);
        let result = std::panic::catch_unwind(|| check_loss(f64::NAN, 5, 3));
        set_action(HealthAction::Warn);
        let err = result.expect_err("abort must panic");
        let msg = err.downcast_ref::<String>().expect("string payload");
        assert!(msg.contains("train_loss"), "{msg}");
        assert!(msg.contains("epoch 5"), "{msg}");
    }

    #[test]
    fn diverging_training_emits_attributable_events() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_action(HealthAction::Warn);
        telemetry::set_level(telemetry::Level::Off);
        let mem = telemetry::add_memory_sink();

        let (mut model, x, y) = diverging_setup();
        let mut opt = Adam::new(0.001);
        let mut rng = SeededRng::new(4);
        let config = TrainConfig::fast().with_epochs(2);
        let report = train(&mut model, &mut opt, &x, &y, &x, &y, 2, &config, &mut rng);
        // Warn mode completes the full budget despite divergence.
        assert_eq!(report.epochs_run, 2);

        let mut health_events = mem.events_named("nn.health_loss");
        health_events.extend(mem.events_named("nn.health_gradnorm"));
        assert!(!health_events.is_empty(), "divergence must be reported");
        let fields = &health_events[0].fields;
        // Attribution: the event carries the enclosing span path (`nn.train`
        // opens one, so it is never empty here) and the warn action.
        let span = fields
            .iter()
            .find(|(k, _)| k == "span")
            .expect("span field");
        assert_eq!(
            span.1,
            telemetry::FieldValue::Str("nn.train/nn.epoch".into())
        );
        assert!(fields
            .iter()
            .any(|(k, v)| { k == "action" && *v == telemetry::FieldValue::Str("warn".into()) }));
    }

    #[test]
    fn abort_action_stops_diverging_training() {
        let _g = GUARD.lock().unwrap_or_else(|e| e.into_inner());
        set_action(HealthAction::Abort);
        telemetry::set_level(telemetry::Level::Off);
        let (mut model, x, y) = diverging_setup();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut opt = Adam::new(0.001);
            let mut rng = SeededRng::new(4);
            let config = TrainConfig::fast().with_epochs(2);
            train(&mut model, &mut opt, &x, &y, &x, &y, 2, &config, &mut rng)
        }));
        set_action(HealthAction::Warn);
        assert!(result.is_err(), "abort must stop the run");
    }
}
