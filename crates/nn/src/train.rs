//! Mini-batch training loop implementing the paper's protocol (§III-F, §IV):
//! shuffled mini-batches of 8, Adam at `lr = 0.001`, 100 epochs, recording
//! the **best** train/validation accuracy across epochs.

use hqnn_telemetry as telemetry;
use hqnn_tensor::{Matrix, SeededRng};
use serde::{Deserialize, Serialize};

use crate::loss::{accuracy, one_hot, SoftmaxCrossEntropy};
use crate::model::Sequential;
use crate::optimizer::Optimizer;

/// Hyperparameters for one training run.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size (the paper uses 8).
    pub batch_size: usize,
    /// Whether to reshuffle sample order every epoch.
    pub shuffle: bool,
    /// Record per-epoch metrics in the report's `history` (costs one extra
    /// forward pass over train+val per epoch either way; disabling only
    /// drops the stored rows).
    pub record_history: bool,
    /// Stop early once training accuracy (and validation accuracy, when a
    /// validation set is present) reaches this threshold. `None` (the
    /// paper's protocol) always runs the full epoch budget.
    pub early_stop_acc: Option<f64>,
}

impl TrainConfig {
    /// The paper's training setup: 100 epochs, batch size 8, shuffling.
    pub fn paper() -> Self {
        Self {
            epochs: 100,
            batch_size: 8,
            shuffle: true,
            record_history: false,
            early_stop_acc: None,
        }
    }

    /// A reduced setup for fast experimentation and tests.
    pub fn fast() -> Self {
        Self {
            epochs: 25,
            batch_size: 8,
            shuffle: true,
            record_history: false,
            early_stop_acc: None,
        }
    }

    /// Overrides the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Overrides the batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Enables early stopping at the given accuracy threshold.
    pub fn with_early_stop(mut self, acc: f64) -> Self {
        self.early_stop_acc = Some(acc);
        self
    }
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Metrics measured at the end of one epoch.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EpochMetrics {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch's mini-batches.
    pub train_loss: f64,
    /// Accuracy on the full training set after the epoch.
    pub train_accuracy: f64,
    /// Accuracy on the validation set after the epoch.
    pub val_accuracy: f64,
}

/// Outcome of one training run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Highest training accuracy observed across epochs — the quantity the
    /// paper averages over runs and thresholds at 90%.
    pub best_train_accuracy: f64,
    /// Highest validation accuracy observed across epochs.
    pub best_val_accuracy: f64,
    /// Training accuracy after the final epoch.
    pub final_train_accuracy: f64,
    /// Validation accuracy after the final epoch.
    pub final_val_accuracy: f64,
    /// Mean training loss of the final epoch.
    pub final_train_loss: f64,
    /// Number of epochs run.
    pub epochs_run: usize,
    /// Per-epoch metrics (empty unless `record_history` was set).
    pub history: Vec<EpochMetrics>,
}

/// Trains `model` on `(x_train, y_train)` and evaluates on `(x_val, y_val)`.
///
/// `y_*` are integer class labels in `0..n_classes`. The RNG drives the
/// per-epoch shuffles only — parameter initialisation happens at model
/// construction.
///
/// # Panics
///
/// Panics if the training set is empty, sample counts disagree with label
/// counts, a label is `>= n_classes`, or `config.batch_size == 0`.
#[allow(clippy::too_many_arguments)]
pub fn train(
    model: &mut Sequential,
    optimizer: &mut dyn Optimizer,
    x_train: &Matrix,
    y_train: &[usize],
    x_val: &Matrix,
    y_val: &[usize],
    n_classes: usize,
    config: &TrainConfig,
    rng: &mut SeededRng,
) -> TrainReport {
    assert!(x_train.rows() > 0, "empty training set");
    assert_eq!(x_train.rows(), y_train.len(), "train sample/label mismatch");
    assert_eq!(x_val.rows(), y_val.len(), "val sample/label mismatch");
    assert!(config.batch_size > 0, "batch size must be positive");

    let _train_span = telemetry::span("nn.train");
    let loss_fn = SoftmaxCrossEntropy::new();
    let n = x_train.rows();
    let mut order: Vec<usize> = (0..n).collect();
    let mut step = 0u64;

    let mut report = TrainReport {
        best_train_accuracy: 0.0,
        best_val_accuracy: 0.0,
        final_train_accuracy: 0.0,
        final_val_accuracy: 0.0,
        final_train_loss: f64::INFINITY,
        epochs_run: 0,
        history: Vec::new(),
    };

    for epoch in 0..config.epochs {
        let _epoch_span = telemetry::span("nn.epoch");
        if config.shuffle {
            rng.shuffle(&mut order);
        }
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(config.batch_size) {
            let xb = x_train.select_rows(chunk);
            let labels: Vec<usize> = chunk.iter().map(|&i| y_train[i]).collect();
            let targets = one_hot(&labels, n_classes);
            let logits = model.forward(&xb, true);
            let (loss, grad) = loss_fn.loss_and_grad(&logits, &targets);
            model.backward(&grad);
            // Health sentinels run between backward and the optimizer step:
            // read-only checks on the loss and the freshly-stored gradients
            // (`HQNN_HEALTH=abort` makes a trip fatal before the bad step
            // is applied).
            if crate::health::enabled() {
                crate::health::check_loss(loss, epoch, step);
                crate::health::check_grad_norm(model.grad_norm(), epoch, step);
            }
            model.apply_gradients(optimizer);
            telemetry::counter("nn.train_steps", 1);
            step += 1;
            epoch_loss += loss;
            batches += 1;
        }
        epoch_loss /= batches.max(1) as f64;

        // Full-dataset forward passes: the allocation-heaviest stretch of
        // an epoch, so it gets its own span for HQNN_ALLOC attribution.
        let (train_acc, val_acc) = {
            let _eval_span = telemetry::span("nn.evaluate");
            let train_acc = accuracy(&model.predict(x_train), y_train);
            let val_acc = if y_val.is_empty() {
                0.0
            } else {
                accuracy(&model.predict(x_val), y_val)
            };
            (train_acc, val_acc)
        };
        report.best_train_accuracy = report.best_train_accuracy.max(train_acc);
        report.best_val_accuracy = report.best_val_accuracy.max(val_acc);
        report.final_train_accuracy = train_acc;
        report.final_val_accuracy = val_acc;
        report.final_train_loss = epoch_loss;
        report.epochs_run = epoch + 1;
        if config.record_history {
            report.history.push(EpochMetrics {
                epoch,
                train_loss: epoch_loss,
                train_accuracy: train_acc,
                val_accuracy: val_acc,
            });
        }
        telemetry::counter("nn.epochs", 1);
        telemetry::event(
            telemetry::Level::Debug,
            "nn.epoch",
            &[
                ("epoch", epoch.into()),
                ("train_loss", epoch_loss.into()),
                ("train_acc", train_acc.into()),
                ("val_acc", val_acc.into()),
            ],
        );
        if let Some(threshold) = config.early_stop_acc {
            let val_ok = y_val.is_empty() || val_acc >= threshold;
            if train_acc >= threshold && val_ok {
                telemetry::event(
                    telemetry::Level::Info,
                    "nn.early_stop",
                    &[
                        ("epoch", epoch.into()),
                        ("train_acc", train_acc.into()),
                        ("val_acc", val_acc.into()),
                    ],
                );
                break;
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Dense};
    use crate::optimizer::Adam;

    /// A linearly separable two-class blob problem.
    fn blobs(rng: &mut SeededRng, n_per_class: usize) -> (Matrix, Vec<usize>) {
        let mut x = Matrix::zeros(2 * n_per_class, 2);
        let mut y = Vec::with_capacity(2 * n_per_class);
        for i in 0..2 * n_per_class {
            let class = i % 2;
            let cx = if class == 0 { -1.0 } else { 1.0 };
            x[(i, 0)] = cx + rng.normal(0.0, 0.3);
            x[(i, 1)] = cx + rng.normal(0.0, 0.3);
            y.push(class);
        }
        (x, y)
    }

    fn classifier(rng: &mut SeededRng) -> Sequential {
        let mut m = Sequential::new();
        m.push(Dense::new(2, 6, rng));
        m.push(Activation::relu());
        m.push(Dense::new(6, 2, rng));
        m
    }

    #[test]
    fn train_reaches_high_accuracy_on_blobs() {
        let mut rng = SeededRng::new(100);
        let (x_train, y_train) = blobs(&mut rng, 40);
        let (x_val, y_val) = blobs(&mut rng, 10);
        let mut model = classifier(&mut rng);
        let mut opt = Adam::new(0.01);
        let config = TrainConfig::fast().with_epochs(40);
        let report = train(
            &mut model, &mut opt, &x_train, &y_train, &x_val, &y_val, 2, &config, &mut rng,
        );
        assert!(report.best_train_accuracy > 0.95, "{report:?}");
        assert!(report.best_val_accuracy > 0.9, "{report:?}");
        assert_eq!(report.epochs_run, 40);
    }

    #[test]
    fn history_is_recorded_when_requested() {
        let mut rng = SeededRng::new(101);
        let (x, y) = blobs(&mut rng, 8);
        let mut model = classifier(&mut rng);
        let mut opt = Adam::new(0.01);
        let mut config = TrainConfig::fast().with_epochs(5);
        config.record_history = true;
        let report = train(&mut model, &mut opt, &x, &y, &x, &y, 2, &config, &mut rng);
        assert_eq!(report.history.len(), 5);
        assert!(report.history.iter().all(|m| m.train_loss.is_finite()));
        // best >= final by construction.
        assert!(report.best_train_accuracy >= report.final_train_accuracy);
    }

    #[test]
    fn training_is_deterministic_for_fixed_seed() {
        let run = || {
            let mut rng = SeededRng::new(7);
            let (x, y) = blobs(&mut rng, 12);
            let mut model = classifier(&mut rng);
            let mut opt = Adam::new(0.005);
            let config = TrainConfig::fast().with_epochs(8);
            train(&mut model, &mut opt, &x, &y, &x, &y, 2, &config, &mut rng)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b);
    }

    #[test]
    fn early_stop_halts_before_epoch_budget() {
        let mut rng = SeededRng::new(100);
        let (x, y) = blobs(&mut rng, 40);
        let mut model = classifier(&mut rng);
        let mut opt = Adam::new(0.01);
        // Separable blobs hit 90% long before 200 epochs.
        let config = TrainConfig::fast().with_epochs(200).with_early_stop(0.9);
        let report = train(&mut model, &mut opt, &x, &y, &x, &y, 2, &config, &mut rng);
        assert!(report.epochs_run < 200, "{report:?}");
        assert!(report.best_train_accuracy >= 0.9, "{report:?}");
    }

    #[test]
    fn empty_validation_set_is_allowed() {
        let mut rng = SeededRng::new(9);
        let (x, y) = blobs(&mut rng, 6);
        let mut model = classifier(&mut rng);
        let mut opt = Adam::new(0.01);
        let config = TrainConfig::fast().with_epochs(2);
        let report = train(
            &mut model,
            &mut opt,
            &x,
            &y,
            &Matrix::zeros(0, 2),
            &[],
            2,
            &config,
            &mut rng,
        );
        assert_eq!(report.best_val_accuracy, 0.0);
        assert!(report.best_train_accuracy > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_training_set_rejected() {
        let mut rng = SeededRng::new(0);
        let mut model = classifier(&mut rng);
        let mut opt = Adam::new(0.01);
        let _ = train(
            &mut model,
            &mut opt,
            &Matrix::zeros(0, 2),
            &[],
            &Matrix::zeros(0, 2),
            &[],
            2,
            &TrainConfig::fast(),
            &mut rng,
        );
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn zero_batch_size_rejected() {
        let mut rng = SeededRng::new(0);
        let (x, y) = blobs(&mut rng, 4);
        let mut model = classifier(&mut rng);
        let mut opt = Adam::new(0.01);
        let config = TrainConfig::fast().with_batch_size(0);
        let _ = train(&mut model, &mut opt, &x, &y, &x, &y, 2, &config, &mut rng);
    }

    #[test]
    fn paper_config_matches_section_iv() {
        let c = TrainConfig::paper();
        assert_eq!(c.epochs, 100);
        assert_eq!(c.batch_size, 8);
        assert_eq!(TrainConfig::default(), c);
    }
}
