//! The [`Sequential`] model container.

use hqnn_tensor::Matrix;

use crate::layer::Layer;
use crate::optimizer::Optimizer;

/// An ordered stack of layers trained end to end.
///
/// # Example
///
/// ```
/// use hqnn_nn::{Activation, Dense, Sequential};
/// use hqnn_tensor::{Matrix, SeededRng};
///
/// let mut rng = SeededRng::new(1);
/// let mut model = Sequential::new();
/// model.push(Dense::new(2, 4, &mut rng));
/// model.push(Activation::tanh());
/// model.push(Dense::new(4, 3, &mut rng));
/// let out = model.forward(&Matrix::zeros(5, 2), false);
/// assert_eq!(out.shape(), (5, 3));
/// ```
#[derive(Debug, Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer>>,
}

impl Sequential {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self { layers: Vec::new() }
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: impl Layer + 'static) {
        self.layers.push(Box::new(layer));
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// `true` when the model has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Box<dyn Layer>] {
        &self.layers
    }

    /// Runs the full forward pass, caching per-layer state for a subsequent
    /// [`Sequential::backward`].
    pub fn forward(&mut self, input: &Matrix, training: bool) -> Matrix {
        let mut x = input.clone();
        for layer in &mut self.layers {
            x = layer.forward(&x, training);
        }
        x
    }

    /// Runs the full backward pass from `dL/d(output)`, storing parameter
    /// gradients in every layer and returning `dL/d(input)`.
    ///
    /// # Panics
    ///
    /// Panics (from the layers) when no matching forward pass preceded it.
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let mut g = grad_output.clone();
        for layer in self.layers.iter_mut().rev() {
            g = layer.backward(&g);
        }
        g
    }

    /// Visits every parameter `(value, grad)` pair in a stable order
    /// (layer order, then each layer's own parameter order).
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &Matrix)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Applies one optimizer step to all parameters using the gradients
    /// stored by the last [`Sequential::backward`].
    pub fn apply_gradients(&mut self, optimizer: &mut dyn Optimizer) {
        optimizer.begin_step();
        let mut slot = 0;
        self.visit_params(&mut |value, grad| {
            optimizer.update(slot, value, grad);
            slot += 1;
        });
    }

    /// L2 norm over all parameter gradients stored by the last
    /// [`Sequential::backward`]. Accumulated as a sequential fold in
    /// [`Sequential::visit_params`] order, so the value is deterministic at
    /// any thread count — the training-health sentinels rely on that.
    pub fn grad_norm(&mut self) -> f64 {
        let mut sum_sq = 0.0;
        self.visit_params(&mut |_value, grad| {
            for g in grad.as_slice() {
                sum_sq += g * g;
            }
        });
        sum_sq.sqrt()
    }

    /// Total number of trainable scalars — one of the paper's two complexity
    /// metrics.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }

    /// Inference-mode forward pass.
    pub fn predict(&mut self, input: &Matrix) -> Matrix {
        self.forward(input, false)
    }

    /// A compact architecture description, e.g.
    /// `"Dense(10→8) → Relu → Dense(8→3)"`.
    pub fn describe(&self) -> String {
        self.layers
            .iter()
            .map(|l| l.describe())
            .collect::<Vec<_>>()
            .join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Activation, Dense};
    use crate::loss::{one_hot, SoftmaxCrossEntropy};
    use crate::optimizer::{Adam, Sgd};
    use hqnn_tensor::SeededRng;

    fn toy_model(rng: &mut SeededRng) -> Sequential {
        let mut m = Sequential::new();
        m.push(Dense::new(2, 8, rng));
        m.push(Activation::tanh());
        m.push(Dense::new(8, 2, rng));
        m
    }

    #[test]
    fn param_count_sums_layers() {
        let mut rng = SeededRng::new(3);
        let m = toy_model(&mut rng);
        assert_eq!(m.param_count(), 2 * 8 + 8 + 8 * 2 + 2);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
    }

    #[test]
    fn describe_joins_layers() {
        let mut rng = SeededRng::new(3);
        let m = toy_model(&mut rng);
        assert_eq!(m.describe(), "Dense(2→8) → Tanh → Dense(8→2)");
    }

    #[test]
    fn forward_shapes_flow_through() {
        let mut rng = SeededRng::new(4);
        let mut m = toy_model(&mut rng);
        let out = m.forward(&Matrix::zeros(7, 2), true);
        assert_eq!(out.shape(), (7, 2));
    }

    #[test]
    fn backward_returns_input_gradient_shape() {
        let mut rng = SeededRng::new(5);
        let mut m = toy_model(&mut rng);
        let x = Matrix::uniform(4, 2, -1.0, 1.0, &mut rng);
        let _ = m.forward(&x, true);
        let g = m.backward(&Matrix::filled(4, 2, 1.0));
        assert_eq!(g.shape(), (4, 2));
        assert!(g.all_finite());
    }

    #[test]
    fn model_gradients_match_autodiff_tape() {
        // Hand-rolled backprop must agree with the independent tape engine.
        let mut rng = SeededRng::new(8);
        let w1 = Matrix::glorot_uniform(3, 5, &mut rng);
        let b1 = Matrix::uniform(1, 5, -0.1, 0.1, &mut rng);
        let w2 = Matrix::glorot_uniform(5, 2, &mut rng);
        let b2 = Matrix::uniform(1, 2, -0.1, 0.1, &mut rng);
        let x = Matrix::uniform(6, 3, -1.0, 1.0, &mut rng);
        let targets = one_hot(&[0, 1, 0, 1, 1, 0], 2);

        // Layer-wise path.
        let mut model = Sequential::new();
        model.push(Dense::from_parts(w1.clone(), b1.clone()));
        model.push(Activation::tanh());
        model.push(Dense::from_parts(w2.clone(), b2.clone()));
        let logits = model.forward(&x, true);
        let (loss, dlogits) = SoftmaxCrossEntropy::new().loss_and_grad(&logits, &targets);
        let dx = model.backward(&dlogits);
        let mut layer_grads = Vec::new();
        model.visit_params(&mut |_v, g| layer_grads.push(g.clone()));

        // Tape path.
        let mut g = hqnn_autodiff::Graph::new();
        let xv = g.input(x.clone());
        let w1v = g.input(w1);
        let b1v = g.input(b1);
        let w2v = g.input(w2);
        let b2v = g.input(b2);
        let h = g.matmul(xv, w1v);
        let h = g.add_bias(h, b1v);
        let h = g.tanh(h);
        let z = g.matmul(h, w2v);
        let z = g.add_bias(z, b2v);
        let l = g.softmax_cross_entropy(z, &targets);
        g.backward(l);

        assert!((loss - g.value(l)[(0, 0)]).abs() < 1e-12);
        assert!(layer_grads[0].approx_eq(g.grad(w1v), 1e-10), "dW1 mismatch");
        assert!(layer_grads[1].approx_eq(g.grad(b1v), 1e-10), "db1 mismatch");
        assert!(layer_grads[2].approx_eq(g.grad(w2v), 1e-10), "dW2 mismatch");
        assert!(layer_grads[3].approx_eq(g.grad(b2v), 1e-10), "db2 mismatch");
        assert!(dx.approx_eq(g.grad(xv), 1e-10), "dX mismatch");
    }

    #[test]
    fn training_xor_with_adam_converges() {
        let mut rng = SeededRng::new(11);
        let mut model = toy_model(&mut rng);
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0]]);
        let labels = [0usize, 1, 1, 0];
        let targets = one_hot(&labels, 2);
        let loss_fn = SoftmaxCrossEntropy::new();
        let mut opt = Adam::new(0.05);
        let mut last_loss = f64::INFINITY;
        for _ in 0..400 {
            let logits = model.forward(&x, true);
            let (loss, grad) = loss_fn.loss_and_grad(&logits, &targets);
            model.backward(&grad);
            model.apply_gradients(&mut opt);
            last_loss = loss;
        }
        assert!(last_loss < 0.05, "XOR did not converge: loss = {last_loss}");
        let logits = model.predict(&x);
        assert_eq!(crate::loss::accuracy(&logits, &labels), 1.0);
    }

    #[test]
    fn sgd_also_reduces_loss() {
        let mut rng = SeededRng::new(12);
        let mut model = toy_model(&mut rng);
        let x = Matrix::uniform(16, 2, -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..16).map(|i| i % 2).collect();
        let targets = one_hot(&labels, 2);
        let loss_fn = SoftmaxCrossEntropy::new();
        let mut opt = Sgd::new(0.1);
        let logits = model.forward(&x, true);
        let (initial, grad) = loss_fn.loss_and_grad(&logits, &targets);
        model.backward(&grad);
        model.apply_gradients(&mut opt);
        for _ in 0..50 {
            let logits = model.forward(&x, true);
            let (_, grad) = loss_fn.loss_and_grad(&logits, &targets);
            model.backward(&grad);
            model.apply_gradients(&mut opt);
        }
        let logits = model.forward(&x, false);
        let (final_loss, _) = loss_fn.loss_and_grad(&logits, &targets);
        assert!(final_loss < initial, "{final_loss} !< {initial}");
    }

    #[test]
    fn empty_model_is_identity() {
        let mut m = Sequential::new();
        let x = Matrix::row_vector(&[1.0, 2.0]);
        assert_eq!(m.forward(&x, true), x);
        assert_eq!(m.param_count(), 0);
    }
}
