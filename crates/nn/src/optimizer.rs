//! Gradient-based optimizers.

use hqnn_tensor::Matrix;

/// A first-order optimizer updating parameters slot by slot.
///
/// The model drives the iteration (see
/// [`Sequential::apply_gradients`](crate::Sequential::apply_gradients)): each
/// training step it calls [`Optimizer::begin_step`] once and then
/// [`Optimizer::update`] for every parameter in a stable order, passing a
/// per-step `slot` index the optimizer may key per-parameter state on. The
/// model structure must therefore not change between steps.
pub trait Optimizer {
    /// Called once per training step before any [`Optimizer::update`].
    fn begin_step(&mut self) {}

    /// Applies one update: mutate `value` in place using `grad`.
    fn update(&mut self, slot: usize, value: &mut Matrix, grad: &Matrix);

    /// The learning rate currently in effect.
    fn learning_rate(&self) -> f64;
}

/// Stochastic gradient descent, optionally with classical momentum:
/// `v ← μ·v + g ; θ ← θ − lr·v`.
///
/// # Example
///
/// ```
/// use hqnn_nn::{Optimizer, Sgd};
/// use hqnn_tensor::Matrix;
///
/// let mut opt = Sgd::new(0.1);
/// let mut w = Matrix::row_vector(&[1.0]);
/// opt.update(0, &mut w, &Matrix::row_vector(&[2.0]));
/// assert!((w[(0, 0)] - 0.8).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct Sgd {
    lr: f64,
    momentum: f64,
    velocities: Vec<Option<Matrix>>,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        Self::with_momentum(lr, 0.0)
    }

    /// Creates SGD with classical momentum `mu` (e.g. 0.9).
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0` or `mu ∉ [0, 1)`.
    pub fn with_momentum(lr: f64, mu: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&mu), "momentum must be in [0, 1)");
        Self {
            lr,
            momentum: mu,
            velocities: Vec::new(),
        }
    }

    /// The momentum coefficient.
    pub fn momentum(&self) -> f64 {
        self.momentum
    }
}

impl Optimizer for Sgd {
    fn update(&mut self, slot: usize, value: &mut Matrix, grad: &Matrix) {
        if self.momentum == 0.0 {
            value.add_scaled(grad, -self.lr);
            return;
        }
        if self.velocities.len() <= slot {
            self.velocities.resize(slot + 1, None);
        }
        let (r, c) = value.shape();
        let v = self.velocities[slot].get_or_insert_with(|| Matrix::zeros(r, c));
        assert_eq!(v.shape(), value.shape(), "optimizer slot shape changed");
        for (vi, &gi) in v.as_mut_slice().iter_mut().zip(grad.as_slice()) {
            *vi = self.momentum * *vi + gi;
        }
        value.add_scaled(v, -self.lr);
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// Adam (Kingma & Ba) with the standard bias-corrected moment estimates —
/// the paper trains everything with `lr = 0.001`, Adam's canonical setting.
#[derive(Clone, Debug)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    moments: Vec<Option<(Matrix, Matrix)>>,
}

impl Adam {
    /// Creates Adam with default `β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f64) -> Self {
        Self::with_betas(lr, 0.9, 0.999, 1e-8)
    }

    /// Creates Adam with explicit hyperparameters.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`, a beta lies outside `[0, 1)`, or `eps <= 0`.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64, eps: f64) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        assert!((0.0..1.0).contains(&beta1), "beta1 must be in [0, 1)");
        assert!((0.0..1.0).contains(&beta2), "beta2 must be in [0, 1)");
        assert!(eps > 0.0, "epsilon must be positive");
        Self {
            lr,
            beta1,
            beta2,
            eps,
            t: 0,
            moments: Vec::new(),
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

impl Optimizer for Adam {
    fn begin_step(&mut self) {
        self.t += 1;
    }

    fn update(&mut self, slot: usize, value: &mut Matrix, grad: &Matrix) {
        if self.moments.len() <= slot {
            self.moments.resize(slot + 1, None);
        }
        let (r, c) = value.shape();
        let (m, v) =
            self.moments[slot].get_or_insert_with(|| (Matrix::zeros(r, c), Matrix::zeros(r, c)));
        assert_eq!(m.shape(), value.shape(), "optimizer slot shape changed");

        // m ← β₁ m + (1-β₁) g ; v ← β₂ v + (1-β₂) g².
        for ((mi, vi), &gi) in m
            .as_mut_slice()
            .iter_mut()
            .zip(v.as_mut_slice().iter_mut())
            .zip(grad.as_slice())
        {
            *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
            *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
        }
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for ((wi, mi), vi) in value
            .as_mut_slice()
            .iter_mut()
            .zip(m.as_slice())
            .zip(v.as_slice())
        {
            let m_hat = mi / bc1;
            let v_hat = vi / bc2;
            *wi -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_takes_a_plain_step() {
        let mut opt = Sgd::new(0.5);
        let mut w = Matrix::row_vector(&[1.0, -2.0]);
        let g = Matrix::row_vector(&[1.0, 1.0]);
        opt.begin_step();
        opt.update(0, &mut w, &g);
        assert_eq!(w, Matrix::row_vector(&[0.5, -2.5]));
        assert_eq!(opt.learning_rate(), 0.5);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn sgd_rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }

    #[test]
    #[should_panic(expected = "momentum")]
    fn sgd_rejects_bad_momentum() {
        let _ = Sgd::with_momentum(0.1, 1.0);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = Sgd::with_momentum(1.0, 0.5);
        let mut w = Matrix::row_vector(&[0.0]);
        let g = Matrix::row_vector(&[1.0]);
        // v₁ = 1, v₂ = 1.5, v₃ = 1.75 → w = -(1 + 1.5 + 1.75) = -4.25.
        for _ in 0..3 {
            opt.begin_step();
            opt.update(0, &mut w, &g);
        }
        assert!((w[(0, 0)] + 4.25).abs() < 1e-12, "w = {}", w[(0, 0)]);
        assert_eq!(opt.momentum(), 0.5);
    }

    #[test]
    fn momentum_converges_faster_on_ravine() {
        // An ill-conditioned quadratic: f(w) = 0.5·(100·w₀² + w₁²).
        let run = |mu: f64| -> f64 {
            let mut opt = Sgd::with_momentum(0.009, mu);
            let mut w = Matrix::row_vector(&[1.0, 1.0]);
            for _ in 0..200 {
                let g = Matrix::row_vector(&[100.0 * w[(0, 0)], w[(0, 1)]]);
                opt.begin_step();
                opt.update(0, &mut w, &g);
            }
            w.frobenius_norm()
        };
        assert!(
            run(0.9) < run(0.0),
            "momentum did not help: {} vs {}",
            run(0.9),
            run(0.0)
        );
    }

    #[test]
    fn adam_first_step_moves_by_lr() {
        // With bias correction, the very first Adam step is ≈ lr·sign(g).
        let mut opt = Adam::new(0.1);
        let mut w = Matrix::row_vector(&[0.0]);
        let g = Matrix::row_vector(&[3.7]);
        opt.begin_step();
        opt.update(0, &mut w, &g);
        assert!((w[(0, 0)] + 0.1).abs() < 1e-6, "w = {}", w[(0, 0)]);
    }

    #[test]
    fn adam_minimises_quadratic() {
        // f(w) = (w - 5)², ∇f = 2(w - 5).
        let mut opt = Adam::new(0.1);
        let mut w = Matrix::row_vector(&[0.0]);
        for _ in 0..1000 {
            let g = Matrix::row_vector(&[2.0 * (w[(0, 0)] - 5.0)]);
            opt.begin_step();
            opt.update(0, &mut w, &g);
        }
        assert!((w[(0, 0)] - 5.0).abs() < 1e-3, "w = {}", w[(0, 0)]);
        assert_eq!(opt.steps(), 1000);
    }

    #[test]
    fn adam_tracks_independent_slots() {
        let mut opt = Adam::new(0.1);
        let mut a = Matrix::row_vector(&[0.0]);
        let mut b = Matrix::row_vector(&[0.0; 3]);
        for _ in 0..10 {
            opt.begin_step();
            opt.update(0, &mut a, &Matrix::row_vector(&[1.0]));
            opt.update(1, &mut b, &Matrix::row_vector(&[-1.0, 0.0, 2.0]));
        }
        assert!(a[(0, 0)] < 0.0);
        assert!(b[(0, 0)] > 0.0);
        assert_eq!(b[(0, 1)], 0.0);
        assert!(b[(0, 2)] < 0.0);
    }

    #[test]
    #[should_panic(expected = "shape changed")]
    fn adam_rejects_shape_change() {
        let mut opt = Adam::new(0.1);
        let mut a = Matrix::row_vector(&[0.0]);
        opt.begin_step();
        opt.update(0, &mut a, &Matrix::row_vector(&[1.0]));
        let mut b = Matrix::row_vector(&[0.0, 0.0]);
        opt.update(0, &mut b, &Matrix::row_vector(&[1.0, 1.0]));
    }

    #[test]
    #[should_panic(expected = "beta1")]
    fn adam_validates_betas() {
        let _ = Adam::with_betas(0.1, 1.0, 0.999, 1e-8);
    }
}
