//! Losses, label encoding and classification metrics.

use hqnn_tensor::Matrix;

/// Row-wise softmax of a logits matrix (numerically stabilised).
///
/// # Example
///
/// ```
/// use hqnn_nn::softmax;
/// use hqnn_tensor::Matrix;
///
/// let p = softmax(&Matrix::row_vector(&[0.0, 0.0]));
/// assert!((p[(0, 0)] - 0.5).abs() < 1e-12);
/// ```
pub fn softmax(logits: &Matrix) -> Matrix {
    let row_of = |r: usize| -> Vec<f64> {
        let row = logits.row(r);
        let max = hqnn_tensor::fold::ordered_max_f64(row.iter().copied());
        let exps: Vec<f64> = row.iter().map(|v| (v - max).exp()).collect();
        let denom: f64 = hqnn_tensor::fold::ordered_sum_f64(exps.iter().copied());
        exps.iter().map(|e| e / denom).collect()
    };
    // Rows are independent; big batches fan out across the runtime (the
    // small-batch cutoff only avoids thread-spawn overhead — per-row math is
    // identical on both paths, so results never depend on it).
    let rows: Vec<Vec<f64>> = if logits.len() >= PAR_ROWS_MIN_ELEMS {
        hqnn_runtime::par_map_range(logits.rows(), row_of)
    } else {
        (0..logits.rows()).map(row_of).collect()
    };
    let mut out = Matrix::zeros(logits.rows(), logits.cols());
    for (r, row) in rows.iter().enumerate() {
        out.row_mut(r).copy_from_slice(row);
    }
    out
}

/// Minimum element count before the row-parallel paths in this module spawn
/// threads; below it the sequential loop wins on spawn overhead alone.
const PAR_ROWS_MIN_ELEMS: usize = 4096;

/// One-hot encodes integer class labels into a `(batch, n_classes)` matrix.
///
/// # Panics
///
/// Panics if any label is `>= n_classes`.
pub fn one_hot(labels: &[usize], n_classes: usize) -> Matrix {
    let mut out = Matrix::zeros(labels.len(), n_classes);
    for (r, &label) in labels.iter().enumerate() {
        assert!(label < n_classes, "label {label} >= n_classes {n_classes}");
        out[(r, label)] = 1.0;
    }
    out
}

/// Fraction of rows whose argmax matches the label — the paper's accuracy
/// metric. Returns `0.0` for an empty batch.
///
/// # Panics
///
/// Panics if `logits.rows() != labels.len()`.
pub fn accuracy(logits: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(logits.rows(), labels.len(), "batch size mismatch");
    if labels.is_empty() {
        return 0.0;
    }
    // Same argmax rule as `Matrix::argmax_rows`, fanned out per row; the
    // cross-row reduction is an integer sum, so it is order-independent.
    let hit = |r: usize| -> u64 {
        let pred = logits
            .row(r)
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        u64::from(pred == labels[r])
    };
    let correct: u64 = if logits.len() >= PAR_ROWS_MIN_ELEMS {
        hqnn_runtime::par_map_range(labels.len(), hit)
            .into_iter()
            .sum::<u64>()
    } else {
        (0..labels.len()).map(hit).sum::<u64>()
    };
    correct as f64 / labels.len() as f64
}

/// Batch-mean softmax cross-entropy with its analytically fused gradient,
/// the classification loss used throughout the study.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SoftmaxCrossEntropy;

impl SoftmaxCrossEntropy {
    /// Creates the loss.
    pub fn new() -> Self {
        Self
    }

    /// Returns `(mean loss, dL/d(logits))` for one-hot `targets`.
    ///
    /// The gradient is the classic fused form `(softmax − targets) / batch`.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree or the batch is empty.
    pub fn loss_and_grad(&self, logits: &Matrix, targets: &Matrix) -> (f64, Matrix) {
        assert_eq!(logits.shape(), targets.shape(), "targets must match logits");
        assert!(logits.rows() > 0, "empty batch");
        let probs = softmax(logits);
        let batch = logits.rows() as f64;
        // Per-row loss partials fan out; the cross-row reduction left-folds
        // in row order, so the f64 grouping — and hence every reported loss
        // bit — is fixed at any thread count.
        let row_loss = |r: usize| -> f64 {
            let mut part = 0.0;
            for c in 0..logits.cols() {
                if targets[(r, c)] != 0.0 {
                    part += targets[(r, c)] * probs[(r, c)].max(1e-300).ln();
                }
            }
            part
        };
        let partials: Vec<f64> = if logits.len() >= PAR_ROWS_MIN_ELEMS {
            hqnn_runtime::par_map_range(logits.rows(), row_loss)
        } else {
            (0..logits.rows()).map(row_loss).collect()
        };
        let loss = -hqnn_tensor::fold::ordered_sum_f64(partials.iter().copied());
        let grad = (&probs - targets).scale(1.0 / batch);
        (loss / batch, grad)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[-5.0, 0.0, 5.0]]);
        let p = softmax(&m);
        for r in 0..2 {
            let s: f64 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
            assert!(p.row(r).iter().all(|&v| v > 0.0));
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let a = softmax(&Matrix::row_vector(&[1.0, 2.0, 3.0]));
        let b = softmax(&Matrix::row_vector(&[101.0, 102.0, 103.0]));
        assert!(a.approx_eq(&b, 1e-12));
    }

    #[test]
    fn softmax_handles_extreme_logits() {
        let p = softmax(&Matrix::row_vector(&[1000.0, -1000.0]));
        assert!(p.all_finite());
        assert!((p[(0, 0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_hot_layout() {
        let t = one_hot(&[2, 0, 1], 3);
        assert_eq!(t.row(0), &[0.0, 0.0, 1.0]);
        assert_eq!(t.row(1), &[1.0, 0.0, 0.0]);
        assert_eq!(t.row(2), &[0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = ">= n_classes")]
    fn one_hot_rejects_out_of_range() {
        let _ = one_hot(&[3], 3);
    }

    #[test]
    fn accuracy_counts_matches() {
        let logits = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8], &[0.6, 0.4]]);
        assert_eq!(accuracy(&logits, &[0, 1, 1]), 2.0 / 3.0);
        assert_eq!(accuracy(&logits, &[0, 1, 0]), 1.0);
        assert_eq!(accuracy(&Matrix::zeros(0, 2), &[]), 0.0);
    }

    #[test]
    fn uniform_logits_loss_is_log_n() {
        let loss_fn = SoftmaxCrossEntropy::new();
        let logits = Matrix::zeros(4, 3);
        let targets = one_hot(&[0, 1, 2, 0], 3);
        let (loss, _grad) = loss_fn.loss_and_grad(&logits, &targets);
        assert!((loss - (3.0f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn gradient_is_softmax_minus_target_over_batch() {
        let loss_fn = SoftmaxCrossEntropy::new();
        let logits = Matrix::from_rows(&[&[2.0, -1.0, 0.5], &[0.0, 0.0, 0.0]]);
        let targets = one_hot(&[0, 2], 3);
        let (_loss, grad) = loss_fn.loss_and_grad(&logits, &targets);
        let expected = (&softmax(&logits) - &targets).scale(0.5);
        assert!(grad.approx_eq(&expected, 1e-12));
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let loss_fn = SoftmaxCrossEntropy::new();
        let logits = Matrix::from_rows(&[&[1.2, -0.3, 0.7], &[-2.0, 0.1, 0.4]]);
        let targets = one_hot(&[1, 0], 3);
        let (_l, grad) = loss_fn.loss_and_grad(&logits, &targets);
        let eps = 1e-6;
        for r in 0..2 {
            for c in 0..3 {
                let mut up = logits.clone();
                up[(r, c)] += eps;
                let mut dn = logits.clone();
                dn[(r, c)] -= eps;
                let (lu, _) = loss_fn.loss_and_grad(&up, &targets);
                let (ld, _) = loss_fn.loss_and_grad(&dn, &targets);
                let fd = (lu - ld) / (2.0 * eps);
                assert!((grad[(r, c)] - fd).abs() < 1e-7, "({r},{c})");
            }
        }
    }

    #[test]
    fn loss_softmax_accuracy_bitwise_invariant_across_threads() {
        // Batch large enough to clear PAR_ROWS_MIN_ELEMS so the parallel
        // paths actually run.
        let mut rng = hqnn_tensor::SeededRng::new(9);
        let rows = PAR_ROWS_MIN_ELEMS / 4;
        let logits = Matrix::uniform(rows, 8, -4.0, 4.0, &mut rng);
        let labels: Vec<usize> = (0..rows).map(|r| r % 8).collect();
        let targets = one_hot(&labels, 8);
        let loss_fn = SoftmaxCrossEntropy::new();

        let (loss1, grad1, p1, acc1) = hqnn_runtime::with_threads(1, || {
            let (l, g) = loss_fn.loss_and_grad(&logits, &targets);
            (l, g, softmax(&logits), accuracy(&logits, &labels))
        });
        for threads in [2, 7] {
            let (l, g, p, acc) = hqnn_runtime::with_threads(threads, || {
                let (l, g) = loss_fn.loss_and_grad(&logits, &targets);
                (l, g, softmax(&logits), accuracy(&logits, &labels))
            });
            assert_eq!(l.to_bits(), loss1.to_bits(), "loss, threads={threads}");
            assert_eq!(acc.to_bits(), acc1.to_bits(), "accuracy, threads={threads}");
            for (a, b) in g.as_slice().iter().zip(grad1.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "grad, threads={threads}");
            }
            for (a, b) in p.as_slice().iter().zip(p1.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "softmax, threads={threads}");
            }
        }
    }

    #[test]
    fn perfect_prediction_has_near_zero_loss_and_gradient() {
        let loss_fn = SoftmaxCrossEntropy::new();
        let logits = Matrix::from_rows(&[&[100.0, 0.0, 0.0]]);
        let targets = one_hot(&[0], 3);
        let (loss, grad) = loss_fn.loss_and_grad(&logits, &targets);
        assert!(loss < 1e-12);
        assert!(grad.frobenius_norm() < 1e-12);
    }
}
