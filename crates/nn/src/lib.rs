//! Minimal deep-learning stack: layers, losses, optimizers, training loop.
//!
//! This crate replaces the Keras layer of the paper's pipeline. It provides
//! exactly what the study needs — densely connected classifiers trained with
//! Adam on softmax cross-entropy — through an extensible [`Layer`] trait that
//! `hqnn-core` also implements for its quantum layer, so classical and hybrid
//! models train through the *same* loop (a prerequisite for a fair FLOPs
//! comparison).
//!
//! Backpropagation is implemented layer-by-layer by hand for speed; the
//! test-suite verifies every layer's gradients against the independent
//! `hqnn-autodiff` tape and against finite differences.
//!
//! # Example
//!
//! ```
//! use hqnn_nn::{Activation, Dense, Sequential};
//! use hqnn_tensor::{Matrix, SeededRng};
//!
//! let mut rng = SeededRng::new(0);
//! let mut model = Sequential::new();
//! model.push(Dense::new(4, 8, &mut rng));
//! model.push(Activation::relu());
//! model.push(Dense::new(8, 3, &mut rng));
//! assert_eq!(model.param_count(), 4 * 8 + 8 + 8 * 3 + 3);
//! let x = Matrix::zeros(2, 4);
//! let logits = model.forward(&x, false);
//! assert_eq!(logits.shape(), (2, 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod health;
pub mod layer;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod optimizer;
pub mod train;

pub use layer::{Activation, ActivationKind, Dense, Layer};
pub use loss::{accuracy, one_hot, softmax, SoftmaxCrossEntropy};
pub use metrics::ConfusionMatrix;
pub use model::Sequential;
pub use optimizer::{Adam, Optimizer, Sgd};
pub use train::{train, EpochMetrics, TrainConfig, TrainReport};
