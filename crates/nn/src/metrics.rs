//! Classifier evaluation beyond plain accuracy: confusion matrices and
//! per-class precision / recall / F1.
//!
//! The paper's protocol thresholds on accuracy alone (§III); these
//! utilities let the same trained models be inspected more closely — e.g.
//! whether a spiral model trades one arm off against another.

use std::fmt;

use hqnn_tensor::Matrix;

/// A `k × k` confusion matrix: `entry(actual, predicted)` counts.
///
/// # Example
///
/// ```
/// use hqnn_nn::ConfusionMatrix;
///
/// let cm = ConfusionMatrix::from_labels(&[0, 0, 1, 1], &[0, 1, 1, 1], 2);
/// assert_eq!(cm.entry(0, 0), 1); // one class-0 sample predicted 0
/// assert_eq!(cm.entry(0, 1), 1); // one class-0 sample predicted 1
/// assert_eq!(cm.accuracy(), 0.75);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfusionMatrix {
    n_classes: usize,
    counts: Vec<u64>,
}

impl ConfusionMatrix {
    /// Builds the matrix from parallel actual/predicted label slices.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length or any label is
    /// `>= n_classes`.
    pub fn from_labels(actual: &[usize], predicted: &[usize], n_classes: usize) -> Self {
        assert_eq!(actual.len(), predicted.len(), "label slice length mismatch");
        let mut counts = vec![0u64; n_classes * n_classes];
        for (&a, &p) in actual.iter().zip(predicted) {
            assert!(a < n_classes && p < n_classes, "label out of range");
            counts[a * n_classes + p] += 1;
        }
        Self { n_classes, counts }
    }

    /// Builds the matrix from logits (row-argmax) and actual labels.
    ///
    /// # Panics
    ///
    /// As for [`ConfusionMatrix::from_labels`], with
    /// `logits.rows() == actual.len()`.
    pub fn from_logits(logits: &Matrix, actual: &[usize], n_classes: usize) -> Self {
        assert_eq!(logits.rows(), actual.len(), "batch size mismatch");
        Self::from_labels(actual, &logits.argmax_rows(), n_classes)
    }

    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.n_classes
    }

    /// Count of samples with the given actual and predicted labels.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn entry(&self, actual: usize, predicted: usize) -> u64 {
        assert!(
            actual < self.n_classes && predicted < self.n_classes,
            "index out of range"
        );
        self.counts[actual * self.n_classes + predicted]
    }

    /// Total number of samples.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Overall accuracy (trace / total); `0.0` when empty.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.n_classes).map(|k| self.entry(k, k)).sum();
        correct as f64 / total as f64
    }

    /// Precision of one class: `TP / (TP + FP)`; `0.0` when the class was
    /// never predicted.
    ///
    /// # Panics
    ///
    /// Panics if `class >= n_classes`.
    pub fn precision(&self, class: usize) -> f64 {
        let tp = self.entry(class, class);
        let predicted: u64 = (0..self.n_classes).map(|a| self.entry(a, class)).sum();
        if predicted == 0 {
            0.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of one class: `TP / (TP + FN)`; `0.0` when the class never
    /// occurs.
    ///
    /// # Panics
    ///
    /// Panics if `class >= n_classes`.
    pub fn recall(&self, class: usize) -> f64 {
        let tp = self.entry(class, class);
        let actual: u64 = (0..self.n_classes).map(|p| self.entry(class, p)).sum();
        if actual == 0 {
            0.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// F1 score of one class (harmonic mean of precision and recall);
    /// `0.0` when both are zero.
    ///
    /// # Panics
    ///
    /// Panics if `class >= n_classes`.
    pub fn f1(&self, class: usize) -> f64 {
        let p = self.precision(class);
        let r = self.recall(class);
        if p + r == 0.0 {
            0.0
        } else {
            2.0 * p * r / (p + r)
        }
    }

    /// Unweighted mean F1 over all classes ("macro" averaging).
    pub fn macro_f1(&self) -> f64 {
        if self.n_classes == 0 {
            return 0.0;
        }
        hqnn_tensor::fold::ordered_sum_f64((0..self.n_classes).map(|k| self.f1(k)))
            / self.n_classes as f64
    }
}

impl fmt::Display for ConfusionMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "confusion matrix (rows = actual, cols = predicted):")?;
        write!(f, "{:>8}", "")?;
        for p in 0..self.n_classes {
            write!(f, "{p:>8}")?;
        }
        writeln!(f)?;
        for a in 0..self.n_classes {
            write!(f, "{a:>8}")?;
            for p in 0..self.n_classes {
                write!(f, "{:>8}", self.entry(a, p))?;
            }
            writeln!(f)?;
        }
        write!(
            f,
            "accuracy {:.3}, macro-F1 {:.3}",
            self.accuracy(),
            self.macro_f1()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConfusionMatrix {
        // actual:    0 0 0 1 1 2 2 2 2
        // predicted: 0 0 1 1 1 2 2 0 2
        ConfusionMatrix::from_labels(
            &[0, 0, 0, 1, 1, 2, 2, 2, 2],
            &[0, 0, 1, 1, 1, 2, 2, 0, 2],
            3,
        )
    }

    #[test]
    fn entries_count_pairs() {
        let cm = sample();
        assert_eq!(cm.entry(0, 0), 2);
        assert_eq!(cm.entry(0, 1), 1);
        assert_eq!(cm.entry(2, 0), 1);
        assert_eq!(cm.entry(2, 2), 3);
        assert_eq!(cm.total(), 9);
    }

    #[test]
    fn accuracy_is_trace_over_total() {
        let cm = sample();
        assert!((cm.accuracy() - 7.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn precision_recall_f1_formulas() {
        let cm = sample();
        // Class 0: TP = 2, predicted 0 three times, actual 0 three times.
        assert!((cm.precision(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(0) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.f1(0) - 2.0 / 3.0).abs() < 1e-12);
        // Class 1: TP = 2, predicted three times, actual twice.
        assert!((cm.precision(1) - 2.0 / 3.0).abs() < 1e-12);
        assert!((cm.recall(1) - 1.0).abs() < 1e-12);
        let f1 = 2.0 * (2.0 / 3.0) / (2.0 / 3.0 + 1.0);
        assert!((cm.f1(1) - f1).abs() < 1e-12);
    }

    #[test]
    fn macro_f1_averages_classes() {
        let cm = sample();
        let expected = (cm.f1(0) + cm.f1(1) + cm.f1(2)) / 3.0;
        assert!((cm.macro_f1() - expected).abs() < 1e-12);
    }

    #[test]
    fn never_predicted_class_has_zero_precision() {
        let cm = ConfusionMatrix::from_labels(&[0, 1], &[0, 0], 2);
        assert_eq!(cm.precision(1), 0.0);
        assert_eq!(cm.recall(1), 0.0);
        assert_eq!(cm.f1(1), 0.0);
    }

    #[test]
    fn from_logits_uses_argmax() {
        let logits = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8], &[0.7, 0.3]]);
        let cm = ConfusionMatrix::from_logits(&logits, &[0, 1, 1], 2);
        assert_eq!(cm.entry(0, 0), 1);
        assert_eq!(cm.entry(1, 1), 1);
        assert_eq!(cm.entry(1, 0), 1);
        // Matches the plain accuracy metric.
        assert!((cm.accuracy() - crate::loss::accuracy(&logits, &[0, 1, 1])).abs() < 1e-12);
    }

    #[test]
    fn perfect_classifier_scores_one_everywhere() {
        let cm = ConfusionMatrix::from_labels(&[0, 1, 2, 0], &[0, 1, 2, 0], 3);
        assert_eq!(cm.accuracy(), 1.0);
        assert_eq!(cm.macro_f1(), 1.0);
        for k in 0..3 {
            assert_eq!(cm.precision(k), 1.0);
            assert_eq!(cm.recall(k), 1.0);
        }
    }

    #[test]
    fn empty_matrix_is_zeroed() {
        let cm = ConfusionMatrix::from_labels(&[], &[], 3);
        assert_eq!(cm.accuracy(), 0.0);
        assert_eq!(cm.total(), 0);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_out_of_range_labels() {
        let _ = ConfusionMatrix::from_labels(&[3], &[0], 3);
    }

    #[test]
    fn display_is_informative() {
        let text = sample().to_string();
        assert!(text.contains("confusion matrix"));
        assert!(text.contains("accuracy"));
    }
}
