//! The simulated quantum layer — a [`hqnn_nn::Layer`] backed by `hqnn-qsim`.

use hqnn_nn::Layer;
use hqnn_qsim::{gradients_batch, Circuit, GradEngine, Observable, QnnTemplate};
use hqnn_tensor::{Matrix, SeededRng};
use serde::{Deserialize, Serialize};

/// Which differentiation engine the layer's backward pass uses.
///
/// Training always works with either; [`GradientMethod::Adjoint`] is the
/// default because its cost is linear in gate count while the shift rule
/// re-simulates the circuit twice per parameter (see the `grad_methods`
/// bench for the measured gap).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GradientMethod {
    /// Adjoint (reverse-pass) differentiation — exact, O(gates · 2ⁿ).
    #[default]
    Adjoint,
    /// Two-term parameter-shift rule — exact, hardware-compatible,
    /// O(params · gates · 2ⁿ).
    ParameterShift,
}

/// A trainable variational quantum circuit usable as a network layer.
///
/// Input: a `(batch, n_qubits)` matrix of encoding angles (the output of the
/// classical input layer). Output: a `(batch, n_qubits)` matrix of `⟨Z⟩`
/// expectation values in `[-1, 1]`. The backward pass produces gradients for
/// both the circuit's trainable parameters and its inputs, so classical
/// layers upstream keep training — this is the "quantum hidden layer" of the
/// paper's Fig. 1(b)/(c).
///
/// Weights are initialised uniformly in `[0, 2π)`, PennyLane's convention
/// for both templates.
///
/// # Example
///
/// ```
/// use hqnn_core::QuantumLayer;
/// use hqnn_nn::Layer;
/// use hqnn_qsim::{EntanglerKind, QnnTemplate};
/// use hqnn_tensor::{Matrix, SeededRng};
///
/// let mut rng = SeededRng::new(3);
/// let mut layer = QuantumLayer::new(QnnTemplate::new(3, 2, EntanglerKind::Basic), &mut rng);
/// assert_eq!(layer.param_count(), 6);
/// let out = layer.forward(&Matrix::zeros(4, 3), true);
/// assert_eq!(out.shape(), (4, 3));
/// assert!(out.as_slice().iter().all(|v| (-1.0..=1.0).contains(v)));
/// ```
#[derive(Debug, Clone)]
pub struct QuantumLayer {
    template: QnnTemplate,
    circuit: Circuit,
    observables: Vec<Observable>,
    params: Matrix,
    grad_params: Matrix,
    cached_input: Option<Matrix>,
    method: GradientMethod,
}

impl QuantumLayer {
    /// Creates the layer from a template with `[0, 2π)`-uniform weights.
    pub fn new(template: QnnTemplate, rng: &mut SeededRng) -> Self {
        let n = template.param_count();
        let params = Matrix::uniform(1, n.max(1), 0.0, 2.0 * std::f64::consts::PI, rng);
        let params = if n == 0 { Matrix::zeros(1, 0) } else { params };
        Self::from_parts(template, params)
    }

    /// Creates the layer with explicit weights (tests / checkpointing).
    ///
    /// # Panics
    ///
    /// Panics if `params` is not `1 × template.param_count()`.
    pub fn from_parts(template: QnnTemplate, params: Matrix) -> Self {
        assert_eq!(
            params.shape(),
            (1, template.param_count()),
            "params must be 1 × {}",
            template.param_count()
        );
        let circuit = template.build();
        let observables = (0..template.n_qubits()).map(Observable::z).collect();
        let grad_params = Matrix::zeros(1, template.param_count());
        Self {
            template,
            circuit,
            observables,
            params,
            grad_params,
            cached_input: None,
            method: GradientMethod::Adjoint,
        }
    }

    /// Selects the differentiation engine (default: adjoint).
    pub fn with_gradient_method(mut self, method: GradientMethod) -> Self {
        self.method = method;
        self
    }

    /// The template this layer was built from.
    pub fn template(&self) -> &QnnTemplate {
        &self.template
    }

    /// The compiled circuit (encoding + ansatz).
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// The current weights as a `1 × param_count` row.
    pub fn params(&self) -> &Matrix {
        &self.params
    }

    /// The configured gradient method.
    pub fn gradient_method(&self) -> GradientMethod {
        self.method
    }

    fn engine(&self) -> GradEngine<'static> {
        match self.method {
            GradientMethod::Adjoint => GradEngine::Adjoint,
            GradientMethod::ParameterShift => GradEngine::ParameterShift,
        }
    }
}

impl Layer for QuantumLayer {
    fn forward(&mut self, input: &Matrix, _training: bool) -> Matrix {
        let n = self.template.n_qubits();
        assert_eq!(
            input.cols(),
            n,
            "QuantumLayer expected {n} encoding angles, got {}",
            input.cols()
        );
        self.cached_input = Some(input.clone());
        let _span = hqnn_telemetry::span("core.qlayer_forward");
        self.circuit
            .expectations_batch(input, self.params.as_slice(), &self.observables)
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            // lint:allow(panic): documented Layer API contract
            .expect("backward called before forward");
        let n = self.template.n_qubits();
        assert_eq!(
            grad_output.shape(),
            (input.rows(), n),
            "gradient shape mismatch"
        );
        let _span = hqnn_telemetry::span("core.qlayer_backward");
        let n_params = self.template.param_count();
        let mut grad_params = Matrix::zeros(1, n_params);
        let mut grad_input = Matrix::zeros(input.rows(), n);

        // Per-sample gradients fan out in parallel; the chain-rule reduction
        // below stays sequential in row order so the shared `grad_params`
        // accumulator sums in exactly the order the per-row loop did.
        let batch = gradients_batch(
            &self.circuit,
            self.engine(),
            input,
            self.params.as_slice(),
            &self.observables,
        );
        for (r, grads) in batch.iter().enumerate() {
            accumulate_chain(
                grads,
                grad_output.row(r),
                &mut grad_params,
                grad_input.row_mut(r),
            );
        }
        self.grad_params = grad_params;
        grad_input
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &Matrix)) {
        f(&mut self.params, &self.grad_params);
    }

    fn param_count(&self) -> usize {
        self.template.param_count()
    }

    fn output_dim(&self, _input_dim: usize) -> usize {
        self.template.n_qubits()
    }

    fn describe(&self) -> String {
        self.template.label()
    }
}

/// Chain rule over the observables axis for one sample:
/// `dL/dθ_t += Σ_o dL/d⟨O_o⟩ · d⟨O_o⟩/dθ_t` into `grad_params` (a
/// `1 × n_params` accumulator shared across the batch) and
/// `dL/dx_i = Σ_o dL/d⟨O_o⟩ · d⟨O_o⟩/dx_i` into this sample's
/// `grad_input_row`. Shared by the ideal and noisy quantum layers.
pub(crate) fn accumulate_chain(
    grads: &hqnn_qsim::Gradients,
    grad_output_row: &[f64],
    grad_params: &mut Matrix,
    grad_input_row: &mut [f64],
) {
    let (n_obs, n_params) = grads.d_params.shape();
    let n_inputs = grads.d_inputs.cols();
    for (o, &w) in grad_output_row.iter().enumerate().take(n_obs) {
        if w == 0.0 {
            continue;
        }
        for t in 0..n_params {
            grad_params[(0, t)] += w * grads.d_params[(o, t)];
        }
        for (i, gi) in grad_input_row.iter_mut().enumerate().take(n_inputs) {
            *gi += w * grads.d_inputs[(o, i)];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqnn_qsim::EntanglerKind;

    fn layer(kind: EntanglerKind, seed: u64) -> QuantumLayer {
        let mut rng = SeededRng::new(seed);
        QuantumLayer::new(QnnTemplate::new(3, 2, kind), &mut rng)
    }

    #[test]
    fn forward_outputs_expectations_in_range() {
        let mut rng = SeededRng::new(1);
        let mut l = layer(EntanglerKind::Strong, 7);
        let x = Matrix::uniform(5, 3, -2.0, 2.0, &mut rng);
        let y = l.forward(&x, true);
        assert_eq!(y.shape(), (5, 3));
        assert!(y
            .as_slice()
            .iter()
            .all(|v| (-1.0 - 1e-12..=1.0 + 1e-12).contains(v)));
    }

    #[test]
    fn forward_matches_direct_circuit_evaluation() {
        let mut rng = SeededRng::new(2);
        let mut l = layer(EntanglerKind::Basic, 9);
        let x = Matrix::uniform(2, 3, -1.0, 1.0, &mut rng);
        let y = l.forward(&x, false);
        let obs: Vec<_> = (0..3).map(Observable::z).collect();
        for r in 0..2 {
            let direct = l
                .circuit()
                .expectations(x.row(r), l.params().as_slice(), &obs);
            for (a, b) in y.row(r).iter().zip(&direct) {
                assert!((a - b).abs() < 1e-14);
            }
        }
    }

    #[test]
    fn adjoint_and_shift_backward_agree() {
        let mut rng = SeededRng::new(3);
        let x = Matrix::uniform(4, 3, -1.5, 1.5, &mut rng);
        let g = Matrix::uniform(4, 3, -1.0, 1.0, &mut rng);

        let template = QnnTemplate::new(3, 2, EntanglerKind::Strong);
        let params = Matrix::uniform(
            1,
            template.param_count(),
            0.0,
            std::f64::consts::TAU,
            &mut rng,
        );

        let mut a = QuantumLayer::from_parts(template, params.clone());
        let mut p = QuantumLayer::from_parts(template, params)
            .with_gradient_method(GradientMethod::ParameterShift);

        let _ = a.forward(&x, true);
        let _ = p.forward(&x, true);
        let dx_a = a.backward(&g);
        let dx_p = p.backward(&g);
        assert!(dx_a.approx_eq(&dx_p, 1e-9));

        let mut ga = Matrix::zeros(1, 0);
        a.visit_params(&mut |_v, gr| ga = gr.clone());
        let mut gp = Matrix::zeros(1, 0);
        p.visit_params(&mut |_v, gr| gp = gr.clone());
        assert!(ga.approx_eq(&gp, 1e-9));
    }

    #[test]
    fn backward_matches_finite_difference_loss() {
        // Scalar pseudo-loss L = Σ_r Σ_o w_{ro} · out_{ro}; check dL/dθ and dL/dx.
        let mut rng = SeededRng::new(4);
        let template = QnnTemplate::new(2, 2, EntanglerKind::Basic);
        let params = Matrix::uniform(
            1,
            template.param_count(),
            0.0,
            std::f64::consts::TAU,
            &mut rng,
        );
        let x = Matrix::uniform(3, 2, -1.0, 1.0, &mut rng);
        let w = Matrix::uniform(3, 2, -1.0, 1.0, &mut rng);

        let mut l = QuantumLayer::from_parts(template, params.clone());
        let _ = l.forward(&x, true);
        let dx = l.backward(&w);
        let mut dtheta = Matrix::zeros(1, 0);
        l.visit_params(&mut |_v, g| dtheta = g.clone());

        let eval = |params: &Matrix, x: &Matrix| -> f64 {
            let mut probe = QuantumLayer::from_parts(template, params.clone());
            probe.forward(x, false).hadamard(&w).sum()
        };
        let eps = 1e-6;
        for t in 0..template.param_count() {
            let mut up = params.clone();
            up[(0, t)] += eps;
            let mut dn = params.clone();
            dn[(0, t)] -= eps;
            let fd = (eval(&up, &x) - eval(&dn, &x)) / (2.0 * eps);
            assert!((dtheta[(0, t)] - fd).abs() < 1e-6, "θ_{t}");
        }
        for r in 0..3 {
            for c in 0..2 {
                let mut up = x.clone();
                up[(r, c)] += eps;
                let mut dn = x.clone();
                dn[(r, c)] -= eps;
                let fd = (eval(&params, &up) - eval(&params, &dn)) / (2.0 * eps);
                assert!((dx[(r, c)] - fd).abs() < 1e-6, "x_({r},{c})");
            }
        }
    }

    #[test]
    fn param_initialisation_is_in_zero_two_pi() {
        let l = layer(EntanglerKind::Strong, 11);
        assert!(l
            .params()
            .as_slice()
            .iter()
            .all(|&v| (0.0..2.0 * std::f64::consts::PI).contains(&v)));
    }

    #[test]
    fn layer_metadata() {
        let l = layer(EntanglerKind::Basic, 0);
        assert_eq!(l.param_count(), 6);
        assert_eq!(l.output_dim(3), 3);
        assert_eq!(l.describe(), "BEL(3q,2l)");
        assert_eq!(l.gradient_method(), GradientMethod::Adjoint);
    }

    #[test]
    #[should_panic(expected = "expected 3 encoding angles")]
    fn forward_validates_input_width() {
        let mut l = layer(EntanglerKind::Basic, 0);
        let _ = l.forward(&Matrix::zeros(1, 5), true);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_requires_forward() {
        let mut l = layer(EntanglerKind::Basic, 0);
        let _ = l.backward(&Matrix::zeros(1, 3));
    }

    #[test]
    #[should_panic(expected = "params must be")]
    fn from_parts_validates_param_shape() {
        let t = QnnTemplate::new(3, 2, EntanglerKind::Basic);
        let _ = QuantumLayer::from_parts(t, Matrix::zeros(1, 5));
    }
}
