//! Declarative model descriptions with complexity metrics.
//!
//! A *spec* is the unit the paper's grid search enumerates: it can price
//! itself (FLOPs under a [`CostModel`], parameter count) **without being
//! built**, which is what makes the paper's sort-by-FLOPs-then-train
//! protocol (§III-E) cheap, and it can build a fresh randomly-initialised
//! trainable model for each run.

use hqnn_flops::{CostModel, FlopsBreakdown};
use hqnn_nn::{Activation, ActivationKind, Dense, Sequential};
use hqnn_qsim::QnnTemplate;
use hqnn_tensor::SeededRng;
use serde::{Deserialize, Serialize};

use crate::quantum_layer::{GradientMethod, QuantumLayer};

/// A classical MLP: `features → hidden[0] → … → hidden[k-1] → classes` with
/// one activation after each hidden layer and a softmax head — the family
/// the paper's classical grid search draws from (§III-B: up to 3 hidden
/// layers, neurons from {2, 4, 6, 8, 10}).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClassicalSpec {
    /// Input feature count (the problem-complexity knob).
    pub n_features: usize,
    /// Hidden layer widths, in order.
    pub hidden: Vec<usize>,
    /// Output classes.
    pub n_classes: usize,
    /// Hidden-layer non-linearity.
    pub activation: ActivationKind,
}

impl ClassicalSpec {
    /// Creates a spec with ReLU hidden activations.
    ///
    /// # Panics
    ///
    /// Panics if `n_features == 0`, `n_classes == 0`, or any hidden width
    /// is zero.
    pub fn new(n_features: usize, hidden: Vec<usize>, n_classes: usize) -> Self {
        assert!(n_features > 0, "need at least one feature");
        assert!(n_classes > 0, "need at least one class");
        assert!(
            hidden.iter().all(|&h| h > 0),
            "hidden widths must be positive"
        );
        Self {
            n_features,
            hidden,
            n_classes,
            activation: ActivationKind::Relu,
        }
    }

    /// Overrides the hidden activation.
    pub fn with_activation(mut self, activation: ActivationKind) -> Self {
        self.activation = activation;
        self
    }

    /// Builds a freshly initialised trainable model.
    pub fn build(&self, rng: &mut SeededRng) -> Sequential {
        // Spanned so HQNN_ALLOC attributes the weight/buffer allocations of
        // model construction separately from training itself.
        let _span = hqnn_telemetry::span("core.model_build");
        let mut model = Sequential::new();
        let mut prev = self.n_features;
        for &h in &self.hidden {
            model.push(Dense::new(prev, h, rng));
            model.push(Activation::new(self.activation));
            prev = h;
        }
        model.push(Dense::new(prev, self.n_classes, rng));
        model
    }

    /// Per-sample forward+backward FLOPs under `cost` (all classical).
    pub fn flops(&self, cost: &CostModel) -> FlopsBreakdown {
        FlopsBreakdown::classical_only(cost.mlp(self.n_features, &self.hidden, self.n_classes))
    }

    /// Trainable parameter count: `(in + 1) · out` per dense layer.
    pub fn param_count(&self) -> usize {
        let mut total = 0;
        let mut prev = self.n_features;
        for &h in &self.hidden {
            total += (prev + 1) * h;
            prev = h;
        }
        total + (prev + 1) * self.n_classes
    }

    /// `"C[8,6]@40f"`-style label used in experiment reports.
    pub fn label(&self) -> String {
        let hidden = self
            .hidden
            .iter()
            .map(|h| h.to_string())
            .collect::<Vec<_>>()
            .join(",");
        format!("C[{hidden}]@{}f", self.n_features)
    }
}

/// A hybrid model (paper Fig. 1(b)): `Dense(features → qubits)` compressing
/// the input into encoding angles, a [`QuantumLayer`], and a
/// `Dense(qubits → classes)` readout head. The input layer width equals the
/// qubit count because angle encoding uses one qubit per encoded value
/// (§III-C).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct HybridSpec {
    /// Input feature count (the problem-complexity knob).
    pub n_features: usize,
    /// Output classes.
    pub n_classes: usize,
    /// The quantum node: qubit count, depth, entangler kind.
    pub template: QnnTemplate,
    /// Differentiation engine for the quantum layer.
    pub gradient_method: GradientMethod,
}

impl HybridSpec {
    /// Creates a spec with adjoint differentiation.
    ///
    /// # Panics
    ///
    /// Panics if `n_features == 0` or `n_classes == 0`.
    pub fn new(n_features: usize, n_classes: usize, template: QnnTemplate) -> Self {
        assert!(n_features > 0, "need at least one feature");
        assert!(n_classes > 0, "need at least one class");
        Self {
            n_features,
            n_classes,
            template,
            gradient_method: GradientMethod::Adjoint,
        }
    }

    /// Overrides the quantum differentiation engine.
    pub fn with_gradient_method(mut self, method: GradientMethod) -> Self {
        self.gradient_method = method;
        self
    }

    /// Builds a freshly initialised trainable model.
    pub fn build(&self, rng: &mut SeededRng) -> Sequential {
        let _span = hqnn_telemetry::span("core.model_build");
        let q = self.template.n_qubits();
        let mut model = Sequential::new();
        model.push(Dense::new(self.n_features, q, rng));
        model
            .push(QuantumLayer::new(self.template, rng).with_gradient_method(self.gradient_method));
        model.push(Dense::new(q, self.n_classes, rng));
        model
    }

    /// Per-sample forward+backward FLOPs under `cost`, split into the
    /// paper's Table I columns (CL / Enc / QL).
    pub fn flops(&self, cost: &CostModel) -> FlopsBreakdown {
        let q = self.template.n_qubits();
        let classical = cost.dense_total(self.n_features, q)
            + cost.dense_total(q, self.n_classes)
            + cost.softmax_ce_forward(self.n_classes)
            + cost.softmax_ce_backward(self.n_classes);
        let quantum = cost.circuit_total(&self.template.build(), q);
        FlopsBreakdown {
            classical,
            encoding: quantum.encoding,
            quantum: quantum.quantum_layer,
        }
    }

    /// Trainable parameter count: the two dense layers plus the circuit
    /// weights.
    pub fn param_count(&self) -> usize {
        let q = self.template.n_qubits();
        (self.n_features + 1) * q + self.template.param_count() + (q + 1) * self.n_classes
    }

    /// `"SEL(3q,2l)@40f"`-style label used in experiment reports.
    pub fn label(&self) -> String {
        format!("{}@{}f", self.template.label(), self.n_features)
    }
}

/// Either kind of model, unified for the grid-search machinery.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ModelSpec {
    /// A classical MLP.
    Classical(ClassicalSpec),
    /// A hybrid quantum–classical network.
    Hybrid(HybridSpec),
}

impl ModelSpec {
    /// Builds a freshly initialised trainable model.
    pub fn build(&self, rng: &mut SeededRng) -> Sequential {
        match self {
            ModelSpec::Classical(s) => s.build(rng),
            ModelSpec::Hybrid(s) => s.build(rng),
        }
    }

    /// Per-sample forward+backward FLOPs under `cost`.
    pub fn flops(&self, cost: &CostModel) -> FlopsBreakdown {
        match self {
            ModelSpec::Classical(s) => s.flops(cost),
            ModelSpec::Hybrid(s) => s.flops(cost),
        }
    }

    /// Trainable parameter count.
    pub fn param_count(&self) -> usize {
        match self {
            ModelSpec::Classical(s) => s.param_count(),
            ModelSpec::Hybrid(s) => s.param_count(),
        }
    }

    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            ModelSpec::Classical(s) => s.label(),
            ModelSpec::Hybrid(s) => s.label(),
        }
    }

    /// Input feature count.
    pub fn n_features(&self) -> usize {
        match self {
            ModelSpec::Classical(s) => s.n_features,
            ModelSpec::Hybrid(s) => s.n_features,
        }
    }
}

impl From<ClassicalSpec> for ModelSpec {
    fn from(s: ClassicalSpec) -> Self {
        ModelSpec::Classical(s)
    }
}

impl From<HybridSpec> for ModelSpec {
    fn from(s: HybridSpec) -> Self {
        ModelSpec::Hybrid(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hqnn_qsim::EntanglerKind;

    #[test]
    fn classical_param_count_formula() {
        // 10 → 8 → 6 → 3: (10+1)·8 + (8+1)·6 + (6+1)·3 = 88 + 54 + 21.
        let s = ClassicalSpec::new(10, vec![8, 6], 3);
        assert_eq!(s.param_count(), 163);
        let mut rng = SeededRng::new(0);
        assert_eq!(s.build(&mut rng).param_count(), 163);
    }

    #[test]
    fn classical_no_hidden_is_linear_classifier() {
        let s = ClassicalSpec::new(10, vec![], 3);
        assert_eq!(s.param_count(), 33);
        let mut rng = SeededRng::new(0);
        let model = s.build(&mut rng);
        assert_eq!(model.len(), 1);
    }

    #[test]
    fn hybrid_param_count_matches_built_model() {
        let mut rng = SeededRng::new(1);
        for kind in [EntanglerKind::Basic, EntanglerKind::Strong] {
            for (q, d) in [(3, 2), (4, 4), (5, 1)] {
                let s = HybridSpec::new(40, 3, QnnTemplate::new(q, d, kind));
                assert_eq!(
                    s.param_count(),
                    s.build(&mut rng).param_count(),
                    "{}",
                    s.label()
                );
            }
        }
    }

    #[test]
    fn hybrid_paper_parameter_examples() {
        // BEL(3,2) at 10 features: 11·3 + 6 + 4·3 = 51 trainable params.
        let s = HybridSpec::new(10, 3, QnnTemplate::new(3, 2, EntanglerKind::Basic));
        assert_eq!(s.param_count(), 51);
        // SEL(3,2) at 110 features: 111·3 + 18 + 12 = 363.
        let s = HybridSpec::new(110, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong));
        assert_eq!(s.param_count(), 363);
    }

    #[test]
    fn hybrid_flops_splits_into_table_one_columns() {
        let cost = CostModel::default();
        let s = HybridSpec::new(10, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong));
        let f = s.flops(&cost);
        assert!(f.classical > 0);
        assert!(f.encoding > 0);
        assert!(f.quantum > 0);
        assert_eq!(f.total(), f.classical + f.encoding + f.quantum);
    }

    #[test]
    fn sel_quantum_flops_constant_across_feature_sizes() {
        // The paper's Table-I headline: only the classical column grows with
        // feature count for SEL-based hybrids.
        let cost = CostModel::default();
        let t = QnnTemplate::new(3, 2, EntanglerKind::Strong);
        let f10 = HybridSpec::new(10, 3, t).flops(&cost);
        let f110 = HybridSpec::new(110, 3, t).flops(&cost);
        assert_eq!(f10.quantum, f110.quantum);
        assert_eq!(f10.encoding, f110.encoding);
        assert!(f110.classical > f10.classical);
    }

    #[test]
    fn classical_flops_grow_with_architecture() {
        let cost = CostModel::default();
        let small = ClassicalSpec::new(10, vec![2], 3).flops(&cost);
        let big = ClassicalSpec::new(10, vec![10, 10, 10], 3).flops(&cost);
        assert!(big.total() > small.total());
        assert_eq!(small.encoding, 0);
        assert_eq!(small.quantum, 0);
    }

    #[test]
    fn model_spec_delegates() {
        let cost = CostModel::default();
        let c: ModelSpec = ClassicalSpec::new(10, vec![4], 3).into();
        let h: ModelSpec =
            HybridSpec::new(10, 3, QnnTemplate::new(3, 1, EntanglerKind::Basic)).into();
        assert_eq!(c.n_features(), 10);
        assert_eq!(h.n_features(), 10);
        assert!(c.label().starts_with("C["));
        assert!(h.label().starts_with("BEL"));
        assert_eq!(c.flops(&cost).encoding, 0);
        assert!(h.flops(&cost).encoding > 0);
        let mut rng = SeededRng::new(2);
        assert_eq!(c.build(&mut rng).param_count(), c.param_count());
        assert_eq!(h.build(&mut rng).param_count(), h.param_count());
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(ClassicalSpec::new(40, vec![8, 6], 3).label(), "C[8,6]@40f");
        let h = HybridSpec::new(40, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong));
        assert_eq!(h.label(), "SEL(3q,2l)@40f");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn classical_rejects_zero_width_hidden() {
        let _ = ClassicalSpec::new(10, vec![0], 3);
    }

    #[test]
    fn hybrid_trains_end_to_end_on_tiny_problem() {
        use hqnn_nn::{one_hot, SoftmaxCrossEntropy};
        let mut rng = SeededRng::new(5);
        let s = HybridSpec::new(2, 2, QnnTemplate::new(2, 2, EntanglerKind::Strong));
        let mut model = s.build(&mut rng);
        // Two well-separated blobs.
        let x = hqnn_tensor::Matrix::from_rows(&[
            &[1.0, 1.0],
            &[0.9, 1.1],
            &[-1.0, -1.0],
            &[-1.1, -0.9],
        ]);
        let labels = [0usize, 0, 1, 1];
        let targets = one_hot(&labels, 2);
        let loss_fn = SoftmaxCrossEntropy::new();
        let mut opt = hqnn_nn::Adam::new(0.1);
        let mut final_loss = f64::INFINITY;
        for _ in 0..60 {
            let logits = model.forward(&x, true);
            let (loss, grad) = loss_fn.loss_and_grad(&logits, &targets);
            model.backward(&grad);
            model.apply_gradients(&mut opt);
            final_loss = loss;
        }
        assert!(
            final_loss < 0.2,
            "hybrid failed to learn: loss {final_loss}"
        );
        assert_eq!(hqnn_nn::accuracy(&model.predict(&x), &labels), 1.0);
    }
}
