//! Model persistence: extracting, restoring and serialising trained weights.
//!
//! `Sequential` holds type-erased layers, so persistence goes through the
//! declarative [`ModelSpec`]: a [`SavedModel`] records the spec plus the
//! flat weight vector (in the model's stable parameter-visit order) and can
//! rebuild the trained model anywhere — e.g. train once in an experiment,
//! reuse in an example.

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

use hqnn_nn::Sequential;
use hqnn_tensor::SeededRng;
use serde::{Deserialize, Serialize};

use crate::model_spec::ModelSpec;

/// Error restoring weights into a model.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LoadWeightsError {
    expected: usize,
    got: usize,
}

impl fmt::Display for LoadWeightsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "weight count mismatch: model has {} trainable scalars, got {}",
            self.expected, self.got
        )
    }
}

impl std::error::Error for LoadWeightsError {}

/// Flattens every trainable scalar of the model into one vector, in the
/// model's stable parameter-visit order.
pub fn extract_weights(model: &mut Sequential) -> Vec<f64> {
    let mut weights = Vec::with_capacity(model.param_count());
    model.visit_params(&mut |value, _grad| weights.extend_from_slice(value.as_slice()));
    weights
}

/// Writes a flat weight vector back into the model (inverse of
/// [`extract_weights`]).
///
/// # Errors
///
/// Returns [`LoadWeightsError`] when the vector length does not match the
/// model's parameter count; the model is left unchanged in that case.
pub fn load_weights(model: &mut Sequential, weights: &[f64]) -> Result<(), LoadWeightsError> {
    if weights.len() != model.param_count() {
        return Err(LoadWeightsError {
            expected: model.param_count(),
            got: weights.len(),
        });
    }
    let mut offset = 0;
    model.visit_params(&mut |value, _grad| {
        let n = value.len();
        value
            .as_mut_slice()
            .copy_from_slice(&weights[offset..offset + n]);
        offset += n;
    });
    Ok(())
}

/// A trained model in portable form: its architecture spec plus flat
/// weights.
///
/// # Example
///
/// ```
/// use hqnn_core::persist::SavedModel;
/// use hqnn_core::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let spec: ModelSpec = ClassicalSpec::new(4, vec![6], 3).into();
/// let mut rng = SeededRng::new(0);
/// let mut model = spec.build(&mut rng);
/// let saved = SavedModel::capture(spec, &mut model);
/// let mut restored = saved.restore()?;
/// let x = Matrix::zeros(1, 4);
/// assert_eq!(model.forward(&x, false), restored.forward(&x, false));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SavedModel {
    /// The architecture.
    pub spec: ModelSpec,
    /// Flat weights in parameter-visit order.
    pub weights: Vec<f64>,
}

impl SavedModel {
    /// Captures the current weights of `model`, which must have been built
    /// from `spec`.
    ///
    /// # Panics
    ///
    /// Panics if the model's parameter count disagrees with the spec's.
    pub fn capture(spec: ModelSpec, model: &mut Sequential) -> Self {
        assert_eq!(
            model.param_count(),
            spec.param_count(),
            "model was not built from this spec"
        );
        Self {
            weights: extract_weights(model),
            spec,
        }
    }

    /// Rebuilds the trained model.
    ///
    /// # Errors
    ///
    /// Returns [`LoadWeightsError`] when the stored weight vector does not
    /// match the spec (e.g. a hand-edited file).
    pub fn restore(&self) -> Result<Sequential, LoadWeightsError> {
        // lint:allow(unsalted-rng): seed is irrelevant — every weight the
        // builder draws is overwritten by the stored vector on the next line
        let mut model = self.spec.build(&mut SeededRng::new(0));
        load_weights(&mut model, &self.weights)?;
        Ok(model)
    }

    /// Writes the model as pretty JSON.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let json = serde_json::to_string_pretty(self).map_err(io::Error::other)?;
        if let Some(parent) = path.as_ref().parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(path, json)
    }

    /// Loads a model previously written by [`SavedModel::save`].
    ///
    /// # Errors
    ///
    /// Returns an I/O error if the file is missing or not valid JSON.
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let json = fs::read_to_string(path)?;
        serde_json::from_str(&json).map_err(io::Error::other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model_spec::{ClassicalSpec, HybridSpec};
    use hqnn_qsim::{EntanglerKind, QnnTemplate};
    use hqnn_tensor::Matrix;

    fn specs() -> Vec<ModelSpec> {
        vec![
            ClassicalSpec::new(5, vec![6, 4], 3).into(),
            HybridSpec::new(5, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong)).into(),
        ]
    }

    #[test]
    fn extract_load_round_trip() {
        for spec in specs() {
            let mut rng = SeededRng::new(7);
            let mut model = spec.build(&mut rng);
            let weights = extract_weights(&mut model);
            assert_eq!(weights.len(), spec.param_count());

            let mut other = spec.build(&mut SeededRng::new(999));
            load_weights(&mut other, &weights).expect("matching count");
            let x = Matrix::uniform(3, 5, -1.0, 1.0, &mut rng);
            assert_eq!(model.forward(&x, false), other.forward(&x, false));
        }
    }

    #[test]
    fn load_rejects_wrong_length() {
        let spec: ModelSpec = ClassicalSpec::new(3, vec![2], 2).into();
        let mut model = spec.build(&mut SeededRng::new(0));
        let before = extract_weights(&mut model);
        let err = load_weights(&mut model, &[1.0, 2.0]).expect_err("length mismatch");
        assert!(err.to_string().contains("mismatch"));
        // Model unchanged on error.
        assert_eq!(extract_weights(&mut model), before);
    }

    #[test]
    fn saved_model_restores_identically() {
        for spec in specs() {
            let mut rng = SeededRng::new(11);
            let mut model = spec.build(&mut rng);
            let saved = SavedModel::capture(spec, &mut model);
            let mut restored = saved.restore().expect("restore");
            let x = Matrix::uniform(4, 5, -1.0, 1.0, &mut rng);
            assert_eq!(model.forward(&x, false), restored.forward(&x, false));
        }
    }

    #[test]
    fn saved_model_file_round_trip() {
        let spec: ModelSpec = ClassicalSpec::new(4, vec![3], 2).into();
        let mut model = spec.build(&mut SeededRng::new(2));
        let saved = SavedModel::capture(spec, &mut model);
        let path = std::env::temp_dir()
            .join("hqnn-core-test")
            .join("model.json");
        saved.save(&path).expect("save");
        let loaded = SavedModel::load(&path).expect("load");
        assert_eq!(saved, loaded);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn restore_rejects_corrupted_weights() {
        let spec: ModelSpec = ClassicalSpec::new(4, vec![3], 2).into();
        let mut model = spec.build(&mut SeededRng::new(2));
        let mut saved = SavedModel::capture(spec, &mut model);
        saved.weights.pop();
        assert!(saved.restore().is_err());
    }

    #[test]
    #[should_panic(expected = "not built from this spec")]
    fn capture_validates_spec() {
        let spec_a: ModelSpec = ClassicalSpec::new(4, vec![3], 2).into();
        let spec_b: ModelSpec = ClassicalSpec::new(4, vec![8], 2).into();
        let mut model = spec_a.build(&mut SeededRng::new(2));
        let _ = SavedModel::capture(spec_b, &mut model);
    }
}
