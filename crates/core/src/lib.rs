//! Hybrid quantum–classical neural networks (HQNNs).
//!
//! This is the headline crate of the workspace: the Rust equivalent of
//! PennyLane's `qml.qnn.KerasLayer` pipeline the paper builds on. It provides
//!
//! * [`QuantumLayer`] — a simulated variational quantum circuit (angle
//!   encoding → BEL/SEL ansatz → one `⟨Z⟩` per wire) that implements
//!   [`hqnn_nn::Layer`], so it slots into a [`hqnn_nn::Sequential`] next to
//!   dense layers and backpropagates via adjoint differentiation;
//! * [`HybridSpec`] / [`ClassicalSpec`] / [`ModelSpec`] — declarative model
//!   descriptions that build trainable models, count parameters, and price
//!   themselves under a [`hqnn_flops::CostModel`] — the two complexity
//!   metrics (FLOPs, #params) the paper compares classical and hybrid
//!   networks on;
//! * a [`prelude`] re-exporting the workspace types downstream code needs.
//!
//! # Quickstart
//!
//! ```
//! use hqnn_core::prelude::*;
//!
//! // A hybrid model for 4 input features: Dense(4→3) → SEL(3q,2l) → Dense(3→3).
//! let spec = HybridSpec::new(4, 3, QnnTemplate::new(3, 2, EntanglerKind::Strong));
//! let mut rng = SeededRng::new(0);
//! let mut model = spec.build(&mut rng);
//! assert_eq!(model.param_count(), spec.param_count());
//!
//! let x = Matrix::zeros(2, 4);
//! let logits = model.forward(&x, false);
//! assert_eq!(logits.shape(), (2, 3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod model_spec;
pub mod noisy_layer;
pub mod persist;
pub mod quantum_layer;

pub use model_spec::{ClassicalSpec, HybridSpec, ModelSpec};
pub use noisy_layer::NoisyQuantumLayer;
pub use persist::SavedModel;
pub use quantum_layer::{GradientMethod, QuantumLayer};

/// The central `HQNN_*` environment-variable registry and parsers.
///
/// Hosted by `hqnn-telemetry` (the root of the workspace dependency graph,
/// so every crate can read through it) and re-exported here as the
/// user-facing entry point: `hqnn_core::env::REGISTRY` lists every variable
/// the workspace understands, and unknown `HQNN_*` names in the process
/// environment trigger a one-time `env.unknown_var` warning.
pub use hqnn_telemetry::env;

/// Training-health sentinels (NaN/Inf loss, gradient-norm monitors).
///
/// Hosted by `hqnn-nn` where the training loop lives; re-exported here so
/// hybrid-model drivers configure them through the same front door as the
/// rest of the workspace (`hqnn_core::health::set_action`, or the
/// registered `HQNN_HEALTH` env var).
pub use hqnn_nn::health;

/// One-stop imports for applications using the workspace.
pub mod prelude {
    pub use crate::{
        ClassicalSpec, GradientMethod, HybridSpec, ModelSpec, NoisyQuantumLayer, QuantumLayer,
    };
    pub use hqnn_data::{complexity_levels, noise_level, Dataset, SpiralConfig, Standardizer};
    pub use hqnn_flops::{CostModel, FlopsBreakdown};
    pub use hqnn_nn::{
        accuracy, one_hot, train, Activation, ActivationKind, Adam, Dense, Layer, Optimizer,
        Sequential, Sgd, TrainConfig, TrainReport,
    };
    pub use hqnn_qsim::{
        Circuit, DensityMatrix, EntanglerKind, NoiseChannel, NoiseModel, Observable, QnnTemplate,
        RotationAxis,
    };
    pub use hqnn_tensor::{Matrix, SeededRng};
}
