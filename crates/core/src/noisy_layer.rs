//! A quantum layer evaluated under a NISQ noise model.
//!
//! The paper's evaluation simulates *ideal* quantum layers and argues the
//! observed advantages would carry over to real (noisy) hardware; this layer
//! removes that idealisation so the claim can be stress-tested: the same
//! encoding + ansatz is simulated as a density matrix with per-gate noise
//! channels, and trained with the parameter-shift rule (which remains exact
//! for channel expectations — see
//! [`hqnn_qsim::gradient::parameter_shift_noisy`]).
//!
//! Density-matrix simulation costs O(4ⁿ) and parameter-shift costs two
//! simulations per weight, so this layer is meant for small-circuit studies
//! (the `noisy_training` example), not the full grid search.

use hqnn_nn::Layer;
use hqnn_qsim::{
    gradients_batch, Circuit, DensityMatrix, GradEngine, NoiseModel, Observable, QnnTemplate,
};
use hqnn_tensor::{Matrix, SeededRng};

use crate::quantum_layer::accumulate_chain;

/// A trainable variational quantum layer whose circuit executes under a
/// [`NoiseModel`].
///
/// Same interface and semantics as [`crate::QuantumLayer`] — input
/// `(batch, n_qubits)` encoding angles, output `(batch, n_qubits)` ⟨Z⟩
/// readouts — but every gate is followed by the model's noise channels, so
/// outputs are damped toward 0 as noise grows and gradients shrink
/// accordingly.
///
/// # Example
///
/// ```
/// use hqnn_core::NoisyQuantumLayer;
/// use hqnn_nn::Layer;
/// use hqnn_qsim::{EntanglerKind, NoiseModel, QnnTemplate};
/// use hqnn_tensor::{Matrix, SeededRng};
///
/// let mut rng = SeededRng::new(5);
/// let template = QnnTemplate::new(2, 1, EntanglerKind::Basic);
/// let mut layer = NoisyQuantumLayer::new(template, NoiseModel::depolarizing(0.05), &mut rng);
/// let out = layer.forward(&Matrix::zeros(3, 2), true);
/// assert_eq!(out.shape(), (3, 2));
/// ```
#[derive(Debug, Clone)]
pub struct NoisyQuantumLayer {
    template: QnnTemplate,
    circuit: Circuit,
    observables: Vec<Observable>,
    noise: NoiseModel,
    params: Matrix,
    grad_params: Matrix,
    cached_input: Option<Matrix>,
}

impl NoisyQuantumLayer {
    /// Creates the layer with `[0, 2π)`-uniform weights.
    pub fn new(template: QnnTemplate, noise: NoiseModel, rng: &mut SeededRng) -> Self {
        let n = template.param_count();
        let params = if n == 0 {
            Matrix::zeros(1, 0)
        } else {
            Matrix::uniform(1, n, 0.0, 2.0 * std::f64::consts::PI, rng)
        };
        Self::from_parts(template, noise, params)
    }

    /// Creates the layer with explicit weights.
    ///
    /// # Panics
    ///
    /// Panics if `params` is not `1 × template.param_count()`.
    pub fn from_parts(template: QnnTemplate, noise: NoiseModel, params: Matrix) -> Self {
        assert_eq!(
            params.shape(),
            (1, template.param_count()),
            "params must be 1 × {}",
            template.param_count()
        );
        Self {
            circuit: template.build(),
            observables: (0..template.n_qubits()).map(Observable::z).collect(),
            grad_params: Matrix::zeros(1, template.param_count()),
            template,
            noise,
            params,
            cached_input: None,
        }
    }

    /// The configured noise model.
    pub fn noise(&self) -> &NoiseModel {
        &self.noise
    }

    /// The template this layer was built from.
    pub fn template(&self) -> &QnnTemplate {
        &self.template
    }

    /// The current weights as a `1 × param_count` row.
    pub fn params(&self) -> &Matrix {
        &self.params
    }
}

impl Layer for NoisyQuantumLayer {
    fn forward(&mut self, input: &Matrix, _training: bool) -> Matrix {
        let n = self.template.n_qubits();
        assert_eq!(
            input.cols(),
            n,
            "NoisyQuantumLayer expected {n} encoding angles, got {}",
            input.cols()
        );
        self.cached_input = Some(input.clone());
        // Density-matrix simulations are the most expensive per-sample work
        // in the workspace (O(4ⁿ) each), so rows fan out across the runtime.
        let rows = hqnn_runtime::par_map_range(input.rows(), |r| {
            let rho = DensityMatrix::run_noisy(
                &self.circuit,
                input.row(r),
                self.params.as_slice(),
                &self.noise,
            );
            (0..n)
                .map(|wire| rho.expectation_z(wire))
                .collect::<Vec<f64>>()
        });
        let mut out = Matrix::zeros(input.rows(), n);
        for (r, row) in rows.iter().enumerate() {
            out.row_mut(r).copy_from_slice(row);
        }
        out
    }

    fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            // lint:allow(panic): documented Layer API contract
            .expect("backward called before forward");
        let n = self.template.n_qubits();
        assert_eq!(
            grad_output.shape(),
            (input.rows(), n),
            "gradient shape mismatch"
        );
        let mut grad_params = Matrix::zeros(1, self.template.param_count());
        let mut grad_input = Matrix::zeros(input.rows(), n);
        // Parallel per-sample gradients, sequential row-order reduction into
        // the shared accumulator (keeps f64 grouping identical to the loop).
        let batch = gradients_batch(
            &self.circuit,
            GradEngine::ParameterShiftNoisy(&self.noise),
            input,
            self.params.as_slice(),
            &self.observables,
        );
        for (r, grads) in batch.iter().enumerate() {
            accumulate_chain(
                grads,
                grad_output.row(r),
                &mut grad_params,
                grad_input.row_mut(r),
            );
        }
        self.grad_params = grad_params;
        grad_input
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Matrix, &Matrix)) {
        f(&mut self.params, &self.grad_params);
    }

    fn param_count(&self) -> usize {
        self.template.param_count()
    }

    fn output_dim(&self, _input_dim: usize) -> usize {
        self.template.n_qubits()
    }

    fn describe(&self) -> String {
        if self.noise.is_noiseless() {
            format!("{}+noiseless", self.template.label())
        } else {
            format!("{}+noise", self.template.label())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QuantumLayer;
    use hqnn_qsim::EntanglerKind;

    fn template() -> QnnTemplate {
        QnnTemplate::new(2, 2, EntanglerKind::Strong)
    }

    #[test]
    fn noiseless_layer_matches_ideal_layer() {
        let mut rng = SeededRng::new(3);
        let params = Matrix::uniform(
            1,
            template().param_count(),
            0.0,
            std::f64::consts::TAU,
            &mut rng,
        );
        let x = Matrix::uniform(4, 2, -1.0, 1.0, &mut rng);
        let g = Matrix::uniform(4, 2, -1.0, 1.0, &mut rng);

        let mut ideal = QuantumLayer::from_parts(template(), params.clone());
        let mut noisy = NoisyQuantumLayer::from_parts(template(), NoiseModel::noiseless(), params);

        let out_i = ideal.forward(&x, true);
        let out_n = noisy.forward(&x, true);
        assert!(out_i.approx_eq(&out_n, 1e-9));

        let dx_i = ideal.backward(&g);
        let dx_n = noisy.backward(&g);
        assert!(dx_i.approx_eq(&dx_n, 1e-8));

        let mut gi = Matrix::zeros(1, 0);
        ideal.visit_params(&mut |_v, gr| gi = gr.clone());
        let mut gn = Matrix::zeros(1, 0);
        noisy.visit_params(&mut |_v, gr| gn = gr.clone());
        assert!(gi.approx_eq(&gn, 1e-8));
    }

    #[test]
    fn noise_damps_outputs() {
        let mut rng = SeededRng::new(4);
        let params = Matrix::uniform(
            1,
            template().param_count(),
            0.0,
            std::f64::consts::TAU,
            &mut rng,
        );
        let x = Matrix::uniform(3, 2, -1.0, 1.0, &mut rng);
        let mut clean =
            NoisyQuantumLayer::from_parts(template(), NoiseModel::noiseless(), params.clone());
        let mut noisy =
            NoisyQuantumLayer::from_parts(template(), NoiseModel::depolarizing(0.3), params);
        let a = clean.forward(&x, false);
        let b = noisy.forward(&x, false);
        // Depolarizing noise pulls every ⟨Z⟩ toward 0.
        for (ca, cb) in a.as_slice().iter().zip(b.as_slice()) {
            assert!(cb.abs() <= ca.abs() + 1e-9, "{cb} vs {ca}");
        }
        assert!(b.frobenius_norm() < a.frobenius_norm());
    }

    #[test]
    fn trains_under_mild_noise() {
        use hqnn_nn::{one_hot, Adam, Dense, Sequential, SoftmaxCrossEntropy};
        let mut rng = SeededRng::new(7);
        let mut model = Sequential::new();
        model.push(Dense::new(2, 2, &mut rng));
        model.push(NoisyQuantumLayer::new(
            template(),
            NoiseModel::depolarizing(0.02),
            &mut rng,
        ));
        model.push(Dense::new(2, 2, &mut rng));

        let x = Matrix::from_rows(&[&[1.0, 1.0], &[1.1, 0.9], &[-1.0, -1.0], &[-0.9, -1.1]]);
        let labels = [0usize, 0, 1, 1];
        let targets = one_hot(&labels, 2);
        let loss_fn = SoftmaxCrossEntropy::new();
        let mut opt = Adam::new(0.1);
        let mut final_loss = f64::INFINITY;
        for _ in 0..40 {
            let logits = model.forward(&x, true);
            let (loss, grad) = loss_fn.loss_and_grad(&logits, &targets);
            model.backward(&grad);
            model.apply_gradients(&mut opt);
            final_loss = loss;
        }
        assert!(
            final_loss < 0.3,
            "noisy hybrid failed to learn: {final_loss}"
        );
    }

    #[test]
    fn describe_reflects_noise() {
        let mut rng = SeededRng::new(1);
        let clean = NoisyQuantumLayer::new(template(), NoiseModel::noiseless(), &mut rng);
        let noisy = NoisyQuantumLayer::new(template(), NoiseModel::depolarizing(0.1), &mut rng);
        assert!(clean.describe().contains("noiseless"));
        assert!(noisy.describe().ends_with("+noise"));
        assert_eq!(noisy.param_count(), template().param_count());
        assert!(!noisy.noise().is_noiseless());
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_requires_forward() {
        let mut rng = SeededRng::new(1);
        let mut layer = NoisyQuantumLayer::new(template(), NoiseModel::noiseless(), &mut rng);
        let _ = layer.backward(&Matrix::zeros(1, 2));
    }
}
