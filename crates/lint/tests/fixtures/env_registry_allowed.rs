// Fixture: registered names pass; an annotated experimental one passes too.

pub fn configured_threads() -> Option<String> {
    std::env::var("HQNN_THREADS").ok()
}

pub fn alloc_counting_enabled() -> bool {
    std::env::var("HQNN_ALLOC").is_ok()
}

pub fn configured_batch_layout() -> Option<String> {
    std::env::var("HQNN_BATCH").ok()
}

pub fn experimental_flag() -> bool {
    // lint:allow(env-registry): prototype flag, registered before release
    std::env::var("HQNN_EXPERIMENTAL_X").is_ok()
}
