// Fixture: ordered helpers, integer sums, container methods, and one
// annotated escape — must pass.

pub fn ordered(xs: &[f64]) -> f64 {
    hqnn_tensor::fold::ordered_sum_f64(xs.iter().copied())
}

pub fn integer_turbofish(xs: &[u64]) -> u64 {
    xs.iter().sum::<u64>()
}

pub fn integer_evidence(counts: &[u64]) -> u64 {
    let total: u64 = counts.iter().sum();
    total
}

pub fn container_sum(m: &Matrix) -> f64 {
    m.sum()
}

pub fn annotated(xs: &[f64]) -> f64 {
    // lint:allow(float-fold): sequential-only path, grouping fixed by construction
    xs.iter().sum::<f64>()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_sum_freely() {
        let s: f64 = [1.0, 2.0].iter().sum();
        assert!(s > 0.0);
    }
}
