// Fixture: free-form telemetry names must be flagged (rule: span-naming).

pub fn run(t: &Telemetry) {
    let _g = t.span("doing the big loop");
    t.counter("iterations", 1);
    // Path-qualified calls are call sites too — `::` must not be mistaken
    // for a struct-field position.
    telemetry::counter("BadMetricName", 1);
    telemetry::gauge_max("peakMemory", 1.0);
}

pub struct Telemetry;
impl Telemetry {
    pub fn span(&self, _name: &str) {}
    pub fn counter(&self, _name: &str, _v: u64) {}
}
