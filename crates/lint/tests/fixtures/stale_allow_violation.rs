// Fixture: dead and malformed escapes — each must trigger stale-allow.

pub fn refactored_away() -> u32 {
    // lint:allow(panic): the unwrap this covered was removed last PR
    0
}

// lint:allow(not-a-rule): name drifted from the rule table
pub fn unknown_rule() -> u32 {
    1
}

pub fn missing_reason(v: Option<u32>) -> u32 {
    v.unwrap_or(2) // lint:allow(hash-iter)
}
