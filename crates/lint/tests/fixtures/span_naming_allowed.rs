// Fixture: crate.noun_verb names pass; an annotated legacy name passes too.

pub fn run(t: &Telemetry) {
    let _g = t.span("search.trial_run");
    t.counter("qsim.gates_applied", 1);
    // lint:allow(span-naming): legacy dashboard expects this exact name
    t.counter("LegacyCounter", 1);
    // Path-qualified calls with conforming names pass.
    telemetry::counter("nn.batches_done", 1);
    telemetry::gauge_max("nn.grad_norm_peak", 2.5);
}

pub struct Telemetry;
impl Telemetry {
    pub fn span(&self, _name: &str) {}
    pub fn counter(&self, _name: &str, _v: u64) {}
}
