// Fixture: annotated unwrap plus test-code unwrap — must pass.

pub fn first_byte(bytes: &[u8]) -> u8 {
    // lint:allow(panic): caller contract guarantees non-empty input
    *bytes.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_freely() {
        let v: Result<u32, ()> = Ok(1);
        assert_eq!(v.unwrap(), 1);
    }
}
