// Fixture: salt-derived and config-seeded streams — must pass.

pub fn from_config(seed: u64) -> SeededRng {
    SeededRng::new(seed)
}

pub fn per_combo(config_seed: u64, salt: u64) -> SeededRng {
    SeededRng::new(config_seed).split(salt)
}

pub fn documented_literal() -> SeededRng {
    // lint:allow(unsalted-rng): seed irrelevant — caller overwrites every draw
    SeededRng::new(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_pin_seeds() {
        let _rng = SeededRng::new(7);
    }
}
