// Fixture: the same double-violation line, with the escape naming both
// rules — must pass.

pub fn scoped() -> u64 {
    let _t = std::time::Instant::now(); maybe().unwrap() // lint:allow(panic, wall-clock): fixture covers both rules on this line
}

fn maybe() -> Option<u64> {
    None
}
