// Fixture: ad-hoc float reductions — each must trigger float-fold.

pub fn turbofish_sum(xs: &[f64]) -> f64 {
    xs.iter().sum::<f64>()
}

pub fn bare_float_sum(xs: &[f64]) -> f64 {
    let total: f64 = xs.iter().map(|x| x * x).sum();
    total
}

pub fn ambiguous_sum(xs: &[Opaque]) -> Opaque {
    xs.iter().map(|x| x.weight()).sum()
}

pub fn float_fold(xs: &[f64]) -> f64 {
    xs.iter().fold(0.0, |acc, x| acc + x)
}

pub fn float_max(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
}
