// Fixture: the same HashMap use, annotated — must pass.
// lint:allow(hash-iter): interned keys are never iterated, only probed
use std::collections::HashMap;

pub fn lookup_table() -> HashMap<&'static str, u32> { // lint:allow(hash-iter): probe-only
    // lint:allow(hash-iter): probe-only map, iteration order never observed
    let mut m = HashMap::new();
    m.insert("a", 1);
    m
}
