// Fixture: bare unwrap in library code must be flagged (rule: panic).

pub fn first_line(text: &str) -> &str {
    text.lines().next().unwrap()
}
