// Fixture: reading an HQNN_* variable that is not in the central registry
// must be flagged (rule: env-registry). HQNN_THREAD is the classic typo of
// HQNN_THREADS that motivated the registry.

pub fn configured_threads() -> Option<String> {
    std::env::var("HQNN_THREAD").ok()
}
