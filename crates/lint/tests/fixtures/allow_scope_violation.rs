// Fixture: a single escape must not silence a different rule firing on the
// same line — the panic escape below leaves the wall-clock hit standing.

pub fn scoped() -> u64 {
    let _t = std::time::Instant::now(); maybe().unwrap() // lint:allow(panic): scoping fixture — wall-clock must still fire
}

fn maybe() -> Option<u64> {
    None
}
