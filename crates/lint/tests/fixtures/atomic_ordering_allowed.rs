// Fixture: SeqCst everywhere plus one annotated hot-path load — must pass.

use std::sync::atomic::{AtomicBool, Ordering};

static FLAG: AtomicBool = AtomicBool::new(false);

pub fn set() {
    FLAG.store(true, Ordering::SeqCst);
}

pub fn release_publish(x: &AtomicBool) {
    x.store(true, Ordering::Release);
}

pub fn hot_check() -> bool {
    // lint:allow(atomic-ordering): flag load on every batch; a stale read only delays enablement
    FLAG.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_code_may_relax() {
        FLAG.store(false, Ordering::Relaxed);
    }
}
