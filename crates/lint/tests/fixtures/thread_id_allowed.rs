// Fixture: annotated thread-identity read — must pass.

pub fn debug_label() -> String {
    // lint:allow(thread-id): diagnostic label only, never affects results
    let id = std::thread::current().id();
    format!("worker-{id:?}")
}
