// Fixture: Instant in a non-telemetry crate must be flagged (rule: wall-clock).
use std::time::Instant;

pub fn timed<F: FnOnce()>(f: F) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}
