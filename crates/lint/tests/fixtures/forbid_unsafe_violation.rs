// Fixture: a crate root without #![forbid(unsafe_code)] must be flagged
// (rule: forbid-unsafe). This file is linted as if it were src/lib.rs.

pub fn noop() {}
