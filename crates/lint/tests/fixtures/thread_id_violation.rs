// Fixture: thread-identity branching outside runtime must be flagged
// (rule: thread-id).

pub fn shard_for_current_thread(n_shards: u64) -> u64 {
    let id = std::thread::current().id();
    let hash = format!("{id:?}").len() as u64;
    hash % n_shards
}
