// Fixture: live escapes with reasons, plus one deliberately-kept dead
// escape annotated with its own stale-allow justification — must pass.

pub fn live_escape(v: Option<u32>) -> u32 {
    // lint:allow(panic): fixture invariant — caller always passes Some
    v.unwrap()
}

pub fn migration_in_flight() -> u32 {
    // lint:allow(stale-allow): escape below goes live again when feature X lands next PR
    // lint:allow(hash-iter): probe-only map returns with feature X
    3
}
