// Fixture: literal seeds and entropy draws — must trigger unsalted-rng.

pub fn hard_coded() -> SeededRng {
    SeededRng::new(42)
}

pub fn entropy() -> SeededRng {
    SeededRng::from_entropy()
}

pub fn os_entropy() -> u64 {
    thread_rng()
}
