// Fixture: crate root carrying the attribute — must pass.
#![forbid(unsafe_code)]

pub fn noop() {}
