// Fixture: weak orderings outside runtime/alloc — must trigger.

use std::sync::atomic::{AtomicUsize, Ordering};

static COUNT: AtomicUsize = AtomicUsize::new(0);

pub fn bump() -> usize {
    COUNT.fetch_add(1, Ordering::Relaxed)
}

pub fn exchange() -> usize {
    COUNT.swap(7, Ordering::AcqRel)
}
