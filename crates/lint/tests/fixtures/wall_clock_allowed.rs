// Fixture: annotated wall-clock read — must pass.
// lint:allow(wall-clock): coarse deadline check, value never enters results
use std::time::Instant;

pub fn deadline_passed(start: std::time::Instant, budget_s: f64) -> bool { // lint:allow(wall-clock): abort check
    // lint:allow(wall-clock): used only to abort, never in numeric output
    Instant::now().duration_since(start).as_secs_f64() > budget_s
}
