//! The workspace lints clean. This test makes `cargo test` itself enforce
//! the invariants: introducing an unannotated HashMap into qsim, a bare
//! unwrap into library code, or an unregistered HQNN_* read fails the
//! tier-1 test suite, not just the separate `make lint` step.

use std::path::Path;

use hqnn_lint::{lint_workspace, load_registry};

fn workspace_root() -> &'static Path {
    // crates/lint -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives two levels below the workspace root")
}

#[test]
fn workspace_lints_clean() {
    let report = lint_workspace(workspace_root()).expect("lint run");
    assert!(
        report.files_scanned > 20,
        "suspiciously few files scanned ({}) — walker broken?",
        report.files_scanned
    );
    assert!(
        report.crates.iter().any(|c| c == "qsim") && report.crates.iter().any(|c| c == "lint"),
        "expected workspace crates missing from scan: {:?}",
        report.crates
    );
    assert!(
        report.clean(),
        "workspace has lint findings:\n{}",
        report.render_text()
    );
}

#[test]
fn registry_contains_the_known_vars() {
    let reg = load_registry(workspace_root()).expect("registry load");
    for name in ["HQNN_LOG", "HQNN_THREADS", "HQNN_FUSE", "HQNN_ALLOC"] {
        assert!(
            reg.iter().any(|r| r == name),
            "{name} missing from registry {reg:?}"
        );
    }
}
