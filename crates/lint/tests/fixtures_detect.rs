//! Fixture corpus test: every rule must catch its seeded violation fixture
//! and must pass the `lint:allow`-annotated twin. A rule added to RULES
//! without a fixture pair fails `every_rule_has_a_fixture_pair`, so the
//! corpus can never silently fall behind the rule set.

use std::path::{Path, PathBuf};

use hqnn_lint::engine::lint_file;
use hqnn_lint::RULES;

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Per-rule fixture context: the crate identity each fixture is linted as.
/// Violations must trigger under these contexts; the annotated twins must
/// not, under the same contexts.
fn fixture_ctx(rule: &str) -> (&'static str, bool, bool) {
    // (crate_name, is_bin, is_crate_root)
    match rule {
        "hash-iter" => ("qsim", false, false),
        "wall-clock" => ("nn", false, false),
        "thread-id" => ("search", false, false),
        "panic" => ("tensor", false, false),
        "forbid-unsafe" => ("qsim", false, true),
        "env-registry" => ("runtime", false, false),
        "span-naming" => ("nn", false, false),
        "float-fold" => ("qsim", false, false),
        "atomic-ordering" => ("nn", false, false),
        "unsalted-rng" => ("search", false, false),
        "stale-allow" => ("qsim", false, false),
        other => panic!("no fixture context for rule {other}"),
    }
}

fn registry() -> Vec<String> {
    vec![
        "HQNN_LOG".to_string(),
        "HQNN_THREADS".to_string(),
        "HQNN_FUSE".to_string(),
        "HQNN_BATCH".to_string(),
        "HQNN_HEALTH".to_string(),
        "HQNN_ALLOC".to_string(),
    ]
}

#[test]
fn every_rule_has_a_fixture_pair() {
    for rule in RULES {
        let stem = rule.name.replace('-', "_");
        for suffix in ["violation", "allowed"] {
            let path = fixtures_dir().join(format!("{stem}_{suffix}.rs"));
            assert!(
                path.is_file(),
                "rule `{}` is missing fixture {}; every rule needs a violation + allowed pair",
                rule.name,
                path.display()
            );
        }
    }
}

#[test]
fn every_violation_fixture_is_detected() {
    let reg = registry();
    for rule in RULES {
        let stem = rule.name.replace('-', "_");
        let path = fixtures_dir().join(format!("{stem}_violation.rs"));
        let (crate_name, is_bin, is_root) = fixture_ctx(rule.name);
        let findings = lint_file(&path, crate_name, is_bin, is_root, &reg)
            .unwrap_or_else(|e| panic!("lint {}: {e}", path.display()));
        assert!(
            findings.iter().any(|f| f.rule == rule.name),
            "rule `{}` did not fire on its violation fixture; findings: {:?}",
            rule.name,
            findings
        );
    }
}

#[test]
fn every_allowed_fixture_passes() {
    let reg = registry();
    for rule in RULES {
        let stem = rule.name.replace('-', "_");
        let path = fixtures_dir().join(format!("{stem}_allowed.rs"));
        let (crate_name, is_bin, is_root) = fixture_ctx(rule.name);
        let findings = lint_file(&path, crate_name, is_bin, is_root, &reg)
            .unwrap_or_else(|e| panic!("lint {}: {e}", path.display()));
        let residual: Vec<_> = findings
            .iter()
            .filter(|f| f.rule == rule.name || f.rule == "stale-allow")
            .collect();
        assert!(
            residual.is_empty(),
            "annotated fixture for `{}` still produced findings: {residual:?}",
            rule.name
        );
    }
}

#[test]
fn allow_escapes_are_scoped_to_the_named_rule() {
    // One line, two violations of different rules: an escape naming only
    // `panic` must leave the wall-clock finding standing…
    let reg = registry();
    let path = fixtures_dir().join("allow_scope_violation.rs");
    let findings = lint_file(&path, "nn", false, false, &reg).expect("lint");
    assert!(
        !findings.iter().any(|f| f.rule == "panic"),
        "named rule should be suppressed: {findings:?}"
    );
    assert_eq!(
        findings
            .iter()
            .filter(|f| f.rule == "wall-clock")
            .count(),
        1,
        "unnamed rule must still fire: {findings:?}"
    );
    assert!(
        !findings.iter().any(|f| f.rule == "stale-allow"),
        "the panic escape is live, not stale: {findings:?}"
    );

    // …and naming both rules silences the whole line.
    let path = fixtures_dir().join("allow_scope_allowed.rs");
    let findings = lint_file(&path, "nn", false, false, &reg).expect("lint");
    assert!(
        findings.is_empty(),
        "dual-rule escape should clear the line: {findings:?}"
    );
}

#[test]
fn violation_messages_are_actionable() {
    // Each violation message should tell the user what to do, not just
    // what is wrong — spot-check that messages mention a remedy.
    let reg = registry();
    let path = fixtures_dir().join("panic_violation.rs");
    let findings = lint_file(&path, "tensor", false, false, &reg).expect("lint");
    let f = findings
        .iter()
        .find(|f| f.rule == "panic")
        .expect("panic finding");
    assert!(
        f.message.contains("lint:allow") || f.message.contains("Result"),
        "message should point at the fix: {}",
        f.message
    );
    assert!(f.line > 0);
}
