//! Expression-aware helpers over the token stream: method-call shape,
//! call-chain walking, and statement-local type evidence.
//!
//! This is deliberately **not** a Rust parser. The flow-aware rules
//! (`float-fold`, `unsalted-rng`) need three questions answered about a
//! token position: *is this a method call, and where are its arguments?*,
//! *does the receiver chain pass through an iterator adapter?*, and *what
//! type evidence surrounds this statement?*. All three are answerable with
//! balanced-delimiter scans over the existing [`Tok`](crate::lexer::Tok)
//! stream, keeping the linter dependency-free and robust to half-broken
//! source.

use crate::lexer::{Tok, TokKind};

/// Iterator-producing / iterator-transforming method names: a call chain
/// passing through one of these is treated as iterating a sequence, so a
/// terminal `sum`/`fold`/`reduce` re-associates element order.
pub const ITERATOR_ADAPTERS: &[&str] = &[
    "iter",
    "iter_mut",
    "into_iter",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "zip",
    "enumerate",
    "rev",
    "chain",
    "copied",
    "cloned",
    "skip",
    "take",
    "step_by",
    "windows",
    "chunks",
    "drain",
    "values",
    "keys",
];

/// `true` when the ident at `i` is a method call: preceded by `.`, followed
/// by `(` or a `::<…>(` turbofish.
pub fn is_method_call(toks: &[Tok], i: usize) -> bool {
    i >= 1 && toks[i - 1].is_punct(".") && call_open_paren(toks, i).is_some()
}

/// Index of the call's opening `(`, skipping an optional `::<…>` turbofish
/// after the ident at `i`. `None` when the ident is not followed by a call.
pub fn call_open_paren(toks: &[Tok], i: usize) -> Option<usize> {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_punct(":")) && toks.get(j + 1).is_some_and(|t| t.is_punct(":"))
    {
        j += 2;
        if !toks.get(j).is_some_and(|t| t.is_punct("<")) {
            return None;
        }
        let mut depth = 0i32;
        while j < toks.len() {
            if toks[j].is_punct("<") {
                depth += 1;
            } else if toks[j].is_punct(">") {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    toks.get(j).is_some_and(|t| t.is_punct("(")).then_some(j)
}

/// The ident texts inside a `::<…>` turbofish directly after the ident at
/// `i` (`sum::<f64>()` → `["f64"]`). Empty when there is no turbofish.
pub fn turbofish_idents(toks: &[Tok], i: usize) -> Vec<&str> {
    let mut out = Vec::new();
    let mut j = i + 1;
    if !(toks.get(j).is_some_and(|t| t.is_punct(":"))
        && toks.get(j + 1).is_some_and(|t| t.is_punct(":"))
        && toks.get(j + 2).is_some_and(|t| t.is_punct("<")))
    {
        return out;
    }
    j += 2;
    let mut depth = 0i32;
    while j < toks.len() {
        if toks[j].is_punct("<") {
            depth += 1;
        } else if toks[j].is_punct(">") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if toks[j].kind == TokKind::Ident {
            out.push(toks[j].text.as_str());
        }
        j += 1;
    }
    out
}

/// Index of the `)` matching the `(` at `open` (tracks all three bracket
/// kinds so closures and index expressions nest safely). Returns the last
/// token index when unbalanced.
pub fn matching_close(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "(" | "[" | "{" if toks[j].kind == TokKind::Punct => depth += 1,
            ")" | "]" | "}" if toks[j].kind == TokKind::Punct => {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            _ => {}
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

/// Method names along the receiver chain feeding the method call at `i`,
/// nearest first: for `xs.iter().map(f).sum()` with `i` at `sum`, returns
/// `["map", "iter"]`. Walks backwards over `.name(…)`, `.name::<…>(…)`,
/// `.field`, and one trailing `(…)` group (parenthesised receivers like
/// `(0..n).map(f)`), stopping at anything else.
pub fn receiver_chain(toks: &[Tok], i: usize) -> Vec<&str> {
    let mut names = Vec::new();
    // j sits on the token *before* the `.` that precedes the ident at `i`.
    let mut j: isize = i as isize - 2;
    while j >= 0 {
        let t = &toks[j as usize];
        if t.is_punct(")") {
            // Scan back to the matching `(`.
            let mut depth = 0i32;
            let mut k = j;
            while k >= 0 {
                match toks[k as usize].text.as_str() {
                    ")" | "]" | "}" if toks[k as usize].kind == TokKind::Punct => depth += 1,
                    "(" | "[" | "{" if toks[k as usize].kind == TokKind::Punct => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k -= 1;
            }
            if k < 0 {
                break;
            }
            // `(…)` preceded by `ident` (a call) — possibly with a turbofish
            // between — or a bare parenthesised receiver.
            let mut m = k - 1;
            // Skip a `::<…>` turbofish backwards: `>` … `<` `:` `:`.
            if m >= 0 && toks[m as usize].is_punct(">") {
                let mut d = 0i32;
                while m >= 0 {
                    if toks[m as usize].is_punct(">") {
                        d += 1;
                    } else if toks[m as usize].is_punct("<") {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    m -= 1;
                }
                m -= 1; // step off the `<` onto the `::` pair
                if m >= 0 && toks[m as usize].is_punct(":") {
                    m -= 1;
                }
                if m >= 0 && toks[m as usize].is_punct(":") {
                    m -= 1;
                }
            }
            if m >= 0 && toks[m as usize].kind == TokKind::Ident {
                names.push(toks[m as usize].text.as_str());
                // Continue only through a chained `.`: `recv.name(…)`.
                if m >= 1 && toks[m as usize - 1].is_punct(".") {
                    j = m - 2;
                    continue;
                }
                break;
            }
            // Parenthesised receiver like `(0..n)` — end of chain.
            break;
        }
        if t.kind == TokKind::Ident {
            // Field access or root variable: `self.data.iter()`.
            if j >= 1 && toks[j as usize - 1].is_punct(".") {
                j -= 2;
                continue;
            }
            break;
        }
        break;
    }
    names
}

/// Up to `limit` tokens of statement-local context *before* index `i`:
/// scans backwards, stopping at a `;` or `}` outside any bracket group (a
/// `{` does **not** stop the scan, so a function's return type stays
/// visible when the reduction is the body's tail expression).
pub fn statement_context(toks: &[Tok], i: usize, limit: usize) -> Vec<&Tok> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut j: isize = i as isize - 1;
    while j >= 0 && out.len() < limit {
        let t = &toks[j as usize];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ")" | "]" => depth += 1,
                "(" | "[" => depth -= 1,
                ";" | "}" if depth <= 0 => {
                    // Not the first statement in its block — the enclosing
                    // fn's signature (return type, param types) still
                    // carries the type evidence, so recover it separately.
                    out.extend(enclosing_signature(toks, j as usize));
                    return out;
                }
                _ => {}
            }
        }
        out.push(t);
        j -= 1;
    }
    out
}

/// Signature tokens of the fn whose body encloses index `i`: walks backwards
/// past balanced `{…}` blocks to the body's opening brace, then collects
/// from the preceding `fn` keyword up to that brace. Empty when no enclosing
/// fn is found (e.g. `i` sits at module scope).
fn enclosing_signature(toks: &[Tok], i: usize) -> Vec<&Tok> {
    let mut brace = 0i32;
    let mut j: isize = i as isize;
    while j >= 0 {
        let t = &toks[j as usize];
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "}" => brace += 1,
                "{" => {
                    brace -= 1;
                    if brace < 0 {
                        let open = j as usize;
                        let mut k: isize = j - 1;
                        while k >= 0 {
                            let s = &toks[k as usize];
                            if s.is_ident("fn") {
                                return toks[k as usize..open].iter().collect();
                            }
                            if s.kind == TokKind::Punct
                                && matches!(s.text.as_str(), ";" | "{" | "}")
                            {
                                break;
                            }
                            k -= 1;
                        }
                        return Vec::new();
                    }
                }
                _ => {}
            }
        }
        j -= 1;
    }
    Vec::new()
}

/// `true` for a numeric literal token that is a float: has a fraction, a
/// decimal exponent, or an `f32`/`f64` suffix (hex/binary/octal literals
/// never count, so `0xdead` and `0b1e1` stay integers).
pub fn is_float_literal(text: &str) -> bool {
    let lower = text.to_ascii_lowercase();
    if lower.starts_with("0x") || lower.starts_with("0b") || lower.starts_with("0o") {
        return false;
    }
    if lower.contains('.') || lower.ends_with("f32") || lower.ends_with("f64") {
        return true;
    }
    // Decimal exponent: `e` followed by an optional sign and a digit —
    // suffixes containing an `e` (`1usize`) must not count.
    let b = lower.as_bytes();
    b.iter().enumerate().any(|(i, &c)| {
        c == b'e'
            && b.get(i + 1).is_some_and(|&n| {
                n.is_ascii_digit()
                    || ((n == b'-' || n == b'+')
                        && b.get(i + 2).is_some_and(u8::is_ascii_digit))
            })
    })
}

/// Ident texts that mark a statement as floating-point arithmetic.
pub const FLOAT_HINTS: &[&str] = &["f64", "f32", "NEG_INFINITY", "INFINITY", "C64"];

/// Ident texts that mark a statement as integer arithmetic, exempting a
/// bare `.sum()` from the `float-fold` rule.
pub const INT_HINTS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// `true` when `toks` (any iterable of token refs) contains float evidence:
/// a float literal or one of [`FLOAT_HINTS`].
pub fn has_float_evidence<'a>(toks: impl IntoIterator<Item = &'a Tok>) -> bool {
    toks.into_iter().any(|t| match t.kind {
        TokKind::Number => is_float_literal(&t.text),
        TokKind::Ident => FLOAT_HINTS.contains(&t.text.as_str()),
        _ => false,
    })
}

/// `true` when `toks` contains integer evidence: an integer-suffixed
/// literal or one of [`INT_HINTS`].
pub fn has_int_evidence<'a>(toks: impl IntoIterator<Item = &'a Tok>) -> bool {
    toks.into_iter().any(|t| match t.kind {
        TokKind::Number => {
            let lower = t.text.to_ascii_lowercase();
            INT_HINTS.iter().any(|s| lower.ends_with(s)) && !is_float_literal(&t.text)
        }
        TokKind::Ident => INT_HINTS.contains(&t.text.as_str()),
        _ => false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).tokens
    }

    fn idx(toks: &[Tok], name: &str) -> usize {
        toks.iter().position(|t| t.is_ident(name)).expect(name)
    }

    #[test]
    fn method_call_shapes() {
        let t = toks("let x = v.iter().sum::<f64>();");
        let sum = idx(&t, "sum");
        assert!(is_method_call(&t, sum));
        assert_eq!(turbofish_idents(&t, sum), vec!["f64"]);
        let t2 = toks("let sum = 3; fn sum() {}");
        assert!(!is_method_call(&t2, idx(&t2, "sum")));
    }

    #[test]
    fn receiver_chain_walks_adapters_and_fields() {
        let t = toks("let x = self.data.iter().map(|v| v * v).sum::<f64>();");
        let chain = receiver_chain(&t, idx(&t, "sum"));
        assert_eq!(chain, vec!["map", "iter"]);

        let t2 = toks("let y = (0..n).map(f).sum::<f64>();");
        let chain2 = receiver_chain(&t2, idx(&t2, "sum"));
        assert_eq!(chain2, vec!["map"]);

        let t3 = toks("let z = m.sum();");
        assert!(receiver_chain(&t3, idx(&t3, "sum")).is_empty());
    }

    #[test]
    fn statement_context_stops_at_statement_boundary() {
        let t = toks("fn f() -> u64 { other(); self.counts.iter().sum() }");
        let sum = idx(&t, "sum");
        let ctx = statement_context(&t, sum, 60);
        assert!(ctx.iter().any(|tk| tk.is_ident("counts")));
        assert!(
            ctx.iter().any(|tk| tk.is_ident("u64")),
            "return type visible through the body brace"
        );
        assert!(
            !ctx.iter().any(|tk| tk.is_ident("other")),
            "previous statement excluded: {:?}",
            ctx.iter().map(|t| &t.text).collect::<Vec<_>>()
        );
    }

    #[test]
    fn statement_context_ignores_semicolons_inside_closures() {
        let t = toks("let d: f64 = xs.iter().map(|v| { let q = v; q }).sum();");
        let ctx = statement_context(&t, idx(&t, "sum"), 60);
        assert!(
            ctx.iter().any(|tk| tk.is_ident("f64")),
            "scan must cross the closure-internal `;`"
        );
    }

    #[test]
    fn float_and_int_literal_classification() {
        assert!(is_float_literal("1.5"));
        assert!(is_float_literal("1e-6"));
        assert!(is_float_literal("2f64"));
        assert!(!is_float_literal("42"));
        assert!(!is_float_literal("1usize"), "the `e` in a suffix is not an exponent");
        assert!(!is_float_literal("0xdead"));
        assert!(!is_float_literal("0b1e1"));

        let t = toks("let x: u64 = 3;");
        assert!(has_int_evidence(t.iter()));
        assert!(!has_float_evidence(t.iter()));
        let t2 = toks("let x = 0.5 * y;");
        assert!(has_float_evidence(t2.iter()));
    }
}
