//! # hqnn-lint — workspace invariant linter
//!
//! Token-level static analysis over every crate in this workspace,
//! enforcing the project's three hard invariants:
//!
//! 1. **Determinism** — numeric crates (tensor, qsim, nn, search, autodiff)
//!    must produce bitwise-identical results across runs and thread counts.
//!    Unordered collections (`hash-iter`), wall-clock reads (`wall-clock`),
//!    thread-identity branching (`thread-id`), ad-hoc float reductions
//!    (`float-fold`), weak atomic orderings (`atomic-ordering`), and
//!    unsalted RNG streams (`unsalted-rng`) are banned there.
//! 2. **Panic hygiene** — library code surfaces errors as `Result`; every
//!    deliberate panic carries a justification (`panic`).
//! 3. **Hygiene audit** — every crate root forbids unsafe code
//!    (`forbid-unsafe`), every `HQNN_*` env var is in the central registry
//!    (`env-registry`), telemetry names follow `crate.noun_verb`
//!    (`span-naming`), and every escape is live and justified
//!    (`stale-allow`).
//!
//! Rules are **deny-by-default**: a violation fails the build unless the
//! line carries an inline escape with a reason:
//!
//! ```text
//! let v = cell.get().unwrap(); // lint:allow(panic): set() precedes every get()
//! ```
//!
//! The linter is deliberately dependency-free and token-based rather than
//! AST-based: it must keep building (and gating CI) even when the rest of
//! the workspace — or the toolchain's proc-macro pipeline — is broken. The
//! flow-aware rules layer a small call-chain reader ([`parse`]) over the
//! token stream instead of pulling in a parser.
//!
//! Run it with `cargo run -p hqnn-lint` (or `make lint`); pass `--json` for
//! machine-readable output and `--list-rules` for the rule table.

#![forbid(unsafe_code)]

pub mod engine;
pub mod lexer;
pub mod parse;
pub mod rules;

pub use engine::{lint_file, lint_workspace, load_registry, Report};
pub use lexer::{lex, Lexed, Tok, TokKind};
pub use rules::{Finding, Rule, ATOMIC_CRATES, NUMERIC_CRATES, RULES, WALLCLOCK_CRATES};
