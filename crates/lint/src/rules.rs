//! The rule set: each rule is a pure function over a lexed file plus its
//! workspace context (crate name, path, whether it is binary code).
//!
//! Rules are deny-by-default: a finding is an error unless the offending
//! line carries a `// lint:allow(<rule>): <reason>` annotation. Adding a
//! rule means adding a `Rule` entry to [`RULES`] and a check arm in
//! [`check_file`] — the fixture tests in `tests/fixtures_detect.rs` will
//! refuse to pass until the new rule has a violation/allowed fixture pair.

use crate::lexer::{Lexed, TokKind};

/// Crates whose numeric results must be bitwise deterministic: unordered
/// iteration (HashMap/HashSet) is banned there.
pub const NUMERIC_CRATES: &[&str] = &["tensor", "qsim", "nn", "search", "autodiff"];

/// Crates allowed to read wall-clock time.
pub const WALLCLOCK_CRATES: &[&str] = &["telemetry", "perfbench"];

/// Crates allowed to branch on thread identity.
pub const THREAD_ID_CRATES: &[&str] = &["runtime"];

/// Crates exempt from span-name format checking (telemetry itself takes
/// caller-supplied names as arguments).
pub const SPAN_NAMING_EXEMPT: &[&str] = &["telemetry"];

/// The single file allowed to mention unregistered `HQNN_*` names: the
/// registry itself.
pub const REGISTRY_FILE: &str = "crates/telemetry/src/env.rs";

/// Static description of one rule, surfaced by `hqnn-lint --list-rules` and
/// the README table.
pub struct Rule {
    /// Stable kebab-case name used in `lint:allow(...)`.
    pub name: &'static str,
    /// One-line summary of what the rule flags.
    pub summary: &'static str,
    /// Why the invariant matters for this workspace.
    pub rationale: &'static str,
}

/// All rules, in the order findings are reported.
pub const RULES: &[Rule] = &[
    Rule {
        name: "hash-iter",
        summary: "HashMap/HashSet in numeric crates (tensor, qsim, nn, search, autodiff)",
        rationale: "unordered iteration breaks bitwise-deterministic results; use BTreeMap/Vec",
    },
    Rule {
        name: "wall-clock",
        summary: "Instant/SystemTime outside telemetry and perfbench",
        rationale: "timing reads in numeric code invite time-dependent control flow; route timing through hqnn-telemetry",
    },
    Rule {
        name: "thread-id",
        summary: "thread-identity queries (ThreadId, thread::current().id()) outside runtime",
        rationale: "logic keyed on thread identity breaks the determinism-across-HQNN_THREADS guarantee",
    },
    Rule {
        name: "panic",
        summary: "unwrap/expect/panic!/todo!/unimplemented! in non-test library code",
        rationale: "library code must surface errors as Result; annotated panics document why they are unreachable",
    },
    Rule {
        name: "forbid-unsafe",
        summary: "crate root missing #![forbid(unsafe_code)]",
        rationale: "the workspace is 100% safe Rust; forbid (not deny) makes that unoverridable downstream",
    },
    Rule {
        name: "env-registry",
        summary: "HQNN_* environment variable not present in the central registry",
        rationale: "unregistered names are invisible to env::warn_unknown_vars, so typos (HQNN_THREAD) fail silently",
    },
    Rule {
        name: "span-naming",
        summary: "telemetry span/metric name not matching crate.noun_verb (one dot, lowercase)",
        rationale: "trace tooling groups by the dotted prefix; free-form names fragment profiles",
    },
];

/// `true` if `name` is a known rule.
pub fn is_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name.
    pub rule: &'static str,
    /// Human-readable description with the fix.
    pub message: String,
}

/// Per-file context the engine computes while walking the workspace.
pub struct FileCtx<'a> {
    /// Crate directory name (`qsim`, `telemetry`, …).
    pub crate_name: &'a str,
    /// Path relative to the workspace root, forward slashes.
    pub rel_path: &'a str,
    /// `true` for binary code (`src/main.rs`, `src/bin/*`): exempt from the
    /// panic rule — binaries may crash on startup errors.
    pub is_bin: bool,
    /// `true` when this file is a crate root (`src/lib.rs`) that must carry
    /// `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// Registered HQNN_* names (lexed from [`REGISTRY_FILE`]).
    pub registry: &'a [String],
}

/// Runs every rule over one lexed file, honoring `lint:allow` annotations.
pub fn check_file(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    check_hash_iter(lexed, ctx, out);
    check_wall_clock(lexed, ctx, out);
    check_thread_id(lexed, ctx, out);
    check_panic(lexed, ctx, out);
    check_forbid_unsafe(lexed, ctx, out);
    check_env_registry(lexed, ctx, out);
    check_span_naming(lexed, ctx, out);
}

fn push(
    lexed: &Lexed,
    ctx: &FileCtx<'_>,
    out: &mut Vec<Finding>,
    rule: &'static str,
    line: u32,
    message: String,
) {
    if !lexed.allowed(rule, line) {
        out.push(Finding {
            file: ctx.rel_path.to_string(),
            line,
            rule,
            message,
        });
    }
}

fn check_hash_iter(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !NUMERIC_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for t in &lexed.tokens {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            push(
                lexed,
                ctx,
                out,
                "hash-iter",
                t.line,
                format!(
                    "{} in deterministic numeric crate `{}`; iteration order varies across runs — use BTreeMap/BTreeSet or a Vec",
                    t.text, ctx.crate_name
                ),
            );
        }
    }
}

fn check_wall_clock(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if WALLCLOCK_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for t in &lexed.tokens {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" {
            push(
                lexed,
                ctx,
                out,
                "wall-clock",
                t.line,
                format!(
                    "{} outside telemetry/perfbench; route timing through hqnn-telemetry spans so numeric code stays time-independent",
                    t.text
                ),
            );
        }
    }
}

fn check_thread_id(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if THREAD_ID_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        let hit = t.text == "ThreadId"
            || (t.text == "current" && matches(toks, i + 1, &["(", ")", ".", "id", "("]));
        if hit {
            push(
                lexed,
                ctx,
                out,
                "thread-id",
                t.line,
                format!(
                    "thread-identity query in `{}`; results must not depend on which worker ran the task — pass an explicit task index instead",
                    ctx.crate_name
                ),
            );
        }
    }
}

fn check_panic(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_bin {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        let method_call = |name: &str| {
            t.text == name && i >= 1 && toks[i - 1].is_punct(".") && matches(toks, i + 1, &["("])
        };
        let macro_call = |name: &str| t.text == name && matches(toks, i + 1, &["!"]);
        let what = if method_call("unwrap") {
            Some(".unwrap()")
        } else if method_call("expect") {
            Some(".expect()")
        } else if macro_call("panic") {
            Some("panic!")
        } else if macro_call("unimplemented") {
            Some("unimplemented!")
        } else if macro_call("todo") {
            Some("todo!")
        } else {
            None
        };
        if let Some(what) = what {
            push(
                lexed,
                ctx,
                out,
                "panic",
                t.line,
                format!(
                    "{what} in library code; return a Result, or annotate with `// lint:allow(panic): <why this is unreachable>`"
                ),
            );
        }
    }
}

fn check_forbid_unsafe(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.is_crate_root {
        return;
    }
    let toks = &lexed.tokens;
    let has = toks.iter().enumerate().any(|(i, t)| {
        t.is_punct("#")
            && matches(
                toks,
                i + 1,
                &["!", "[", "forbid", "(", "unsafe_code", ")", "]"],
            )
    });
    if !has {
        // File-scoped rule: any lint:allow(forbid-unsafe) in the file
        // suppresses (line 0 = file scope).
        if !lexed.allowed("forbid-unsafe", 0) {
            out.push(Finding {
                file: ctx.rel_path.to_string(),
                line: 1,
                rule: "forbid-unsafe",
                message: "crate root missing `#![forbid(unsafe_code)]`; every workspace crate must forbid unsafe"
                    .to_string(),
            });
        }
    }
}

fn check_env_registry(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.rel_path == REGISTRY_FILE {
        return;
    }
    for t in &lexed.tokens {
        if t.in_test || t.kind != TokKind::Str {
            continue;
        }
        if !is_env_name(&t.text) {
            continue;
        }
        if !ctx.registry.iter().any(|r| r == &t.text) {
            push(
                lexed,
                ctx,
                out,
                "env-registry",
                t.line,
                format!(
                    "`{}` is not in the central registry ({REGISTRY_FILE}); register it so warn_unknown_vars can catch typos",
                    t.text
                ),
            );
        }
    }
}

/// `true` for a plausible HQNN env-var name: `HQNN_` followed by at least
/// one `[A-Z0-9_]` character and nothing else. The bare prefix `"HQNN_"`
/// (used in scanning code) does not count.
pub fn is_env_name(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("HQNN_") else {
        return false;
    };
    !rest.is_empty()
        && rest
            .bytes()
            .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
}

fn check_span_naming(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if SPAN_NAMING_EXEMPT.contains(&ctx.crate_name) {
        return;
    }
    const EMITTERS: &[&str] = &["span", "event", "counter", "gauge", "gauge_max"];
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident || !EMITTERS.contains(&t.text.as_str()) {
            continue;
        }
        // Skip definitions (`fn span(...)`) and field positions
        // (`counter: u64`) that are not calls. A *single* preceding colon is
        // a field; `::` lexes as two `:` tokens, so path-qualified calls
        // like `telemetry::counter("…")` must still be checked.
        if i >= 1 && toks[i - 1].is_ident("fn") {
            continue;
        }
        if i >= 1 && toks[i - 1].is_punct(":") && !(i >= 2 && toks[i - 2].is_punct(":")) {
            continue;
        }
        if !matches(toks, i + 1, &["("]) {
            continue;
        }
        // First string literal among the next few tokens is the name
        // argument; calls that build names dynamically are not checked.
        let Some(name_tok) = toks[i + 2..]
            .iter()
            .take(4)
            .find(|n| n.kind == TokKind::Str)
        else {
            continue;
        };
        if !is_span_name(&name_tok.text) {
            push(
                lexed,
                ctx,
                out,
                "span-naming",
                name_tok.line,
                format!(
                    "telemetry name `{}` does not match `crate.noun_verb` (lowercase, exactly one dot)",
                    name_tok.text
                ),
            );
        }
    }
}

/// `true` for a well-formed telemetry name: `seg.seg` where each segment is
/// `[a-z][a-z0-9_]*` and there is exactly one dot.
pub fn is_span_name(s: &str) -> bool {
    let mut parts = s.split('.');
    let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
        return false;
    };
    let seg_ok = |seg: &str| {
        seg.as_bytes()
            .first()
            .is_some_and(|c| c.is_ascii_lowercase())
            && seg
                .bytes()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == b'_')
    };
    seg_ok(a) && seg_ok(b)
}

/// `true` when the tokens starting at `from` match `pattern` texts exactly
/// (kind-insensitive; used for punctuation/ident sequences).
fn matches(toks: &[crate::lexer::Tok], from: usize, pattern: &[&str]) -> bool {
    pattern
        .iter()
        .enumerate()
        .all(|(k, p)| toks.get(from + k).is_some_and(|t| t.text == *p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx<'a>(crate_name: &'a str, rel_path: &'a str, registry: &'a [String]) -> FileCtx<'a> {
        FileCtx {
            crate_name,
            rel_path,
            is_bin: false,
            is_crate_root: false,
            registry,
        }
    }

    fn run(src: &str, ctx: &FileCtx<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        check_file(&lex(src), ctx, &mut out);
        out
    }

    #[test]
    fn hash_iter_only_in_numeric_crates() {
        let src = "use std::collections::HashMap;\n";
        let reg: Vec<String> = Vec::new();
        assert_eq!(
            run(src, &ctx("qsim", "crates/qsim/src/x.rs", &reg)).len(),
            1
        );
        assert_eq!(
            run(src, &ctx("telemetry", "crates/telemetry/src/x.rs", &reg)).len(),
            0
        );
    }

    #[test]
    fn panic_rule_exempts_tests_and_bins() {
        let reg: Vec<String> = Vec::new();
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\n";
        let findings = run(src, &ctx("qsim", "crates/qsim/src/x.rs", &reg));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1);

        let mut c = ctx("qsim", "crates/qsim/src/bin/tool.rs", &reg);
        c.is_bin = true;
        assert_eq!(run(src, &c).len(), 0);
    }

    #[test]
    fn panic_rule_ignores_non_call_uses() {
        let reg: Vec<String> = Vec::new();
        // `unwrap_or` / field named panic / `panic` without `!` are fine.
        let src = "fn f() { x.unwrap_or(0); let panic = 1; s.expect_err(\"e\"); }\n";
        assert_eq!(
            run(src, &ctx("qsim", "crates/qsim/src/x.rs", &reg)).len(),
            0
        );
    }

    #[test]
    fn thread_id_sequence_detection() {
        let reg: Vec<String> = Vec::new();
        let src = "fn f() { let id = std::thread::current().id(); }\n";
        assert_eq!(run(src, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 1);
        assert_eq!(
            run(src, &ctx("runtime", "crates/runtime/src/x.rs", &reg)).len(),
            0
        );
        // `current()` without `.id()` is fine.
        let benign = "fn f() { let t = std::thread::current(); name(&t); }\n";
        assert_eq!(run(benign, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 0);
    }

    #[test]
    fn env_registry_checks_string_literals() {
        let reg = vec!["HQNN_LOG".to_string()];
        let good = "fn f() { var(\"HQNN_LOG\"); }\n";
        assert_eq!(run(good, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 0);
        let typo = "fn f() { var(\"HQNN_LGO\"); }\n";
        let findings = run(typo, &ctx("nn", "crates/nn/src/x.rs", &reg));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("HQNN_LGO"));
        // The bare prefix used by scanning code is not an env name.
        let prefix = "fn f() { s.starts_with(\"HQNN_\"); }\n";
        assert_eq!(run(prefix, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 0);
    }

    #[test]
    fn span_naming_shapes() {
        assert!(is_span_name("qsim.state_apply"));
        assert!(is_span_name("search.trial_run"));
        assert!(!is_span_name("no_dot"));
        assert!(!is_span_name("two.dots.here"));
        assert!(!is_span_name("Upper.case"));
        assert!(!is_span_name("qsim."));
        let reg: Vec<String> = Vec::new();
        let bad = "fn f(t: &Telemetry) { t.span(\"badname\"); }\n";
        assert_eq!(run(bad, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 1);
        let good = "fn f(t: &Telemetry) { t.span(\"nn.forward_pass\"); }\n";
        assert_eq!(run(good, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 0);
        // Declaring a fn named span is not a call site.
        let decl = "fn span(&self, name: &str) {}\n";
        assert_eq!(run(decl, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 0);
        // Path-qualified metric calls are call sites: `::` lexes as two `:`
        // tokens and must not be skipped as a field position.
        let qualified = "fn f() { telemetry::counter(\"BadName\", 1); }\n";
        assert_eq!(
            run(qualified, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(),
            1
        );
        let qualified_ok = "fn f() { telemetry::gauge_max(\"nn.grad_peak\", x); }\n";
        assert_eq!(
            run(qualified_ok, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(),
            0
        );
        // A lone colon before the ident (type/field position) still skips.
        let field = "fn f(kind: counter) { other(kind); }\n";
        assert_eq!(run(field, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 0);
    }

    #[test]
    fn forbid_unsafe_detects_presence_and_absence() {
        let reg: Vec<String> = Vec::new();
        let mut c = ctx("foo", "crates/foo/src/lib.rs", &reg);
        c.is_crate_root = true;
        let with = "#![forbid(unsafe_code)]\nfn f() {}\n";
        assert_eq!(run(with, &c).len(), 0);
        let without = "fn f() {}\n";
        let findings = run(without, &c);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "forbid-unsafe");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn allow_annotation_suppresses() {
        let reg: Vec<String> = Vec::new();
        let src = "fn f() { x.unwrap(); } // lint:allow(panic): invariant upheld by caller\n";
        assert_eq!(
            run(src, &ctx("qsim", "crates/qsim/src/x.rs", &reg)).len(),
            0
        );
    }

    #[test]
    fn rule_table_is_consistent() {
        assert!(is_rule("panic") && is_rule("hash-iter") && !is_rule("nonsense"));
        // Names are kebab-case and unique.
        for (i, r) in RULES.iter().enumerate() {
            assert!(r.name.bytes().all(|b| b.is_ascii_lowercase() || b == b'-'));
            assert!(!RULES[i + 1..].iter().any(|o| o.name == r.name));
        }
    }
}
