//! The rule set: each rule is a pure function over a lexed file plus its
//! workspace context (crate name, path, whether it is binary code).
//!
//! Rules are deny-by-default: a finding is an error unless the offending
//! line carries a `// lint:allow(<rule>): <reason>` annotation. Adding a
//! rule means adding a `Rule` entry to [`RULES`] and a check arm in
//! [`check_file`] — the fixture tests in `tests/fixtures_detect.rs` will
//! refuse to pass until the new rule has a violation/allowed fixture pair.

use crate::lexer::{Lexed, TokKind};
use crate::parse;

/// Crates whose numeric results must be bitwise deterministic: unordered
/// iteration (HashMap/HashSet) and ad-hoc float reductions are banned there.
pub const NUMERIC_CRATES: &[&str] = &["tensor", "qsim", "nn", "search", "autodiff"];

/// Crates allowed to read wall-clock time.
pub const WALLCLOCK_CRATES: &[&str] = &["telemetry", "perfbench"];

/// Crates allowed to branch on thread identity.
pub const THREAD_ID_CRATES: &[&str] = &["runtime"];

/// Crates allowed to use `Ordering::Relaxed` / `Ordering::AcqRel`: the two
/// whose atomics are *infrastructure* (work-stealing cursors, allocation
/// counters) rather than observable program state. Everywhere else the
/// weakest permitted orderings are `Acquire`/`Release`/`SeqCst`.
pub const ATOMIC_CRATES: &[&str] = &["runtime", "alloc"];

/// Crates where RNG construction must flow from a salt-derived seed — the
/// numeric crates plus the layers that build models and datasets from the
/// study's per-combo `(level, rep, combo)` salts.
pub const RNG_CRATES: &[&str] = &["tensor", "qsim", "nn", "search", "autodiff", "core", "data"];

/// Files exempt from `float-fold`: the sanctioned ordered-reduction helpers
/// themselves (they *are* the left folds everything else must call).
pub const ORDERED_FOLD_FILES: &[&str] = &["crates/tensor/src/fold.rs"];

/// Files exempt from `unsalted-rng`: the RNG implementation itself.
pub const RNG_IMPL_FILES: &[&str] = &["crates/tensor/src/rng.rs"];

/// Rules whose `lint:allow` escape suppresses anywhere in the file rather
/// than on one line (the finding has no meaningful line to sit on).
pub const FILE_SCOPED_RULES: &[&str] = &["forbid-unsafe"];

/// Crates exempt from span-name format checking (telemetry itself takes
/// caller-supplied names as arguments).
pub const SPAN_NAMING_EXEMPT: &[&str] = &["telemetry"];

/// The single file allowed to mention unregistered `HQNN_*` names: the
/// registry itself.
pub const REGISTRY_FILE: &str = "crates/telemetry/src/env.rs";

/// Static description of one rule, surfaced by `hqnn-lint --list-rules` and
/// the README table.
pub struct Rule {
    /// Stable kebab-case name used in `lint:allow(...)`.
    pub name: &'static str,
    /// One-line summary of what the rule flags.
    pub summary: &'static str,
    /// Why the invariant matters for this workspace.
    pub rationale: &'static str,
}

/// All rules, in the order findings are reported.
pub const RULES: &[Rule] = &[
    Rule {
        name: "hash-iter",
        summary: "HashMap/HashSet in numeric crates (tensor, qsim, nn, search, autodiff)",
        rationale: "unordered iteration breaks bitwise-deterministic results; use BTreeMap/Vec",
    },
    Rule {
        name: "wall-clock",
        summary: "Instant/SystemTime outside telemetry and perfbench",
        rationale: "timing reads in numeric code invite time-dependent control flow; route timing through hqnn-telemetry",
    },
    Rule {
        name: "thread-id",
        summary: "thread-identity queries (ThreadId, thread::current().id()) outside runtime",
        rationale: "logic keyed on thread identity breaks the determinism-across-HQNN_THREADS guarantee",
    },
    Rule {
        name: "panic",
        summary: "unwrap/expect/panic!/todo!/unimplemented! in non-test library code",
        rationale: "library code must surface errors as Result; annotated panics document why they are unreachable",
    },
    Rule {
        name: "forbid-unsafe",
        summary: "crate root missing #![forbid(unsafe_code)]",
        rationale: "the workspace is 100% safe Rust; forbid (not deny) makes that unoverridable downstream",
    },
    Rule {
        name: "env-registry",
        summary: "HQNN_* environment variable not present in the central registry",
        rationale: "unregistered names are invisible to env::warn_unknown_vars, so typos (HQNN_THREAD) fail silently",
    },
    Rule {
        name: "span-naming",
        summary: "telemetry span/metric name not matching crate.noun_verb (one dot, lowercase)",
        rationale: "trace tooling groups by the dotted prefix; free-form names fragment profiles",
    },
    Rule {
        name: "float-fold",
        summary: "ad-hoc .sum()/fold/reduce over float iterators in numeric crates",
        rationale: "float addition is non-associative, so re-associated reductions silently break byte-identical results; use hqnn_tensor::fold::ordered_* (or annotate an integer sum with ::<u64>-style turbofish)",
    },
    Rule {
        name: "atomic-ordering",
        summary: "Ordering::Relaxed/AcqRel outside hqnn-runtime and hqnn-alloc",
        rationale: "relaxed atomics make cross-thread visibility schedule-dependent; observable state uses SeqCst (or Acquire/Release), leaving weak orderings to the runtime's own cursors",
    },
    Rule {
        name: "unsalted-rng",
        summary: "RNG built from a literal seed or an entropy source in salted crates",
        rationale: "every stream must flow from the study's salt derivation (SeededRng::split or a config seed) so outcomes stay schedule- and replay-independent",
    },
    Rule {
        name: "stale-allow",
        summary: "lint:allow naming an unknown rule, suppressing nothing, or missing a reason",
        rationale: "dead escapes hide real regressions: an allow that no longer fires would silently swallow the next genuine violation on its line",
    },
];

/// `true` if `name` is a known rule.
pub fn is_rule(name: &str) -> bool {
    RULES.iter().any(|r| r.name == name)
}

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Path relative to the workspace root.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule name.
    pub rule: &'static str,
    /// Human-readable description with the fix.
    pub message: String,
}

/// Per-file context the engine computes while walking the workspace.
pub struct FileCtx<'a> {
    /// Crate directory name (`qsim`, `telemetry`, …).
    pub crate_name: &'a str,
    /// Path relative to the workspace root, forward slashes.
    pub rel_path: &'a str,
    /// `true` for binary code (`src/main.rs`, `src/bin/*`): exempt from the
    /// panic rule — binaries may crash on startup errors.
    pub is_bin: bool,
    /// `true` when this file is a crate root (`src/lib.rs`) that must carry
    /// `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// Registered HQNN_* names (lexed from [`REGISTRY_FILE`]).
    pub registry: &'a [String],
}

/// Runs every rule over one lexed file, honoring `lint:allow` annotations.
///
/// Raw findings are collected first, then [`apply_allows`] filters them and
/// audits the escapes themselves — an allow naming an unknown rule, an allow
/// whose rule no longer fires on its line, or an allow without a reason is a
/// `stale-allow` finding.
pub fn check_file(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let mut raw = Vec::new();
    check_hash_iter(lexed, ctx, &mut raw);
    check_wall_clock(lexed, ctx, &mut raw);
    check_thread_id(lexed, ctx, &mut raw);
    check_panic(lexed, ctx, &mut raw);
    check_forbid_unsafe(lexed, ctx, &mut raw);
    check_env_registry(lexed, ctx, &mut raw);
    check_span_naming(lexed, ctx, &mut raw);
    check_float_fold(lexed, ctx, &mut raw);
    check_atomic_ordering(lexed, ctx, &mut raw);
    check_unsalted_rng(lexed, ctx, &mut raw);
    apply_allows(lexed, ctx, raw, out);
}

/// Filters `raw` findings through the file's `lint:allow` annotations,
/// scoping each escape to the rules it names, and emits `stale-allow`
/// findings for escapes that are unknown, unused, or reason-less.
pub fn apply_allows(lexed: &Lexed, ctx: &FileCtx<'_>, raw: Vec<Finding>, out: &mut Vec<Finding>) {
    // used[allow_index] — per-rule-name usage so a multi-rule escape is
    // audited per name, not as a block.
    let mut used: Vec<Vec<bool>> = lexed
        .allows
        .iter()
        .map(|a| vec![false; a.rules.len()])
        .collect();
    for f in raw {
        let suppressed = lexed.allows.iter().enumerate().any(|(ai, a)| {
            let scope_ok = FILE_SCOPED_RULES.contains(&f.rule) || a.applies_to == f.line;
            if !scope_ok {
                return false;
            }
            match a.rules.iter().position(|r| r == f.rule) {
                Some(ri) => {
                    used[ai][ri] = true;
                    true
                }
                None => false,
            }
        });
        if !suppressed {
            out.push(f);
        }
    }
    // Audit the escapes themselves. `stale-allow` findings sit on the
    // comment's own line and can only be suppressed by a `stale-allow`
    // escape there (those escapes are exempt from the unused audit to keep
    // the audit from chasing its own tail).
    for (ai, a) in lexed.allows.iter().enumerate() {
        let mut stale: Vec<String> = Vec::new();
        for (ri, rule) in a.rules.iter().enumerate() {
            if !is_rule(rule) {
                stale.push(format!(
                    "`{rule}` is not a rule (see --list-rules); fix or remove the escape"
                ));
            } else if rule != "stale-allow" && !used[ai][ri] {
                stale.push(format!(
                    "escape for `{rule}` suppresses nothing on its line; the code it covered is gone — remove it"
                ));
            }
        }
        if !a.has_reason {
            stale.push(
                "escape has no reason; write `lint:allow(<rule>): <why this is sound>`"
                    .to_string(),
            );
        }
        // A stale finding about escape `a` is suppressed by any
        // `lint:allow(stale-allow)` on the same comment line or covering the
        // same code line (stacked standalone comments share an applies_to).
        let suppressed = lexed.allows.iter().any(|b| {
            b.rules.iter().any(|r| r == "stale-allow")
                && (b.line == a.line || (a.applies_to != 0 && b.applies_to == a.applies_to))
        });
        for message in stale {
            if !suppressed {
                out.push(Finding {
                    file: ctx.rel_path.to_string(),
                    line: a.line,
                    rule: "stale-allow",
                    message,
                });
            }
        }
    }
}

fn push(
    ctx: &FileCtx<'_>,
    out: &mut Vec<Finding>,
    rule: &'static str,
    line: u32,
    message: String,
) {
    out.push(Finding {
        file: ctx.rel_path.to_string(),
        line,
        rule,
        message,
    });
}

fn check_hash_iter(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !NUMERIC_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for t in &lexed.tokens {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "HashMap" || t.text == "HashSet" {
            push(
                ctx,
                out,
                "hash-iter",
                t.line,
                format!(
                    "{} in deterministic numeric crate `{}`; iteration order varies across runs — use BTreeMap/BTreeSet or a Vec",
                    t.text, ctx.crate_name
                ),
            );
        }
    }
}

fn check_wall_clock(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if WALLCLOCK_CRATES.contains(&ctx.crate_name) {
        return;
    }
    for t in &lexed.tokens {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        if t.text == "Instant" || t.text == "SystemTime" {
            push(
                ctx,
                out,
                "wall-clock",
                t.line,
                format!(
                    "{} outside telemetry/perfbench; route timing through hqnn-telemetry spans so numeric code stays time-independent",
                    t.text
                ),
            );
        }
    }
}

fn check_thread_id(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if THREAD_ID_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        let hit = t.text == "ThreadId"
            || (t.text == "current" && matches(toks, i + 1, &["(", ")", ".", "id", "("]));
        if hit {
            push(
                ctx,
                out,
                "thread-id",
                t.line,
                format!(
                    "thread-identity query in `{}`; results must not depend on which worker ran the task — pass an explicit task index instead",
                    ctx.crate_name
                ),
            );
        }
    }
}

fn check_panic(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.is_bin {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        let method_call = |name: &str| {
            t.text == name && i >= 1 && toks[i - 1].is_punct(".") && matches(toks, i + 1, &["("])
        };
        let macro_call = |name: &str| t.text == name && matches(toks, i + 1, &["!"]);
        let what = if method_call("unwrap") {
            Some(".unwrap()")
        } else if method_call("expect") {
            Some(".expect()")
        } else if macro_call("panic") {
            Some("panic!")
        } else if macro_call("unimplemented") {
            Some("unimplemented!")
        } else if macro_call("todo") {
            Some("todo!")
        } else {
            None
        };
        if let Some(what) = what {
            push(
                ctx,
                out,
                "panic",
                t.line,
                format!(
                    "{what} in library code; return a Result, or annotate with `// lint:allow(panic): <why this is unreachable>`"
                ),
            );
        }
    }
}

fn check_forbid_unsafe(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !ctx.is_crate_root {
        return;
    }
    let toks = &lexed.tokens;
    let has = toks.iter().enumerate().any(|(i, t)| {
        t.is_punct("#")
            && matches(
                toks,
                i + 1,
                &["!", "[", "forbid", "(", "unsafe_code", ")", "]"],
            )
    });
    if !has {
        // File-scoped rule: apply_allows suppresses on any line.
        push(
            ctx,
            out,
            "forbid-unsafe",
            1,
            "crate root missing `#![forbid(unsafe_code)]`; every workspace crate must forbid unsafe"
                .to_string(),
        );
    }
}

fn check_env_registry(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ctx.rel_path == REGISTRY_FILE {
        return;
    }
    for t in &lexed.tokens {
        if t.in_test || t.kind != TokKind::Str {
            continue;
        }
        if !is_env_name(&t.text) {
            continue;
        }
        if !ctx.registry.iter().any(|r| r == &t.text) {
            push(
                ctx,
                out,
                "env-registry",
                t.line,
                format!(
                    "`{}` is not in the central registry ({REGISTRY_FILE}); register it so warn_unknown_vars can catch typos",
                    t.text
                ),
            );
        }
    }
}

/// `true` for a plausible HQNN env-var name: `HQNN_` followed by at least
/// one `[A-Z0-9_]` character and nothing else. The bare prefix `"HQNN_"`
/// (used in scanning code) does not count.
pub fn is_env_name(s: &str) -> bool {
    let Some(rest) = s.strip_prefix("HQNN_") else {
        return false;
    };
    !rest.is_empty()
        && rest
            .bytes()
            .all(|b| b.is_ascii_uppercase() || b.is_ascii_digit() || b == b'_')
}

fn check_span_naming(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if SPAN_NAMING_EXEMPT.contains(&ctx.crate_name) {
        return;
    }
    const EMITTERS: &[&str] = &["span", "event", "counter", "gauge", "gauge_max"];
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident || !EMITTERS.contains(&t.text.as_str()) {
            continue;
        }
        // Skip definitions (`fn span(...)`) and field positions
        // (`counter: u64`) that are not calls. A *single* preceding colon is
        // a field; `::` lexes as two `:` tokens, so path-qualified calls
        // like `telemetry::counter("…")` must still be checked.
        if i >= 1 && toks[i - 1].is_ident("fn") {
            continue;
        }
        if i >= 1 && toks[i - 1].is_punct(":") && !(i >= 2 && toks[i - 2].is_punct(":")) {
            continue;
        }
        if !matches(toks, i + 1, &["("]) {
            continue;
        }
        // First string literal among the next few tokens is the name
        // argument; calls that build names dynamically are not checked.
        let Some(name_tok) = toks[i + 2..]
            .iter()
            .take(4)
            .find(|n| n.kind == TokKind::Str)
        else {
            continue;
        };
        if !is_span_name(&name_tok.text) {
            push(
                ctx,
                out,
                "span-naming",
                name_tok.line,
                format!(
                    "telemetry name `{}` does not match `crate.noun_verb` (lowercase, exactly one dot)",
                    name_tok.text
                ),
            );
        }
    }
}

fn check_float_fold(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !NUMERIC_CRATES.contains(&ctx.crate_name) || ORDERED_FOLD_FILES.contains(&ctx.rel_path) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text.as_str();
        if !(name == "sum" || name == "fold" || name == "reduce") {
            continue;
        }
        if !parse::is_method_call(toks, i) {
            continue;
        }
        let turbofish = parse::turbofish_idents(toks, i);
        let chain = parse::receiver_chain(toks, i);
        let chain_iterates = chain
            .iter()
            .any(|m| parse::ITERATOR_ADAPTERS.contains(m));
        if name == "sum" {
            if turbofish.iter().any(|id| *id == "f64" || *id == "f32") {
                push(
                    ctx,
                    out,
                    "float-fold",
                    t.line,
                    format!(
                        ".sum::<{}>() re-associates under par_map; use hqnn_tensor::fold::ordered_sum_f64 so the grouping is pinned left-to-right",
                        turbofish.join(", ")
                    ),
                );
                continue;
            }
            if !turbofish.is_empty() {
                continue; // explicitly integer (or exotic) — fine
            }
            if !chain_iterates {
                continue; // `m.sum()` — a container method, not a reduction
            }
            // Bare `.sum()` over an iterator: its element type is invisible
            // at token level, so demand visible integer evidence; ambiguity
            // is a violation (annotate or use the ordered helpers).
            let stmt = parse::statement_context(toks, i, 60);
            // Integer evidence wins over float evidence: a statement-local
            // `: u64` ascription is deliberate, while a stray `f64` may come
            // from the enclosing signature (e.g. an int count summed inside
            // a fn returning f64).
            if parse::has_int_evidence(stmt.iter().copied()) {
                continue;
            }
            if parse::has_float_evidence(stmt.iter().copied()) {
                push(
                    ctx,
                    out,
                    "float-fold",
                    t.line,
                    "float .sum() over an iterator re-associates under par_map; use hqnn_tensor::fold::ordered_sum_f64".to_string(),
                );
            } else {
                push(
                    ctx,
                    out,
                    "float-fold",
                    t.line,
                    "bare .sum() with no visible element type; annotate an integer sum with ::<u64>-style turbofish, or use hqnn_tensor::fold for floats".to_string(),
                );
            }
            continue;
        }
        // fold / reduce: flag only reductions whose arguments carry float
        // evidence (identity literal, f64/f32, ±INFINITY, complex C64) —
        // structural folds over non-numeric accumulators are fine.
        if !chain_iterates {
            continue;
        }
        let Some(open) = parse::call_open_paren(toks, i) else {
            continue;
        };
        let close = parse::matching_close(toks, open);
        if parse::has_float_evidence(toks[open..=close].iter()) {
            push(
                ctx,
                out,
                "float-fold",
                t.line,
                format!(
                    ".{name}() over float values re-associates under par_map; use the left folds in hqnn_tensor::fold (ordered_sum / ordered_max_f64 / …)"
                ),
            );
        }
    }
}

fn check_atomic_ordering(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if ATOMIC_CRATES.contains(&ctx.crate_name) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        if t.text != "Relaxed" && t.text != "AcqRel" {
            continue;
        }
        // Only the path form `Ordering::Relaxed` counts — a stray ident
        // named Relaxed (or a doc string) is not an ordering choice.
        let is_path = i >= 3
            && toks[i - 1].is_punct(":")
            && toks[i - 2].is_punct(":")
            && toks[i - 3].is_ident("Ordering");
        if !is_path {
            continue;
        }
        push(
            ctx,
            out,
            "atomic-ordering",
            t.line,
            format!(
                "Ordering::{} in `{}`; weak orderings are reserved for runtime/alloc infrastructure — use SeqCst (or Acquire/Release), or annotate a proven-hot flag load",
                t.text, ctx.crate_name
            ),
        );
    }
}

fn check_unsalted_rng(lexed: &Lexed, ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !RNG_CRATES.contains(&ctx.crate_name) || RNG_IMPL_FILES.contains(&ctx.rel_path) {
        return;
    }
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        if t.in_test || t.kind != TokKind::Ident {
            continue;
        }
        // Entropy-based construction is never deterministic.
        if (t.text == "from_entropy" || t.text == "thread_rng" || t.text == "OsRng")
            && matches(toks, i + 1, &["("])
        {
            push(
                ctx,
                out,
                "unsalted-rng",
                t.line,
                format!(
                    "`{}` draws nondeterministic entropy; every stream must derive from the study seed via SeededRng::split",
                    t.text
                ),
            );
            continue;
        }
        // `SeededRng::new(<literal>)`: a hard-coded seed bypasses the salt
        // derivation, so two call sites can silently share a stream.
        if t.text == "new"
            && i >= 3
            && toks[i - 1].is_punct(":")
            && toks[i - 2].is_punct(":")
            && toks[i - 3].is_ident("SeededRng")
        {
            let Some(open) = parse::call_open_paren(toks, i) else {
                continue;
            };
            let close = parse::matching_close(toks, open);
            let args = &toks[open + 1..close];
            let literal_only = !args.is_empty()
                && args
                    .iter()
                    .all(|a| a.kind == TokKind::Number || a.is_punct("-") || a.is_punct("+"));
            if literal_only {
                push(
                    ctx,
                    out,
                    "unsalted-rng",
                    t.line,
                    "SeededRng::new(<literal>) does not flow from the salt derivation; pass a config seed or derive the stream with .split(salt)".to_string(),
                );
            }
        }
    }
}

/// `true` for a well-formed telemetry name: `seg.seg` where each segment is
/// `[a-z][a-z0-9_]*` and there is exactly one dot.
pub fn is_span_name(s: &str) -> bool {
    let mut parts = s.split('.');
    let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
        return false;
    };
    let seg_ok = |seg: &str| {
        seg.as_bytes()
            .first()
            .is_some_and(|c| c.is_ascii_lowercase())
            && seg
                .bytes()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == b'_')
    };
    seg_ok(a) && seg_ok(b)
}

/// `true` when the tokens starting at `from` match `pattern` texts exactly
/// (kind-insensitive; used for punctuation/ident sequences).
fn matches(toks: &[crate::lexer::Tok], from: usize, pattern: &[&str]) -> bool {
    pattern
        .iter()
        .enumerate()
        .all(|(k, p)| toks.get(from + k).is_some_and(|t| t.text == *p))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ctx<'a>(crate_name: &'a str, rel_path: &'a str, registry: &'a [String]) -> FileCtx<'a> {
        FileCtx {
            crate_name,
            rel_path,
            is_bin: false,
            is_crate_root: false,
            registry,
        }
    }

    fn run(src: &str, ctx: &FileCtx<'_>) -> Vec<Finding> {
        let mut out = Vec::new();
        check_file(&lex(src), ctx, &mut out);
        out
    }

    #[test]
    fn hash_iter_only_in_numeric_crates() {
        let src = "use std::collections::HashMap;\n";
        let reg: Vec<String> = Vec::new();
        assert_eq!(
            run(src, &ctx("qsim", "crates/qsim/src/x.rs", &reg)).len(),
            1
        );
        assert_eq!(
            run(src, &ctx("telemetry", "crates/telemetry/src/x.rs", &reg)).len(),
            0
        );
    }

    #[test]
    fn panic_rule_exempts_tests_and_bins() {
        let reg: Vec<String> = Vec::new();
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\n";
        let findings = run(src, &ctx("qsim", "crates/qsim/src/x.rs", &reg));
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 1);

        let mut c = ctx("qsim", "crates/qsim/src/bin/tool.rs", &reg);
        c.is_bin = true;
        assert_eq!(run(src, &c).len(), 0);
    }

    #[test]
    fn panic_rule_ignores_non_call_uses() {
        let reg: Vec<String> = Vec::new();
        // `unwrap_or` / field named panic / `panic` without `!` are fine.
        let src = "fn f() { x.unwrap_or(0); let panic = 1; s.expect_err(\"e\"); }\n";
        assert_eq!(
            run(src, &ctx("qsim", "crates/qsim/src/x.rs", &reg)).len(),
            0
        );
    }

    #[test]
    fn thread_id_sequence_detection() {
        let reg: Vec<String> = Vec::new();
        let src = "fn f() { let id = std::thread::current().id(); }\n";
        assert_eq!(run(src, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 1);
        assert_eq!(
            run(src, &ctx("runtime", "crates/runtime/src/x.rs", &reg)).len(),
            0
        );
        // `current()` without `.id()` is fine.
        let benign = "fn f() { let t = std::thread::current(); name(&t); }\n";
        assert_eq!(run(benign, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 0);
    }

    #[test]
    fn env_registry_checks_string_literals() {
        let reg = vec!["HQNN_LOG".to_string()];
        let good = "fn f() { var(\"HQNN_LOG\"); }\n";
        assert_eq!(run(good, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 0);
        let typo = "fn f() { var(\"HQNN_LGO\"); }\n";
        let findings = run(typo, &ctx("nn", "crates/nn/src/x.rs", &reg));
        assert_eq!(findings.len(), 1);
        assert!(findings[0].message.contains("HQNN_LGO"));
        // The bare prefix used by scanning code is not an env name.
        let prefix = "fn f() { s.starts_with(\"HQNN_\"); }\n";
        assert_eq!(run(prefix, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 0);
    }

    #[test]
    fn span_naming_shapes() {
        assert!(is_span_name("qsim.state_apply"));
        assert!(is_span_name("search.trial_run"));
        assert!(!is_span_name("no_dot"));
        assert!(!is_span_name("two.dots.here"));
        assert!(!is_span_name("Upper.case"));
        assert!(!is_span_name("qsim."));
        let reg: Vec<String> = Vec::new();
        let bad = "fn f(t: &Telemetry) { t.span(\"badname\"); }\n";
        assert_eq!(run(bad, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 1);
        let good = "fn f(t: &Telemetry) { t.span(\"nn.forward_pass\"); }\n";
        assert_eq!(run(good, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 0);
        // Declaring a fn named span is not a call site.
        let decl = "fn span(&self, name: &str) {}\n";
        assert_eq!(run(decl, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 0);
        // Path-qualified metric calls are call sites: `::` lexes as two `:`
        // tokens and must not be skipped as a field position.
        let qualified = "fn f() { telemetry::counter(\"BadName\", 1); }\n";
        assert_eq!(
            run(qualified, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(),
            1
        );
        let qualified_ok = "fn f() { telemetry::gauge_max(\"nn.grad_peak\", x); }\n";
        assert_eq!(
            run(qualified_ok, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(),
            0
        );
        // A lone colon before the ident (type/field position) still skips.
        let field = "fn f(kind: counter) { other(kind); }\n";
        assert_eq!(run(field, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 0);
    }

    #[test]
    fn forbid_unsafe_detects_presence_and_absence() {
        let reg: Vec<String> = Vec::new();
        let mut c = ctx("foo", "crates/foo/src/lib.rs", &reg);
        c.is_crate_root = true;
        let with = "#![forbid(unsafe_code)]\nfn f() {}\n";
        assert_eq!(run(with, &c).len(), 0);
        let without = "fn f() {}\n";
        let findings = run(without, &c);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "forbid-unsafe");
        assert_eq!(findings[0].line, 1);
    }

    #[test]
    fn allow_annotation_suppresses() {
        let reg: Vec<String> = Vec::new();
        let src = "fn f() { x.unwrap(); } // lint:allow(panic): invariant upheld by caller\n";
        assert_eq!(
            run(src, &ctx("qsim", "crates/qsim/src/x.rs", &reg)).len(),
            0
        );
    }

    #[test]
    fn float_fold_flags_float_reductions_only() {
        let reg: Vec<String> = Vec::new();
        let qsim = ctx("qsim", "crates/qsim/src/x.rs", &reg);
        let hits = |src: &str| {
            run(src, &qsim)
                .iter()
                .filter(|f| f.rule == "float-fold")
                .count()
        };
        assert_eq!(hits("fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }"), 1);
        assert_eq!(
            hits("fn f(v: &[f64]) -> f64 { v.iter().fold(0.0, |a, b| a + b) }"),
            1
        );
        assert_eq!(
            hits("fn f(v: &[X]) -> X { v.iter().map(|x| x.w()).sum() }"),
            1,
            "ambiguous bare sum over an iterator is a violation"
        );
        assert_eq!(hits("fn f(v: &[u64]) -> u64 { v.iter().sum::<u64>() }"), 0);
        assert_eq!(
            hits("fn f(v: &[u64]) -> u64 { let t: u64 = v.iter().sum(); t }"),
            0
        );
        assert_eq!(hits("fn f(m: &Matrix) -> f64 { m.sum() }"), 0, "container method");
        // Out-of-scope crate and the sanctioned helper file are exempt.
        let telemetry = ctx("telemetry", "crates/telemetry/src/x.rs", &reg);
        assert_eq!(
            run("fn f(v: &[f64]) -> f64 { v.iter().sum::<f64>() }", &telemetry).len(),
            0
        );
        let fold_file = ctx("tensor", "crates/tensor/src/fold.rs", &reg);
        assert_eq!(
            run(
                "pub fn ordered_sum_f64(it: I) -> f64 { it.fold(0.0, |a, x| a + x) }",
                &fold_file
            )
            .len(),
            0
        );
    }

    #[test]
    fn atomic_ordering_scoped_to_infrastructure_crates() {
        let reg: Vec<String> = Vec::new();
        let src = "fn f(c: &AtomicUsize) { c.fetch_add(1, Ordering::Relaxed); }\n";
        assert_eq!(run(src, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 1);
        assert_eq!(
            run(src, &ctx("runtime", "crates/runtime/src/x.rs", &reg)).len(),
            0
        );
        assert_eq!(
            run(src, &ctx("alloc", "crates/alloc/src/x.rs", &reg)).len(),
            0
        );
        let acqrel = "fn f(c: &AtomicUsize) { c.swap(1, Ordering::AcqRel); }\n";
        assert_eq!(run(acqrel, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 1);
        let seqcst = "fn f(c: &AtomicUsize) { c.load(Ordering::SeqCst); }\n";
        assert_eq!(run(seqcst, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 0);
        // A stray ident named Relaxed without the Ordering:: path is fine.
        let stray = "fn f() { let Relaxed = 1; }\n";
        assert_eq!(run(stray, &ctx("nn", "crates/nn/src/x.rs", &reg)).len(), 0);
    }

    #[test]
    fn unsalted_rng_requires_flowing_seeds() {
        let reg: Vec<String> = Vec::new();
        let search = ctx("search", "crates/search/src/x.rs", &reg);
        assert_eq!(run("fn f() { SeededRng::new(42); }", &search).len(), 1);
        assert_eq!(run("fn f() { SeededRng::from_entropy(); }", &search).len(), 1);
        assert_eq!(run("fn f(s: u64) { SeededRng::new(s); }", &search).len(), 0);
        assert_eq!(
            run("fn f(c: &Cfg) { SeededRng::new(c.seed).split(3); }", &search).len(),
            0,
            "salt flows from config"
        );
        // Out-of-scope crates (telemetry) and the RNG impl file are exempt.
        assert_eq!(
            run(
                "fn f() { SeededRng::new(42); }",
                &ctx("telemetry", "crates/telemetry/src/x.rs", &reg)
            )
            .len(),
            0
        );
        assert_eq!(
            run(
                "fn f() { SeededRng::new(42); }",
                &ctx("tensor", "crates/tensor/src/rng.rs", &reg)
            )
            .len(),
            0
        );
    }

    #[test]
    fn stale_allow_audits_escapes() {
        let reg: Vec<String> = Vec::new();
        let qsim = ctx("qsim", "crates/qsim/src/x.rs", &reg);
        // Unknown rule name.
        let unknown = "// lint:allow(no-such-rule): whatever\nfn f() {}\n";
        let findings = run(unknown, &qsim);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "stale-allow");
        assert_eq!(findings[0].line, 1, "finding sits on the comment line");
        // Live escape with a reason: clean.
        let live = "fn f() { x.unwrap(); } // lint:allow(panic): caller guarantees Some\n";
        assert_eq!(run(live, &qsim).len(), 0);
        // Escape whose violation is gone: stale.
        let dead = "fn f() { x.unwrap_or(0); } // lint:allow(panic): outdated\n";
        let findings = run(dead, &qsim);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("suppresses nothing"));
        // Live escape without a reason: flagged.
        let bare = "fn f() { x.unwrap(); } // lint:allow(panic)\n";
        let findings = run(bare, &qsim);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("no reason"));
        // Multi-rule escape audited per name: panic live, hash-iter dead.
        let multi = "fn f() { x.unwrap(); } // lint:allow(panic, hash-iter): both named\n";
        let findings = run(multi, &qsim);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].message.contains("hash-iter"));
    }

    #[test]
    fn allow_scope_is_per_rule_on_shared_lines() {
        let reg: Vec<String> = Vec::new();
        let nn = ctx("nn", "crates/nn/src/x.rs", &reg);
        // Instant and unwrap on one line; escape names only panic.
        let src =
            "fn f() { let t = Instant::now(); x.unwrap(); } // lint:allow(panic): scoped\n";
        let findings = run(src, &nn);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, "wall-clock");
    }

    #[test]
    fn rule_table_is_consistent() {
        assert!(is_rule("panic") && is_rule("hash-iter") && !is_rule("nonsense"));
        // Names are kebab-case and unique.
        for (i, r) in RULES.iter().enumerate() {
            assert!(r.name.bytes().all(|b| b.is_ascii_lowercase() || b == b'-'));
            assert!(!RULES[i + 1..].iter().any(|o| o.name == r.name));
        }
    }
}
