//! Workspace walker: discovers crates, lexes every source file under
//! `crates/*/src`, runs the rule set, and renders reports.
//!
//! Only `src/` subtrees are scanned — `tests/`, `benches/`, and `examples/`
//! are integration/test code where the invariants (panic hygiene,
//! determinism) do not apply, and scanning them would also pull the lint
//! crate's own violation fixtures into the workspace report. `vendor/` is
//! never touched: those are vendored third-party stubs we do not own.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::lexer::{lex, TokKind};
use crate::rules::{check_file, is_env_name, FileCtx, Finding, REGISTRY_FILE};

/// Result of linting a workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Number of source files scanned.
    pub files_scanned: usize,
    /// Crates visited, in scan order.
    pub crates: Vec<String>,
}

impl Report {
    /// `true` when the workspace is clean.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Renders the human-readable report (one line per finding).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.rule, f.message
            ));
        }
        out.push_str(&format!(
            "{} finding(s) in {} file(s) across {} crate(s)\n",
            self.findings.len(),
            self.files_scanned,
            self.crates.len()
        ));
        out
    }

    /// Renders the report as JSON for machine consumption (CI annotations).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\"findings\":[");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"file\":{},\"line\":{},\"rule\":{},\"message\":{}}}",
                json_str(&f.file),
                f.line,
                json_str(f.rule),
                json_str(&f.message)
            ));
        }
        out.push_str(&format!(
            "],\"files_scanned\":{},\"crates\":[",
            self.files_scanned
        ));
        for (i, c) in self.crates.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&json_str(c));
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string as a JSON string literal (zero-dependency writer).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Lints every workspace crate under `root/crates`.
pub fn lint_workspace(root: &Path) -> io::Result<Report> {
    let registry = load_registry(root)?;
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("src").is_dir())
        .collect();
    crate_dirs.sort();

    let mut report = Report::default();
    for crate_dir in &crate_dirs {
        let crate_name = crate_dir
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default()
            .to_string();
        report.crates.push(crate_name.clone());
        let src = crate_dir.join("src");
        let mut files = Vec::new();
        collect_rs_files(&src, &mut files)?;
        files.sort();
        for file in &files {
            let source = fs::read_to_string(file)?;
            let rel_path = rel(root, file);
            let in_bin_dir = file
                .strip_prefix(&src)
                .ok()
                .and_then(|p| p.components().next())
                .is_some_and(|c| c.as_os_str() == "bin");
            let ctx = FileCtx {
                crate_name: &crate_name,
                rel_path: &rel_path,
                is_bin: in_bin_dir || file.file_name().is_some_and(|n| n == "main.rs"),
                is_crate_root: rel_path == format!("crates/{crate_name}/src/lib.rs"),
                registry: &registry,
            };
            let lexed = lex(&source);
            check_file(&lexed, &ctx, &mut report.findings);
            report.files_scanned += 1;
        }
    }
    sort_findings(&mut report.findings);
    Ok(report)
}

/// Canonical report order: (file, line, rule). The JSON artifact must diff
/// cleanly across runners, so the order cannot depend on filesystem walk
/// order or rule execution order.
pub fn sort_findings(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule))
    });
}

/// Lints a single file as if it belonged to `crate_name` — used by the
/// fixture tests to exercise rules on files outside the workspace layout.
pub fn lint_file(
    path: &Path,
    crate_name: &str,
    is_bin: bool,
    is_crate_root: bool,
    registry: &[String],
) -> io::Result<Vec<Finding>> {
    let source = fs::read_to_string(path)?;
    let rel_path = path.to_string_lossy().replace('\\', "/");
    let ctx = FileCtx {
        crate_name,
        rel_path: &rel_path,
        is_bin,
        is_crate_root,
        registry,
    };
    let mut out = Vec::new();
    check_file(&lex(&source), &ctx, &mut out);
    Ok(out)
}

/// Loads the registered HQNN_* names by lexing the registry file and
/// collecting its non-test string literals. Test tokens are excluded so the
/// registry's own unit tests (which mention deliberately-bogus names) do not
/// register them.
pub fn load_registry(root: &Path) -> io::Result<Vec<String>> {
    let path = root.join(REGISTRY_FILE);
    let source = fs::read_to_string(&path).map_err(|e| {
        io::Error::new(
            e.kind(),
            format!("registry file {} unreadable: {e}", path.display()),
        )
    })?;
    let lexed = lex(&source);
    let mut names: Vec<String> = lexed
        .tokens
        .iter()
        .filter(|t| !t.in_test && t.kind == TokKind::Str && is_env_name(&t.text))
        .map(|t| t.text.clone())
        .collect();
    names.sort();
    // A duplicate entry is a registry bug, not noise: the did-you-mean
    // suggestions would happily point at a shadowed copy while the real one
    // drifts, so fail loudly instead of deduping in silence.
    if let Some(dup) = names.windows(2).find(|w| w[0] == w[1]) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "registry file {REGISTRY_FILE} lists `{}` more than once; keep exactly one entry per variable",
                dup[0]
            ),
        ));
    }
    Ok(names)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn rel(root: &Path, file: &Path) -> String {
    file.strip_prefix(root)
        .unwrap_or(file)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_str("plain"), "\"plain\"");
    }

    #[test]
    fn json_report_shape() {
        let mut r = Report {
            files_scanned: 2,
            ..Report::default()
        };
        r.crates.push("qsim".to_string());
        r.findings.push(Finding {
            file: "crates/qsim/src/x.rs".to_string(),
            line: 7,
            rule: "panic",
            message: "msg with \"quotes\"".to_string(),
        });
        let json = r.render_json();
        assert!(json.starts_with("{\"findings\":[{\"file\":"));
        assert!(json.contains("\"line\":7"));
        assert!(json.contains("\\\"quotes\\\""));
        assert!(json.ends_with("\"crates\":[\"qsim\"]}"));
    }

    #[test]
    fn findings_sort_by_file_line_rule() {
        let f = |file: &str, line: u32, rule: &'static str| Finding {
            file: file.to_string(),
            line,
            rule,
            message: String::new(),
        };
        // Deliberately shuffled, including two rules on one line — the CI
        // artifact order must be (file, line, rule), not walk order.
        let mut findings = vec![
            f("b.rs", 1, "panic"),
            f("a.rs", 9, "wall-clock"),
            f("a.rs", 9, "panic"),
            f("a.rs", 2, "span-naming"),
        ];
        sort_findings(&mut findings);
        let order: Vec<(&str, u32, &str)> = findings
            .iter()
            .map(|f| (f.file.as_str(), f.line, f.rule))
            .collect();
        assert_eq!(
            order,
            vec![
                ("a.rs", 2, "span-naming"),
                ("a.rs", 9, "panic"),
                ("a.rs", 9, "wall-clock"),
                ("b.rs", 1, "panic"),
            ]
        );
    }

    #[test]
    fn duplicate_registry_entries_are_a_loud_error() {
        let dir = std::env::temp_dir().join(format!(
            "hqnn_lint_dup_registry_{}_{}",
            std::process::id(),
            line!()
        ));
        let reg_dir = dir.join("crates/telemetry/src");
        fs::create_dir_all(&reg_dir).expect("mkdir");
        fs::write(
            reg_dir.join("env.rs"),
            "pub const A: &str = \"HQNN_LOG\";\npub const B: &str = \"HQNN_LOG\";\n",
        )
        .expect("write");
        let err = load_registry(&dir).expect_err("duplicates must not load");
        assert!(
            err.to_string().contains("HQNN_LOG") && err.to_string().contains("more than once"),
            "error should name the duplicate: {err}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn text_report_shape() {
        let r = Report {
            findings: vec![Finding {
                file: "f.rs".to_string(),
                line: 3,
                rule: "panic",
                message: "m".to_string(),
            }],
            files_scanned: 1,
            crates: vec!["a".to_string()],
        };
        let text = r.render_text();
        assert!(text.contains("f.rs:3: [panic] m"));
        assert!(text.contains("1 finding(s)"));
    }
}
