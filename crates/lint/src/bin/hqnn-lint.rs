//! `hqnn-lint` CLI: lints the workspace and exits non-zero on findings.
//!
//! Usage:
//!   hqnn-lint [--root <dir>] [--json] [--list-rules] [--explain <rule>]

use std::path::PathBuf;
use std::process::ExitCode;

use hqnn_lint::{lint_workspace, RULES};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => {
                    eprintln!("--root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--explain" => match args.next() {
                Some(name) => {
                    let Some(rule) = RULES.iter().find(|r| r.name == name) else {
                        eprintln!("unknown rule `{name}`; try --list-rules");
                        return ExitCode::from(2);
                    };
                    println!("{}", rule.name);
                    println!("  flags: {}", rule.summary);
                    println!("  why:   {}", rule.rationale);
                    println!(
                        "  escape: // lint:allow({}): <why this specific site is sound>",
                        rule.name
                    );
                    return ExitCode::SUCCESS;
                }
                None => {
                    eprintln!("--explain requires a rule name (try --list-rules)");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for rule in RULES {
                    println!("{:<14} {}", rule.name, rule.summary);
                    println!("{:<14} why: {}", "", rule.rationale);
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("hqnn-lint: workspace invariant linter");
                println!("  --root <dir>   workspace root (default: .)");
                println!("  --json         machine-readable output");
                println!("  --list-rules   print the rule table and exit");
                println!("  --explain <rule>  describe one rule and its escape syntax");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    // Convenience: when invoked from a crate directory, walk up to the
    // workspace root so `cargo run -p hqnn-lint` works from anywhere.
    if !root.join("crates").is_dir() {
        let mut cur = root.canonicalize().unwrap_or(root.clone());
        while !cur.join("crates").is_dir() {
            let Some(parent) = cur.parent() else { break };
            cur = parent.to_path_buf();
        }
        if cur.join("crates").is_dir() {
            root = cur;
        }
    }

    match lint_workspace(&root) {
        Ok(report) => {
            if json {
                println!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(err) => {
            eprintln!("hqnn-lint: {err}");
            ExitCode::from(2)
        }
    }
}
