//! A lightweight Rust lexer: just enough token structure for invariant
//! linting.
//!
//! The goal is **not** a conforming Rust tokenizer — it is to classify
//! source bytes well enough that rule checks never fire inside comments or
//! string literals, see identifiers and string contents verbatim, and know
//! which tokens live in test-only code. Three things matter:
//!
//! * comments (line, nested block) are consumed, and `lint:allow(<rules>)`
//!   annotations inside them are recorded with the code line they govern;
//! * string/char literals (including raw, byte, and C strings) are consumed
//!   as single tokens so their contents never look like code;
//! * `#[cfg(test)]` / `#[test]` items are marked so rules can exempt test
//!   code without a parser.

/// Token classification — exactly the distinctions the rules need.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// String literal (text carries the contents, quotes stripped).
    Str,
    /// Character or byte literal.
    Char,
    /// Numeric literal (including suffix).
    Number,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Single punctuation byte (`{`, `!`, `.`, …).
    Punct,
}

/// One token with its source line (1-based) and test-code flag.
#[derive(Clone, Debug)]
pub struct Tok {
    /// Classification.
    pub kind: TokKind,
    /// Token text (string contents for [`TokKind::Str`], quotes stripped).
    pub text: String,
    /// 1-based source line the token starts on.
    pub line: u32,
    /// `true` when the token sits inside a `#[cfg(test)]`/`#[test]` item.
    pub in_test: bool,
}

impl Tok {
    /// `true` for a punct token with exactly this text.
    pub fn is_punct(&self, p: &str) -> bool {
        self.kind == TokKind::Punct && self.text == p
    }

    /// `true` for an ident token with exactly this text.
    pub fn is_ident(&self, id: &str) -> bool {
        self.kind == TokKind::Ident && self.text == id
    }
}

/// One `lint:allow(<rules>)` annotation and the code line it suppresses.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Rule names listed in the annotation.
    pub rules: Vec<String>,
    /// The code line this annotation governs: the comment's own line for a
    /// trailing comment, or the next code line for a standalone comment
    /// (blank lines and further comments in between are fine). `0` when the
    /// annotation governs nothing (e.g. trailing comment at EOF).
    pub applies_to: u32,
    /// 1-based line the comment itself starts on — where `stale-allow`
    /// findings about this annotation point.
    pub line: u32,
    /// `true` when the annotation is followed by `: <non-empty reason>`.
    /// Reason-less escapes are flagged by the `stale-allow` audit.
    pub has_reason: bool,
}

/// The lexed view of one source file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Tokens in source order.
    pub tokens: Vec<Tok>,
    /// All `lint:allow` annotations found in comments.
    pub allows: Vec<Allow>,
}

impl Lexed {
    /// `true` when `rule` is allowed on `line` (or anywhere in the file,
    /// for file-scoped rules passing `line == 0`).
    pub fn allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rules.iter().any(|r| r == rule) && (line == 0 || a.applies_to == line))
    }
}

/// Lexes `source`, recording tokens, allow-annotations, and test regions.
pub fn lex(source: &str) -> Lexed {
    let b = source.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut line_has_code = false;
    let mut tokens: Vec<Tok> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();
    // Standalone allow-comments waiting for the next code line.
    let mut pending: Vec<usize> = Vec::new();

    macro_rules! push_tok {
        ($kind:expr, $text:expr, $line:expr) => {{
            for &p in &pending {
                allows[p].applies_to = $line;
            }
            pending.clear();
            line_has_code = true;
            tokens.push(Tok {
                kind: $kind,
                text: $text,
                line: $line,
                in_test: false,
            });
        }};
    }

    while i < b.len() {
        let c = b[i];
        // Newline / whitespace.
        if c == b'\n' {
            line += 1;
            line_has_code = false;
            i += 1;
            continue;
        }
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Line comment.
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
            let standalone = !line_has_code;
            let start = i;
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            record_allows(
                &source[start..i],
                line,
                standalone,
                &mut allows,
                &mut pending,
            );
            continue;
        }
        // Block comment (nested).
        if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
            let standalone = !line_has_code;
            let start = i;
            let start_line = line;
            i += 2;
            let mut depth = 1;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == b'\n' {
                        line += 1;
                    }
                    i += 1;
                }
            }
            record_allows(
                &source[start..i],
                start_line,
                standalone,
                &mut allows,
                &mut pending,
            );
            continue;
        }
        // String-ish literals, possibly prefixed: "…", r"…", r#"…"#, b"…",
        // br#"…"#, c"…", b'x'. Raw identifiers (r#ident) fall through to
        // the ident path.
        if c == b'"' {
            let (text, nl) = scan_string(b, &mut i, source);
            push_tok!(TokKind::Str, text, line);
            line += nl;
            continue;
        }
        if (c == b'r' || c == b'b' || c == b'c') && i + 1 < b.len() {
            if let Some((text, nl, is_char)) = scan_prefixed_literal(b, &mut i, source) {
                push_tok!(
                    if is_char { TokKind::Char } else { TokKind::Str },
                    text,
                    line
                );
                line += nl;
                continue;
            }
            // Not a literal — fall through to identifier below.
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if is_char_literal(b, i) {
                let start = i;
                i += 1; // opening quote
                if i < b.len() && b[i] == b'\\' {
                    i += 2; // escape introducer + escaped byte
                    while i < b.len() && b[i] != b'\'' {
                        i += 1; // \u{…} and friends
                    }
                } else {
                    // One (possibly multi-byte) character.
                    i += 1;
                    while i < b.len() && b[i] & 0xC0 == 0x80 {
                        i += 1;
                    }
                }
                if i < b.len() {
                    i += 1; // closing quote
                }
                push_tok!(TokKind::Char, source[start..i].to_string(), line);
            } else {
                let start = i;
                i += 1;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                push_tok!(TokKind::Lifetime, source[start..i].to_string(), line);
            }
            continue;
        }
        // Identifier / keyword.
        if c == b'_' || c.is_ascii_alphabetic() {
            let start = i;
            // Raw identifier prefix r# was not consumed as a literal above.
            if (c == b'r' || c == b'b') && i + 1 < b.len() && b[i + 1] == b'#' {
                i += 2;
            }
            while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                i += 1;
            }
            let text = source[start..i]
                .trim_start_matches("r#")
                .trim_start_matches("b#");
            push_tok!(TokKind::Ident, text.to_string(), line);
            continue;
        }
        // Number.
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                i += 1;
            }
            // Fractional part only when followed by a digit ("0..n" stays
            // a range).
            if i + 1 < b.len() && b[i] == b'.' && b[i + 1].is_ascii_digit() {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
            }
            // Signed exponent ("1e-6"): the alnum sweep stops at '-'/'+'.
            if i + 1 < b.len()
                && (b[i] == b'-' || b[i] == b'+')
                && (b[i - 1] == b'e' || b[i - 1] == b'E')
                && b[i + 1].is_ascii_digit()
            {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
            }
            push_tok!(TokKind::Number, source[start..i].to_string(), line);
            continue;
        }
        // Everything else: single punctuation byte.
        push_tok!(TokKind::Punct, (c as char).to_string(), line);
        i += 1;
    }

    let mut lexed = Lexed { tokens, allows };
    mark_test_regions(&mut lexed.tokens);
    lexed
}

/// Consumes a plain `"…"` string starting at `i` (which points at the
/// opening quote). Returns the contents and the number of newlines crossed.
fn scan_string(b: &[u8], i: &mut usize, source: &str) -> (String, u32) {
    let mut nl = 0u32;
    *i += 1; // opening quote
    let start = *i;
    while *i < b.len() {
        match b[*i] {
            b'\\' => *i += 2,
            b'"' => break,
            b'\n' => {
                nl += 1;
                *i += 1;
            }
            _ => *i += 1,
        }
    }
    let end = (*i).min(b.len());
    if *i < b.len() {
        *i += 1; // closing quote
    }
    (source[start..end].to_string(), nl)
}

/// Tries to consume a prefixed literal at `i` (`r"`, `r#"`, `b"`, `br"`,
/// `br#"`, `b'`, `c"`). Returns `(contents, newlines, is_char)` on success,
/// `None` when the bytes are an identifier (including raw idents `r#foo`).
fn scan_prefixed_literal(b: &[u8], i: &mut usize, source: &str) -> Option<(String, u32, bool)> {
    let mut j = *i;
    let mut raw = false;
    match b[j] {
        b'r' => {
            raw = true;
            j += 1;
        }
        b'b' | b'c' => {
            j += 1;
            if j < b.len() && b[j] == b'r' {
                raw = true;
                j += 1;
            } else if j < b.len() && b[j] == b'\'' {
                // Byte char literal b'x'.
                let start = j + 1;
                let mut k = start;
                if k < b.len() && b[k] == b'\\' {
                    k += 2;
                    while k < b.len() && b[k] != b'\'' {
                        k += 1;
                    }
                } else if k < b.len() {
                    k += 1;
                }
                if k < b.len() && b[k] == b'\'' {
                    *i = k + 1;
                    return Some((source[start..k].to_string(), 0, true));
                }
                return None;
            }
        }
        _ => return None,
    }
    if raw {
        let mut hashes = 0usize;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j >= b.len() || b[j] != b'"' {
            return None; // r#ident or bare ident
        }
        j += 1;
        let start = j;
        let mut nl = 0u32;
        // Scan for `"` followed by `hashes` hashes.
        while j < b.len() {
            if b[j] == b'\n' {
                nl += 1;
            }
            if b[j] == b'"'
                && b[j + 1..]
                    .iter()
                    .take(hashes)
                    .filter(|&&h| h == b'#')
                    .count()
                    == hashes
            {
                let contents = source[start..j].to_string();
                *i = j + 1 + hashes;
                return Some((contents, nl, false));
            }
            j += 1;
        }
        *i = b.len();
        return Some((source[start..].to_string(), nl, false));
    }
    // Non-raw prefixed string: b"…" / c"…".
    if j < b.len() && b[j] == b'"' {
        let mut k = j;
        let (text, nl) = scan_string(b, &mut k, source);
        *i = k;
        return Some((text, nl, false));
    }
    None
}

/// Distinguishes `'a'` / `'\n'` (char literal) from `'a` (lifetime).
fn is_char_literal(b: &[u8], i: usize) -> bool {
    if i + 1 >= b.len() {
        return false;
    }
    if b[i + 1] == b'\\' {
        return true;
    }
    // 'X' where X is one char: closing quote two bytes ahead (or after a
    // multi-byte char).
    let mut j = i + 2;
    while j < b.len() && b[j] & 0xC0 == 0x80 {
        j += 1;
    }
    j < b.len() && b[j] == b'\''
}

/// Extracts every `lint:allow(rule, rule2)` annotation from a comment.
///
/// Doc comments (`///`, `//!`, `/** */`, `/*! */`) are skipped: they are
/// documentation *about* the escape syntax, not escapes — a suppression
/// must live in a plain comment on (or directly above) the offending line.
fn record_allows(
    comment: &str,
    line: u32,
    standalone: bool,
    allows: &mut Vec<Allow>,
    pending: &mut Vec<usize>,
) {
    if ["///", "//!", "/**", "/*!"]
        .iter()
        .any(|p| comment.starts_with(p))
    {
        return;
    }
    let mut rest = comment;
    while let Some(pos) = rest.find("lint:allow(") {
        rest = &rest[pos + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { break };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        rest = &rest[close + 1..];
        if rules.is_empty() {
            continue;
        }
        // A reason is `: <text>` directly after the closing paren; the text
        // must contain something other than whitespace and comment closers.
        let has_reason = rest
            .trim_start()
            .strip_prefix(':')
            .is_some_and(|r| !r.trim_end_matches("*/").trim().is_empty());
        let idx = allows.len();
        allows.push(Allow {
            rules,
            applies_to: if standalone { 0 } else { line },
            line,
            has_reason,
        });
        if standalone {
            pending.push(idx);
        }
    }
}

/// Marks tokens inside `#[cfg(test)]` / `#[test]` items (and the attributes
/// themselves) as test code.
fn mark_test_regions(toks: &mut [Tok]) {
    let mut i = 0usize;
    while i < toks.len() {
        if !(toks[i].is_punct("#") && i + 1 < toks.len() && toks[i + 1].is_punct("[")) {
            i += 1;
            continue;
        }
        let (attr_end, is_test) = scan_attribute(toks, i + 1);
        if !is_test {
            i = attr_end + 1;
            continue;
        }
        // Swallow any further attributes stacked on the same item.
        let mut j = attr_end + 1;
        while j + 1 < toks.len() && toks[j].is_punct("#") && toks[j + 1].is_punct("[") {
            let (end, _) = scan_attribute(toks, j + 1);
            j = end + 1;
        }
        let item_end = skip_item(toks, j);
        for tok in toks.iter_mut().take(item_end + 1).skip(i) {
            tok.in_test = true;
        }
        i = item_end + 1;
    }
}

/// Scans an attribute starting at its `[` token; returns the index of the
/// matching `]` and whether the attribute marks test-only code.
fn scan_attribute(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = open;
    while j < toks.len() {
        if toks[j].is_punct("[") {
            depth += 1;
        } else if toks[j].is_punct("]") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if toks[j].is_ident("test") {
            has_test = true;
        } else if toks[j].is_ident("not") {
            has_not = true;
        }
        j += 1;
    }
    (j.min(toks.len() - 1), has_test && !has_not)
}

/// From the first token of an item (after its attributes), returns the index
/// of the item's last token: the matching `}` of its body, or the `;` that
/// ends a body-less item.
fn skip_item(toks: &[Tok], start: usize) -> usize {
    let mut depth_paren = 0i32;
    let mut depth_bracket = 0i32;
    let mut j = start;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct("(") {
            depth_paren += 1;
        } else if t.is_punct(")") {
            depth_paren -= 1;
        } else if t.is_punct("[") {
            depth_bracket += 1;
        } else if t.is_punct("]") {
            depth_bracket -= 1;
        } else if t.is_punct(";") && depth_paren == 0 && depth_bracket == 0 {
            return j;
        } else if t.is_punct("{") && depth_paren == 0 && depth_bracket == 0 {
            // Body found: skip the balanced brace block.
            let mut depth = 0i32;
            while j < toks.len() {
                if toks[j].is_punct("{") {
                    depth += 1;
                } else if toks[j].is_punct("}") {
                    depth -= 1;
                    if depth == 0 {
                        return j;
                    }
                }
                j += 1;
            }
            return toks.len() - 1;
        }
        j += 1;
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(lexed: &Lexed) -> Vec<&str> {
        lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.as_str())
            .collect()
    }

    #[test]
    fn comments_and_strings_hide_code() {
        let src = r##"
            // HashMap in a comment
            /* Instant in /* a nested */ block */
            let s = "HashMap::new()";
            let r = r#"SystemTime"#;
            let real = HashMap::new();
        "##;
        let lexed = lex(src);
        let ids = idents(&lexed);
        assert_eq!(ids.iter().filter(|&&i| i == "HashMap").count(), 1);
        assert!(!ids.contains(&"Instant"));
        assert!(!ids.contains(&"SystemTime"));
        // String contents are preserved on Str tokens.
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Str && t.text == "HashMap::new()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(lexed.tokens.iter().any(|t| t.kind == TokKind::Lifetime));
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "'x'"));
        let escaped = lex(r"let c = '\n'; let q = '\'';");
        assert_eq!(
            escaped
                .tokens
                .iter()
                .filter(|t| t.kind == TokKind::Char)
                .count(),
            2
        );
    }

    #[test]
    fn numbers_do_not_swallow_ranges() {
        let lexed = lex("for i in 0..10 { let x = 1.5e-3f64; }");
        let nums: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Number)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(nums, vec!["0", "10", "1.5e-3f64"]);
    }

    #[test]
    fn allow_annotations_bind_to_code_lines() {
        let src = "\
let a = x.unwrap(); // lint:allow(panic): trailing
// lint:allow(panic): standalone, with a gap

let b = y.unwrap();
";
        let lexed = lex(src);
        assert!(lexed.allowed("panic", 1), "trailing comment governs line 1");
        assert!(
            lexed.allowed("panic", 4),
            "standalone governs next code line"
        );
        assert!(!lexed.allowed("panic", 2));
        assert!(!lexed.allowed("other-rule", 1));
    }

    #[test]
    fn allow_reasons_and_lines_are_recorded() {
        let src = "\
// lint:allow(panic): justified by the caller contract
let a = x.unwrap();
let b = y.unwrap(); // lint:allow(panic)
/* lint:allow(wall-clock): block comment reason */ let t = 1;
";
        let lexed = lex(src);
        assert_eq!(lexed.allows.len(), 3);
        assert!(lexed.allows[0].has_reason);
        assert_eq!((lexed.allows[0].line, lexed.allows[0].applies_to), (1, 2));
        assert!(!lexed.allows[1].has_reason, "bare escape has no reason");
        assert_eq!((lexed.allows[1].line, lexed.allows[1].applies_to), (3, 3));
        assert!(lexed.allows[2].has_reason, "block comment reason counts");
    }

    #[test]
    fn doc_comments_never_record_allows() {
        let src = "\
//! Write `// lint:allow(panic): why` to escape a finding.
/// Escapes look like `lint:allow(wall-clock)`.
/** Or `lint:allow(hash-iter)` in block docs. */
fn f() {}
";
        let lexed = lex(src);
        assert!(
            lexed.allows.is_empty(),
            "doc prose about the syntax is not an escape: {:?}",
            lexed.allows
        );
    }

    #[test]
    fn multi_rule_allow_and_file_scope() {
        let lexed = lex("// lint:allow(hash-iter, wall-clock): both\nuse foo;\n");
        assert!(lexed.allowed("hash-iter", 2));
        assert!(lexed.allowed("wall-clock", 2));
        assert!(
            lexed.allowed("hash-iter", 0),
            "file-scope query matches anywhere"
        );
    }

    #[test]
    fn cfg_test_modules_are_marked() {
        let src = r#"
fn library() { real(); }

#[cfg(test)]
mod tests {
    #[test]
    fn t() { test_only(); }
}

fn also_library() {}
"#;
        let lexed = lex(src);
        let find = |name: &str| {
            lexed
                .tokens
                .iter()
                .find(|t| t.is_ident(name))
                .unwrap_or_else(|| panic!("{name} not found"))
        };
        assert!(!find("real").in_test);
        assert!(find("test_only").in_test);
        assert!(!find("also_library").in_test);
    }

    #[test]
    fn test_attribute_on_fn_is_marked() {
        let src = "
#[test]
fn unit() { helper(); }
fn lib() { body(); }
";
        let lexed = lex(src);
        assert!(
            lexed
                .tokens
                .iter()
                .find(|t| t.is_ident("helper"))
                .unwrap()
                .in_test
        );
        assert!(
            !lexed
                .tokens
                .iter()
                .find(|t| t.is_ident("body"))
                .unwrap()
                .in_test
        );
    }

    #[test]
    fn cfg_not_test_is_not_test_code() {
        let src = "#[cfg(not(test))]\nfn prod() { live(); }\n";
        let lexed = lex(src);
        assert!(
            !lexed
                .tokens
                .iter()
                .find(|t| t.is_ident("live"))
                .unwrap()
                .in_test
        );
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let lexed = lex("let r#type = 1; let b = r#fn;");
        assert!(lexed.tokens.iter().any(|t| t.is_ident("type")));
        assert!(lexed.tokens.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn byte_and_c_strings() {
        let lexed = lex(r#"let a = b"bytes"; let c = c"cstr"; let bc = b'x';"#);
        let strs: Vec<&str> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["bytes", "cstr"]);
        assert!(lexed
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Char && t.text == "x"));
    }
}
