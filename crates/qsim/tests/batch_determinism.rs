//! Property tests: batched execution is bitwise identical to the per-row
//! sequential loop across random circuits, batch sizes, and thread budgets.
//!
//! This is the determinism contract the whole refactor rests on — training
//! curves, search winners, and cached study JSON must not change when
//! `HQNN_THREADS` does.

use hqnn_qsim::{
    gradients_batch, with_fusion, Circuit, EntanglerKind, GradEngine, Observable, ParamSource,
    QnnTemplate,
};
use hqnn_tensor::Matrix;
use proptest::prelude::*;

/// Thread budgets exercised per case: sequential, even, and an odd count
/// that never divides batch sizes cleanly.
const THREADS: [usize; 3] = [1, 2, 7];

/// A random scenario: an input-encoded variational circuit (every wire gets
/// an encoding rotation, then alternating trainable-rotation + entangling
/// rings), its parameter vector, and a random input batch.
fn scenario() -> impl Strategy<Value = (Circuit, Vec<f64>, Matrix)> {
    (2usize..=4, 1usize..=3, 0u8..3)
        .prop_map(|(n, depth, axis)| {
            let mut c = Circuit::new(n);
            for w in 0..n {
                c.rx(w, ParamSource::Input(w));
            }
            let mut slot = 0;
            for d in 0..depth {
                for w in 0..n {
                    let p = ParamSource::Trainable(slot);
                    slot += 1;
                    match (axis as usize + d + w) % 3 {
                        0 => c.rx(w, p),
                        1 => c.ry(w, p),
                        _ => c.rz(w, p),
                    }
                }
                for w in 0..n {
                    c.cnot(w, (w + 1) % n);
                }
            }
            c
        })
        .prop_flat_map(|c| {
            let n_params = c.trainable_count();
            let cols = c.input_count();
            let params = proptest::collection::vec(-3.0f64..3.0, n_params..=n_params.max(1));
            let batch = (1usize..=9).prop_flat_map(move |rows| {
                proptest::collection::vec(-2.0f64..2.0, rows * cols)
                    .prop_map(move |data| Matrix::from_vec(rows, cols, data))
            });
            (Just(c), params, batch)
        })
}

/// A random paper-template scenario (BEL or SEL via [`QnnTemplate`] — the
/// circuits gate fusion is built for), with parameters and an input batch.
fn template_scenario() -> impl Strategy<Value = (Circuit, Vec<f64>, Matrix)> {
    (2usize..=4, 1usize..=3, proptest::bool::ANY)
        .prop_map(|(n, depth, strong)| {
            let kind = if strong {
                EntanglerKind::Strong
            } else {
                EntanglerKind::Basic
            };
            QnnTemplate::new(n, depth, kind).build()
        })
        .prop_flat_map(|c| {
            let n_params = c.trainable_count();
            let cols = c.input_count();
            let params = proptest::collection::vec(-3.0f64..3.0, n_params..=n_params.max(1));
            let batch = (1usize..=6).prop_flat_map(move |rows| {
                proptest::collection::vec(-2.0f64..2.0, rows * cols)
                    .prop_map(move |data| Matrix::from_vec(rows, cols, data))
            });
            (Just(c), params, batch)
        })
}

fn z_all(n: usize) -> Vec<Observable> {
    (0..n).map(Observable::z).collect()
}

fn bits(m: &Matrix) -> Vec<u64> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn run_batch_bitwise_matches_sequential((c, params, x) in scenario()) {
        let seq: Vec<Vec<(u64, u64)>> = (0..x.rows())
            .map(|r| {
                c.run(x.row(r), &params)
                    .amplitudes()
                    .iter()
                    .map(|a| (a.re.to_bits(), a.im.to_bits()))
                    .collect()
            })
            .collect();
        for threads in THREADS {
            let batch = hqnn_runtime::with_threads(threads, || c.run_batch(&x, &params));
            let got: Vec<Vec<(u64, u64)>> = batch
                .iter()
                .map(|s| s.amplitudes().iter().map(|a| (a.re.to_bits(), a.im.to_bits())).collect())
                .collect();
            prop_assert_eq!(&got, &seq, "threads={}", threads);
        }
    }

    #[test]
    fn expectations_batch_bitwise_matches_sequential((c, params, x) in scenario()) {
        let obs = z_all(c.n_qubits());
        let mut seq = Vec::with_capacity(x.rows() * obs.len());
        for r in 0..x.rows() {
            seq.extend(c.expectations(x.row(r), &params, &obs));
        }
        let seq_bits: Vec<u64> = seq.iter().map(|v| v.to_bits()).collect();
        for threads in THREADS {
            let got = hqnn_runtime::with_threads(threads, || {
                c.expectations_batch(&x, &params, &obs)
            });
            prop_assert_eq!((got.rows(), got.cols()), (x.rows(), obs.len()));
            prop_assert_eq!(&bits(&got), &seq_bits, "threads={}", threads);
        }
    }

    #[test]
    fn gradients_batch_bitwise_matches_sequential((c, params, x) in scenario()) {
        let obs = z_all(c.n_qubits());
        for engine in [GradEngine::Adjoint, GradEngine::ParameterShift] {
            let seq: Vec<_> = (0..x.rows())
                .map(|r| match engine {
                    GradEngine::Adjoint => hqnn_qsim::adjoint(&c, x.row(r), &params, &obs),
                    _ => hqnn_qsim::parameter_shift(&c, x.row(r), &params, &obs),
                })
                .collect();
            for threads in THREADS {
                let got = hqnn_runtime::with_threads(threads, || {
                    gradients_batch(&c, engine, &x, &params, &obs)
                });
                prop_assert_eq!(got.len(), seq.len());
                for (r, (g, s)) in got.iter().zip(&seq).enumerate() {
                    // Gradients derives PartialEq over exact f64s: equality
                    // here *is* the bitwise claim (no NaNs in these circuits).
                    prop_assert_eq!(g, s, "engine={:?} threads={} row={}", engine, threads, r);
                }
            }
        }
    }

    /// Fused execution is held to the same determinism bar as the runtime:
    /// bitwise identical across thread counts and to the fused per-row run,
    /// and numerically equal (to rounding) to the scalar path.
    #[test]
    fn fused_run_batch_is_deterministic_and_matches_scalar(
        (c, params, x) in template_scenario()
    ) {
        let scalar = hqnn_runtime::with_threads(1, || {
            with_fusion(false, || c.run_batch(&x, &params))
        });
        let fused_seq: Vec<Vec<(u64, u64)>> = with_fusion(true, || {
            (0..x.rows())
                .map(|r| {
                    c.run(x.row(r), &params)
                        .amplitudes()
                        .iter()
                        .map(|a| (a.re.to_bits(), a.im.to_bits()))
                        .collect()
                })
                .collect()
        });
        for threads in THREADS {
            let fused = hqnn_runtime::with_threads(threads, || {
                with_fusion(true, || c.run_batch(&x, &params))
            });
            let got: Vec<Vec<(u64, u64)>> = fused
                .iter()
                .map(|s| s.amplitudes().iter().map(|a| (a.re.to_bits(), a.im.to_bits())).collect())
                .collect();
            // Bitwise: the fuse plan is a pure function of the circuit, so
            // neither the thread count nor batch-vs-solo may change a bit.
            prop_assert_eq!(&got, &fused_seq, "threads={}", threads);
            // Numeric: fusion reassociates products, so scalar agreement is
            // to rounding only — which is exactly why it is opt-in.
            for (f, s) in fused.iter().zip(&scalar) {
                prop_assert!(f.approx_eq(s, 1e-12), "threads={}", threads);
            }
        }
    }

    /// Gradient engines pin their forward passes to the unfused op stream,
    /// so every gradient is bitwise identical whether fusion is on or off.
    #[test]
    fn gradients_are_bitwise_invariant_under_fusion(
        (c, params, x) in template_scenario()
    ) {
        let obs = z_all(c.n_qubits());
        for engine in [GradEngine::Adjoint, GradEngine::ParameterShift] {
            let off = with_fusion(false, || gradients_batch(&c, engine, &x, &params, &obs));
            for threads in THREADS {
                let on = hqnn_runtime::with_threads(threads, || {
                    with_fusion(true, || gradients_batch(&c, engine, &x, &params, &obs))
                });
                prop_assert_eq!(on.len(), off.len());
                for (r, (g, s)) in on.iter().zip(&off).enumerate() {
                    prop_assert_eq!(g, s, "engine={:?} threads={} row={}", engine, threads, r);
                }
            }
        }
    }
}
