//! Property-based tests of the simulator: norm preservation, unitarity,
//! gradient-engine agreement on random circuits.

use hqnn_qsim::{
    adjoint, finite_diff, parameter_shift, Circuit, EntanglerKind, Observable, ParamSource,
    QnnTemplate,
};
use proptest::prelude::*;

/// A recipe for one random op, expanded against a concrete wire count.
#[derive(Clone, Debug)]
enum OpRecipe {
    H(usize),
    X(usize),
    Rx(usize),
    Ry(usize),
    Rz(usize),
    Phase(usize),
    Cnot(usize, usize),
    Cz(usize, usize),
    Swap(usize, usize),
}

fn op_recipe(n_qubits: usize) -> impl Strategy<Value = OpRecipe> {
    let w = 0..n_qubits;
    let pair = (0..n_qubits, 0..n_qubits - 1).prop_map(move |(a, off)| {
        let b = (a + 1 + off) % n_qubits;
        (a, b)
    });
    prop_oneof![
        w.clone().prop_map(OpRecipe::H),
        w.clone().prop_map(OpRecipe::X),
        w.clone().prop_map(OpRecipe::Rx),
        w.clone().prop_map(OpRecipe::Ry),
        w.clone().prop_map(OpRecipe::Rz),
        w.prop_map(OpRecipe::Phase),
        pair.clone().prop_map(|(a, b)| OpRecipe::Cnot(a, b)),
        pair.clone().prop_map(|(a, b)| OpRecipe::Cz(a, b)),
        pair.prop_map(|(a, b)| OpRecipe::Swap(a, b)),
    ]
}

/// Builds a circuit from recipes; every rotation gets its own trainable slot.
fn build(n_qubits: usize, recipes: &[OpRecipe]) -> Circuit {
    let mut c = Circuit::new(n_qubits);
    let mut slot = 0;
    let mut trainable = || {
        let s = ParamSource::Trainable(slot);
        slot += 1;
        s
    };
    for r in recipes {
        match *r {
            OpRecipe::H(w) => c.h(w),
            OpRecipe::X(w) => c.x(w),
            OpRecipe::Rx(w) => c.rx(w, trainable()),
            OpRecipe::Ry(w) => c.ry(w, trainable()),
            OpRecipe::Rz(w) => c.rz(w, trainable()),
            OpRecipe::Phase(w) => c.phase_shift(w, trainable()),
            OpRecipe::Cnot(a, b) => c.cnot(a, b),
            OpRecipe::Cz(a, b) => c.cz(a, b),
            OpRecipe::Swap(a, b) => c.swap(a, b),
        }
    }
    c
}

fn random_circuit() -> impl Strategy<Value = (Circuit, Vec<f64>)> {
    (2usize..=4)
        .prop_flat_map(|n| {
            proptest::collection::vec(op_recipe(n), 1..12)
                .prop_map(move |recipes| build(n, &recipes))
        })
        .prop_flat_map(|c| {
            let n_params = c.trainable_count();
            (
                Just(c),
                proptest::collection::vec(-3.0f64..3.0, n_params..=n_params.max(1)),
            )
        })
}

fn z_all(n: usize) -> Vec<Observable> {
    (0..n).map(Observable::z).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_circuits_preserve_norm((c, params) in random_circuit()) {
        let state = c.run(&[], &params);
        prop_assert!((state.norm_sqr() - 1.0).abs() < 1e-9);
        prop_assert!(state.all_finite());
    }

    #[test]
    fn expectations_stay_in_unit_interval((c, params) in random_circuit()) {
        for e in c.expectations(&[], &params, &z_all(c.n_qubits())) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e));
        }
    }

    #[test]
    fn adjoint_agrees_with_parameter_shift((c, params) in random_circuit()) {
        let obs = z_all(c.n_qubits());
        let a = adjoint(&c, &[], &params, &obs);
        let p = parameter_shift(&c, &[], &params, &obs);
        prop_assert!(a.d_params.approx_eq(&p.d_params, 1e-8),
            "adjoint {:?} vs shift {:?}", a.d_params, p.d_params);
        for (ea, ep) in a.expectations.iter().zip(&p.expectations) {
            prop_assert!((ea - ep).abs() < 1e-10);
        }
    }

    #[test]
    fn adjoint_agrees_with_finite_diff((c, params) in random_circuit()) {
        let obs = z_all(c.n_qubits());
        let a = adjoint(&c, &[], &params, &obs);
        let f = finite_diff(&c, &[], &params, &obs, 1e-5);
        prop_assert!(a.d_params.approx_eq(&f.d_params, 1e-4),
            "adjoint {:?} vs fd {:?}", a.d_params, f.d_params);
    }

    #[test]
    fn inverses_round_trip((c, params) in random_circuit()) {
        // Running the circuit and then un-applying every op recovers |0…0⟩,
        // exactly the invariant the adjoint pass relies on.
        let forward = c.run(&[], &params);
        prop_assert!((forward.norm_sqr() - 1.0).abs() < 1e-9);
        let ground = hqnn_qsim::StateVector::new(c.n_qubits());
        prop_assert!((forward.fidelity(&forward) - 1.0).abs() < 1e-9);
        // Fidelity with ground state equals |amplitude of |0…0⟩|².
        prop_assert!((forward.fidelity(&ground) - forward.probability(0)).abs() < 1e-9);
    }

    #[test]
    fn extracted_unitary_is_unitary_and_reproduces_evolution((c, params) in random_circuit()) {
        let dim = 1usize << c.n_qubits();
        let u = hqnn_qsim::render::unitary(&c, &[], &params);
        prop_assert!(hqnn_qsim::render::is_unitary_matrix(&u, dim, 1e-9));
        // First column of U = U|0…0⟩ = the simulated final state.
        let state = c.run(&[], &params);
        for (row, amp) in state.amplitudes().iter().enumerate() {
            prop_assert!(u[row * dim].approx_eq(*amp, 1e-9), "row {row}");
        }
    }

    #[test]
    fn ascii_render_has_one_line_per_wire((c, _params) in random_circuit()) {
        let text = hqnn_qsim::render::render_ascii(&c);
        prop_assert_eq!(text.lines().count(), c.n_qubits());
        for (w, line) in text.lines().enumerate() {
            let prefix = format!("q{w}:");
            prop_assert!(line.starts_with(&prefix));
        }
    }

    #[test]
    fn templates_gradcheck(
        qubits in 2usize..=4,
        depth in 1usize..=3,
        strong in proptest::bool::ANY,
        seed in 0u64..500,
    ) {
        let kind = if strong { EntanglerKind::Strong } else { EntanglerKind::Basic };
        let t = QnnTemplate::new(qubits, depth, kind);
        let c = t.build();
        let mut rng = hqnn_tensor::SeededRng::new(seed);
        let params: Vec<f64> = (0..t.param_count()).map(|_| rng.uniform(-3.0, 3.0)).collect();
        let inputs: Vec<f64> = (0..qubits).map(|_| rng.uniform(-2.0, 2.0)).collect();
        let obs = z_all(qubits);
        let a = adjoint(&c, &inputs, &params, &obs);
        let p = parameter_shift(&c, &inputs, &params, &obs);
        prop_assert!(a.d_params.approx_eq(&p.d_params, 1e-8));
        prop_assert!(a.d_inputs.approx_eq(&p.d_inputs, 1e-8));
    }
}
