//! Property-based tests of the mixed-state simulator: physicality of
//! evolved states (trace, purity), agreement with the pure simulator in the
//! noiseless limit, and channel invariants.

use hqnn_qsim::{
    Circuit, DensityMatrix, EntanglerKind, NoiseChannel, NoiseModel, Observable, ParamSource,
    QnnTemplate,
};
use hqnn_tensor::SeededRng;
use proptest::prelude::*;

fn random_template() -> impl Strategy<Value = (QnnTemplate, u64)> {
    (2usize..=4, 1usize..=3, proptest::bool::ANY, 0u64..500).prop_map(|(q, d, strong, seed)| {
        let kind = if strong {
            EntanglerKind::Strong
        } else {
            EntanglerKind::Basic
        };
        (QnnTemplate::new(q, d, kind), seed)
    })
}

fn bindings(t: &QnnTemplate, seed: u64) -> (Vec<f64>, Vec<f64>) {
    let mut rng = SeededRng::new(seed);
    let inputs = (0..t.n_qubits()).map(|_| rng.uniform(-2.0, 2.0)).collect();
    let params = (0..t.param_count())
        .map(|_| rng.uniform(0.0, std::f64::consts::TAU))
        .collect();
    (inputs, params)
}

fn noise_model(kind: u8, p: f64) -> NoiseModel {
    match kind % 4 {
        0 => NoiseModel::depolarizing(p),
        1 => NoiseModel::noiseless().with_channel(NoiseChannel::amplitude_damping(p)),
        2 => NoiseModel::noiseless().with_channel(NoiseChannel::phase_damping(p)),
        _ => NoiseModel::noiseless().with_channel(NoiseChannel::bit_flip(p)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn noiseless_density_matches_statevector((t, seed) in random_template()) {
        let (inputs, params) = bindings(&t, seed);
        let circuit = t.build();
        let psi = circuit.run(&inputs, &params);
        let rho = DensityMatrix::run_noisy(&circuit, &inputs, &params, &NoiseModel::noiseless());
        prop_assert!((rho.purity() - 1.0).abs() < 1e-9);
        for wire in 0..t.n_qubits() {
            prop_assert!((rho.expectation_z(wire) - psi.expectation_z(wire)).abs() < 1e-9);
        }
        for i in 0..rho.dim() {
            prop_assert!((rho.probability(i) - psi.probability(i)).abs() < 1e-9);
        }
    }

    #[test]
    fn noisy_states_stay_physical(
        (t, seed) in random_template(),
        channel_kind in 0u8..4,
        p in 0.0f64..0.5,
    ) {
        let (inputs, params) = bindings(&t, seed);
        let circuit = t.build();
        let rho = DensityMatrix::run_noisy(&circuit, &inputs, &params, &noise_model(channel_kind, p));
        prop_assert!((rho.trace().re - 1.0).abs() < 1e-9, "trace {}", rho.trace());
        prop_assert!(rho.trace().im.abs() < 1e-9);
        let purity = rho.purity();
        let floor = 1.0 / rho.dim() as f64;
        prop_assert!(purity <= 1.0 + 1e-9 && purity >= floor - 1e-9, "purity {purity}");
        // Diagonal is a probability distribution.
        let mut total = 0.0;
        for i in 0..rho.dim() {
            let prob = rho.probability(i);
            prop_assert!(prob >= -1e-9, "negative probability {prob}");
            total += prob;
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
        // Expectations stay in [-1, 1].
        for wire in 0..t.n_qubits() {
            let e = rho.expectation_z(wire);
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&e));
        }
    }

    #[test]
    fn depolarizing_contracts_expectations((t, seed) in random_template(), p in 0.01f64..0.4) {
        let (inputs, params) = bindings(&t, seed);
        let circuit = t.build();
        let clean = DensityMatrix::run_noisy(&circuit, &inputs, &params, &NoiseModel::noiseless());
        let noisy = DensityMatrix::run_noisy(&circuit, &inputs, &params, &NoiseModel::depolarizing(p));
        // Depolarizing noise pulls the state toward I/2ⁿ: purity cannot grow.
        prop_assert!(noisy.purity() <= clean.purity() + 1e-9);
    }

    #[test]
    fn observable_expectations_agree_between_paths((t, seed) in random_template()) {
        let (inputs, params) = bindings(&t, seed);
        let circuit = t.build();
        let rho = DensityMatrix::run_noisy(&circuit, &inputs, &params, &NoiseModel::depolarizing(0.05));
        for wire in 0..t.n_qubits() {
            let fast = rho.expectation_z(wire);
            let generic = rho.expectation(&Observable::z(wire));
            prop_assert!((fast - generic).abs() < 1e-9);
        }
    }

    #[test]
    fn noisy_gradients_match_noisy_finite_diff(
        qubits in 2usize..=3,
        seed in 0u64..200,
        p in 0.0f64..0.2,
    ) {
        let mut c = Circuit::new(qubits);
        for w in 0..qubits {
            c.rx(w, ParamSource::Input(w));
        }
        for w in 0..qubits {
            c.ry(w, ParamSource::Trainable(w));
        }
        c.cnot(0, qubits - 1);
        let mut rng = SeededRng::new(seed);
        let inputs: Vec<f64> = (0..qubits).map(|_| rng.uniform(-1.5, 1.5)).collect();
        let params: Vec<f64> = (0..qubits).map(|_| rng.uniform(0.0, std::f64::consts::TAU)).collect();
        let obs: Vec<Observable> = (0..qubits).map(Observable::z).collect();
        let noise = NoiseModel::depolarizing(p);

        let analytic = hqnn_qsim::gradient::parameter_shift_noisy(&c, &inputs, &params, &obs, &noise);
        let eval = |params: &[f64]| -> Vec<f64> {
            let rho = DensityMatrix::run_noisy(&c, &inputs, params, &noise);
            obs.iter().map(|o| rho.expectation(o)).collect()
        };
        let eps = 1e-5;
        for t in 0..qubits {
            let mut up = params.clone();
            up[t] += eps;
            let mut dn = params.clone();
            dn[t] -= eps;
            let (e_up, e_dn) = (eval(&up), eval(&dn));
            for o in 0..qubits {
                let fd = (e_up[o] - e_dn[o]) / (2.0 * eps);
                prop_assert!((analytic.d_params[(o, t)] - fd).abs() < 1e-5,
                    "param {t} obs {o}: {} vs {fd}", analytic.d_params[(o, t)]);
            }
        }
    }
}
