//! Malformed-IR rejection tests for `Circuit::verify`.
//!
//! `Circuit::push` panics on malformed ops, so the only way real malformed
//! IR reaches the simulator is **deserialization** — saved models, cached
//! study JSON, hand-edited fixtures. These tests craft exactly such JSON and
//! assert that `verify()` rejects each defect with an actionable message
//! (op index + what to fix), and that well-formed circuits — including
//! every BEL/SEL template the search space can emit — are accepted.

use hqnn_qsim::{Circuit, EntanglerKind, QnnTemplate, VerifyError};

/// Builds circuit JSON with the given ops array (raw JSON), wire and slot
/// declarations — the exact shape `serde_json::to_string(&Circuit)` emits.
fn circuit_json(n_qubits: usize, ops: &str, n_inputs: usize, n_trainable: usize) -> String {
    format!(
        r#"{{"n_qubits":{n_qubits},"ops":[{ops}],"n_inputs":{n_inputs},"n_trainable":{n_trainable}}}"#
    )
}

fn parse(json: &str) -> Circuit {
    serde_json::from_str(json).expect("fixture JSON must deserialize")
}

#[test]
fn roundtripped_valid_circuit_verifies() {
    let c = QnnTemplate::new(3, 2, EntanglerKind::Strong).build();
    let json = serde_json::to_string(&c).expect("serialize");
    let restored: Circuit = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(restored.verify(), Ok(()));
    assert_eq!(restored, c);
}

#[test]
fn rejects_out_of_range_wire() {
    // H on wire 5 of a 2-qubit circuit.
    let c = parse(&circuit_json(
        2,
        r#"{"kind":"H","wires":{"One":5},"param":"None"}"#,
        0,
        0,
    ));
    let err = c.verify().expect_err("must reject");
    assert!(matches!(
        err,
        VerifyError::WireOutOfRange {
            op: 0,
            wire: 5,
            n_qubits: 2,
            ..
        }
    ));
    let msg = err.to_string();
    assert!(msg.contains("op 0"), "names the op: {msg}");
    assert!(msg.contains("wire 5"), "names the wire: {msg}");
    assert!(msg.contains("0..2"), "states the valid range: {msg}");
}

#[test]
fn rejects_duplicate_control_and_target() {
    let c = parse(&circuit_json(
        2,
        r#"{"kind":"Cnot","wires":{"Two":[1,1]},"param":"None"}"#,
        0,
        0,
    ));
    let err = c.verify().expect_err("must reject");
    assert!(matches!(
        err,
        VerifyError::DuplicateWires { op: 0, wire: 1, .. }
    ));
    assert!(err.to_string().contains("distinct wires"), "{err}");
}

#[test]
fn rejects_arity_mismatch() {
    // CNOT with a single wire.
    let c = parse(&circuit_json(
        2,
        r#"{"kind":"Cnot","wires":{"One":0},"param":"None"}"#,
        0,
        0,
    ));
    let err = c.verify().expect_err("must reject");
    assert!(matches!(
        err,
        VerifyError::ArityMismatch {
            op: 0,
            expected: 2,
            got: 1,
            ..
        }
    ));
}

#[test]
fn rejects_bad_parameter_indices() {
    // RX reads trainable slot 7 but the circuit declares only 2 slots.
    let c = parse(&circuit_json(
        1,
        r#"{"kind":"RX","wires":{"One":0},"param":{"Trainable":7}}"#,
        0,
        2,
    ));
    let err = c.verify().expect_err("must reject");
    assert!(matches!(
        err,
        VerifyError::ParamIndexOutOfRange {
            op: 0,
            index: 7,
            declared: 2,
            source: "trainable",
            ..
        }
    ));
    let msg = err.to_string();
    assert!(
        msg.contains("slot 7") && msg.contains("2"),
        "actionable: {msg}"
    );

    // Same for an input slot.
    let c = parse(&circuit_json(
        1,
        r#"{"kind":"RY","wires":{"One":0},"param":{"Input":3}}"#,
        1,
        0,
    ));
    let err = c.verify().expect_err("must reject");
    assert!(matches!(
        err,
        VerifyError::ParamIndexOutOfRange {
            index: 3,
            declared: 1,
            source: "input",
            ..
        }
    ));
}

#[test]
fn rejects_missing_and_unexpected_parameters() {
    let c = parse(&circuit_json(
        1,
        r#"{"kind":"RZ","wires":{"One":0},"param":"None"}"#,
        0,
        0,
    ));
    assert!(matches!(
        c.verify().expect_err("rotation without parameter"),
        VerifyError::MissingParam { op: 0, .. }
    ));

    let c = parse(&circuit_json(
        1,
        r#"{"kind":"H","wires":{"One":0},"param":{"Fixed":0.5}}"#,
        0,
        0,
    ));
    assert!(matches!(
        c.verify().expect_err("fixed gate with parameter"),
        VerifyError::UnexpectedParam { op: 0, .. }
    ));
}

#[test]
fn rejects_non_unitary_fixed_matrix() {
    // The IR stores gate kind + angle rather than raw matrices, so the one
    // way serialized data can smuggle a non-unitary matrix past the type
    // system is a non-finite fixed angle (every finite angle yields a
    // unitary rotation; NaN/inf yield matrices of NaNs). `1e400` overflows
    // JSON number parsing to +inf and must be rejected before it poisons a
    // statevector.
    let c = parse(&circuit_json(
        1,
        r#"{"kind":"RX","wires":{"One":0},"param":{"Fixed":1e400}}"#,
        0,
        0,
    ));
    let err = c.verify().expect_err("must reject");
    assert!(
        matches!(err, VerifyError::NonFiniteAngle { op: 0, .. }),
        "got {err:?}"
    );
    assert!(err.to_string().contains("not finite"), "{err}");

    // The unitarity detector itself flags a genuinely skewed matrix (and
    // the NonUnitary rendering tells the user which op and by how much).
    let mut skewed = hqnn_qsim::GateKind::H.matrix(0.0);
    skewed[0][0] = skewed[0][0].scale(1.0 + 1e-6);
    assert!(hqnn_qsim::unitarity_deviation(&skewed) > hqnn_qsim::UNITARITY_TOL);
    let rendered = VerifyError::NonUnitary {
        op: 3,
        kind: hqnn_qsim::GateKind::H,
        theta: 0.0,
        deviation: 2e-6,
    }
    .to_string();
    assert!(
        rendered.contains("op 3") && rendered.contains("unitarity"),
        "{rendered}"
    );
}

#[test]
fn second_op_defect_is_reported_at_its_index() {
    let ops = concat!(
        r#"{"kind":"H","wires":{"One":0},"param":"None"},"#,
        r#"{"kind":"Cz","wires":{"Two":[0,3]},"param":"None"}"#
    );
    let c = parse(&circuit_json(2, ops, 0, 0));
    let err = c.verify().expect_err("must reject");
    assert!(matches!(
        err,
        VerifyError::WireOutOfRange { op: 1, wire: 3, .. }
    ));
    assert!(err.to_string().starts_with("op 1"), "{err}");
}

#[test]
fn fusion_audit_accepts_all_templates() {
    for kind in [EntanglerKind::Basic, EntanglerKind::Strong] {
        for n_qubits in 1..=5 {
            for depth in 1..=3 {
                let c = QnnTemplate::new(n_qubits, depth, kind).build();
                let plan = hqnn_qsim::FusePlan::new(&c);
                assert_eq!(plan.audit(&c), Ok(()), "{kind:?}({n_qubits}q,{depth}l)");
            }
        }
    }
}

#[test]
fn pair_fusion_audit_accepts_all_templates() {
    // `Circuit::verify` audits both fusion levels; this pins the level-2
    // plan directly across the whole template family, including circuits
    // where pair fusion actually fires.
    for kind in [EntanglerKind::Basic, EntanglerKind::Strong] {
        for n_qubits in 1..=5 {
            for depth in 1..=3 {
                let c = QnnTemplate::new(n_qubits, depth, kind).build();
                let plan = hqnn_qsim::FusePlan::with_level(&c, 2);
                assert_eq!(plan.audit(&c), Ok(()), "{kind:?}({n_qubits}q,{depth}l)");
                assert!(
                    plan.collapsed_ops() >= hqnn_qsim::FusePlan::new(&c).collapsed_ops(),
                    "level 2 never collapses less than level 1: {kind:?}({n_qubits}q,{depth}l)"
                );
            }
        }
    }
}

#[test]
fn pair_embeddings_are_unitary_and_deviation_detects_skew() {
    use hqnn_qsim::gates::{embed_controlled, embed_single};
    let tol = hqnn_qsim::UNITARITY_TOL;
    for theta in [0.0, 0.3, -1.2] {
        for kind in [
            hqnn_qsim::GateKind::RX,
            hqnn_qsim::GateKind::RY,
            hqnn_qsim::GateKind::RZ,
            hqnn_qsim::GateKind::H,
        ] {
            let m = kind.matrix(theta);
            for bit in [0, 1] {
                assert!(
                    hqnn_qsim::unitarity_deviation4(&embed_single(&m, bit)) < tol,
                    "{kind:?} θ={theta} bit={bit}"
                );
            }
            assert!(
                hqnn_qsim::unitarity_deviation4(&embed_controlled(&m, 0, 1)) < tol,
                "controlled {kind:?} θ={theta}"
            );
        }
    }
    // A skewed 4×4 is flagged well above the tolerance.
    let mut skewed = embed_single(&hqnn_qsim::GateKind::H.matrix(0.0), 0);
    skewed[0][0] = skewed[0][0].scale(1.0 + 1e-6);
    assert!(hqnn_qsim::unitarity_deviation4(&skewed) > tol);
}

#[test]
fn verify_audits_the_pair_fusion_level_too() {
    // A circuit whose level-2 plan contains a genuine Pair segment still
    // verifies — i.e. verify() exercises the pair-audit arm, not just the
    // run audit.
    let mut c = Circuit::new(2);
    c.rx(0, hqnn_qsim::ParamSource::Fixed(0.4));
    c.ry(1, hqnn_qsim::ParamSource::Fixed(-0.2));
    c.cnot(0, 1);
    c.rz(0, hqnn_qsim::ParamSource::Fixed(0.9));
    c.ry(1, hqnn_qsim::ParamSource::Fixed(1.1));
    let plan = hqnn_qsim::FusePlan::with_level(&c, 2);
    assert_eq!(plan.fused_ops(), 1, "all five ops collapse into one pair");
    assert_eq!(c.verify(), Ok(()));
}

#[test]
fn fusion_audit_rejects_plan_for_different_circuit() {
    let mut a = Circuit::new(2);
    a.h(0);
    a.h(1);
    let plan = hqnn_qsim::FusePlan::new(&a);
    let mut b = Circuit::new(2);
    b.h(0);
    let err = plan.audit(&b).expect_err("op-count mismatch");
    assert!(err.contains("2 ops") && err.contains("1"), "{err}");
}

#[test]
fn verify_is_cheap_enough_for_debug_constructors() {
    // Not a benchmark — just a sanity check that a deep template verifies
    // without pathological cost (the audit is linear in ops).
    let c = QnnTemplate::new(6, 8, EntanglerKind::Strong).build();
    for _ in 0..100 {
        assert_eq!(c.verify(), Ok(()));
    }
}
