//! Regression test for the `qsim.statevector_len` gauge under concurrency.
//!
//! Before the batch runtime, the gauge was last-writer-wins: with circuits of
//! different widths running on parallel workers, the reported working-set
//! size depended on which run finished last. The gauge is now a high-water
//! mark, so concurrent mixed-size runs must always report the largest
//! statevector simulated — deterministically.
//!
//! Lives in its own integration-test binary so the process-global telemetry
//! registry is not shared with unrelated tests.

use hqnn_qsim::Circuit;

fn ghz(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 1..n {
        c.cnot(q - 1, q);
    }
    c
}

#[test]
fn statevector_gauge_reports_max_across_concurrent_sizes() {
    let small = ghz(3); // 2^3 = 8 amplitudes
    let large = ghz(6); // 2^6 = 64 amplitudes

    // Interleave many runs of both widths across two threads. Under
    // last-writer-wins this flaps between 8 and 64 depending on scheduling;
    // the high-water mark must land on 64 every time.
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for _ in 0..50 {
                let _ = small.run(&[], &[]);
            }
        });
        scope.spawn(|| {
            for _ in 0..50 {
                let _ = large.run(&[], &[]);
                let _ = small.run(&[], &[]);
            }
        });
    });

    let snap = hqnn_telemetry::snapshot();
    assert_eq!(snap.gauges["qsim.statevector_len"], 64.0);

    // The mark is per report window: a reset clears it, after which a small
    // run alone reports its own size.
    hqnn_telemetry::reset();
    let _ = small.run(&[], &[]);
    let snap = hqnn_telemetry::snapshot();
    assert_eq!(snap.gauges["qsim.statevector_len"], 8.0);
}
