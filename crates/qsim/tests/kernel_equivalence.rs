//! Property tests: the chunked amplitude-pair kernels in `state.rs` are
//! **bitwise** equal to the scalar reference loops they replaced.
//!
//! The rewrite restructured the index walks (`apply_single` into
//! contiguous half-block sweeps; `apply_controlled` from a scan of the
//! whole state with a `continue` on control-0 indices to a walk that
//! enumerates only control-1 pairs) but kept the per-pair arithmetic as
//! the exact expression `m·(a, b)ᵀ`. Same pairs, same expressions → the
//! outputs must match to the bit, which is what pins the workspace-wide
//! determinism contract through the kernel swap. The reference
//! implementations below are verbatim copies of the pre-rewrite loops.

use hqnn_qsim::{StateVector, C64};
use proptest::prelude::*;

type Matrix2 = [[C64; 2]; 2];

/// Pre-rewrite `apply_single`: per-block index loop with per-iteration
/// bounds checks.
fn reference_apply_single(amps: &mut [C64], m: &Matrix2, target: usize) {
    let stride = 1usize << target;
    let len = amps.len();
    let mut base = 0;
    while base < len {
        for i in base..base + stride {
            let a = amps[i];
            let b = amps[i + stride];
            amps[i] = m[0][0] * a + m[0][1] * b;
            amps[i + stride] = m[1][0] * a + m[1][1] * b;
        }
        base += stride << 1;
    }
}

/// Pre-rewrite `apply_controlled`: scans every target-0 index and skips the
/// control-0 half with `continue`.
fn reference_apply_controlled(amps: &mut [C64], m: &Matrix2, control: usize, target: usize) {
    let t_stride = 1usize << target;
    let c_mask = 1usize << control;
    let len = amps.len();
    let mut base = 0;
    while base < len {
        for i in base..base + t_stride {
            if i & c_mask == 0 {
                continue;
            }
            let a = amps[i];
            let b = amps[i + t_stride];
            amps[i] = m[0][0] * a + m[0][1] * b;
            amps[i + t_stride] = m[1][0] * a + m[1][1] * b;
        }
        base += t_stride << 1;
    }
}

/// Pre-rewrite `apply_controlled_projected`: same scan, zeroing the
/// control-0 subspace instead of skipping it.
fn reference_apply_controlled_projected(
    amps: &mut [C64],
    m: &Matrix2,
    control: usize,
    target: usize,
) {
    let t_stride = 1usize << target;
    let c_mask = 1usize << control;
    let len = amps.len();
    let mut base = 0;
    while base < len {
        for i in base..base + t_stride {
            if i & c_mask == 0 {
                amps[i] = C64::ZERO;
                amps[i + t_stride] = C64::ZERO;
                continue;
            }
            let a = amps[i];
            let b = amps[i + t_stride];
            amps[i] = m[0][0] * a + m[0][1] * b;
            amps[i + t_stride] = m[1][0] * a + m[1][1] * b;
        }
        base += t_stride << 1;
    }
}

/// A random normalised state on `n` qubits. Normalisation divides every
/// component by the same norm, so both the kernel and the reference see
/// identical input bits.
fn state(n: usize) -> impl Strategy<Value = Vec<C64>> {
    proptest::collection::vec((-1.0f64..1.0, -1.0f64..1.0), 1 << n).prop_map(|pairs| {
        let norm_sqr: f64 = pairs.iter().map(|(re, im)| re * re + im * im).sum();
        if norm_sqr < 1e-9 {
            // Degenerate draw (shrinking drives everything to 0): fall back
            // to the basis state instead of dividing by ~0.
            let mut amps = vec![C64::ZERO; pairs.len()];
            amps[0] = C64::ONE;
            return amps;
        }
        let scale = norm_sqr.sqrt().recip();
        pairs
            .into_iter()
            .map(|(re, im)| C64::new(re * scale, im * scale))
            .collect()
    })
}

/// An arbitrary (not necessarily unitary) 2×2 complex matrix — the kernels
/// never assume unitarity, and the adjoint pass feeds them non-unitary
/// `dU/dθ` matrices.
fn matrix() -> impl Strategy<Value = Matrix2> {
    proptest::collection::vec((-1.5f64..1.5, -1.5f64..1.5), 4).prop_map(|e| {
        [
            [C64::new(e[0].0, e[0].1), C64::new(e[1].0, e[1].1)],
            [C64::new(e[2].0, e[2].1), C64::new(e[3].0, e[3].1)],
        ]
    })
}

/// A random state plus one wire on it.
fn state_and_wire() -> impl Strategy<Value = (Vec<C64>, usize)> {
    (1usize..=10).prop_flat_map(|n| (state(n), 0..n))
}

/// A random state plus two distinct wires on it. Up to 10 qubits so wire
/// strides cross the controlled kernel's flat-walk/nested-walk threshold
/// and both enumeration shapes get exercised.
fn state_and_wire_pair() -> impl Strategy<Value = (Vec<C64>, usize, usize)> {
    (2usize..=10).prop_flat_map(|n| {
        (state(n), 0..n, 0..n - 1).prop_map(|(amps, a, b)| {
            // Map b away from a so the pair is always distinct.
            let b = if b >= a { b + 1 } else { b };
            (amps, a, b)
        })
    })
}

fn bits(amps: &[C64]) -> Vec<(u64, u64)> {
    amps.iter()
        .map(|a| (a.re.to_bits(), a.im.to_bits()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn apply_single_bitwise_matches_reference(
        (amps, target) in state_and_wire(),
        m in matrix(),
    ) {
        let mut reference = amps.clone();
        reference_apply_single(&mut reference, &m, target);
        let mut sv = StateVector::from_amplitudes(amps);
        sv.apply_single(&m, target);
        prop_assert_eq!(bits(sv.amplitudes()), bits(&reference));
    }

    #[test]
    fn apply_controlled_bitwise_matches_reference(
        (amps, control, target) in state_and_wire_pair(),
        m in matrix(),
    ) {
        let mut reference = amps.clone();
        reference_apply_controlled(&mut reference, &m, control, target);
        let mut sv = StateVector::from_amplitudes(amps);
        sv.apply_controlled(&m, control, target);
        prop_assert_eq!(bits(sv.amplitudes()), bits(&reference));
    }

    #[test]
    fn apply_controlled_projected_bitwise_matches_reference(
        (amps, control, target) in state_and_wire_pair(),
        m in matrix(),
    ) {
        let mut reference = amps.clone();
        reference_apply_controlled_projected(&mut reference, &m, control, target);
        let mut sv = StateVector::from_amplitudes(amps);
        sv.apply_controlled_projected(&m, control, target);
        prop_assert_eq!(bits(sv.amplitudes()), bits(&reference));
    }
}
