//! Property tests: the gate-major batch layout is bitwise identical to the
//! row-major layout and to the per-row sequential loop — across random
//! circuits up to 10 qubits, batch sizes, thread budgets, and fusion levels
//! 0/1/2.
//!
//! This is the contract that makes `HQNN_BATCH` safe to flip: the layout
//! changes *when* each gate touches each row's amplitudes, never the FP
//! operation sequence inside a row, so study JSON and training curves are
//! byte-identical whichever layout produced them.

use hqnn_qsim::{
    with_batch_layout, with_fusion_level, BatchLayout, Circuit, GateKind, Observable,
    ParamSource, StateVector,
};
use hqnn_tensor::Matrix;
use proptest::prelude::*;

/// Thread budgets exercised per case: sequential, even, and an odd count
/// that never divides chunk counts cleanly.
const THREADS: [usize; 3] = [1, 2, 7];

/// Fusion levels: off, single-qubit runs, two-qubit pairs.
const LEVELS: [u8; 3] = [0, 1, 2];

/// A random scenario that exercises every compiled sweep-step kind:
/// input-dependent encoding rotations (per-row steps), trainable rotations
/// and CNOT rings (shared steps, fusable into runs and pairs), plus
/// optionally SWAPs and an input-driven controlled rotation.
fn scenario() -> impl Strategy<Value = (Circuit, Vec<f64>, Matrix)> {
    (
        2usize..=10,
        1usize..=2,
        0u8..3,
        proptest::bool::ANY,
        proptest::bool::ANY,
    )
        .prop_map(|(n, depth, axis, use_swap, use_ctrl_input)| {
            let mut c = Circuit::new(n);
            for w in 0..n {
                c.rx(w, ParamSource::Input(w % 2));
            }
            if use_ctrl_input {
                c.controlled_rotation(GateKind::Crx, 0, 1, ParamSource::Input(0));
            }
            let mut slot = 0;
            for d in 0..depth {
                for w in 0..n {
                    let p = ParamSource::Trainable(slot);
                    slot += 1;
                    match (axis as usize + d + w) % 3 {
                        0 => c.rx(w, p),
                        1 => c.ry(w, p),
                        _ => c.rz(w, p),
                    }
                }
                for w in 0..n {
                    c.cnot(w, (w + 1) % n);
                }
                if use_swap {
                    c.swap(0, n - 1);
                }
            }
            c
        })
        .prop_flat_map(|c| {
            let n_params = c.trainable_count();
            let cols = c.input_count();
            let params = proptest::collection::vec(-3.0f64..3.0, n_params..=n_params.max(1));
            let batch = (1usize..=6).prop_flat_map(move |rows| {
                proptest::collection::vec(-2.0f64..2.0, rows * cols)
                    .prop_map(move |data| Matrix::from_vec(rows, cols, data))
            });
            (Just(c), params, batch)
        })
}

fn amp_bits(states: &[StateVector]) -> Vec<Vec<(u64, u64)>> {
    states
        .iter()
        .map(|s| {
            s.amplitudes()
                .iter()
                .map(|a| (a.re.to_bits(), a.im.to_bits()))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn layouts_match_per_row_bitwise_at_every_fusion_level(
        (c, params, x) in scenario()
    ) {
        for level in LEVELS {
            // Per-row reference at this fusion level — the sequential loop
            // both layouts must reproduce bit for bit.
            let reference: Vec<StateVector> = with_fusion_level(level, || {
                (0..x.rows()).map(|r| c.run(x.row(r), &params)).collect()
            });
            let want = amp_bits(&reference);
            for layout in [BatchLayout::Gate, BatchLayout::Row] {
                for threads in THREADS {
                    let got = with_fusion_level(level, || {
                        with_batch_layout(layout, || {
                            hqnn_runtime::with_threads(threads, || c.run_batch(&x, &params))
                        })
                    });
                    prop_assert_eq!(
                        &amp_bits(&got), &want,
                        "level={} layout={:?} threads={}", level, layout, threads
                    );
                }
            }
        }
    }

    #[test]
    fn expectations_agree_across_layouts_bitwise(
        (c, params, x) in scenario()
    ) {
        let obs: Vec<Observable> = (0..c.n_qubits()).map(Observable::z).collect();
        for level in LEVELS {
            let reference = with_fusion_level(level, || {
                with_batch_layout(BatchLayout::Row, || {
                    hqnn_runtime::with_threads(1, || c.expectations_batch(&x, &params, &obs))
                })
            });
            let want: Vec<u64> = reference.as_slice().iter().map(|v| v.to_bits()).collect();
            for threads in THREADS {
                let got = with_fusion_level(level, || {
                    with_batch_layout(BatchLayout::Gate, || {
                        hqnn_runtime::with_threads(threads, || {
                            c.expectations_batch(&x, &params, &obs)
                        })
                    })
                });
                prop_assert_eq!((got.rows(), got.cols()), (x.rows(), obs.len()));
                let got_bits: Vec<u64> =
                    got.as_slice().iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(&got_bits, &want, "level={} threads={}", level, threads);
            }
        }
    }
}
