//! Semantic verification of the circuit IR.
//!
//! [`Circuit::push`] validates ops as they are appended, but that guard is
//! easy to bypass: a circuit deserialized from JSON (saved models, cached
//! studies) never went through `push`, and future IR transformations could
//! emit op lists directly. [`Circuit::verify`] re-checks the *whole*
//! invariant set on a finished circuit, returning a typed, actionable
//! [`VerifyError`] instead of panicking mid-simulation:
//!
//! * every wire index is in bounds and two-qubit ops use distinct wires;
//! * every op's wire arity matches its gate kind;
//! * parameter sources are present exactly on parametrized gates, and
//!   `Input`/`Trainable` indices fall inside the circuit's declared counts;
//! * every gate matrix the simulator will apply is unitary to ≤ 1e-12
//!   (fixed angles are checked at their actual value, so a `NaN` smuggled
//!   in through JSON is rejected before it poisons a statevector);
//! * the gradient engines can handle the circuit: differentiable parameters
//!   only appear on gates with an analytic `dU/dθ` (the adjoint engine's
//!   requirement), and nonunitary ops are rejected outright;
//! * the fusion pass is legal for this circuit: every [`crate::FusePlan`]
//!   run is a same-wire single-qubit chain covering each op exactly once
//!   (see [`crate::FusePlan::audit`]).
//!
//! Ansatz constructors run `verify` in debug builds, and `hqnn-lint`'s CI
//! gate runs the qsim verifier suite, so malformed IR is caught at build
//! time rather than after a grid search diverges.

use std::fmt;

use crate::circuit::{Circuit, ParamSource, Wires};
use crate::complex::C64;
use crate::gates::{dagger, dagger4, matmul2, matmul4, GateKind, Matrix2, Matrix4};

/// Maximum tolerated deviation of `U·U†` from the identity.
pub const UNITARITY_TOL: f64 = 1e-12;

/// A semantic defect found in a circuit's IR. Every variant names the
/// offending op index (as reported by [`Circuit::ops`]) so the message is
/// actionable.
#[derive(Clone, Debug, PartialEq)]
pub enum VerifyError {
    /// An op references a wire `>= n_qubits`.
    WireOutOfRange {
        /// Index of the offending op.
        op: usize,
        /// Gate kind of the offending op.
        kind: GateKind,
        /// The out-of-range wire index.
        wire: usize,
        /// The circuit's wire count.
        n_qubits: usize,
    },
    /// A two-qubit op uses the same wire for control and target.
    DuplicateWires {
        /// Index of the offending op.
        op: usize,
        /// Gate kind of the offending op.
        kind: GateKind,
        /// The coincident wire.
        wire: usize,
    },
    /// An op's wire count does not match its gate's arity.
    ArityMismatch {
        /// Index of the offending op.
        op: usize,
        /// Gate kind of the offending op.
        kind: GateKind,
        /// Wires the gate requires.
        expected: usize,
        /// Wires the op supplies.
        got: usize,
    },
    /// A parametrized gate has `ParamSource::None`.
    MissingParam {
        /// Index of the offending op.
        op: usize,
        /// Gate kind of the offending op.
        kind: GateKind,
    },
    /// A fixed gate carries a parameter.
    UnexpectedParam {
        /// Index of the offending op.
        op: usize,
        /// Gate kind of the offending op.
        kind: GateKind,
    },
    /// An `Input`/`Trainable` index is outside the circuit's declared count.
    ParamIndexOutOfRange {
        /// Index of the offending op.
        op: usize,
        /// Gate kind of the offending op.
        kind: GateKind,
        /// `"input"` or `"trainable"`.
        source: &'static str,
        /// The out-of-range slot index.
        index: usize,
        /// The circuit's declared slot count for that source.
        declared: usize,
    },
    /// A fixed angle is `NaN` or infinite.
    NonFiniteAngle {
        /// Index of the offending op.
        op: usize,
        /// Gate kind of the offending op.
        kind: GateKind,
        /// The non-finite angle.
        theta: f64,
    },
    /// A gate matrix deviates from unitarity beyond [`UNITARITY_TOL`].
    NonUnitary {
        /// Index of the offending op.
        op: usize,
        /// Gate kind of the offending op.
        kind: GateKind,
        /// Angle at which the matrix was evaluated.
        theta: f64,
        /// Max elementwise deviation of `U·U†` from `I`.
        deviation: f64,
    },
    /// A differentiable parameter sits on a gate the adjoint engine cannot
    /// differentiate (no analytic `dU/dθ`).
    AdjointIncompatible {
        /// Index of the offending op.
        op: usize,
        /// Gate kind of the offending op.
        kind: GateKind,
    },
    /// The fusion pass would mis-handle this circuit (see
    /// [`crate::FusePlan::audit`]).
    FusionIllegal {
        /// Audit failure description.
        detail: String,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::WireOutOfRange { op, kind, wire, n_qubits } => write!(
                f,
                "op {op} ({kind:?}): wire {wire} out of range for a {n_qubits}-qubit circuit \
                 (valid wires are 0..{n_qubits})"
            ),
            VerifyError::DuplicateWires { op, kind, wire } => write!(
                f,
                "op {op} ({kind:?}): control and target are both wire {wire}; \
                 two-qubit ops need distinct wires"
            ),
            VerifyError::ArityMismatch { op, kind, expected, got } => write!(
                f,
                "op {op} ({kind:?}): gate acts on {expected} wire(s) but the op supplies {got}"
            ),
            VerifyError::MissingParam { op, kind } => write!(
                f,
                "op {op} ({kind:?}): rotation gate requires a parameter source, got None"
            ),
            VerifyError::UnexpectedParam { op, kind } => write!(
                f,
                "op {op} ({kind:?}): fixed gate takes no parameter but one is attached"
            ),
            VerifyError::ParamIndexOutOfRange { op, kind, source, index, declared } => write!(
                f,
                "op {op} ({kind:?}): {source} slot {index} out of range; the circuit declares \
                 only {declared} {source} slot(s)"
            ),
            VerifyError::NonFiniteAngle { op, kind, theta } => write!(
                f,
                "op {op} ({kind:?}): fixed angle {theta} is not finite"
            ),
            VerifyError::NonUnitary { op, kind, theta, deviation } => write!(
                f,
                "op {op} ({kind:?}): matrix at θ={theta} deviates from unitarity by {deviation:.3e} \
                 (tolerance {UNITARITY_TOL:.0e}); the adjoint engine requires unitary gates"
            ),
            VerifyError::AdjointIncompatible { op, kind } => write!(
                f,
                "op {op} ({kind:?}): differentiable parameter on a gate with no analytic dU/dθ; \
                 the adjoint engine cannot differentiate it"
            ),
            VerifyError::FusionIllegal { detail } => {
                write!(f, "fusion-legality audit failed: {detail}")
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Max elementwise deviation of `m·m†` from the identity — `0.0` for an
/// exactly unitary matrix.
pub fn unitarity_deviation(m: &Matrix2) -> f64 {
    let p = matmul2(m, &dagger(m));
    let mut worst = 0.0f64;
    for (r, row) in p.iter().enumerate() {
        for (c, entry) in row.iter().enumerate() {
            let expected = if r == c { C64::ONE } else { C64::ZERO };
            let mag = (*entry - expected).norm();
            // A NaN deviation propagates as +∞ (definitely non-unitary).
            if mag.is_nan() {
                return f64::INFINITY;
            }
            worst = worst.max(mag);
        }
    }
    worst
}

/// Max elementwise deviation of `m·m†` from the identity for a fused 4×4
/// pair matrix — `0.0` for an exactly unitary matrix.
pub fn unitarity_deviation4(m: &Matrix4) -> f64 {
    let p = matmul4(m, &dagger4(m));
    let mut worst = 0.0f64;
    for (r, row) in p.iter().enumerate() {
        for (c, entry) in row.iter().enumerate() {
            let expected = if r == c { C64::ONE } else { C64::ZERO };
            let mag = (*entry - expected).norm();
            if mag.is_nan() {
                return f64::INFINITY;
            }
            worst = worst.max(mag);
        }
    }
    worst
}

impl Circuit {
    /// Verifies the whole IR invariant set (see the [module docs](self)).
    ///
    /// Returns the **first** defect in op order, so fixing errors one at a
    /// time converges. A circuit built exclusively through [`Circuit::push`]
    /// and the typed append methods always verifies; the interesting inputs
    /// are deserialized or programmatically transformed circuits.
    pub fn verify(&self) -> Result<(), VerifyError> {
        for (i, op) in self.ops().iter().enumerate() {
            let kind = op.kind;
            // Wire arity, bounds, and distinctness.
            match op.wires {
                Wires::One(w) => {
                    if kind.arity() != 1 {
                        return Err(VerifyError::ArityMismatch {
                            op: i,
                            kind,
                            expected: kind.arity(),
                            got: 1,
                        });
                    }
                    if w >= self.n_qubits() {
                        return Err(VerifyError::WireOutOfRange {
                            op: i,
                            kind,
                            wire: w,
                            n_qubits: self.n_qubits(),
                        });
                    }
                }
                Wires::Two(a, b) => {
                    if kind.arity() != 2 {
                        return Err(VerifyError::ArityMismatch {
                            op: i,
                            kind,
                            expected: kind.arity(),
                            got: 2,
                        });
                    }
                    for w in [a, b] {
                        if w >= self.n_qubits() {
                            return Err(VerifyError::WireOutOfRange {
                                op: i,
                                kind,
                                wire: w,
                                n_qubits: self.n_qubits(),
                            });
                        }
                    }
                    if a == b {
                        return Err(VerifyError::DuplicateWires {
                            op: i,
                            kind,
                            wire: a,
                        });
                    }
                }
            }
            // Parameter presence and slot bounds.
            if kind.is_parametrized() && op.param == ParamSource::None {
                return Err(VerifyError::MissingParam { op: i, kind });
            }
            if !kind.is_parametrized() && op.param != ParamSource::None {
                return Err(VerifyError::UnexpectedParam { op: i, kind });
            }
            match op.param {
                ParamSource::Input(idx) if idx >= self.input_count() => {
                    return Err(VerifyError::ParamIndexOutOfRange {
                        op: i,
                        kind,
                        source: "input",
                        index: idx,
                        declared: self.input_count(),
                    });
                }
                ParamSource::Trainable(idx) if idx >= self.trainable_count() => {
                    return Err(VerifyError::ParamIndexOutOfRange {
                        op: i,
                        kind,
                        source: "trainable",
                        index: idx,
                        declared: self.trainable_count(),
                    });
                }
                _ => {}
            }
            // Unitarity of the matrix the simulator will actually apply.
            // SWAP has no 2×2 matrix (and is exactly unitary by
            // construction); everything else is checked — fixed gates and
            // runtime-bound rotations at a probe angle, fixed angles at
            // their real value so non-finite angles are caught here.
            if kind != GateKind::Swap {
                let theta = match op.param {
                    ParamSource::Fixed(t) => {
                        if !t.is_finite() {
                            return Err(VerifyError::NonFiniteAngle {
                                op: i,
                                kind,
                                theta: t,
                            });
                        }
                        t
                    }
                    // Probe angle: irrational-ish, avoids the θ=0 identity
                    // special case masking a broken matrix entry.
                    _ => 0.731,
                };
                let deviation = unitarity_deviation(&kind.matrix(theta));
                if deviation > UNITARITY_TOL {
                    return Err(VerifyError::NonUnitary {
                        op: i,
                        kind,
                        theta,
                        deviation,
                    });
                }
            }
            // Gradient-engine compatibility: the adjoint walk needs an
            // analytic derivative for every differentiable parameter.
            if op.param.is_differentiable() && kind.dmatrix(0.731).is_none() {
                return Err(VerifyError::AdjointIncompatible { op: i, kind });
            }
        }
        // Fusion legality: the structural pass at every level must cover
        // each op exactly once — level 1 with same-wire single-qubit runs,
        // level 2 additionally with legal CNOT/CZ pair segments.
        for level in [1u8, 2] {
            crate::fuse::FusePlan::with_level(self, level)
                .audit(self)
                .map_err(|detail| VerifyError::FusionIllegal { detail })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{EntanglerKind, QnnTemplate};

    #[test]
    fn every_template_the_search_space_can_emit_verifies() {
        for kind in [EntanglerKind::Basic, EntanglerKind::Strong] {
            for n_qubits in 1..=6 {
                for depth in 1..=4 {
                    let c = QnnTemplate::new(n_qubits, depth, kind).build();
                    assert_eq!(
                        c.verify(),
                        Ok(()),
                        "{kind:?}({n_qubits}q,{depth}l) must verify"
                    );
                }
            }
        }
    }

    #[test]
    fn pushed_circuits_always_verify() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.rx(1, ParamSource::Input(0));
        c.rot(
            2,
            ParamSource::Trainable(0),
            ParamSource::Trainable(1),
            ParamSource::Trainable(2),
        );
        c.cnot(0, 2);
        c.swap(1, 2);
        c.cz(0, 1);
        c.controlled_rotation(GateKind::Crz, 0, 1, ParamSource::Fixed(0.4));
        assert_eq!(c.verify(), Ok(()));
    }

    #[test]
    fn unitarity_deviation_is_zero_for_rotations() {
        assert_eq!(unitarity_deviation(&GateKind::RX.matrix(0.0)), 0.0);
        assert!(unitarity_deviation(&GateKind::RY.matrix(1.3)) <= UNITARITY_TOL);
        // A NaN angle produces an unambiguously non-unitary matrix.
        assert!(unitarity_deviation(&GateKind::RX.matrix(f64::NAN)) > 1.0);
    }
}
