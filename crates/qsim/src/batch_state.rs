//! Contiguous multi-row amplitude storage for gate-major batch execution.
//!
//! A [`BatchState`] holds the statevectors of a chunk of batch rows in one
//! allocation — row `r`'s amplitudes occupy the stride
//! `r·2^n .. (r+1)·2^n` — so the gate-major driver can sweep one gate
//! across every row while its matrix is hot. Because each shared-matrix
//! kernel in [`crate::state`] only requires the buffer length to be a
//! multiple of its largest block, sweeping the *whole* buffer in one kernel
//! call transforms every row exactly as a per-row call would, amplitude
//! pair for amplitude pair: the per-row FP operation sequence — and
//! therefore the result — is bitwise identical to running each row alone.

use crate::complex::C64;
use crate::gates::{Matrix2, Matrix4};
use crate::state::{
    apply_pair_amps, apply_single_amps, apply_swap_amps, transform_control1_pairs_amps,
};
use crate::{StateVector, MAX_QUBITS};

/// A chunk of batch rows stored as one contiguous amplitude buffer, each
/// row initialised to `|0…0⟩`.
#[derive(Clone, Debug)]
pub struct BatchState {
    n_qubits: usize,
    rows: usize,
    amps: Vec<C64>,
}

impl BatchState {
    /// Allocates `rows` ground-state rows of `n_qubits` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0` or `n_qubits > MAX_QUBITS`.
    pub fn new(n_qubits: usize, rows: usize) -> Self {
        assert!(n_qubits > 0, "state needs at least one qubit");
        assert!(
            n_qubits <= MAX_QUBITS,
            "{n_qubits} qubits exceeds MAX_QUBITS = {MAX_QUBITS}"
        );
        let dim = 1usize << n_qubits;
        let mut amps = vec![C64::ZERO; rows * dim];
        for r in 0..rows {
            amps[r * dim] = C64::ONE;
        }
        Self {
            n_qubits,
            rows,
            amps,
        }
    }

    /// Number of qubits per row.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of rows in the chunk.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Amplitudes per row (`2^n_qubits`).
    pub fn row_dim(&self) -> usize {
        1usize << self.n_qubits
    }

    /// Borrow of row `r`'s amplitudes.
    pub fn row(&self, r: usize) -> &[C64] {
        let dim = self.row_dim();
        &self.amps[r * dim..(r + 1) * dim]
    }

    /// Mutable borrow of row `r`'s amplitudes, for per-row (input-dependent)
    /// gate applications.
    pub fn row_mut(&mut self, r: usize) -> &mut [C64] {
        let dim = self.row_dim();
        &mut self.amps[r * dim..(r + 1) * dim]
    }

    /// Applies a single-qubit unitary on `target` to every row in one
    /// kernel sweep over the whole buffer.
    pub fn apply_single_all(&mut self, m: &Matrix2, target: usize) {
        debug_assert!(target < self.n_qubits);
        apply_single_amps(&mut self.amps, m, target);
    }

    /// Applies a controlled single-qubit unitary to every row in one sweep.
    pub fn apply_controlled_all(&mut self, m: &Matrix2, control: usize, target: usize) {
        debug_assert!(control < self.n_qubits && target < self.n_qubits && control != target);
        transform_control1_pairs_amps(&mut self.amps, m, 1usize << control, 1usize << target);
    }

    /// Swaps two wires in every row in one sweep.
    pub fn apply_swap_all(&mut self, a: usize, b: usize) {
        debug_assert!(a < self.n_qubits && b < self.n_qubits && a != b);
        apply_swap_amps(&mut self.amps, a, b);
    }

    /// Applies a fused 4×4 pair unitary on `(low, high)` to every row in
    /// one pair-quad kernel sweep.
    pub fn apply_pair_all(&mut self, m: &Matrix4, low: usize, high: usize) {
        debug_assert!(low < high && high < self.n_qubits);
        apply_pair_amps(&mut self.amps, m, low, high);
    }

    /// Splits the chunk into per-row [`StateVector`]s, preserving row order.
    pub fn into_states(mut self) -> Vec<StateVector> {
        let dim = self.row_dim();
        let mut out = Vec::with_capacity(self.rows);
        // Split rows off the tail so each split copies exactly one row.
        for r in (0..self.rows).rev() {
            let tail = self.amps.split_off(r * dim);
            out.push(StateVector::from_raw(self.n_qubits, tail));
        }
        out.reverse();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::{embed_controlled, GateKind};

    #[test]
    fn rows_start_in_ground_state() {
        let b = BatchState::new(3, 4);
        for r in 0..4 {
            assert_eq!(b.row(r)[0], C64::ONE);
            assert!(b.row(r)[1..].iter().all(|&a| a == C64::ZERO));
        }
    }

    #[test]
    fn shared_sweeps_match_per_row_statevectors_bitwise() {
        let n = 4;
        let rows = 3;
        let h = GateKind::H.matrix(0.0);
        let ry = GateKind::RY.matrix(0.81);
        let x = GateKind::X.matrix(0.0);
        let m4 = embed_controlled(&x, 0, 1);

        let mut batch = BatchState::new(n, rows);
        batch.apply_single_all(&h, 0);
        batch.apply_single_all(&ry, 3);
        batch.apply_controlled_all(&x, 0, 2);
        batch.apply_swap_all(1, 3);
        batch.apply_pair_all(&m4, 1, 2);

        let mut want = StateVector::new(n);
        want.apply_single(&h, 0);
        want.apply_single(&ry, 3);
        want.apply_controlled(&x, 0, 2);
        want.apply_swap(1, 3);
        want.apply_two(&m4, 1, 2);

        let states = batch.into_states();
        assert_eq!(states.len(), rows);
        for (r, s) in states.iter().enumerate() {
            assert_eq!(s.amplitudes(), want.amplitudes(), "row {r}");
        }
    }

    #[test]
    fn per_row_applies_touch_only_their_row() {
        let mut batch = BatchState::new(2, 3);
        let x = GateKind::X.matrix(0.0);
        crate::state::apply_single_amps(batch.row_mut(1), &x, 0);
        assert_eq!(batch.row(0)[0], C64::ONE);
        assert_eq!(batch.row(1)[1], C64::ONE);
        assert_eq!(batch.row(1)[0], C64::ZERO);
        assert_eq!(batch.row(2)[0], C64::ONE);
    }

    #[test]
    fn zero_rows_is_fine() {
        let b = BatchState::new(2, 0);
        assert_eq!(b.rows(), 0);
        assert!(b.into_states().is_empty());
    }
}
