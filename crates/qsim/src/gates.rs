//! Gate set and gate matrices.
//!
//! The set covers everything PennyLane's `AngleEmbedding`,
//! `BasicEntanglerLayers` and `StronglyEntanglingLayers` templates emit
//! (rotations + CNOT), plus the common fixed gates and controlled rotations
//! so the simulator is useful beyond the paper's two ansätze.

use serde::{Deserialize, Serialize};

use crate::complex::C64;

/// A 2×2 complex matrix (row-major), the unitary of a single-qubit gate.
pub type Matrix2 = [[C64; 2]; 2];

/// The supported gate kinds.
///
/// Single-qubit fixed gates, single-qubit rotations (one parameter each), and
/// two-qubit gates. `Rot(φ, θ, ω)` from PennyLane is intentionally absent: the
/// ansatz builders decompose it into `RZ(φ)·RY(θ)·RZ(ω)` so that every
/// parametrized op carries exactly one parameter — which keeps both the
/// parameter-shift rule and the adjoint recursion per-gate.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Identity.
    I,
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdg,
    /// `T = diag(1, e^{iπ/4})`.
    T,
    /// `T† = diag(1, e^{-iπ/4})`.
    Tdg,
    /// X-rotation `RX(θ) = e^{-iθX/2}`.
    RX,
    /// Y-rotation `RY(θ) = e^{-iθY/2}`.
    RY,
    /// Z-rotation `RZ(θ) = e^{-iθZ/2}`.
    RZ,
    /// Phase shift `diag(1, e^{iθ})`.
    PhaseShift,
    /// Controlled-NOT (control, target).
    Cnot,
    /// Controlled-Z.
    Cz,
    /// Swap.
    Swap,
    /// Controlled `RX(θ)`.
    Crx,
    /// Controlled `RY(θ)`.
    Cry,
    /// Controlled `RZ(θ)`.
    Crz,
}

impl GateKind {
    /// Number of wires the gate acts on (1 or 2).
    pub fn arity(self) -> usize {
        match self {
            GateKind::Cnot
            | GateKind::Cz
            | GateKind::Swap
            | GateKind::Crx
            | GateKind::Cry
            | GateKind::Crz => 2,
            _ => 1,
        }
    }

    /// `true` when the gate takes a rotation angle.
    pub fn is_parametrized(self) -> bool {
        matches!(
            self,
            GateKind::RX
                | GateKind::RY
                | GateKind::RZ
                | GateKind::PhaseShift
                | GateKind::Crx
                | GateKind::Cry
                | GateKind::Crz
        )
    }

    /// `true` when the gate is a controlled single-qubit operation (its
    /// action on the target subspace is given by [`GateKind::matrix`]).
    pub fn is_controlled(self) -> bool {
        matches!(
            self,
            GateKind::Cnot | GateKind::Cz | GateKind::Crx | GateKind::Cry | GateKind::Crz
        )
    }

    /// `true` when the two-term parameter-shift rule
    /// `dE/dθ = (E(θ+π/2) − E(θ−π/2)) / 2` is exact for this gate.
    ///
    /// Controlled rotations need the four-term rule and are excluded; the
    /// paper's templates only use uncontrolled rotations, which are covered.
    pub fn supports_two_term_shift(self) -> bool {
        matches!(
            self,
            GateKind::RX | GateKind::RY | GateKind::RZ | GateKind::PhaseShift
        )
    }

    /// The 2×2 unitary of the gate (for controlled gates, the unitary applied
    /// to the target when the control is `|1⟩`).
    ///
    /// `theta` is ignored by non-parametrized gates.
    ///
    /// # Panics
    ///
    /// Panics for [`GateKind::Swap`], which has no single-qubit matrix.
    pub fn matrix(self, theta: f64) -> Matrix2 {
        let z = C64::ZERO;
        let o = C64::ONE;
        let i = C64::i();
        let half = theta / 2.0;
        match self {
            GateKind::I => [[o, z], [z, o]],
            GateKind::H => {
                let h = C64::from(std::f64::consts::FRAC_1_SQRT_2);
                [[h, h], [h, -h]]
            }
            GateKind::X | GateKind::Cnot => [[z, o], [o, z]],
            GateKind::Y => [[z, -i], [i, z]],
            GateKind::Z | GateKind::Cz => [[o, z], [z, -o]],
            GateKind::S => [[o, z], [z, i]],
            GateKind::Sdg => [[o, z], [z, -i]],
            GateKind::T => [
                [o, z],
                [z, C64::from_polar_unit(std::f64::consts::FRAC_PI_4)],
            ],
            GateKind::Tdg => [
                [o, z],
                [z, C64::from_polar_unit(-std::f64::consts::FRAC_PI_4)],
            ],
            GateKind::RX | GateKind::Crx => {
                let c = C64::from(half.cos());
                let s = C64::new(0.0, -half.sin());
                [[c, s], [s, c]]
            }
            GateKind::RY | GateKind::Cry => {
                let c = C64::from(half.cos());
                let s = C64::from(half.sin());
                [[c, -s], [s, c]]
            }
            GateKind::RZ | GateKind::Crz => [
                [C64::from_polar_unit(-half), z],
                [z, C64::from_polar_unit(half)],
            ],
            GateKind::PhaseShift => [[o, z], [z, C64::from_polar_unit(theta)]],
            // lint:allow(panic): callers route Swap via apply_swap, never matrix()
            GateKind::Swap => panic!("SWAP has no single-qubit matrix"),
        }
    }

    /// Derivative `dU/dθ` of a parametrized gate's 2×2 matrix, used by the
    /// adjoint differentiation pass. Returns `None` for fixed gates.
    pub fn dmatrix(self, theta: f64) -> Option<Matrix2> {
        let z = C64::ZERO;
        let half = theta / 2.0;
        match self {
            GateKind::RX | GateKind::Crx => {
                let dc = C64::from(-half.sin() / 2.0);
                let ds = C64::new(0.0, -half.cos() / 2.0);
                Some([[dc, ds], [ds, dc]])
            }
            GateKind::RY | GateKind::Cry => {
                let dc = C64::from(-half.sin() / 2.0);
                let ds = C64::from(half.cos() / 2.0);
                Some([[dc, -ds], [ds, dc]])
            }
            GateKind::RZ | GateKind::Crz => Some([
                [C64::from_polar_unit(-half) * C64::new(0.0, -0.5), z],
                [z, C64::from_polar_unit(half) * C64::new(0.0, 0.5)],
            ]),
            GateKind::PhaseShift => Some([[z, z], [z, C64::from_polar_unit(theta) * C64::i()]]),
            _ => None,
        }
    }
}

/// Conjugate transpose of a 2×2 matrix.
pub fn dagger(m: &Matrix2) -> Matrix2 {
    [
        [m[0][0].conj(), m[1][0].conj()],
        [m[0][1].conj(), m[1][1].conj()],
    ]
}

/// Product `a · b` of two 2×2 complex matrices.
pub fn matmul2(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    let mut out = [[C64::ZERO; 2]; 2];
    for (r, out_row) in out.iter_mut().enumerate() {
        for (c, out_rc) in out_row.iter_mut().enumerate() {
            *out_rc = a[r][0] * b[0][c] + a[r][1] * b[1][c];
        }
    }
    out
}

/// `true` when `m` is unitary to within `tol` (i.e. `m·m† ≈ I`).
pub fn is_unitary(m: &Matrix2, tol: f64) -> bool {
    let p = matmul2(m, &dagger(m));
    p[0][0].approx_eq(C64::ONE, tol)
        && p[1][1].approx_eq(C64::ONE, tol)
        && p[0][1].approx_eq(C64::ZERO, tol)
        && p[1][0].approx_eq(C64::ZERO, tol)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_SINGLE: &[GateKind] = &[
        GateKind::I,
        GateKind::H,
        GateKind::X,
        GateKind::Y,
        GateKind::Z,
        GateKind::S,
        GateKind::Sdg,
        GateKind::T,
        GateKind::Tdg,
        GateKind::RX,
        GateKind::RY,
        GateKind::RZ,
        GateKind::PhaseShift,
    ];

    #[test]
    fn all_matrices_are_unitary() {
        for &g in ALL_SINGLE {
            for k in 0..8 {
                let theta = k as f64 * 0.7 - 2.0;
                assert!(is_unitary(&g.matrix(theta), 1e-12), "{g:?} θ={theta}");
            }
        }
    }

    #[test]
    fn rotation_at_zero_is_identity() {
        for g in [
            GateKind::RX,
            GateKind::RY,
            GateKind::RZ,
            GateKind::PhaseShift,
        ] {
            let m = g.matrix(0.0);
            assert!(m[0][0].approx_eq(C64::ONE, 1e-12));
            assert!(m[1][1].approx_eq(C64::ONE, 1e-12));
            assert!(m[0][1].approx_eq(C64::ZERO, 1e-12));
        }
    }

    #[test]
    fn rx_pi_is_minus_i_x() {
        let m = GateKind::RX.matrix(std::f64::consts::PI);
        assert!(m[0][1].approx_eq(C64::new(0.0, -1.0), 1e-12));
        assert!(m[0][0].approx_eq(C64::ZERO, 1e-12));
    }

    #[test]
    fn s_squared_is_z() {
        let s = GateKind::S.matrix(0.0);
        let z = GateKind::Z.matrix(0.0);
        let s2 = matmul2(&s, &s);
        for r in 0..2 {
            for c in 0..2 {
                assert!(s2[r][c].approx_eq(z[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn t_squared_is_s() {
        let t = GateKind::T.matrix(0.0);
        let s = GateKind::S.matrix(0.0);
        let t2 = matmul2(&t, &t);
        for r in 0..2 {
            for c in 0..2 {
                assert!(t2[r][c].approx_eq(s[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn dagger_inverts_unitaries() {
        let m = GateKind::RY.matrix(1.23);
        let p = matmul2(&m, &dagger(&m));
        assert!(p[0][0].approx_eq(C64::ONE, 1e-12));
        assert!(p[0][1].approx_eq(C64::ZERO, 1e-12));
    }

    #[test]
    fn dmatrix_matches_finite_difference() {
        let eps = 1e-6;
        for g in [
            GateKind::RX,
            GateKind::RY,
            GateKind::RZ,
            GateKind::PhaseShift,
            GateKind::Crx,
            GateKind::Cry,
            GateKind::Crz,
        ] {
            let theta = 0.9;
            let d = g.dmatrix(theta).expect("parametrized");
            let up = g.matrix(theta + eps);
            let dn = g.matrix(theta - eps);
            for r in 0..2 {
                for c in 0..2 {
                    let fd = (up[r][c] - dn[r][c]).scale(1.0 / (2.0 * eps));
                    assert!(d[r][c].approx_eq(fd, 1e-6), "{g:?} [{r}][{c}]");
                }
            }
        }
    }

    #[test]
    fn dmatrix_none_for_fixed_gates() {
        assert!(GateKind::H.dmatrix(0.0).is_none());
        assert!(GateKind::Cnot.dmatrix(0.0).is_none());
    }

    #[test]
    fn arity_and_flags() {
        assert_eq!(GateKind::H.arity(), 1);
        assert_eq!(GateKind::Cnot.arity(), 2);
        assert!(GateKind::Crx.is_parametrized());
        assert!(!GateKind::Crx.supports_two_term_shift());
        assert!(GateKind::RZ.supports_two_term_shift());
        assert!(GateKind::Cz.is_controlled());
        assert!(!GateKind::Swap.is_controlled());
    }

    #[test]
    #[should_panic(expected = "SWAP")]
    fn swap_matrix_panics() {
        let _ = GateKind::Swap.matrix(0.0);
    }
}
