//! Gate set and gate matrices.
//!
//! The set covers everything PennyLane's `AngleEmbedding`,
//! `BasicEntanglerLayers` and `StronglyEntanglingLayers` templates emit
//! (rotations + CNOT), plus the common fixed gates and controlled rotations
//! so the simulator is useful beyond the paper's two ansätze.

use serde::{Deserialize, Serialize};

use crate::complex::C64;

/// A 2×2 complex matrix (row-major), the unitary of a single-qubit gate.
pub type Matrix2 = [[C64; 2]; 2];

/// The supported gate kinds.
///
/// Single-qubit fixed gates, single-qubit rotations (one parameter each), and
/// two-qubit gates. `Rot(φ, θ, ω)` from PennyLane is intentionally absent: the
/// ansatz builders decompose it into `RZ(φ)·RY(θ)·RZ(ω)` so that every
/// parametrized op carries exactly one parameter — which keeps both the
/// parameter-shift rule and the adjoint recursion per-gate.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Identity.
    I,
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
    /// Phase gate `S = diag(1, i)`.
    S,
    /// Inverse phase gate `S† = diag(1, -i)`.
    Sdg,
    /// `T = diag(1, e^{iπ/4})`.
    T,
    /// `T† = diag(1, e^{-iπ/4})`.
    Tdg,
    /// X-rotation `RX(θ) = e^{-iθX/2}`.
    RX,
    /// Y-rotation `RY(θ) = e^{-iθY/2}`.
    RY,
    /// Z-rotation `RZ(θ) = e^{-iθZ/2}`.
    RZ,
    /// Phase shift `diag(1, e^{iθ})`.
    PhaseShift,
    /// Controlled-NOT (control, target).
    Cnot,
    /// Controlled-Z.
    Cz,
    /// Swap.
    Swap,
    /// Controlled `RX(θ)`.
    Crx,
    /// Controlled `RY(θ)`.
    Cry,
    /// Controlled `RZ(θ)`.
    Crz,
}

impl GateKind {
    /// Number of wires the gate acts on (1 or 2).
    pub fn arity(self) -> usize {
        match self {
            GateKind::Cnot
            | GateKind::Cz
            | GateKind::Swap
            | GateKind::Crx
            | GateKind::Cry
            | GateKind::Crz => 2,
            _ => 1,
        }
    }

    /// `true` when the gate takes a rotation angle.
    pub fn is_parametrized(self) -> bool {
        matches!(
            self,
            GateKind::RX
                | GateKind::RY
                | GateKind::RZ
                | GateKind::PhaseShift
                | GateKind::Crx
                | GateKind::Cry
                | GateKind::Crz
        )
    }

    /// `true` when the gate is a controlled single-qubit operation (its
    /// action on the target subspace is given by [`GateKind::matrix`]).
    pub fn is_controlled(self) -> bool {
        matches!(
            self,
            GateKind::Cnot | GateKind::Cz | GateKind::Crx | GateKind::Cry | GateKind::Crz
        )
    }

    /// `true` when the two-term parameter-shift rule
    /// `dE/dθ = (E(θ+π/2) − E(θ−π/2)) / 2` is exact for this gate.
    ///
    /// Controlled rotations need the four-term rule and are excluded; the
    /// paper's templates only use uncontrolled rotations, which are covered.
    pub fn supports_two_term_shift(self) -> bool {
        matches!(
            self,
            GateKind::RX | GateKind::RY | GateKind::RZ | GateKind::PhaseShift
        )
    }

    /// The 2×2 unitary of the gate (for controlled gates, the unitary applied
    /// to the target when the control is `|1⟩`).
    ///
    /// `theta` is ignored by non-parametrized gates.
    ///
    /// # Panics
    ///
    /// Panics for [`GateKind::Swap`], which has no single-qubit matrix.
    pub fn matrix(self, theta: f64) -> Matrix2 {
        let z = C64::ZERO;
        let o = C64::ONE;
        let i = C64::i();
        let half = theta / 2.0;
        match self {
            GateKind::I => [[o, z], [z, o]],
            GateKind::H => {
                let h = C64::from(std::f64::consts::FRAC_1_SQRT_2);
                [[h, h], [h, -h]]
            }
            GateKind::X | GateKind::Cnot => [[z, o], [o, z]],
            GateKind::Y => [[z, -i], [i, z]],
            GateKind::Z | GateKind::Cz => [[o, z], [z, -o]],
            GateKind::S => [[o, z], [z, i]],
            GateKind::Sdg => [[o, z], [z, -i]],
            GateKind::T => [
                [o, z],
                [z, C64::from_polar_unit(std::f64::consts::FRAC_PI_4)],
            ],
            GateKind::Tdg => [
                [o, z],
                [z, C64::from_polar_unit(-std::f64::consts::FRAC_PI_4)],
            ],
            GateKind::RX | GateKind::Crx => {
                let c = C64::from(half.cos());
                let s = C64::new(0.0, -half.sin());
                [[c, s], [s, c]]
            }
            GateKind::RY | GateKind::Cry => {
                let c = C64::from(half.cos());
                let s = C64::from(half.sin());
                [[c, -s], [s, c]]
            }
            GateKind::RZ | GateKind::Crz => [
                [C64::from_polar_unit(-half), z],
                [z, C64::from_polar_unit(half)],
            ],
            GateKind::PhaseShift => [[o, z], [z, C64::from_polar_unit(theta)]],
            // lint:allow(panic): callers route Swap via apply_swap, never matrix()
            GateKind::Swap => panic!("SWAP has no single-qubit matrix"),
        }
    }

    /// Derivative `dU/dθ` of a parametrized gate's 2×2 matrix, used by the
    /// adjoint differentiation pass. Returns `None` for fixed gates.
    pub fn dmatrix(self, theta: f64) -> Option<Matrix2> {
        let z = C64::ZERO;
        let half = theta / 2.0;
        match self {
            GateKind::RX | GateKind::Crx => {
                let dc = C64::from(-half.sin() / 2.0);
                let ds = C64::new(0.0, -half.cos() / 2.0);
                Some([[dc, ds], [ds, dc]])
            }
            GateKind::RY | GateKind::Cry => {
                let dc = C64::from(-half.sin() / 2.0);
                let ds = C64::from(half.cos() / 2.0);
                Some([[dc, -ds], [ds, dc]])
            }
            GateKind::RZ | GateKind::Crz => Some([
                [C64::from_polar_unit(-half) * C64::new(0.0, -0.5), z],
                [z, C64::from_polar_unit(half) * C64::new(0.0, 0.5)],
            ]),
            GateKind::PhaseShift => Some([[z, z], [z, C64::from_polar_unit(theta) * C64::i()]]),
            _ => None,
        }
    }
}

/// Conjugate transpose of a 2×2 matrix.
pub fn dagger(m: &Matrix2) -> Matrix2 {
    [
        [m[0][0].conj(), m[1][0].conj()],
        [m[0][1].conj(), m[1][1].conj()],
    ]
}

/// Product `a · b` of two 2×2 complex matrices.
pub fn matmul2(a: &Matrix2, b: &Matrix2) -> Matrix2 {
    let mut out = [[C64::ZERO; 2]; 2];
    for (r, out_row) in out.iter_mut().enumerate() {
        for (c, out_rc) in out_row.iter_mut().enumerate() {
            *out_rc = a[r][0] * b[0][c] + a[r][1] * b[1][c];
        }
    }
    out
}

/// `true` when `m` is unitary to within `tol` (i.e. `m·m† ≈ I`).
pub fn is_unitary(m: &Matrix2, tol: f64) -> bool {
    let p = matmul2(m, &dagger(m));
    p[0][0].approx_eq(C64::ONE, tol)
        && p[1][1].approx_eq(C64::ONE, tol)
        && p[0][1].approx_eq(C64::ZERO, tol)
        && p[1][0].approx_eq(C64::ZERO, tol)
}

/// A 4×4 complex matrix (row-major), the unitary of a fused two-qubit op.
///
/// Basis convention: index `b = 2·b_hi + b_lo` where `b_lo` is the state of
/// the pair's **lower-numbered** wire and `b_hi` the higher-numbered one —
/// the same little-endian order the state vector uses globally.
pub type Matrix4 = [[C64; 4]; 4];

/// The 4×4 identity.
pub fn identity4() -> Matrix4 {
    let z = C64::ZERO;
    let o = C64::ONE;
    [
        [o, z, z, z],
        [z, o, z, z],
        [z, z, o, z],
        [z, z, z, o],
    ]
}

/// Embeds a single-qubit matrix on one bit of the pair basis: `bit = 0`
/// acts on the low wire (`M ⊗ I` in little-endian order), `bit = 1` on the
/// high wire (`I ⊗ M`).
pub fn embed_single(m: &Matrix2, bit: usize) -> Matrix4 {
    assert!(bit < 2, "pair basis has bits 0 and 1, got {bit}");
    let mut out = [[C64::ZERO; 4]; 4];
    // Row/column index b = 2·b_hi + b_lo; the embedded matrix couples the
    // chosen bit while the other bit is diagonal.
    for (r, out_row) in out.iter_mut().enumerate() {
        for (c, out_rc) in out_row.iter_mut().enumerate() {
            let (r_act, r_idle) = ((r >> bit) & 1, (r >> (1 - bit)) & 1);
            let (c_act, c_idle) = ((c >> bit) & 1, (c >> (1 - bit)) & 1);
            if r_idle == c_idle {
                *out_rc = m[r_act][c_act];
            }
        }
    }
    out
}

/// Embeds a controlled single-qubit matrix in the pair basis:
/// `|1⟩⟨1|_control ⊗ M_target + |0⟩⟨0|_control ⊗ I`, with `control_bit` and
/// `target_bit` naming pair-basis bits (0 = low wire, 1 = high wire).
pub fn embed_controlled(m: &Matrix2, control_bit: usize, target_bit: usize) -> Matrix4 {
    assert!(control_bit < 2 && target_bit < 2 && control_bit != target_bit);
    let mut out = [[C64::ZERO; 4]; 4];
    for (r, out_row) in out.iter_mut().enumerate() {
        for (c, out_rc) in out_row.iter_mut().enumerate() {
            let (rc, rt) = ((r >> control_bit) & 1, (r >> target_bit) & 1);
            let (cc, ct) = ((c >> control_bit) & 1, (c >> target_bit) & 1);
            if rc != cc {
                continue;
            }
            *out_rc = if rc == 1 {
                m[rt][ct]
            } else if rt == ct {
                C64::ONE
            } else {
                C64::ZERO
            };
        }
    }
    out
}

/// Conjugate transpose of a 4×4 matrix.
pub fn dagger4(m: &Matrix4) -> Matrix4 {
    let mut out = [[C64::ZERO; 4]; 4];
    for (r, out_row) in out.iter_mut().enumerate() {
        for (c, out_rc) in out_row.iter_mut().enumerate() {
            *out_rc = m[c][r].conj();
        }
    }
    out
}

/// Product `a · b` of two 4×4 complex matrices.
pub fn matmul4(a: &Matrix4, b: &Matrix4) -> Matrix4 {
    let mut out = [[C64::ZERO; 4]; 4];
    for (r, out_row) in out.iter_mut().enumerate() {
        for (c, out_rc) in out_row.iter_mut().enumerate() {
            let mut acc = C64::ZERO;
            for k in 0..4 {
                acc += a[r][k] * b[k][c];
            }
            *out_rc = acc;
        }
    }
    out
}

/// `true` when the 4×4 matrix is unitary to within `tol` (`m·m† ≈ I`).
pub fn is_unitary4(m: &Matrix4, tol: f64) -> bool {
    let p = matmul4(m, &dagger4(m));
    (0..4).all(|r| {
        (0..4).all(|c| {
            let want = if r == c { C64::ONE } else { C64::ZERO };
            p[r][c].approx_eq(want, tol)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL_SINGLE: &[GateKind] = &[
        GateKind::I,
        GateKind::H,
        GateKind::X,
        GateKind::Y,
        GateKind::Z,
        GateKind::S,
        GateKind::Sdg,
        GateKind::T,
        GateKind::Tdg,
        GateKind::RX,
        GateKind::RY,
        GateKind::RZ,
        GateKind::PhaseShift,
    ];

    #[test]
    fn all_matrices_are_unitary() {
        for &g in ALL_SINGLE {
            for k in 0..8 {
                let theta = k as f64 * 0.7 - 2.0;
                assert!(is_unitary(&g.matrix(theta), 1e-12), "{g:?} θ={theta}");
            }
        }
    }

    #[test]
    fn rotation_at_zero_is_identity() {
        for g in [
            GateKind::RX,
            GateKind::RY,
            GateKind::RZ,
            GateKind::PhaseShift,
        ] {
            let m = g.matrix(0.0);
            assert!(m[0][0].approx_eq(C64::ONE, 1e-12));
            assert!(m[1][1].approx_eq(C64::ONE, 1e-12));
            assert!(m[0][1].approx_eq(C64::ZERO, 1e-12));
        }
    }

    #[test]
    fn rx_pi_is_minus_i_x() {
        let m = GateKind::RX.matrix(std::f64::consts::PI);
        assert!(m[0][1].approx_eq(C64::new(0.0, -1.0), 1e-12));
        assert!(m[0][0].approx_eq(C64::ZERO, 1e-12));
    }

    #[test]
    fn s_squared_is_z() {
        let s = GateKind::S.matrix(0.0);
        let z = GateKind::Z.matrix(0.0);
        let s2 = matmul2(&s, &s);
        for r in 0..2 {
            for c in 0..2 {
                assert!(s2[r][c].approx_eq(z[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn t_squared_is_s() {
        let t = GateKind::T.matrix(0.0);
        let s = GateKind::S.matrix(0.0);
        let t2 = matmul2(&t, &t);
        for r in 0..2 {
            for c in 0..2 {
                assert!(t2[r][c].approx_eq(s[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn dagger_inverts_unitaries() {
        let m = GateKind::RY.matrix(1.23);
        let p = matmul2(&m, &dagger(&m));
        assert!(p[0][0].approx_eq(C64::ONE, 1e-12));
        assert!(p[0][1].approx_eq(C64::ZERO, 1e-12));
    }

    #[test]
    fn dmatrix_matches_finite_difference() {
        let eps = 1e-6;
        for g in [
            GateKind::RX,
            GateKind::RY,
            GateKind::RZ,
            GateKind::PhaseShift,
            GateKind::Crx,
            GateKind::Cry,
            GateKind::Crz,
        ] {
            let theta = 0.9;
            let d = g.dmatrix(theta).expect("parametrized");
            let up = g.matrix(theta + eps);
            let dn = g.matrix(theta - eps);
            for r in 0..2 {
                for c in 0..2 {
                    let fd = (up[r][c] - dn[r][c]).scale(1.0 / (2.0 * eps));
                    assert!(d[r][c].approx_eq(fd, 1e-6), "{g:?} [{r}][{c}]");
                }
            }
        }
    }

    #[test]
    fn dmatrix_none_for_fixed_gates() {
        assert!(GateKind::H.dmatrix(0.0).is_none());
        assert!(GateKind::Cnot.dmatrix(0.0).is_none());
    }

    #[test]
    fn arity_and_flags() {
        assert_eq!(GateKind::H.arity(), 1);
        assert_eq!(GateKind::Cnot.arity(), 2);
        assert!(GateKind::Crx.is_parametrized());
        assert!(!GateKind::Crx.supports_two_term_shift());
        assert!(GateKind::RZ.supports_two_term_shift());
        assert!(GateKind::Cz.is_controlled());
        assert!(!GateKind::Swap.is_controlled());
    }

    #[test]
    #[should_panic(expected = "SWAP")]
    fn swap_matrix_panics() {
        let _ = GateKind::Swap.matrix(0.0);
    }

    #[test]
    fn embed_single_commutes_across_bits() {
        // M on bit 0 then N on bit 1 equals N on bit 1 then M on bit 0.
        let m = GateKind::RX.matrix(0.8);
        let n = GateKind::RY.matrix(-1.1);
        let a = matmul4(&embed_single(&n, 1), &embed_single(&m, 0));
        let b = matmul4(&embed_single(&m, 0), &embed_single(&n, 1));
        for r in 0..4 {
            for c in 0..4 {
                assert!(a[r][c].approx_eq(b[r][c], 1e-12));
            }
        }
    }

    #[test]
    fn embedded_matrices_are_unitary() {
        let m = GateKind::RZ.matrix(0.37);
        assert!(is_unitary4(&embed_single(&m, 0), 1e-12));
        assert!(is_unitary4(&embed_single(&m, 1), 1e-12));
        let x = GateKind::X.matrix(0.0);
        assert!(is_unitary4(&embed_controlled(&x, 0, 1), 1e-12));
        assert!(is_unitary4(&embed_controlled(&x, 1, 0), 1e-12));
        assert!(is_unitary4(&identity4(), 1e-12));
    }

    #[test]
    fn embed_controlled_cnot_permutes_basis() {
        // CNOT with control = low bit, target = high bit maps |01⟩↔|11⟩
        // (indices 1 and 3 in b = 2·b_hi + b_lo order) and fixes |00⟩, |10⟩.
        let cnot = embed_controlled(&GateKind::X.matrix(0.0), 0, 1);
        assert!(cnot[0][0].approx_eq(C64::ONE, 1e-12));
        assert!(cnot[2][2].approx_eq(C64::ONE, 1e-12));
        assert!(cnot[3][1].approx_eq(C64::ONE, 1e-12));
        assert!(cnot[1][3].approx_eq(C64::ONE, 1e-12));
        assert!(cnot[1][1].approx_eq(C64::ZERO, 1e-12));
    }

    #[test]
    fn cz_embedding_is_symmetric_in_control_choice() {
        let z = GateKind::Z.matrix(0.0);
        let a = embed_controlled(&z, 0, 1);
        let b = embed_controlled(&z, 1, 0);
        for r in 0..4 {
            for c in 0..4 {
                assert!(a[r][c].approx_eq(b[r][c], 1e-12), "[{r}][{c}]");
            }
        }
    }

    #[test]
    fn dagger4_inverts_unitaries() {
        let m = matmul4(
            &embed_controlled(&GateKind::X.matrix(0.0), 1, 0),
            &embed_single(&GateKind::H.matrix(0.0), 0),
        );
        let p = matmul4(&m, &dagger4(&m));
        let id = identity4();
        for r in 0..4 {
            for c in 0..4 {
                assert!(p[r][c].approx_eq(id[r][c], 1e-12));
            }
        }
    }
}
