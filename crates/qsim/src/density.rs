//! Mixed-state simulation: density matrices and Kraus channels.
//!
//! The paper frames HQNNs as a NISQ-era architecture (§I) where real quantum
//! layers would run on *noisy* hardware; its evaluation simulates ideal
//! circuits. This module supplies the machinery to drop that idealisation:
//! a dense density-matrix simulator with the standard single-qubit noise
//! channels, so the workspace can quantify how much of the ideal layers'
//! behaviour survives decoherence (see the `noisy_circuits` example and the
//! `noise` bench).
//!
//! Memory is O(4ⁿ); [`MAX_DENSITY_QUBITS`] caps construction at a size where
//! a dense mixed-state simulator is still the right tool.

use std::fmt;

use crate::circuit::{Circuit, Op, ParamSource, Wires};
use crate::complex::C64;
use crate::gates::{dagger, GateKind, Matrix2};
use crate::noise::NoiseModel;
use crate::observable::Observable;
use crate::state::StateVector;

/// Maximum qubit count for density-matrix simulation (a 2¹⁰×2¹⁰ complex
/// matrix is 16 MiB; beyond that dense mixed-state simulation stops being
/// sensible here).
pub const MAX_DENSITY_QUBITS: usize = 10;

/// A density matrix `ρ` over `n` qubits, stored dense row-major
/// (`2ⁿ × 2ⁿ` complex entries, little-endian wire order like
/// [`StateVector`]).
///
/// # Example
///
/// ```
/// use hqnn_qsim::{DensityMatrix, StateVector};
///
/// let rho = DensityMatrix::from_state(&StateVector::new(2));
/// assert!((rho.trace().re - 1.0).abs() < 1e-12);
/// assert!((rho.purity() - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct DensityMatrix {
    n_qubits: usize,
    dim: usize,
    elems: Vec<C64>,
}

impl DensityMatrix {
    /// The ground state `|0…0⟩⟨0…0|`.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0` or `n_qubits > MAX_DENSITY_QUBITS`.
    pub fn new(n_qubits: usize) -> Self {
        Self::from_state(&StateVector::new(Self::checked(n_qubits)))
    }

    fn checked(n_qubits: usize) -> usize {
        assert!(n_qubits > 0, "density matrix needs at least one qubit");
        assert!(
            n_qubits <= MAX_DENSITY_QUBITS,
            "{n_qubits} qubits exceeds MAX_DENSITY_QUBITS = {MAX_DENSITY_QUBITS}"
        );
        n_qubits
    }

    /// The pure state `|ψ⟩⟨ψ|`.
    ///
    /// # Panics
    ///
    /// Panics if the state has more than [`MAX_DENSITY_QUBITS`] qubits.
    pub fn from_state(state: &StateVector) -> Self {
        let n = Self::checked(state.n_qubits());
        let dim = 1usize << n;
        let amps = state.amplitudes();
        let mut elems = vec![C64::ZERO; dim * dim];
        for r in 0..dim {
            for c in 0..dim {
                elems[r * dim + c] = amps[r] * amps[c].conj();
            }
        }
        Self {
            n_qubits: n,
            dim,
            elems,
        }
    }

    /// The maximally mixed state `I / 2ⁿ`.
    ///
    /// # Panics
    ///
    /// As for [`DensityMatrix::new`].
    pub fn maximally_mixed(n_qubits: usize) -> Self {
        let n = Self::checked(n_qubits);
        let dim = 1usize << n;
        let mut elems = vec![C64::ZERO; dim * dim];
        let p = 1.0 / dim as f64;
        for r in 0..dim {
            elems[r * dim + r] = C64::from(p);
        }
        Self {
            n_qubits: n,
            dim,
            elems,
        }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Hilbert-space dimension `2ⁿ`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Matrix element `ρ[r][c]`.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn element(&self, r: usize, c: usize) -> C64 {
        assert!(r < self.dim && c < self.dim, "index out of bounds");
        self.elems[r * self.dim + c]
    }

    /// `Tr ρ` — exactly 1 for any physical state.
    pub fn trace(&self) -> C64 {
        hqnn_tensor::fold::ordered_sum(C64::ZERO, (0..self.dim).map(|i| self.elems[i * self.dim + i]))
    }

    /// Purity `Tr ρ²` — 1 for pure states, `1/2ⁿ` for the maximally mixed
    /// state.
    pub fn purity(&self) -> f64 {
        // Tr ρ² = Σ_{rc} ρ_{rc} ρ_{cr} = Σ_{rc} |ρ_{rc}|² for Hermitian ρ.
        hqnn_tensor::fold::ordered_sum_f64(self.elems.iter().map(|e| e.norm_sqr()))
    }

    /// Probability of measuring basis state `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= dim`.
    pub fn probability(&self, index: usize) -> f64 {
        self.element(index, index).re
    }

    /// Expectation `Tr(Oρ)` of a Pauli-string observable.
    ///
    /// # Panics
    ///
    /// Panics if the observable touches a wire outside the state.
    pub fn expectation(&self, observable: &Observable) -> f64 {
        // Apply O to ρ from the left by acting on the *row* index, then trace.
        let mut transformed = self.clone();
        for &(wire, p) in observable.factors() {
            let gate = match p {
                crate::observable::Pauli::X => GateKind::X,
                crate::observable::Pauli::Y => GateKind::Y,
                crate::observable::Pauli::Z => GateKind::Z,
            };
            transformed.left_multiply_single(&gate.matrix(0.0), wire);
        }
        let t = transformed.trace();
        debug_assert!(t.im.abs() < 1e-9, "expectation should be real, got {t}");
        t.re
    }

    /// `⟨Z_wire⟩` via the diagonal (cheaper than the generic path).
    ///
    /// # Panics
    ///
    /// Panics if `wire >= n_qubits`.
    pub fn expectation_z(&self, wire: usize) -> f64 {
        assert!(wire < self.n_qubits, "wire {wire} out of range");
        let mask = 1usize << wire;
        hqnn_tensor::fold::ordered_sum_f64((0..self.dim).map(|i| {
            let sign = if i & mask == 0 { 1.0 } else { -1.0 };
            sign * self.elems[i * self.dim + i].re
        }))
    }

    /// Applies `M` (2×2) to the row index on `target` — `ρ → (M ⊗ I) ρ`.
    fn left_multiply_single(&mut self, m: &Matrix2, target: usize) {
        let stride = 1usize << target;
        for col in 0..self.dim {
            let mut row = 0;
            while row < self.dim {
                for r in row..row + stride {
                    let a = self.elems[r * self.dim + col];
                    let b = self.elems[(r + stride) * self.dim + col];
                    self.elems[r * self.dim + col] = m[0][0] * a + m[0][1] * b;
                    self.elems[(r + stride) * self.dim + col] = m[1][0] * a + m[1][1] * b;
                }
                row += stride << 1;
            }
        }
    }

    /// Applies `M†` (2×2) to the column index on `target` — `ρ → ρ (M† ⊗ I)`.
    fn right_multiply_single_dagger(&mut self, m: &Matrix2, target: usize) {
        let md = dagger(m);
        let stride = 1usize << target;
        for row in 0..self.dim {
            let base = row * self.dim;
            let mut col = 0;
            while col < self.dim {
                for c in col..col + stride {
                    let a = self.elems[base + c];
                    let b = self.elems[base + c + stride];
                    // ρ·M†: columns combine with M† entries transposed.
                    self.elems[base + c] = a * md[0][0] + b * md[1][0];
                    self.elems[base + c + stride] = a * md[0][1] + b * md[1][1];
                }
                col += stride << 1;
            }
        }
    }

    /// Unitary conjugation `ρ → U ρ U†` for a single-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics if `target >= n_qubits`.
    pub fn apply_single(&mut self, m: &Matrix2, target: usize) {
        assert!(target < self.n_qubits, "target wire out of range");
        self.left_multiply_single(m, target);
        self.right_multiply_single_dagger(m, target);
    }

    /// Unitary conjugation for a controlled single-qubit gate.
    ///
    /// # Panics
    ///
    /// Panics if the wires coincide or are out of range.
    pub fn apply_controlled(&mut self, m: &Matrix2, control: usize, target: usize) {
        assert!(
            control < self.n_qubits && target < self.n_qubits,
            "wire out of range"
        );
        assert_ne!(control, target, "control and target must differ");
        // Build the full 4-dim controlled action via the |1⟩⟨1| projector
        // trick on both sides: apply to rows where control bit is 1.
        let c_mask = 1usize << control;
        let t_stride = 1usize << target;
        // Left multiply on rows with control = 1.
        for col in 0..self.dim {
            let mut row = 0;
            while row < self.dim {
                for r in row..row + t_stride {
                    if r & c_mask == 0 {
                        continue;
                    }
                    let a = self.elems[r * self.dim + col];
                    let b = self.elems[(r + t_stride) * self.dim + col];
                    self.elems[r * self.dim + col] = m[0][0] * a + m[0][1] * b;
                    self.elems[(r + t_stride) * self.dim + col] = m[1][0] * a + m[1][1] * b;
                }
                row += t_stride << 1;
            }
        }
        // Right multiply by U† on columns with control = 1.
        let md = dagger(m);
        for row in 0..self.dim {
            let base = row * self.dim;
            let mut col = 0;
            while col < self.dim {
                for c in col..col + t_stride {
                    if c & c_mask == 0 {
                        continue;
                    }
                    let a = self.elems[base + c];
                    let b = self.elems[base + c + t_stride];
                    self.elems[base + c] = a * md[0][0] + b * md[1][0];
                    self.elems[base + c + t_stride] = a * md[0][1] + b * md[1][1];
                }
                col += t_stride << 1;
            }
        }
    }

    /// Applies a Kraus channel `ρ → Σ_k K_k ρ K_k†` on one wire.
    ///
    /// # Panics
    ///
    /// Panics if `target >= n_qubits` or `kraus` is empty.
    pub fn apply_kraus(&mut self, kraus: &[Matrix2], target: usize) {
        assert!(target < self.n_qubits, "target wire out of range");
        assert!(
            !kraus.is_empty(),
            "channel needs at least one Kraus operator"
        );
        let mut acc = vec![C64::ZERO; self.elems.len()];
        for k in kraus {
            let mut term = self.clone();
            term.left_multiply_single(k, target);
            term.right_multiply_single_dagger(k, target);
            for (a, t) in acc.iter_mut().zip(&term.elems) {
                *a += *t;
            }
        }
        self.elems = acc;
    }

    /// Runs a circuit on `|0…0⟩⟨0…0|`, interleaving each gate with the noise
    /// model's channels (noise is applied to every wire the gate touched,
    /// after the gate — the standard gate-error model).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Circuit::run`], or if the
    /// circuit is wider than [`MAX_DENSITY_QUBITS`].
    pub fn run_noisy(
        circuit: &Circuit,
        inputs: &[f64],
        params: &[f64],
        noise: &NoiseModel,
    ) -> Self {
        let mut rho = DensityMatrix::new(circuit.n_qubits());
        for op in circuit.ops() {
            rho.apply_op(op, inputs, params);
            match op.wires {
                Wires::One(w) => noise.apply_after_gate(&mut rho, w),
                Wires::Two(a, b) => {
                    noise.apply_after_gate(&mut rho, a);
                    noise.apply_after_gate(&mut rho, b);
                }
            }
        }
        rho
    }

    fn apply_op(&mut self, op: &Op, inputs: &[f64], params: &[f64]) {
        let theta = if op.kind.is_parametrized() {
            match op.param {
                ParamSource::None => 0.0,
                _ => op.param.resolve(inputs, params),
            }
        } else {
            0.0
        };
        match op.wires {
            Wires::One(w) => self.apply_single(&op.kind.matrix(theta), w),
            Wires::Two(a, b) => match op.kind {
                GateKind::Swap => {
                    // SWAP = 3 CNOTs; cheap at these sizes and reuses the
                    // controlled kernel.
                    let x = GateKind::X.matrix(0.0);
                    self.apply_controlled(&x, a, b);
                    self.apply_controlled(&x, b, a);
                    self.apply_controlled(&x, a, b);
                }
                _ => self.apply_controlled(&op.kind.matrix(theta), a, b),
            },
        }
    }
}

impl fmt::Display for DensityMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "DensityMatrix({} qubits, purity {:.4}) diag [",
            self.n_qubits,
            self.purity()
        )?;
        for i in 0..self.dim {
            let p = self.probability(i);
            if p > 1e-12 {
                writeln!(f, "  |{:0width$b}⟩: {p:.6}", i, width = self.n_qubits)?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::noise::NoiseModel;

    #[test]
    fn ground_state_is_pure_and_normalised() {
        let rho = DensityMatrix::new(3);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 1.0).abs() < 1e-12);
        assert_eq!(rho.probability(0), 1.0);
        assert_eq!(rho.n_qubits(), 3);
        assert_eq!(rho.dim(), 8);
    }

    #[test]
    fn maximally_mixed_has_min_purity() {
        let rho = DensityMatrix::maximally_mixed(2);
        assert!((rho.trace().re - 1.0).abs() < 1e-12);
        assert!((rho.purity() - 0.25).abs() < 1e-12);
        for wire in 0..2 {
            assert!(rho.expectation_z(wire).abs() < 1e-12);
        }
    }

    #[test]
    fn pure_evolution_matches_statevector() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.rx(1, ParamSource::Fixed(0.7));
        c.cnot(0, 2);
        c.rz(2, ParamSource::Fixed(-0.4));
        c.ry(0, ParamSource::Fixed(1.1));
        c.swap(1, 2);
        let psi = c.run(&[], &[]);
        let rho = DensityMatrix::run_noisy(&c, &[], &[], &NoiseModel::noiseless());
        assert!((rho.purity() - 1.0).abs() < 1e-10);
        for wire in 0..3 {
            assert!(
                (rho.expectation_z(wire) - psi.expectation_z(wire)).abs() < 1e-10,
                "wire {wire}"
            );
        }
        for i in 0..8 {
            assert!(
                (rho.probability(i) - psi.probability(i)).abs() < 1e-10,
                "idx {i}"
            );
        }
    }

    #[test]
    fn expectation_matches_fast_path() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cnot(0, 1);
        let rho = DensityMatrix::run_noisy(&c, &[], &[], &NoiseModel::noiseless());
        for wire in 0..2 {
            let generic = rho.expectation(&Observable::z(wire));
            assert!((generic - rho.expectation_z(wire)).abs() < 1e-12);
        }
        // Bell state: ⟨X⟩ = 0 per qubit, but ⟨XX⟩ = +1.
        let xx = Observable::pauli_string([
            (0, crate::observable::Pauli::X),
            (1, crate::observable::Pauli::X),
        ]);
        assert!((rho.expectation(&xx) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn from_state_outer_product() {
        let mut c = Circuit::new(1);
        c.h(0);
        let psi = c.run(&[], &[]);
        let rho = DensityMatrix::from_state(&psi);
        // |+⟩⟨+| has all entries 1/2.
        for r in 0..2 {
            for c_ in 0..2 {
                assert!((rho.element(r, c_).re - 0.5).abs() < 1e-12);
                assert!(rho.element(r, c_).im.abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "MAX_DENSITY_QUBITS")]
    fn too_wide_rejected() {
        let _ = DensityMatrix::new(MAX_DENSITY_QUBITS + 1);
    }
}
