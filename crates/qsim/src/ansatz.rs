//! Variational circuit templates (ansätze) and data encodings.
//!
//! Rust ports of the PennyLane templates the paper's hybrid models are made
//! of: `AngleEmbedding`, `BasicEntanglerLayers` (BEL) and
//! `StronglyEntanglingLayers` (SEL) — see Fig. 5 of the paper for circuit
//! diagrams of the latter two. The [`QnnTemplate`] type packages an encoding
//! plus an ansatz into the ready-to-train circuit the hybrid models use.

use serde::{Deserialize, Serialize};

use crate::circuit::{Circuit, ParamSource};

/// Rotation axis used for single-qubit rotations in encodings and BEL.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RotationAxis {
    /// `RX` rotations.
    X,
    /// `RY` rotations.
    Y,
    /// `RZ` rotations.
    Z,
}

impl RotationAxis {
    fn push(self, circuit: &mut Circuit, wire: usize, param: ParamSource) {
        match self {
            RotationAxis::X => circuit.rx(wire, param),
            RotationAxis::Y => circuit.ry(wire, param),
            RotationAxis::Z => circuit.rz(wire, param),
        }
    }
}

/// Appends angle encoding: one rotation per wire, wire `i` rotated by input
/// slot `i`. This is the paper's "one qubit per feature" encoding (§III-C,
/// citing LaRose & Coyle); the hybrid model's classical input layer first
/// compresses the features down to `n_qubits` values.
///
/// PennyLane's `AngleEmbedding` defaults to `X` rotations; pass
/// [`RotationAxis::X`] for bit-exact parity with the paper's setup.
pub fn angle_encoding(circuit: &mut Circuit, axis: RotationAxis) {
    for wire in 0..circuit.n_qubits() {
        axis.push(circuit, wire, ParamSource::Input(wire));
    }
}

/// Appends `layers` Basic Entangler Layers: per layer, one rotation (default
/// `RX` in PennyLane) on every wire followed by a ring of CNOTs. With two
/// wires the ring degenerates to a single CNOT (PennyLane's convention);
/// with one wire no entangler is applied.
///
/// Trainable parameter slots are allocated starting at `param_offset` in
/// layer-major, wire-minor order. Returns the number of slots consumed
/// (`layers * n_qubits`).
pub fn basic_entangler_layers(
    circuit: &mut Circuit,
    layers: usize,
    axis: RotationAxis,
    param_offset: usize,
) -> usize {
    let n = circuit.n_qubits();
    let mut next = param_offset;
    for _ in 0..layers {
        for wire in 0..n {
            axis.push(circuit, wire, ParamSource::Trainable(next));
            next += 1;
        }
        match n {
            1 => {}
            2 => circuit.cnot(0, 1),
            _ => {
                for wire in 0..n {
                    circuit.cnot(wire, (wire + 1) % n);
                }
            }
        }
    }
    debug_verify(circuit, "basic_entangler_layers");
    next - param_offset
}

/// Debug-build hook run by every ansatz constructor: the emitted IR must
/// pass the full semantic verifier.
fn debug_verify(circuit: &Circuit, builder: &str) {
    let _ = (circuit, builder);
    #[cfg(debug_assertions)]
    if let Err(err) = circuit.verify() {
        // lint:allow(panic): constructor contract — an ansatz builder that
        // emits invalid IR is a bug in this crate.
        panic!("{builder} produced an invalid circuit: {err}");
    }
}

/// Appends `layers` Strongly Entangling Layers: per layer, a general
/// `Rot(φ, θ, ω)` (decomposed as `RZ·RY·RZ`, three parameters) on every wire,
/// followed by a ring of CNOTs with layer-dependent range
/// `r_l = (l mod (n-1)) + 1` (PennyLane's default). One wire → no entangler.
///
/// Returns the number of trainable slots consumed (`layers * n_qubits * 3`).
pub fn strongly_entangling_layers(
    circuit: &mut Circuit,
    layers: usize,
    param_offset: usize,
) -> usize {
    let n = circuit.n_qubits();
    let mut next = param_offset;
    for layer in 0..layers {
        for wire in 0..n {
            circuit.rot(
                wire,
                ParamSource::Trainable(next),
                ParamSource::Trainable(next + 1),
                ParamSource::Trainable(next + 2),
            );
            next += 3;
        }
        if n > 1 {
            let range = (layer % (n - 1)) + 1;
            for wire in 0..n {
                let target = (wire + range) % n;
                circuit.cnot(wire, target);
            }
        }
    }
    debug_verify(circuit, "strongly_entangling_layers");
    next - param_offset
}

/// Which variational template a hybrid model's quantum layer uses — the two
/// designs the paper compares (Fig. 5).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EntanglerKind {
    /// Basic Entangler Layers: one `RX` per wire per layer + CNOT ring.
    Basic,
    /// Strongly Entangling Layers: one `Rot` (3 params) per wire per layer +
    /// ranged CNOT ring. More expressive per layer than BEL — the paper's
    /// central finding is that this expressiveness is what lets the SEL
    /// hybrid stay at (3 qubits, 2 layers) across all problem complexities.
    Strong,
}

impl EntanglerKind {
    /// Trainable parameters per layer for `n_qubits` wires.
    pub fn params_per_layer(self, n_qubits: usize) -> usize {
        match self {
            EntanglerKind::Basic => n_qubits,
            EntanglerKind::Strong => 3 * n_qubits,
        }
    }

    /// Short human-readable name ("BEL"/"SEL") used in reports.
    pub fn short_name(self) -> &'static str {
        match self {
            EntanglerKind::Basic => "BEL",
            EntanglerKind::Strong => "SEL",
        }
    }
}

/// A complete quantum-node specification: angle encoding on `n_qubits` wires
/// followed by `depth` layers of the chosen entangler, read out as one `⟨Z⟩`
/// per wire.
///
/// # Example
///
/// ```
/// use hqnn_qsim::{EntanglerKind, QnnTemplate};
///
/// let t = QnnTemplate::new(3, 2, EntanglerKind::Strong);
/// assert_eq!(t.param_count(), 18); // 3 wires × 2 layers × 3 rotations
/// let circuit = t.build();
/// assert_eq!(circuit.input_count(), 3);
/// assert_eq!(circuit.trainable_count(), 18);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QnnTemplate {
    n_qubits: usize,
    depth: usize,
    kind: EntanglerKind,
    encoding_axis: RotationAxis,
}

impl QnnTemplate {
    /// Creates a template with PennyLane-default axes (X-rotation encoding).
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0` or `depth == 0`.
    pub fn new(n_qubits: usize, depth: usize, kind: EntanglerKind) -> Self {
        assert!(n_qubits > 0, "template needs at least one qubit");
        assert!(depth > 0, "template needs at least one layer");
        Self {
            n_qubits,
            depth,
            kind,
            encoding_axis: RotationAxis::X,
        }
    }

    /// Overrides the encoding rotation axis.
    pub fn with_encoding_axis(mut self, axis: RotationAxis) -> Self {
        self.encoding_axis = axis;
        self
    }

    /// Number of wires (= encoded inputs = readout width).
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Number of entangling layers.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The entangler design.
    pub fn kind(&self) -> EntanglerKind {
        self.kind
    }

    /// Total trainable parameter count.
    pub fn param_count(&self) -> usize {
        self.depth * self.kind.params_per_layer(self.n_qubits)
    }

    /// Builds the executable circuit: encoding followed by the ansatz.
    ///
    /// Debug builds run the full semantic verifier ([`Circuit::verify`]) on
    /// the result — an ansatz constructor that emits unverifiable IR is a
    /// bug in this crate, caught here rather than mid-training.
    pub fn build(&self) -> Circuit {
        let mut c = Circuit::new(self.n_qubits);
        angle_encoding(&mut c, self.encoding_axis);
        match self.kind {
            EntanglerKind::Basic => {
                basic_entangler_layers(&mut c, self.depth, RotationAxis::X, 0);
            }
            EntanglerKind::Strong => {
                strongly_entangling_layers(&mut c, self.depth, 0);
            }
        }
        debug_verify(&c, "QnnTemplate::build");
        c
    }

    /// `"BEL(3q,2l)"`-style label used in experiment reports.
    pub fn label(&self) -> String {
        format!(
            "{}({}q,{}l)",
            self.kind.short_name(),
            self.n_qubits,
            self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates::GateKind;
    use crate::observable::Observable;

    #[test]
    fn angle_encoding_places_one_rotation_per_wire() {
        let mut c = Circuit::new(4);
        angle_encoding(&mut c, RotationAxis::Y);
        assert_eq!(c.ops().len(), 4);
        assert_eq!(c.input_count(), 4);
        assert!(c.ops().iter().all(|op| op.kind == GateKind::RY));
    }

    #[test]
    fn bel_param_count_and_structure() {
        let mut c = Circuit::new(3);
        angle_encoding(&mut c, RotationAxis::X);
        let used = basic_entangler_layers(&mut c, 2, RotationAxis::X, 0);
        assert_eq!(used, 6);
        assert_eq!(c.trainable_count(), 6);
        // Per layer: 3 RX + 3 CNOT; plus 3 encoding rotations.
        assert_eq!(c.ops().len(), 3 + 2 * (3 + 3));
        let census = c.op_census();
        assert_eq!(census.encoding_rotations, 3);
        assert_eq!(census.variational_rotations, 6);
        assert_eq!(census.fixed_two_qubit, 6);
    }

    #[test]
    fn bel_two_wires_uses_single_cnot() {
        let mut c = Circuit::new(2);
        let used = basic_entangler_layers(&mut c, 1, RotationAxis::X, 0);
        assert_eq!(used, 2);
        let cnots = c.ops().iter().filter(|o| o.kind == GateKind::Cnot).count();
        assert_eq!(cnots, 1);
    }

    #[test]
    fn bel_single_wire_has_no_entangler() {
        let mut c = Circuit::new(1);
        basic_entangler_layers(&mut c, 3, RotationAxis::X, 0);
        assert!(c.ops().iter().all(|o| o.kind == GateKind::RX));
    }

    #[test]
    fn sel_param_count_and_ranges() {
        let mut c = Circuit::new(4);
        let used = strongly_entangling_layers(&mut c, 3, 0);
        assert_eq!(used, 36); // 3 layers × 4 wires × 3
                              // Layer ranges cycle 1, 2, 3 for 4 wires.
        let cnots: Vec<_> = c
            .ops()
            .iter()
            .filter(|o| o.kind == GateKind::Cnot)
            .collect();
        assert_eq!(cnots.len(), 12);
        // First layer: range 1 → CNOT(0,1); second layer: range 2 → CNOT(0,2).
        use crate::circuit::Wires;
        assert_eq!(cnots[0].wires, Wires::Two(0, 1));
        assert_eq!(cnots[4].wires, Wires::Two(0, 2));
        assert_eq!(cnots[8].wires, Wires::Two(0, 3));
    }

    #[test]
    fn sel_single_wire_is_rotations_only() {
        let mut c = Circuit::new(1);
        let used = strongly_entangling_layers(&mut c, 2, 0);
        assert_eq!(used, 6);
        assert!(c.ops().iter().all(|o| o.kind.arity() == 1));
    }

    #[test]
    fn param_offset_continues_numbering() {
        let mut c = Circuit::new(2);
        let a = basic_entangler_layers(&mut c, 1, RotationAxis::X, 0);
        let b = basic_entangler_layers(&mut c, 1, RotationAxis::X, a);
        assert_eq!(a + b, 4);
        assert_eq!(c.trainable_count(), 4);
    }

    #[test]
    fn template_paper_configurations() {
        // The paper's winning configs: SEL(3,2) = 18 params, BEL(3,2) = 6,
        // BEL(3,4) = 12, BEL(4,4) = 16.
        assert_eq!(
            QnnTemplate::new(3, 2, EntanglerKind::Strong).param_count(),
            18
        );
        assert_eq!(
            QnnTemplate::new(3, 2, EntanglerKind::Basic).param_count(),
            6
        );
        assert_eq!(
            QnnTemplate::new(3, 4, EntanglerKind::Basic).param_count(),
            12
        );
        assert_eq!(
            QnnTemplate::new(4, 4, EntanglerKind::Basic).param_count(),
            16
        );
    }

    #[test]
    fn template_builds_runnable_circuit() {
        let t = QnnTemplate::new(3, 2, EntanglerKind::Strong);
        let c = t.build();
        assert_eq!(c.trainable_count(), t.param_count());
        let inputs = [0.1, 0.2, 0.3];
        let params = vec![0.05; t.param_count()];
        let obs: Vec<_> = (0..3).map(Observable::z).collect();
        let e = c.expectations(&inputs, &params, &obs);
        assert_eq!(e.len(), 3);
        assert!(e.iter().all(|v| (-1.0..=1.0).contains(v)));
    }

    #[test]
    fn template_gradients_are_consistent() {
        let t = QnnTemplate::new(3, 2, EntanglerKind::Basic);
        let c = t.build();
        let inputs = [0.4, -0.3, 0.8];
        let params: Vec<f64> = (0..t.param_count()).map(|i| 0.3 * i as f64 - 0.7).collect();
        let obs: Vec<_> = (0..3).map(Observable::z).collect();
        let a = crate::gradient::adjoint(&c, &inputs, &params, &obs);
        let p = crate::gradient::parameter_shift(&c, &inputs, &params, &obs);
        assert!(a.d_params.approx_eq(&p.d_params, 1e-10));
        assert!(a.d_inputs.approx_eq(&p.d_inputs, 1e-10));
    }

    #[test]
    fn label_and_axis_override() {
        let t = QnnTemplate::new(5, 7, EntanglerKind::Basic).with_encoding_axis(RotationAxis::Y);
        assert_eq!(t.label(), "BEL(5q,7l)");
        let c = t.build();
        assert_eq!(c.ops()[0].kind, GateKind::RY);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn zero_depth_rejected() {
        let _ = QnnTemplate::new(3, 0, EntanglerKind::Basic);
    }
}
