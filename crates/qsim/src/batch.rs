//! Batched circuit execution and differentiation over sample matrices.
//!
//! The hybrid layers upstream (hqnn-core) process inputs a *batch* at a time
//! — one circuit evaluation per matrix row, all rows independent. These
//! entry points are the simulator's parallel seam, and they offer two
//! execution **layouts** selected by `HQNN_BATCH` (or a scoped
//! [`with_batch_layout`] override):
//!
//! * **`gate` (default, gate-major).** Rows are grouped into fixed-size
//!   chunks, each chunk's statevectors live in one contiguous
//!   [`BatchState`] buffer, and the driver walks the compiled op list
//!   *once*, sweeping each op across every row in the chunk while its
//!   matrix is hot. Row-independent matrices (fixed/trainable angles,
//!   fused runs and pairs) are resolved once per batch and applied with a
//!   single whole-buffer kernel call per chunk; input-dependent encoding
//!   gates are resolved per row inside the sweep. Chunks fan out across
//!   [`hqnn_runtime::par_map_range`].
//! * **`row` (row-major).** The historical layout: each row runs its
//!   circuit end to end, rows fan out across the pool.
//!
//! Both layouts execute each row through the *same kernels in the same
//! order with the same matrices*, so results are **bitwise identical** to
//! the per-row sequential loop — across layouts and regardless of
//! `HQNN_THREADS` (chunk boundaries depend only on the row count, never on
//! the thread budget). `crates/qsim/tests/batch_layout_equivalence.rs`
//! pins that equivalence.

use std::cell::Cell;
use std::sync::OnceLock;

use hqnn_telemetry::env::BatchLayout;
use hqnn_tensor::Matrix;

use crate::batch_state::BatchState;
use crate::circuit::{Circuit, Op, ParamSource, Wires};
use crate::complex::C64;
use crate::fuse::{self, FusePlan, Segment};
use crate::gates::{matmul2, GateKind, Matrix2, Matrix4};
use crate::gradient::{self, Gradients};
use crate::noise::NoiseModel;
use crate::observable::Observable;
use crate::state::{
    apply_pair_amps, apply_single_amps, apply_swap_amps, transform_control1_pairs_amps,
};
use crate::state::StateVector;

thread_local! {
    /// Scoped layout override installed by [`with_batch_layout`]
    /// (`None` = no override).
    static LAYOUT_OVERRIDE: Cell<Option<BatchLayout>> = const { Cell::new(None) };
}

/// The batch layout parsed from `HQNN_BATCH`, read once per process.
/// Unset or invalid values fall back to gate-major (invalid values warn
/// loudly, once).
fn env_batch_layout() -> BatchLayout {
    static ENV: OnceLock<BatchLayout> = OnceLock::new();
    *ENV.get_or_init(|| {
        let Some(raw) = hqnn_telemetry::env::var("HQNN_BATCH") else {
            return BatchLayout::Gate;
        };
        match hqnn_telemetry::env::parse_batch_layout(&raw) {
            Some(layout) => layout,
            None => {
                hqnn_telemetry::event(
                    hqnn_telemetry::Level::Error,
                    "qsim.bad_batch",
                    &[
                        ("value", raw.into()),
                        ("hint", "HQNN_BATCH must be `gate` or `row`".into()),
                    ],
                );
                BatchLayout::Gate
            }
        }
    })
}

/// The batch execution layout on the calling thread, resolved as:
/// [`with_batch_layout`] override → `HQNN_BATCH` → gate-major. Batch entry
/// points resolve this **once on the caller** before fanning out, so a
/// scoped override governs the whole batch regardless of which worker
/// thread runs a chunk.
pub fn batch_layout() -> BatchLayout {
    LAYOUT_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(env_batch_layout)
}

/// Runs `f` with the batch layout pinned for the calling thread (nested
/// calls nest; the previous setting is restored afterwards, also on panic).
/// This is how tests and benchmarks compare layouts inside one process
/// without touching the environment.
pub fn with_batch_layout<R>(layout: BatchLayout, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<BatchLayout>);
    impl Drop for Restore {
        fn drop(&mut self) {
            LAYOUT_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(LAYOUT_OVERRIDE.with(|o| o.replace(Some(layout))));
    f()
}

/// Upper bound on rows per gate-major chunk. Fixed (never derived from the
/// thread budget) so chunk boundaries — and with them span trees and causal
/// IDs — are identical at every `HQNN_THREADS`.
const GATE_CHUNK_ROWS: usize = 4;

/// Rows per gate-major chunk for an `n_qubits`-wire circuit: up to
/// [`GATE_CHUNK_ROWS`], shrinking for very wide circuits so a chunk's
/// contiguous buffer stays within ~2²⁰ amplitudes (16 MiB).
fn chunk_rows_for(n_qubits: usize) -> usize {
    ((1usize << 20) >> n_qubits).clamp(1, GATE_CHUNK_ROWS)
}

/// How a batch executes its rows, resolved **once on the caller thread**
/// before the fan-out (thread-local overrides like
/// [`crate::fuse::with_fusion_level`] do not propagate into pool workers,
/// and the shared state below must be built exactly once per batch either
/// way).
enum BatchMode {
    /// Fused execution: one [`FusePlan`] (at the caller's fusion level)
    /// shared by every row.
    Fused(FusePlan),
    /// Scalar execution with per-op matrices that don't depend on the
    /// per-sample inputs precomputed once and shared by every row — bitwise
    /// identical to each row rebuilding them (same `θ`, same bits).
    Tables(Vec<Option<Matrix2>>),
}

impl BatchMode {
    fn resolve(circuit: &Circuit, params: &[f64]) -> Self {
        let level = fuse::fusion_level();
        if level >= 1 {
            BatchMode::Fused(FusePlan::with_level(circuit, level))
        } else {
            BatchMode::Tables(circuit.precompute_tables(params))
        }
    }

    fn run_row(&self, circuit: &Circuit, inputs: &[f64], params: &[f64]) -> StateVector {
        match self {
            BatchMode::Fused(plan) => plan.run(circuit, inputs, params),
            BatchMode::Tables(tables) => circuit.run_with_tables(tables, inputs, params),
        }
    }
}

/// One step of a compiled gate-major program.
enum SweepOp {
    /// Row-independent single-qubit matrix: one whole-buffer kernel sweep.
    SharedSingle { m: Matrix2, wire: usize },
    /// Row-independent controlled matrix: one whole-buffer kernel sweep.
    SharedControlled {
        m: Matrix2,
        control: usize,
        target: usize,
    },
    /// Row-independent fused 4×4 pair matrix: one pair-quad kernel sweep.
    SharedPair { m: Matrix4, low: usize, high: usize },
    /// SWAP (never parametrized): one whole-buffer sweep.
    Swap { a: usize, b: usize },
    /// Input-dependent op `k`, resolved and applied per row.
    RowOp(usize),
    /// Input-dependent fused run, its matrix chain recomputed per row.
    RowRun { wire: usize, ops: Vec<usize> },
    /// Input-dependent fused pair, its 4×4 chain recomputed per row.
    RowPair {
        low: usize,
        high: usize,
        ops: Vec<usize>,
    },
}

/// Whether the op's angle depends on the per-sample inputs — the same rule
/// [`Circuit::precompute_tables`] uses to leave a table slot empty.
fn input_dependent(op: &Op) -> bool {
    matches!(op.param, ParamSource::Input(_))
}

/// A gate-major program compiled once per batch from the resolved
/// [`BatchMode`]: every row-independent matrix is hoisted out of the
/// per-row loop, everything input-dependent stays a per-row step. The
/// per-row kernel sequence — and therefore every amplitude — is bitwise
/// identical to [`BatchMode::run_row`].
struct BatchProgram {
    steps: Vec<SweepOp>,
    /// Gate applications each row is billed for, matching what the
    /// row-major path emits per row (op count unfused, segment count fused).
    applies_per_row: u64,
    /// Ops fusion eliminated per row (0 unfused).
    collapsed_per_row: u64,
}

impl BatchProgram {
    fn compile(circuit: &Circuit, mode: &BatchMode, params: &[f64]) -> Self {
        let ops = circuit.ops();
        let mut steps = Vec::new();
        let (applies_per_row, collapsed_per_row) = match mode {
            BatchMode::Tables(tables) => {
                for (k, (op, table)) in ops.iter().zip(tables).enumerate() {
                    match (table, op.wires) {
                        (Some(m), Wires::One(w)) => {
                            steps.push(SweepOp::SharedSingle { m: *m, wire: w });
                        }
                        (Some(m), Wires::Two(a, b)) => steps.push(SweepOp::SharedControlled {
                            m: *m,
                            control: a,
                            target: b,
                        }),
                        (None, Wires::Two(a, b)) if op.kind == GateKind::Swap => {
                            steps.push(SweepOp::Swap { a, b });
                        }
                        (None, _) => steps.push(SweepOp::RowOp(k)),
                    }
                }
                (ops.len() as u64, 0)
            }
            BatchMode::Fused(plan) => {
                for segment in plan.segments() {
                    match segment {
                        Segment::Run { wire, ops: run } => {
                            if run.iter().any(|&k| input_dependent(&ops[k])) {
                                steps.push(SweepOp::RowRun {
                                    wire: *wire,
                                    ops: run.clone(),
                                });
                            } else {
                                // Same left-multiplied chain as `FusePlan::run`,
                                // hoisted because no angle reads the inputs.
                                let mut m = fuse::resolved_matrix(&ops[run[0]], &[], params);
                                for &k in &run[1..] {
                                    m = matmul2(&fuse::resolved_matrix(&ops[k], &[], params), &m);
                                }
                                steps.push(SweepOp::SharedSingle { m, wire: *wire });
                            }
                        }
                        Segment::Pair { low, high, ops: pair } => {
                            if pair.iter().any(|&k| input_dependent(&ops[k])) {
                                steps.push(SweepOp::RowPair {
                                    low: *low,
                                    high: *high,
                                    ops: pair.clone(),
                                });
                            } else {
                                let m = fuse::pair_matrix(circuit, *low, *high, pair, &[], params);
                                steps.push(SweepOp::SharedPair {
                                    m,
                                    low: *low,
                                    high: *high,
                                });
                            }
                        }
                        Segment::Direct(k) => {
                            let op = &ops[*k];
                            match op.wires {
                                Wires::Two(a, b) if op.kind == GateKind::Swap => {
                                    steps.push(SweepOp::Swap { a, b });
                                }
                                _ if input_dependent(op) => steps.push(SweepOp::RowOp(*k)),
                                Wires::One(w) => steps.push(SweepOp::SharedSingle {
                                    m: fuse::resolved_matrix(op, &[], params),
                                    wire: w,
                                }),
                                Wires::Two(a, b) => steps.push(SweepOp::SharedControlled {
                                    m: fuse::resolved_matrix(op, &[], params),
                                    control: a,
                                    target: b,
                                }),
                            }
                        }
                    }
                }
                (plan.fused_ops() as u64, plan.collapsed_ops() as u64)
            }
        };
        Self {
            steps,
            applies_per_row,
            collapsed_per_row,
        }
    }

    /// Sweeps the program across rows `row0 .. row0 + rows` of the batch in
    /// one contiguous [`BatchState`]. Telemetry is emitted at chunk
    /// granularity with the same totals the row-major path would produce.
    fn sweep_chunk(
        &self,
        circuit: &Circuit,
        inputs: &Matrix,
        params: &[f64],
        row0: usize,
        rows: usize,
    ) -> BatchState {
        let _span = hqnn_telemetry::span("qsim.batch_sweep");
        hqnn_telemetry::counter("qsim.circuit_runs", rows as u64);
        hqnn_telemetry::counter("qsim.gate_applies", self.applies_per_row * rows as u64);
        if self.collapsed_per_row > 0 {
            hqnn_telemetry::counter("qsim.fuse_collapsed", self.collapsed_per_row * rows as u64);
        }
        hqnn_telemetry::gauge_max("qsim.statevector_len", (1u64 << circuit.n_qubits()) as f64);
        let ops = circuit.ops();
        let mut batch = BatchState::new(circuit.n_qubits(), rows);
        for step in &self.steps {
            match step {
                SweepOp::SharedSingle { m, wire } => batch.apply_single_all(m, *wire),
                SweepOp::SharedControlled { m, control, target } => {
                    batch.apply_controlled_all(m, *control, *target);
                }
                SweepOp::SharedPair { m, low, high } => batch.apply_pair_all(m, *low, *high),
                SweepOp::Swap { a, b } => batch.apply_swap_all(*a, *b),
                SweepOp::RowOp(k) => {
                    let op = &ops[*k];
                    for j in 0..rows {
                        apply_op_amps(op, batch.row_mut(j), inputs.row(row0 + j), params);
                    }
                }
                SweepOp::RowRun { wire, ops: run } => {
                    for j in 0..rows {
                        let x = inputs.row(row0 + j);
                        let mut m = fuse::resolved_matrix(&ops[run[0]], x, params);
                        for &k in &run[1..] {
                            m = matmul2(&fuse::resolved_matrix(&ops[k], x, params), &m);
                        }
                        apply_single_amps(batch.row_mut(j), &m, *wire);
                    }
                }
                SweepOp::RowPair { low, high, ops: pair } => {
                    for j in 0..rows {
                        let m = fuse::pair_matrix(
                            circuit,
                            *low,
                            *high,
                            pair,
                            inputs.row(row0 + j),
                            params,
                        );
                        apply_pair_amps(batch.row_mut(j), &m, *low, *high);
                    }
                }
            }
        }
        batch
    }
}

/// Mirror of [`Circuit::apply_op`] over one row's amplitude slice: same
/// angle resolution, same matrices, same kernels — bitwise identical.
fn apply_op_amps(op: &Op, row: &mut [C64], inputs: &[f64], params: &[f64]) {
    let theta = if op.kind.is_parametrized() {
        op.param.resolve(inputs, params)
    } else {
        0.0
    };
    match op.wires {
        Wires::One(w) => apply_single_amps(row, &op.kind.matrix(theta), w),
        Wires::Two(a, b) => match op.kind {
            GateKind::Swap => apply_swap_amps(row, a, b),
            _ => transform_control1_pairs_amps(row, &op.kind.matrix(theta), 1usize << a, 1usize << b),
        },
    }
}

/// Which differentiation engine [`gradients_batch`] drives per row.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum GradEngine<'a> {
    /// Reverse-pass adjoint differentiation ([`gradient::adjoint`]).
    Adjoint,
    /// Two-term parameter-shift rule ([`gradient::parameter_shift`]).
    ParameterShift,
    /// Parameter-shift through a density-matrix simulation under the given
    /// noise model ([`gradient::parameter_shift_noisy`]).
    ParameterShiftNoisy(&'a NoiseModel),
}

impl Circuit {
    /// Runs the circuit once per row of `inputs` and returns the final
    /// states in row order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.cols() < input_count()` (each row must bind every
    /// encoding slot) or `params.len() < trainable_count()`.
    pub fn run_batch(&self, inputs: &Matrix, params: &[f64]) -> Vec<StateVector> {
        self.check_batch(inputs, params);
        let _span = hqnn_telemetry::span("qsim.run_batch");
        let mode = BatchMode::resolve(self, params);
        match batch_layout() {
            BatchLayout::Row => hqnn_runtime::par_map_range(inputs.rows(), |r| {
                mode.run_row(self, inputs.row(r), params)
            }),
            BatchLayout::Gate => {
                let program = BatchProgram::compile(self, &mode, params);
                let chunk = chunk_rows_for(self.n_qubits());
                let n_chunks = inputs.rows().div_ceil(chunk);
                let chunks = hqnn_runtime::par_map_range(n_chunks, |c| {
                    let row0 = c * chunk;
                    let rows = chunk.min(inputs.rows() - row0);
                    program.sweep_chunk(self, inputs, params, row0, rows)
                });
                let mut out = Vec::with_capacity(inputs.rows());
                for batch in chunks {
                    out.extend(batch.into_states());
                }
                out
            }
        }
    }

    /// Runs the circuit once per row of `inputs` and evaluates every
    /// observable, returning a `(inputs.rows(), observables.len())` matrix.
    ///
    /// Expectations are written directly into the preallocated output
    /// matrix — workers receive disjoint row blocks via
    /// [`hqnn_runtime::par_chunks_mut`] — so no per-row `Vec`s are
    /// collected and re-flattened.
    ///
    /// # Panics
    ///
    /// As for [`Circuit::run_batch`]; additionally if an observable
    /// references a wire outside the circuit.
    pub fn expectations_batch(
        &self,
        inputs: &Matrix,
        params: &[f64],
        observables: &[Observable],
    ) -> Matrix {
        self.check_batch(inputs, params);
        let _span = hqnn_telemetry::span("qsim.expectations_batch");
        let n_rows = inputs.rows();
        let n_obs = observables.len();
        let mut out = Matrix::zeros(n_rows, n_obs);
        if n_rows == 0 || n_obs == 0 {
            return out;
        }
        let mode = BatchMode::resolve(self, params);
        match batch_layout() {
            BatchLayout::Row => {
                hqnn_runtime::par_chunks_mut(out.as_mut_slice(), n_obs, |r, dst| {
                    let state = mode.run_row(self, inputs.row(r), params);
                    for (slot, o) in dst.iter_mut().zip(observables) {
                        *slot = o.expectation(&state);
                    }
                });
            }
            BatchLayout::Gate => {
                let program = BatchProgram::compile(self, &mode, params);
                let chunk = chunk_rows_for(self.n_qubits());
                hqnn_runtime::par_chunks_mut(out.as_mut_slice(), chunk * n_obs, |c, dst| {
                    let row0 = c * chunk;
                    let rows = dst.len() / n_obs;
                    let batch = program.sweep_chunk(self, inputs, params, row0, rows);
                    for j in 0..rows {
                        let row = batch.row(j);
                        for (i, o) in observables.iter().enumerate() {
                            dst[j * n_obs + i] = o.expectation_amps(self.n_qubits(), row);
                        }
                    }
                });
            }
        }
        out
    }

    fn check_batch(&self, inputs: &Matrix, params: &[f64]) {
        assert!(
            inputs.cols() >= self.input_count(),
            "batch rows bind {} inputs, circuit expects {}",
            inputs.cols(),
            self.input_count()
        );
        assert!(
            params.len() >= self.trainable_count(),
            "circuit expects {} trainable params, got {}",
            self.trainable_count(),
            params.len()
        );
    }
}

/// Computes [`Gradients`] for every row of `inputs` with the chosen engine,
/// returned in row order (bitwise identical to calling the engine per row).
/// Gradient engines replay the original op stream per row, so this seam
/// always fans out row-major regardless of `HQNN_BATCH`.
///
/// # Panics
///
/// As for the underlying engine — see [`gradient::adjoint`],
/// [`gradient::parameter_shift`], [`gradient::parameter_shift_noisy`].
pub fn gradients_batch(
    circuit: &Circuit,
    engine: GradEngine,
    inputs: &Matrix,
    params: &[f64],
    observables: &[Observable],
) -> Vec<Gradients> {
    let _span = hqnn_telemetry::span("qsim.gradients_batch");
    hqnn_runtime::par_map_range(inputs.rows(), |r| {
        let row = inputs.row(r);
        match engine {
            GradEngine::Adjoint => gradient::adjoint(circuit, row, params, observables),
            GradEngine::ParameterShift => {
                gradient::parameter_shift(circuit, row, params, observables)
            }
            GradEngine::ParameterShiftNoisy(noise) => {
                gradient::parameter_shift_noisy(circuit, row, params, observables, noise)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::ParamSource;

    fn encoder_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.rx(0, ParamSource::Input(0));
        c.ry(1, ParamSource::Input(1));
        c.cnot(0, 1);
        c.ry(0, ParamSource::Trainable(0));
        c.rz(1, ParamSource::Trainable(1));
        c
    }

    fn sample_batch() -> Matrix {
        Matrix::from_vec(
            5,
            2,
            vec![0.1, -0.4, 0.9, 0.3, -1.2, 0.7, 0.0, 0.0, 2.1, -0.6],
        )
    }

    fn z_all(n: usize) -> Vec<Observable> {
        (0..n).map(Observable::z).collect()
    }

    #[test]
    fn layout_override_nests_and_restores() {
        let ambient = batch_layout();
        let inner = with_batch_layout(BatchLayout::Row, || {
            assert_eq!(batch_layout(), BatchLayout::Row);
            with_batch_layout(BatchLayout::Gate, batch_layout)
        });
        assert_eq!(inner, BatchLayout::Gate);
        assert_eq!(batch_layout(), ambient);
    }

    #[test]
    fn layout_override_restores_on_panic() {
        let ambient = batch_layout();
        let flipped = match ambient {
            BatchLayout::Gate => BatchLayout::Row,
            BatchLayout::Row => BatchLayout::Gate,
        };
        let result =
            std::panic::catch_unwind(|| with_batch_layout(flipped, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(batch_layout(), ambient);
    }

    #[test]
    fn run_batch_matches_per_row_runs() {
        let c = encoder_circuit();
        let x = sample_batch();
        let params = [0.5, -0.3];
        for layout in [BatchLayout::Gate, BatchLayout::Row] {
            for threads in [1, 2, 7] {
                let batch = with_batch_layout(layout, || {
                    hqnn_runtime::with_threads(threads, || c.run_batch(&x, &params))
                });
                assert_eq!(batch.len(), x.rows());
                for (r, state) in batch.iter().enumerate() {
                    let solo = c.run(x.row(r), &params);
                    // Bitwise: same kernels in the same order per row, only
                    // the sweep layout and scheduling differ.
                    for (a, b) in state.amplitudes().iter().zip(solo.amplitudes()) {
                        assert_eq!(
                            a.re.to_bits(),
                            b.re.to_bits(),
                            "layout={layout:?} threads={threads} row={r}"
                        );
                        assert_eq!(
                            a.im.to_bits(),
                            b.im.to_bits(),
                            "layout={layout:?} threads={threads} row={r}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn gate_and_row_layouts_agree_bitwise_fused() {
        let c = encoder_circuit();
        let x = sample_batch();
        let params = [0.5, -0.3];
        for level in [1u8, 2] {
            let (gate, row) = crate::fuse::with_fusion_level(level, || {
                (
                    with_batch_layout(BatchLayout::Gate, || c.run_batch(&x, &params)),
                    with_batch_layout(BatchLayout::Row, || c.run_batch(&x, &params)),
                )
            });
            for (r, (g, w)) in gate.iter().zip(&row).enumerate() {
                for (a, b) in g.amplitudes().iter().zip(w.amplitudes()) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "level={level} row={r}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "level={level} row={r}");
                }
            }
        }
    }

    #[test]
    fn expectations_batch_shape_and_bitwise_rows() {
        let c = encoder_circuit();
        let x = sample_batch();
        let params = [0.5, -0.3];
        let obs = z_all(2);
        let seq = hqnn_runtime::with_threads(1, || c.expectations_batch(&x, &params, &obs));
        assert_eq!(seq.shape(), (5, 2));
        for layout in [BatchLayout::Gate, BatchLayout::Row] {
            for threads in [2, 7] {
                let par = with_batch_layout(layout, || {
                    hqnn_runtime::with_threads(threads, || c.expectations_batch(&x, &params, &obs))
                });
                assert_eq!(par.shape(), seq.shape());
                for (a, b) in par.as_slice().iter().zip(seq.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "layout={layout:?} threads={threads}");
                }
            }
        }
        for r in 0..x.rows() {
            let solo = c.expectations(x.row(r), &params, &obs);
            assert_eq!(seq.row(r), &solo[..]);
        }
    }

    #[test]
    fn swap_gates_sweep_correctly_gate_major() {
        // SWAP takes the dedicated sweep step (no matrix table entry).
        let mut c = Circuit::new(3);
        c.rx(0, ParamSource::Input(0));
        c.swap(0, 2);
        c.ry(1, ParamSource::Trainable(0));
        let x = Matrix::from_vec(3, 1, vec![0.3, -0.8, 1.4]);
        let params = [0.9];
        let gate = with_batch_layout(BatchLayout::Gate, || c.run_batch(&x, &params));
        for (r, state) in gate.iter().enumerate() {
            let solo = c.run(x.row(r), &params);
            assert_eq!(state.amplitudes(), solo.amplitudes(), "row={r}");
        }
    }

    #[test]
    fn gradients_batch_matches_each_engine_per_row() {
        let c = encoder_circuit();
        let x = sample_batch();
        let params = [0.5, -0.3];
        let obs = z_all(2);
        let noise = NoiseModel::depolarizing(0.05);
        let engines = [
            GradEngine::Adjoint,
            GradEngine::ParameterShift,
            GradEngine::ParameterShiftNoisy(&noise),
        ];
        for engine in engines {
            let batch =
                hqnn_runtime::with_threads(3, || gradients_batch(&c, engine, &x, &params, &obs));
            assert_eq!(batch.len(), x.rows());
            for (r, got) in batch.iter().enumerate() {
                let want = match engine {
                    GradEngine::Adjoint => gradient::adjoint(&c, x.row(r), &params, &obs),
                    GradEngine::ParameterShift => {
                        gradient::parameter_shift(&c, x.row(r), &params, &obs)
                    }
                    GradEngine::ParameterShiftNoisy(n) => {
                        gradient::parameter_shift_noisy(&c, x.row(r), &params, &obs, n)
                    }
                };
                assert_eq!(got, &want, "engine={engine:?} row={r}");
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let c = encoder_circuit();
        let x = Matrix::zeros(0, 2);
        for layout in [BatchLayout::Gate, BatchLayout::Row] {
            with_batch_layout(layout, || {
                assert!(c.run_batch(&x, &[0.0, 0.0]).is_empty());
                let e = c.expectations_batch(&x, &[0.0, 0.0], &z_all(2));
                assert_eq!(e.shape(), (0, 2));
            });
        }
        let noise = NoiseModel::depolarizing(0.05);
        for engine in [
            GradEngine::Adjoint,
            GradEngine::ParameterShift,
            GradEngine::ParameterShiftNoisy(&noise),
        ] {
            assert!(
                gradients_batch(&c, engine, &x, &[0.0, 0.0], &z_all(2)).is_empty(),
                "engine={engine:?}"
            );
        }
    }

    #[test]
    fn empty_batch_is_fine_fused_and_threaded() {
        // Zero rows through the fused path still builds the shared plan on
        // the caller, then fans out nothing — under any thread budget.
        let c = encoder_circuit();
        let x = Matrix::zeros(0, 2);
        for threads in [1, 4] {
            hqnn_runtime::with_threads(threads, || {
                crate::fuse::with_fusion(true, || {
                    assert!(c.run_batch(&x, &[0.0, 0.0]).is_empty());
                    let e = c.expectations_batch(&x, &[0.0, 0.0], &z_all(2));
                    assert_eq!(e.shape(), (0, 2));
                });
            });
        }
    }

    #[test]
    fn zero_observables_yield_empty_columns() {
        let c = encoder_circuit();
        let x = sample_batch();
        for layout in [BatchLayout::Gate, BatchLayout::Row] {
            let e = with_batch_layout(layout, || c.expectations_batch(&x, &[0.0, 0.0], &[]));
            assert_eq!(e.shape(), (5, 0));
        }
    }

    #[test]
    #[should_panic(expected = "circuit expects 2")]
    fn run_batch_validates_input_width() {
        let c = encoder_circuit();
        let x = Matrix::zeros(3, 1);
        let _ = c.run_batch(&x, &[0.0, 0.0]);
    }
}
