//! Batched circuit execution and differentiation over sample matrices.
//!
//! The hybrid layers upstream (hqnn-core) process inputs a *batch* at a time
//! — one circuit evaluation per matrix row, all rows independent. These
//! entry points are the simulator's parallel seam: rows fan out across
//! [`hqnn_runtime::par_map_range`] and come back in row order, so every
//! result is bitwise identical to the per-row sequential loop regardless of
//! `HQNN_THREADS`.

use hqnn_tensor::Matrix;

use crate::circuit::Circuit;
use crate::fuse::{fusion_enabled, FusePlan};
use crate::gates::Matrix2;
use crate::gradient::{self, Gradients};
use crate::noise::NoiseModel;
use crate::observable::Observable;
use crate::state::StateVector;

/// How a batch executes its rows, resolved **once on the caller thread**
/// before the fan-out (thread-local overrides like
/// [`crate::fuse::with_fusion`] do not propagate into pool workers, and the
/// shared state below must be built exactly once per batch either way).
enum BatchMode {
    /// Fused execution: one [`FusePlan`] shared by every row.
    Fused(FusePlan),
    /// Scalar execution with per-op matrices that don't depend on the
    /// per-sample inputs precomputed once and shared by every row — bitwise
    /// identical to each row rebuilding them (same `θ`, same bits).
    Tables(Vec<Option<Matrix2>>),
}

impl BatchMode {
    fn resolve(circuit: &Circuit, params: &[f64]) -> Self {
        if fusion_enabled() {
            BatchMode::Fused(FusePlan::new(circuit))
        } else {
            BatchMode::Tables(circuit.precompute_tables(params))
        }
    }

    fn run_row(&self, circuit: &Circuit, inputs: &[f64], params: &[f64]) -> StateVector {
        match self {
            BatchMode::Fused(plan) => plan.run(circuit, inputs, params),
            BatchMode::Tables(tables) => circuit.run_with_tables(tables, inputs, params),
        }
    }
}

/// Which differentiation engine [`gradients_batch`] drives per row.
#[derive(Copy, Clone, Debug, PartialEq)]
pub enum GradEngine<'a> {
    /// Reverse-pass adjoint differentiation ([`gradient::adjoint`]).
    Adjoint,
    /// Two-term parameter-shift rule ([`gradient::parameter_shift`]).
    ParameterShift,
    /// Parameter-shift through a density-matrix simulation under the given
    /// noise model ([`gradient::parameter_shift_noisy`]).
    ParameterShiftNoisy(&'a NoiseModel),
}

impl Circuit {
    /// Runs the circuit once per row of `inputs` and returns the final
    /// states in row order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.cols() < input_count()` (each row must bind every
    /// encoding slot) or `params.len() < trainable_count()`.
    pub fn run_batch(&self, inputs: &Matrix, params: &[f64]) -> Vec<StateVector> {
        self.check_batch(inputs, params);
        let _span = hqnn_telemetry::span("qsim.run_batch");
        let mode = BatchMode::resolve(self, params);
        hqnn_runtime::par_map_range(inputs.rows(), |r| mode.run_row(self, inputs.row(r), params))
    }

    /// Runs the circuit once per row of `inputs` and evaluates every
    /// observable, returning a `(inputs.rows(), observables.len())` matrix.
    ///
    /// # Panics
    ///
    /// As for [`Circuit::run_batch`]; additionally if an observable
    /// references a wire outside the circuit.
    pub fn expectations_batch(
        &self,
        inputs: &Matrix,
        params: &[f64],
        observables: &[Observable],
    ) -> Matrix {
        self.check_batch(inputs, params);
        let _span = hqnn_telemetry::span("qsim.expectations_batch");
        let mode = BatchMode::resolve(self, params);
        let rows = hqnn_runtime::par_map_range(inputs.rows(), |r| {
            let state = mode.run_row(self, inputs.row(r), params);
            observables
                .iter()
                .map(|o| o.expectation(&state))
                .collect::<Vec<f64>>()
        });
        let data: Vec<f64> = rows.into_iter().flatten().collect();
        Matrix::from_vec(inputs.rows(), observables.len(), data)
    }

    fn check_batch(&self, inputs: &Matrix, params: &[f64]) {
        assert!(
            inputs.cols() >= self.input_count(),
            "batch rows bind {} inputs, circuit expects {}",
            inputs.cols(),
            self.input_count()
        );
        assert!(
            params.len() >= self.trainable_count(),
            "circuit expects {} trainable params, got {}",
            self.trainable_count(),
            params.len()
        );
    }
}

/// Computes [`Gradients`] for every row of `inputs` with the chosen engine,
/// returned in row order (bitwise identical to calling the engine per row).
///
/// # Panics
///
/// As for the underlying engine — see [`gradient::adjoint`],
/// [`gradient::parameter_shift`], [`gradient::parameter_shift_noisy`].
pub fn gradients_batch(
    circuit: &Circuit,
    engine: GradEngine,
    inputs: &Matrix,
    params: &[f64],
    observables: &[Observable],
) -> Vec<Gradients> {
    let _span = hqnn_telemetry::span("qsim.gradients_batch");
    hqnn_runtime::par_map_range(inputs.rows(), |r| {
        let row = inputs.row(r);
        match engine {
            GradEngine::Adjoint => gradient::adjoint(circuit, row, params, observables),
            GradEngine::ParameterShift => {
                gradient::parameter_shift(circuit, row, params, observables)
            }
            GradEngine::ParameterShiftNoisy(noise) => {
                gradient::parameter_shift_noisy(circuit, row, params, observables, noise)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::ParamSource;

    fn encoder_circuit() -> Circuit {
        let mut c = Circuit::new(2);
        c.rx(0, ParamSource::Input(0));
        c.ry(1, ParamSource::Input(1));
        c.cnot(0, 1);
        c.ry(0, ParamSource::Trainable(0));
        c.rz(1, ParamSource::Trainable(1));
        c
    }

    fn sample_batch() -> Matrix {
        Matrix::from_vec(
            5,
            2,
            vec![0.1, -0.4, 0.9, 0.3, -1.2, 0.7, 0.0, 0.0, 2.1, -0.6],
        )
    }

    fn z_all(n: usize) -> Vec<Observable> {
        (0..n).map(Observable::z).collect()
    }

    #[test]
    fn run_batch_matches_per_row_runs() {
        let c = encoder_circuit();
        let x = sample_batch();
        let params = [0.5, -0.3];
        for threads in [1, 2, 7] {
            let batch = hqnn_runtime::with_threads(threads, || c.run_batch(&x, &params));
            assert_eq!(batch.len(), x.rows());
            for (r, state) in batch.iter().enumerate() {
                let solo = c.run(x.row(r), &params);
                // Bitwise: same code path per row, only scheduling differs.
                for (a, b) in state.amplitudes().iter().zip(solo.amplitudes()) {
                    assert_eq!(a.re.to_bits(), b.re.to_bits(), "threads={threads} row={r}");
                    assert_eq!(a.im.to_bits(), b.im.to_bits(), "threads={threads} row={r}");
                }
            }
        }
    }

    #[test]
    fn expectations_batch_shape_and_bitwise_rows() {
        let c = encoder_circuit();
        let x = sample_batch();
        let params = [0.5, -0.3];
        let obs = z_all(2);
        let seq = hqnn_runtime::with_threads(1, || c.expectations_batch(&x, &params, &obs));
        assert_eq!(seq.shape(), (5, 2));
        for threads in [2, 7] {
            let par =
                hqnn_runtime::with_threads(threads, || c.expectations_batch(&x, &params, &obs));
            assert_eq!(par.shape(), seq.shape());
            for (a, b) in par.as_slice().iter().zip(seq.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
        }
        for r in 0..x.rows() {
            let solo = c.expectations(x.row(r), &params, &obs);
            assert_eq!(seq.row(r), &solo[..]);
        }
    }

    #[test]
    fn gradients_batch_matches_each_engine_per_row() {
        let c = encoder_circuit();
        let x = sample_batch();
        let params = [0.5, -0.3];
        let obs = z_all(2);
        let noise = NoiseModel::depolarizing(0.05);
        let engines = [
            GradEngine::Adjoint,
            GradEngine::ParameterShift,
            GradEngine::ParameterShiftNoisy(&noise),
        ];
        for engine in engines {
            let batch =
                hqnn_runtime::with_threads(3, || gradients_batch(&c, engine, &x, &params, &obs));
            assert_eq!(batch.len(), x.rows());
            for (r, got) in batch.iter().enumerate() {
                let want = match engine {
                    GradEngine::Adjoint => gradient::adjoint(&c, x.row(r), &params, &obs),
                    GradEngine::ParameterShift => {
                        gradient::parameter_shift(&c, x.row(r), &params, &obs)
                    }
                    GradEngine::ParameterShiftNoisy(n) => {
                        gradient::parameter_shift_noisy(&c, x.row(r), &params, &obs, n)
                    }
                };
                assert_eq!(got, &want, "engine={engine:?} row={r}");
            }
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let c = encoder_circuit();
        let x = Matrix::zeros(0, 2);
        assert!(c.run_batch(&x, &[0.0, 0.0]).is_empty());
        let e = c.expectations_batch(&x, &[0.0, 0.0], &z_all(2));
        assert_eq!(e.shape(), (0, 2));
        let noise = NoiseModel::depolarizing(0.05);
        for engine in [
            GradEngine::Adjoint,
            GradEngine::ParameterShift,
            GradEngine::ParameterShiftNoisy(&noise),
        ] {
            assert!(
                gradients_batch(&c, engine, &x, &[0.0, 0.0], &z_all(2)).is_empty(),
                "engine={engine:?}"
            );
        }
    }

    #[test]
    fn empty_batch_is_fine_fused_and_threaded() {
        // Zero rows through the fused path still builds the shared plan on
        // the caller, then fans out nothing — under any thread budget.
        let c = encoder_circuit();
        let x = Matrix::zeros(0, 2);
        for threads in [1, 4] {
            hqnn_runtime::with_threads(threads, || {
                crate::fuse::with_fusion(true, || {
                    assert!(c.run_batch(&x, &[0.0, 0.0]).is_empty());
                    let e = c.expectations_batch(&x, &[0.0, 0.0], &z_all(2));
                    assert_eq!(e.shape(), (0, 2));
                });
            });
        }
    }

    #[test]
    #[should_panic(expected = "circuit expects 2")]
    fn run_batch_validates_input_width() {
        let c = encoder_circuit();
        let x = Matrix::zeros(3, 1);
        let _ = c.run_batch(&x, &[0.0, 0.0]);
    }
}
