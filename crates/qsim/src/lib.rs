//! Statevector quantum circuit simulator with analytic gradients.
//!
//! This crate is the Rust replacement for PennyLane's `default.qubit` device
//! used by the paper: a dense statevector simulator over a standard gate set,
//! circuit IR distinguishing **encoded inputs** from **trainable parameters**,
//! the two variational templates the paper evaluates —
//! [`ansatz::basic_entangler_layers`] (BEL) and
//! [`ansatz::strongly_entangling_layers`] (SEL) — and two independent
//! differentiation engines:
//!
//! * [`gradient::adjoint`] — O(gates · 2ⁿ) reverse-pass differentiation, used
//!   in training (this is what makes hybrid backprop tractable), and
//! * [`gradient::parameter_shift`] — the textbook two-term shift rule, used to
//!   cross-check the adjoint implementation and for the gradient-cost
//!   ablation bench.
//!
//! Qubit ordering is **little-endian**: wire `q` corresponds to bit `q` of the
//! amplitude index, so `|q1 q0⟩ = |10⟩` is amplitude index `2`.
//!
//! # Example
//!
//! ```
//! use hqnn_qsim::{Circuit, Observable, ParamSource};
//!
//! // ⟨Z⟩ after RX(θ) on |0⟩ is cos(θ).
//! let mut c = Circuit::new(1);
//! c.rx(0, ParamSource::Trainable(0));
//! let theta = 0.3_f64;
//! let e = c.expectations(&[], &[theta], &[Observable::z(0)]);
//! assert!((e[0] - theta.cos()).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ansatz;
pub mod batch;
pub mod batch_state;
pub mod circuit;
pub mod complex;
pub mod density;
pub mod fuse;
pub mod gates;
pub mod gradient;
pub mod measurement;
pub mod metrics;
pub mod noise;
pub mod observable;
pub mod render;
pub mod state;
pub mod verify;

pub use ansatz::{EntanglerKind, QnnTemplate, RotationAxis};
pub use batch::{batch_layout, gradients_batch, with_batch_layout, GradEngine};
pub use batch_state::BatchState;
pub use circuit::{Circuit, Op, ParamSource, Wires};
pub use complex::C64;
pub use density::DensityMatrix;
pub use fuse::{fusion_enabled, fusion_level, with_fusion, with_fusion_level, FusePlan};
pub use gates::GateKind;
pub use gradient::{adjoint, finite_diff, parameter_shift, Gradients};
pub use hqnn_telemetry::env::BatchLayout;
pub use noise::{NoiseChannel, NoiseModel};
pub use observable::{Observable, Pauli};
pub use state::StateVector;
pub use verify::{unitarity_deviation, unitarity_deviation4, VerifyError, UNITARITY_TOL};

/// Maximum supported qubit count. A 2²⁴-amplitude state is ~256 MiB of
/// complex doubles — beyond that a dense simulator stops being the right
/// tool, so construction is rejected early instead of OOM-ing later.
pub const MAX_QUBITS: usize = 24;
