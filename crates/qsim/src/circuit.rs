//! Circuit intermediate representation and execution.
//!
//! A [`Circuit`] is an ordered list of [`Op`]s over a fixed number of wires.
//! Every parametrized op takes its angle from a [`ParamSource`]: a compile-time
//! constant, an **input** slot (data encoding — the `x` of the hybrid model) or
//! a **trainable** slot (variational weights — the `θ`). This split is what
//! lets the differentiation engines produce gradients with respect to both the
//! weights *and* the encoded inputs, so the quantum layer can sit in the middle
//! of a classical network and backpropagate through.

use serde::{Deserialize, Serialize};

use crate::gates::{GateKind, Matrix2};
use crate::observable::Observable;
use crate::state::StateVector;
use crate::MAX_QUBITS;

/// Where a parametrized gate's angle comes from.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ParamSource {
    /// No parameter (fixed gate).
    None,
    /// A compile-time constant angle.
    Fixed(f64),
    /// Index into the per-sample input vector (data encoding).
    Input(usize),
    /// Index into the trainable parameter vector.
    Trainable(usize),
}

impl ParamSource {
    /// Resolves the source to a concrete angle.
    ///
    /// # Panics
    ///
    /// Panics if an `Input`/`Trainable` index is out of range for the
    /// provided slices, or when called on `ParamSource::None`.
    pub fn resolve(&self, inputs: &[f64], params: &[f64]) -> f64 {
        match *self {
            // lint:allow(panic): documented in the method contract above
            ParamSource::None => panic!("gate has no parameter"),
            ParamSource::Fixed(v) => v,
            ParamSource::Input(i) => inputs[i],
            ParamSource::Trainable(i) => params[i],
        }
    }

    /// `true` for `Input` and `Trainable` sources — the ones gradients are
    /// computed for.
    pub fn is_differentiable(&self) -> bool {
        matches!(self, ParamSource::Input(_) | ParamSource::Trainable(_))
    }
}

/// The wires an op acts on.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Wires {
    /// Single-qubit op on one wire.
    One(usize),
    /// Two-qubit op: `(control_or_first, target_or_second)`.
    Two(usize, usize),
}

/// One gate application in a circuit.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Op {
    /// Which gate.
    pub kind: GateKind,
    /// Which wires it acts on.
    pub wires: Wires,
    /// Where its angle (if any) comes from.
    pub param: ParamSource,
}

/// An ordered quantum circuit over `n_qubits` wires.
///
/// # Example
///
/// ```
/// use hqnn_qsim::{Circuit, Observable, ParamSource};
///
/// let mut c = Circuit::new(2);
/// c.ry(0, ParamSource::Input(0));
/// c.ry(1, ParamSource::Trainable(0));
/// c.cnot(0, 1);
/// assert_eq!(c.input_count(), 1);
/// assert_eq!(c.trainable_count(), 1);
/// let e = c.expectations(&[0.4], &[0.2], &[Observable::z(0), Observable::z(1)]);
/// assert_eq!(e.len(), 2);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    n_qubits: usize,
    ops: Vec<Op>,
    n_inputs: usize,
    n_trainable: usize,
}

impl Circuit {
    /// Creates an empty circuit over `n_qubits` wires.
    ///
    /// # Panics
    ///
    /// Panics if `n_qubits == 0` or `n_qubits > MAX_QUBITS`.
    pub fn new(n_qubits: usize) -> Self {
        assert!(n_qubits > 0, "circuit needs at least one wire");
        assert!(
            n_qubits <= MAX_QUBITS,
            "{n_qubits} qubits exceeds MAX_QUBITS = {MAX_QUBITS}"
        );
        Self {
            n_qubits,
            ops: Vec::new(),
            n_inputs: 0,
            n_trainable: 0,
        }
    }

    /// Number of wires.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// The ops in application order.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Number of input (encoding) slots referenced, i.e. max index + 1.
    pub fn input_count(&self) -> usize {
        self.n_inputs
    }

    /// Number of trainable parameter slots referenced, i.e. max index + 1.
    pub fn trainable_count(&self) -> usize {
        self.n_trainable
    }

    /// Appends an arbitrary op.
    ///
    /// # Panics
    ///
    /// Panics when the op is malformed: wires out of range or coincident,
    /// wrong wire arity for the gate, a parameter on a fixed gate, or a
    /// missing parameter on a rotation.
    pub fn push(&mut self, op: Op) {
        match op.wires {
            Wires::One(w) => {
                assert!(w < self.n_qubits, "wire {w} out of range");
                assert_eq!(op.kind.arity(), 1, "{:?} needs two wires", op.kind);
            }
            Wires::Two(a, b) => {
                assert!(a < self.n_qubits && b < self.n_qubits, "wire out of range");
                assert_ne!(a, b, "two-qubit op wires must differ");
                assert_eq!(op.kind.arity(), 2, "{:?} is a single-qubit gate", op.kind);
            }
        }
        if op.kind.is_parametrized() {
            assert!(
                op.param != ParamSource::None,
                "{:?} requires a parameter",
                op.kind
            );
        } else {
            assert!(
                op.param == ParamSource::None,
                "{:?} takes no parameter",
                op.kind
            );
        }
        match op.param {
            ParamSource::Input(i) => self.n_inputs = self.n_inputs.max(i + 1),
            ParamSource::Trainable(i) => self.n_trainable = self.n_trainable.max(i + 1),
            _ => {}
        }
        self.ops.push(op);
    }

    fn push_single(&mut self, kind: GateKind, wire: usize, param: ParamSource) {
        self.push(Op {
            kind,
            wires: Wires::One(wire),
            param,
        });
    }

    /// Appends a Hadamard gate.
    pub fn h(&mut self, wire: usize) {
        self.push_single(GateKind::H, wire, ParamSource::None);
    }

    /// Appends a Pauli-X gate.
    pub fn x(&mut self, wire: usize) {
        self.push_single(GateKind::X, wire, ParamSource::None);
    }

    /// Appends a Pauli-Y gate.
    pub fn y(&mut self, wire: usize) {
        self.push_single(GateKind::Y, wire, ParamSource::None);
    }

    /// Appends a Pauli-Z gate.
    pub fn z(&mut self, wire: usize) {
        self.push_single(GateKind::Z, wire, ParamSource::None);
    }

    /// Appends an `RX` rotation.
    pub fn rx(&mut self, wire: usize, param: ParamSource) {
        self.push_single(GateKind::RX, wire, param);
    }

    /// Appends an `RY` rotation.
    pub fn ry(&mut self, wire: usize, param: ParamSource) {
        self.push_single(GateKind::RY, wire, param);
    }

    /// Appends an `RZ` rotation.
    pub fn rz(&mut self, wire: usize, param: ParamSource) {
        self.push_single(GateKind::RZ, wire, param);
    }

    /// Appends a phase-shift gate.
    pub fn phase_shift(&mut self, wire: usize, param: ParamSource) {
        self.push_single(GateKind::PhaseShift, wire, param);
    }

    /// Appends a PennyLane-style `Rot(φ, θ, ω)` as its `RZ·RY·RZ`
    /// decomposition (applied in circuit order `RZ(φ)`, `RY(θ)`, `RZ(ω)`).
    pub fn rot(&mut self, wire: usize, phi: ParamSource, theta: ParamSource, omega: ParamSource) {
        self.rz(wire, phi);
        self.ry(wire, theta);
        self.rz(wire, omega);
    }

    /// Appends a CNOT with the given control and target.
    pub fn cnot(&mut self, control: usize, target: usize) {
        self.push(Op {
            kind: GateKind::Cnot,
            wires: Wires::Two(control, target),
            param: ParamSource::None,
        });
    }

    /// Appends a CZ gate.
    pub fn cz(&mut self, control: usize, target: usize) {
        self.push(Op {
            kind: GateKind::Cz,
            wires: Wires::Two(control, target),
            param: ParamSource::None,
        });
    }

    /// Appends a SWAP gate.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.push(Op {
            kind: GateKind::Swap,
            wires: Wires::Two(a, b),
            param: ParamSource::None,
        });
    }

    /// Appends a controlled rotation (`Crx`/`Cry`/`Crz`).
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not a controlled rotation.
    pub fn controlled_rotation(
        &mut self,
        kind: GateKind,
        control: usize,
        target: usize,
        param: ParamSource,
    ) {
        assert!(
            matches!(kind, GateKind::Crx | GateKind::Cry | GateKind::Crz),
            "{kind:?} is not a controlled rotation"
        );
        self.push(Op {
            kind,
            wires: Wires::Two(control, target),
            param,
        });
    }

    /// Applies one op to a state given resolved parameter bindings.
    pub(crate) fn apply_op(op: &Op, state: &mut StateVector, inputs: &[f64], params: &[f64]) {
        let theta = if op.kind.is_parametrized() {
            op.param.resolve(inputs, params)
        } else {
            0.0
        };
        Self::apply_op_resolved(op, state, theta);
    }

    /// Applies one op with an explicit angle, bypassing parameter resolution
    /// (used by the parameter-shift engine to shift one gate at a time).
    pub(crate) fn apply_op_resolved(op: &Op, state: &mut StateVector, theta: f64) {
        match op.wires {
            Wires::One(w) => state.apply_single(&op.kind.matrix(theta), w),
            Wires::Two(a, b) => match op.kind {
                GateKind::Swap => state.apply_swap(a, b),
                _ => state.apply_controlled(&op.kind.matrix(theta), a, b),
            },
        }
    }

    /// Applies the inverse of one op (used by adjoint differentiation).
    pub(crate) fn apply_op_inverse(
        op: &Op,
        state: &mut StateVector,
        inputs: &[f64],
        params: &[f64],
    ) {
        if op.kind == GateKind::Swap {
            // SWAP is self-inverse.
            if let Wires::Two(a, b) = op.wires {
                state.apply_swap(a, b);
            }
            return;
        }
        let theta = if op.kind.is_parametrized() {
            op.param.resolve(inputs, params)
        } else {
            0.0
        };
        let inv = crate::gates::dagger(&op.kind.matrix(theta));
        match op.wires {
            Wires::One(w) => state.apply_single(&inv, w),
            Wires::Two(a, b) => state.apply_controlled(&inv, a, b),
        }
    }

    /// Checks that the bindings cover every referenced slot.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() < input_count()` or
    /// `params.len() < trainable_count()`.
    pub(crate) fn check_bindings(&self, inputs: &[f64], params: &[f64]) {
        assert!(
            inputs.len() >= self.n_inputs,
            "circuit expects {} inputs, got {}",
            self.n_inputs,
            inputs.len()
        );
        assert!(
            params.len() >= self.n_trainable,
            "circuit expects {} trainable params, got {}",
            self.n_trainable,
            params.len()
        );
    }

    /// Runs the circuit on `|0…0⟩` with the given bindings and returns the
    /// final state.
    ///
    /// When gate fusion is enabled (see [`crate::fuse`]) this builds a
    /// [`crate::FusePlan`] and executes through it; otherwise it applies ops
    /// one by one. The fused result matches the scalar one to rounding but
    /// is **not** bitwise identical — fusion is opt-in for exactly that
    /// reason. Gradient engines always use [`Circuit::run_unfused`].
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() < input_count()` or
    /// `params.len() < trainable_count()`.
    pub fn run(&self, inputs: &[f64], params: &[f64]) -> StateVector {
        let level = crate::fuse::fusion_level();
        if level >= 1 {
            return crate::fuse::FusePlan::with_level(self, level).run(self, inputs, params);
        }
        self.run_unfused(inputs, params)
    }

    /// Runs the circuit gate-by-gate, ignoring the fusion flag.
    ///
    /// This is the bitwise-reference execution path: its output is what the
    /// determinism suites pin across thread counts, and what the adjoint and
    /// parameter-shift engines replay so gradients never depend on whether
    /// fusion is on.
    ///
    /// # Panics
    ///
    /// As for [`Circuit::run`].
    pub fn run_unfused(&self, inputs: &[f64], params: &[f64]) -> StateVector {
        self.check_bindings(inputs, params);
        hqnn_telemetry::counter("qsim.circuit_runs", 1);
        hqnn_telemetry::counter("qsim.gate_applies", self.ops.len() as u64);
        // High-water-mark gauge: the largest statevector simulated since the
        // last reset. Batched execution runs circuits on several threads at
        // once, so last-writer-wins would report whichever run finished last;
        // the max is schedule-independent.
        hqnn_telemetry::gauge_max("qsim.statevector_len", (1u64 << self.n_qubits) as f64);
        let mut state = StateVector::new(self.n_qubits);
        for op in &self.ops {
            Self::apply_op(op, &mut state, inputs, params);
        }
        state
    }

    /// Runs the circuit and evaluates each observable's expectation value.
    ///
    /// # Panics
    ///
    /// As for [`Circuit::run`]; additionally if an observable references a
    /// wire outside the circuit.
    pub fn expectations(
        &self,
        inputs: &[f64],
        params: &[f64],
        observables: &[Observable],
    ) -> Vec<f64> {
        let state = self.run(inputs, params);
        observables.iter().map(|o| o.expectation(&state)).collect()
    }

    /// Precomputes the gate matrix of every op whose angle does not depend
    /// on the per-sample inputs (`Fixed`/`Trainable`/fixed gates), returning
    /// one `Option<Matrix2>` slot per op. `Input`-parametrized ops and SWAPs
    /// get `None` and are resolved at apply time.
    ///
    /// Batched execution shares one table across all rows: every row binds
    /// the same trainable parameters, and `θ → matrix(θ)` is deterministic,
    /// so the shared matrix is bitwise identical to the one each row would
    /// rebuild — only the redundant `sin`/`cos` work is skipped.
    pub(crate) fn precompute_tables(&self, params: &[f64]) -> Vec<Option<Matrix2>> {
        self.ops
            .iter()
            .map(|op| match (op.kind, op.param) {
                (GateKind::Swap, _) => None,
                (_, ParamSource::Input(_)) => None,
                (kind, param) => {
                    let theta = if kind.is_parametrized() {
                        param.resolve(&[], params)
                    } else {
                        0.0
                    };
                    Some(kind.matrix(theta))
                }
            })
            .collect()
    }

    /// Runs the circuit gate-by-gate, taking each op's matrix from `tables`
    /// when present (see [`Circuit::precompute_tables`]) and resolving the
    /// rest against the bindings. Bitwise identical to
    /// [`Circuit::run_unfused`] for a table built from the same `params`.
    pub(crate) fn run_with_tables(
        &self,
        tables: &[Option<Matrix2>],
        inputs: &[f64],
        params: &[f64],
    ) -> StateVector {
        assert_eq!(tables.len(), self.ops.len(), "table/ops length mismatch");
        self.check_bindings(inputs, params);
        hqnn_telemetry::counter("qsim.circuit_runs", 1);
        hqnn_telemetry::counter("qsim.gate_applies", self.ops.len() as u64);
        hqnn_telemetry::gauge_max("qsim.statevector_len", (1u64 << self.n_qubits) as f64);
        let mut state = StateVector::new(self.n_qubits);
        for (op, table) in self.ops.iter().zip(tables) {
            match (table, op.wires) {
                (Some(m), Wires::One(w)) => state.apply_single(m, w),
                (Some(m), Wires::Two(a, b)) => state.apply_controlled(m, a, b),
                (None, _) => Self::apply_op(op, &mut state, inputs, params),
            }
        }
        state
    }

    /// Counts ops by how the FLOPs model classifies them:
    /// `(encoding_rotations, variational_rotations, fixed_single, two_qubit)`.
    pub fn op_census(&self) -> OpCensus {
        let mut census = OpCensus::default();
        for op in &self.ops {
            match (op.kind.arity(), op.param) {
                (1, ParamSource::Input(_)) => census.encoding_rotations += 1,
                (1, ParamSource::Trainable(_)) => census.variational_rotations += 1,
                (1, _) => census.fixed_single += 1,
                (2, ParamSource::Trainable(_)) | (2, ParamSource::Input(_)) => {
                    census.variational_two_qubit += 1
                }
                (2, _) => census.fixed_two_qubit += 1,
                _ => unreachable!("gate arity is 1 or 2"),
            }
        }
        census
    }
}

/// Counts of circuit ops grouped by role, consumed by the FLOPs cost model
/// to split simulation cost into encoding vs quantum-layer work (Table I).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpCensus {
    /// Single-qubit rotations fed by `ParamSource::Input` (data encoding).
    pub encoding_rotations: usize,
    /// Single-qubit rotations fed by `ParamSource::Trainable`.
    pub variational_rotations: usize,
    /// Fixed single-qubit gates (H, X, …).
    pub fixed_single: usize,
    /// Two-qubit gates with a differentiable parameter (CRX, …).
    pub variational_two_qubit: usize,
    /// Fixed two-qubit gates (CNOT, CZ, SWAP).
    pub fixed_two_qubit: usize,
}

impl OpCensus {
    /// Total op count.
    pub fn total(&self) -> usize {
        self.encoding_rotations
            + self.variational_rotations
            + self.fixed_single
            + self.variational_two_qubit
            + self.fixed_two_qubit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_circuit_runs_to_ground_state() {
        let c = Circuit::new(2);
        let s = c.run(&[], &[]);
        assert_eq!(s.probability(0), 1.0);
    }

    #[test]
    fn counts_track_max_indices() {
        let mut c = Circuit::new(3);
        c.rx(0, ParamSource::Input(4));
        c.ry(1, ParamSource::Trainable(2));
        assert_eq!(c.input_count(), 5);
        assert_eq!(c.trainable_count(), 3);
    }

    #[test]
    fn rot_decomposes_into_three_rotations() {
        let mut c = Circuit::new(1);
        c.rot(
            0,
            ParamSource::Trainable(0),
            ParamSource::Trainable(1),
            ParamSource::Trainable(2),
        );
        assert_eq!(c.ops().len(), 3);
        assert_eq!(c.ops()[0].kind, GateKind::RZ);
        assert_eq!(c.ops()[1].kind, GateKind::RY);
        assert_eq!(c.ops()[2].kind, GateKind::RZ);
    }

    #[test]
    fn run_matches_manual_application() {
        let mut c = Circuit::new(2);
        c.h(0);
        c.cnot(0, 1);
        let s = c.run(&[], &[]);
        assert!((s.probability(0) - 0.5).abs() < 1e-12);
        assert!((s.probability(3) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fixed_param_rotation() {
        let mut c = Circuit::new(1);
        c.rx(0, ParamSource::Fixed(std::f64::consts::PI));
        let s = c.run(&[], &[]);
        assert!((s.probability(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn expectations_multiple_observables() {
        let mut c = Circuit::new(2);
        c.x(1);
        let e = c.expectations(&[], &[], &[Observable::z(0), Observable::z(1)]);
        assert!((e[0] - 1.0).abs() < 1e-12);
        assert!((e[1] + 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "expects 2 inputs")]
    fn run_validates_input_length() {
        let mut c = Circuit::new(1);
        c.rx(0, ParamSource::Input(1));
        let _ = c.run(&[0.1], &[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn push_validates_wires() {
        let mut c = Circuit::new(1);
        c.h(1);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn push_rejects_coincident_wires() {
        let mut c = Circuit::new(2);
        c.cnot(1, 1);
    }

    #[test]
    #[should_panic(expected = "requires a parameter")]
    fn push_rejects_missing_parameter() {
        let mut c = Circuit::new(1);
        c.push(Op {
            kind: GateKind::RX,
            wires: Wires::One(0),
            param: ParamSource::None,
        });
    }

    #[test]
    #[should_panic(expected = "takes no parameter")]
    fn push_rejects_extraneous_parameter() {
        let mut c = Circuit::new(1);
        c.push(Op {
            kind: GateKind::H,
            wires: Wires::One(0),
            param: ParamSource::Fixed(1.0),
        });
    }

    #[test]
    fn inverse_round_trips_random_circuit() {
        let mut c = Circuit::new(3);
        c.h(0);
        c.rx(1, ParamSource::Fixed(0.3));
        c.cnot(0, 2);
        c.rz(2, ParamSource::Fixed(-1.1));
        c.swap(0, 1);
        c.cz(1, 2);
        let forward = c.run(&[], &[]);
        let mut undone = forward.clone();
        for op in c.ops().iter().rev() {
            Circuit::apply_op_inverse(op, &mut undone, &[], &[]);
        }
        assert!(undone.approx_eq(&StateVector::new(3), 1e-12));
    }

    #[test]
    fn op_census_classifies_roles() {
        let mut c = Circuit::new(2);
        c.rx(0, ParamSource::Input(0));
        c.ry(1, ParamSource::Trainable(0));
        c.h(0);
        c.cnot(0, 1);
        c.controlled_rotation(GateKind::Crz, 0, 1, ParamSource::Trainable(1));
        let census = c.op_census();
        assert_eq!(census.encoding_rotations, 1);
        assert_eq!(census.variational_rotations, 1);
        assert_eq!(census.fixed_single, 1);
        assert_eq!(census.fixed_two_qubit, 1);
        assert_eq!(census.variational_two_qubit, 1);
        assert_eq!(census.total(), 5);
    }
}
