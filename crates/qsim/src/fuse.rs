//! Gate fusion: collapse runs of adjacent single-qubit gates on the same
//! wire into one precomputed 2×2 matrix before the statevector sweep.
//!
//! The paper's ansätze emit exactly such runs — an encoding rotation
//! followed by a trainable `Rot` decomposed as `RZ·RY·RZ` puts up to four
//! consecutive single-qubit gates on every wire per layer — so fusing them
//! replaces four full-state sweeps with one. The pass has two halves:
//!
//! * [`FusePlan`] — a **structural** pass over the circuit IR, computed once
//!   per circuit (and shared across a whole batch in
//!   [`crate::Circuit::run_batch`]): which ops collapse into which
//!   single-wire runs. Building the plan never looks at parameter values,
//!   so one plan serves every row of a batch.
//! * [`FusePlan::run`] — execution: resolve each run's angles, multiply its
//!   matrices into one [`Matrix2`], and apply it with the ordinary
//!   amplitude-pair kernel.
//!
//! Fusion reassociates floating-point products (`U₃·(U₂·(U₁ψ))` becomes
//! `(U₃U₂U₁)·ψ`), so fused amplitudes differ from the scalar path in the
//! last ulps. It is therefore **opt-in**: enabled by `HQNN_FUSE=1` in the
//! environment or a scoped [`with_fusion`] override (innermost wins), and
//! benchmarked under its own `bench/baseline.json` entries
//! (`qsim.statevector_evolve_fused`, `qsim.run_batch_fused`). The fused
//! path is still **deterministic**: a plan is a pure function of the
//! circuit, so results are bitwise identical run-to-run and at every thread
//! count — `crates/qsim/tests/batch_determinism.rs` holds it to the same
//! bar as the scalar runtime.
//!
//! Gradient engines never fuse. The adjoint reverse walk and the
//! parameter-shift rule both step gate-by-gate through the original op
//! stream (a fused block would straddle the trainable parameters it has to
//! differentiate), so [`crate::gradient`] pins its forward passes to
//! [`crate::Circuit::run_unfused`] and gradients are bitwise identical
//! whether fusion is enabled or not.

use std::cell::Cell;
use std::sync::OnceLock;

use crate::circuit::{Circuit, Op, Wires};
use crate::gates::{matmul2, Matrix2};
use crate::state::StateVector;

thread_local! {
    /// Scoped override installed by [`with_fusion`] (`None` = no override).
    static OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// The fusion default parsed from `HQNN_FUSE`, read once per process.
/// `1`/`true`/`on` (case-insensitive) enable it; anything else (or unset)
/// leaves fusion off.
fn env_fuse() -> bool {
    static ENV: OnceLock<bool> = OnceLock::new();
    *ENV.get_or_init(|| {
        hqnn_telemetry::env::var("HQNN_FUSE")
            .map(|raw| hqnn_telemetry::env::parse_flag(&raw))
            .unwrap_or(false)
    })
}

/// Whether forward circuit execution fuses single-qubit gate runs on the
/// calling thread, resolved as: [`with_fusion`] override → `HQNN_FUSE` →
/// off. Batch entry points resolve this **once on the caller** before
/// fanning rows out, so a scoped override governs the whole batch
/// regardless of which worker thread runs a row.
pub fn fusion_enabled() -> bool {
    OVERRIDE.with(Cell::get).unwrap_or_else(env_fuse)
}

/// Runs `f` with gate fusion pinned on or off for the calling thread
/// (nested calls nest; the previous setting is restored afterwards, also on
/// panic). This is how tests compare fused and scalar execution inside one
/// process, and how benchmarks force the fused path without touching the
/// environment.
pub fn with_fusion<R>(enabled: bool, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(enabled))));
    f()
}

/// One step of a fused program: either a run of single-qubit ops collapsed
/// into one matrix apply, or an op passed through unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Segment {
    /// Indices (into `Circuit::ops`) of ≥ 2 single-qubit ops on `wire`,
    /// in application order, applied as one product matrix.
    Run { wire: usize, ops: Vec<usize> },
    /// An op applied as-is (two-qubit ops and unfusable singletons).
    Direct(usize),
}

/// A fusion plan for one circuit: the structural result of collapsing every
/// maximal run of adjacent single-qubit gates per wire.
///
/// "Adjacent" is per-wire program order: a run on wire `w` is broken only by
/// a two-qubit op touching `w`. Single-qubit ops on *other* wires commute
/// with the run and do not break it.
///
/// # Example
///
/// ```
/// use hqnn_qsim::{Circuit, FusePlan, ParamSource};
///
/// let mut c = Circuit::new(2);
/// c.rz(0, ParamSource::Fixed(0.3));
/// c.ry(0, ParamSource::Fixed(-0.2));
/// c.rz(0, ParamSource::Fixed(1.1)); // three gates on wire 0 → one apply
/// c.cnot(0, 1);
/// let plan = FusePlan::new(&c);
/// assert_eq!(plan.fused_ops(), 2); // 4 ops execute as 2 segments
/// let fused = plan.run(&c, &[], &[]);
/// assert!(fused.approx_eq(&c.run_unfused(&[], &[]), 1e-12));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FusePlan {
    segments: Vec<Segment>,
    n_ops: usize,
}

impl FusePlan {
    /// Builds the plan for `circuit` with a single linear walk of its ops.
    pub fn new(circuit: &Circuit) -> Self {
        let ops = circuit.ops();
        // Pending run per wire: op indices accumulated since the wire was
        // last broken by a two-qubit op.
        let mut pending: Vec<Vec<usize>> = vec![Vec::new(); circuit.n_qubits()];
        let mut segments = Vec::new();
        let flush = |pending: &mut Vec<usize>, segments: &mut Vec<Segment>, wire: usize| {
            match pending.len() {
                0 => {}
                1 => segments.push(Segment::Direct(pending[0])),
                _ => segments.push(Segment::Run {
                    wire,
                    ops: std::mem::take(pending),
                }),
            }
            pending.clear();
        };
        for (k, op) in ops.iter().enumerate() {
            match op.wires {
                Wires::One(w) => pending[w].push(k),
                Wires::Two(a, b) => {
                    // Flush the blocked wires in the order their runs
                    // started, then pass the two-qubit op through.
                    let (first, second) = if run_start(&pending[a]) <= run_start(&pending[b]) {
                        (a, b)
                    } else {
                        (b, a)
                    };
                    let mut take = std::mem::take(&mut pending[first]);
                    flush(&mut take, &mut segments, first);
                    let mut take = std::mem::take(&mut pending[second]);
                    flush(&mut take, &mut segments, second);
                    segments.push(Segment::Direct(k));
                }
            }
        }
        // Flush the tails, ordered by where each wire's run started.
        let mut tails: Vec<usize> = (0..pending.len())
            .filter(|&w| !pending[w].is_empty())
            .collect();
        tails.sort_unstable_by_key(|&w| run_start(&pending[w]));
        for w in tails {
            let mut take = std::mem::take(&mut pending[w]);
            flush(&mut take, &mut segments, w);
        }
        Self {
            segments,
            n_ops: ops.len(),
        }
    }

    /// Number of kernel applications the fused program performs (≤ op count).
    pub fn fused_ops(&self) -> usize {
        self.segments.len()
    }

    /// Number of gate applications fusion eliminated.
    pub fn collapsed_ops(&self) -> usize {
        self.n_ops - self.segments.len()
    }

    /// Runs `circuit` on `|0…0⟩` through this plan with the given bindings.
    ///
    /// # Panics
    ///
    /// Panics if the plan was built for a different circuit (op count
    /// mismatch), or under the same binding conditions as
    /// [`Circuit::run_unfused`].
    pub fn run(&self, circuit: &Circuit, inputs: &[f64], params: &[f64]) -> StateVector {
        assert_eq!(
            circuit.ops().len(),
            self.n_ops,
            "fuse plan built for a different circuit"
        );
        circuit.check_bindings(inputs, params);
        hqnn_telemetry::counter("qsim.circuit_runs", 1);
        hqnn_telemetry::counter("qsim.gate_applies", self.segments.len() as u64);
        hqnn_telemetry::counter("qsim.fuse_collapsed", self.collapsed_ops() as u64);
        hqnn_telemetry::gauge_max("qsim.statevector_len", (1u64 << circuit.n_qubits()) as f64);
        let mut state = StateVector::new(circuit.n_qubits());
        for segment in &self.segments {
            match segment {
                Segment::Run { wire, ops } => {
                    let mut m = resolved_matrix(&circuit.ops()[ops[0]], inputs, params);
                    for &k in &ops[1..] {
                        // ψ ← U_k (… U_1 ψ): later gates multiply from the left.
                        m = matmul2(&resolved_matrix(&circuit.ops()[k], inputs, params), &m);
                    }
                    state.apply_single(&m, *wire);
                }
                Segment::Direct(k) => {
                    Circuit::apply_op(&circuit.ops()[*k], &mut state, inputs, params);
                }
            }
        }
        state
    }

    /// Audits this plan's legality for `circuit`: every op is covered by
    /// exactly one segment, every `Run` has ≥ 2 ops in strictly increasing
    /// program order, and all of a run's ops are single-qubit gates on the
    /// run's wire. Used by [`Circuit::verify`] to hold the fusion pass to
    /// the IR it was built from.
    pub fn audit(&self, circuit: &Circuit) -> Result<(), String> {
        if circuit.ops().len() != self.n_ops {
            return Err(format!(
                "plan covers {} ops but the circuit has {}",
                self.n_ops,
                circuit.ops().len()
            ));
        }
        let mut seen = vec![false; self.n_ops];
        let mark = |k: usize, seen: &mut Vec<bool>| -> Result<(), String> {
            if k >= seen.len() {
                return Err(format!("segment references op {k} beyond the op count"));
            }
            if seen[k] {
                return Err(format!("op {k} appears in more than one segment"));
            }
            seen[k] = true;
            Ok(())
        };
        for segment in &self.segments {
            match segment {
                Segment::Direct(k) => mark(*k, &mut seen)?,
                Segment::Run { wire, ops } => {
                    if ops.len() < 2 {
                        return Err(format!(
                            "run on wire {wire} has {} op(s); runs must collapse ≥ 2",
                            ops.len()
                        ));
                    }
                    let mut prev = None;
                    for &k in ops {
                        mark(k, &mut seen)?;
                        if prev.is_some_and(|p| k <= p) {
                            return Err(format!(
                                "run on wire {wire} is not in increasing program order at op {k}"
                            ));
                        }
                        prev = Some(k);
                        match circuit.ops()[k].wires {
                            Wires::One(w) if w == *wire => {}
                            ref other => {
                                return Err(format!(
                                    "op {k} in a wire-{wire} run has wires {other:?}; runs may only contain single-qubit ops on the run wire"
                                ));
                            }
                        }
                    }
                }
            }
        }
        if let Some(k) = seen.iter().position(|&s| !s) {
            return Err(format!("op {k} is not covered by any segment"));
        }
        Ok(())
    }
}

/// Index of the first op in a pending run (`usize::MAX` when empty), the
/// deterministic ordering key for flushing runs on different wires.
fn run_start(pending: &[usize]) -> usize {
    pending.first().copied().unwrap_or(usize::MAX)
}

/// The op's 2×2 matrix with its angle resolved from the bindings.
fn resolved_matrix(op: &Op, inputs: &[f64], params: &[f64]) -> Matrix2 {
    let theta = if op.kind.is_parametrized() {
        op.param.resolve(inputs, params)
    } else {
        0.0
    };
    op.kind.matrix(theta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ansatz::{EntanglerKind, QnnTemplate};
    use crate::circuit::ParamSource;
    use crate::observable::Observable;

    #[test]
    fn fusion_flag_resolution_order() {
        // Default off (HQNN_FUSE unset in the test environment) unless the
        // env enables it; the scoped override always wins either way.
        let ambient = fusion_enabled();
        assert!(with_fusion(true, fusion_enabled));
        assert!(!with_fusion(false, fusion_enabled));
        let nested = with_fusion(true, || with_fusion(false, fusion_enabled));
        assert!(!nested);
        assert_eq!(fusion_enabled(), ambient);
    }

    #[test]
    fn with_fusion_restores_on_panic() {
        let ambient = fusion_enabled();
        let result = std::panic::catch_unwind(|| with_fusion(!ambient, || panic!("boom")));
        assert!(result.is_err());
        assert_eq!(fusion_enabled(), ambient);
    }

    #[test]
    fn rot_run_collapses_to_one_apply() {
        let mut c = Circuit::new(1);
        c.rx(0, ParamSource::Fixed(0.4));
        c.rot(
            0,
            ParamSource::Fixed(0.1),
            ParamSource::Fixed(0.2),
            ParamSource::Fixed(0.3),
        );
        let plan = FusePlan::new(&c);
        assert_eq!(plan.fused_ops(), 1);
        assert_eq!(plan.collapsed_ops(), 3);
        let fused = plan.run(&c, &[], &[]);
        assert!(fused.approx_eq(&c.run_unfused(&[], &[]), 1e-12));
    }

    #[test]
    fn two_qubit_ops_break_runs_only_on_their_wires() {
        let mut c = Circuit::new(3);
        c.ry(0, ParamSource::Fixed(0.3));
        c.ry(2, ParamSource::Fixed(0.5));
        c.cnot(0, 1); // breaks wire 0 (singleton) but not wire 2
        c.ry(2, ParamSource::Fixed(-0.2));
        let plan = FusePlan::new(&c);
        // Direct(ry0), Direct(cnot), Run{wire 2: both ry2} → 3 segments.
        assert_eq!(plan.fused_ops(), 3);
        assert_eq!(plan.collapsed_ops(), 1);
        let fused = plan.run(&c, &[], &[]);
        assert!(fused.approx_eq(&c.run_unfused(&[], &[]), 1e-12));
    }

    #[test]
    fn sel_template_fuses_encoding_into_first_rot() {
        let t = QnnTemplate::new(3, 2, EntanglerKind::Strong);
        let c = t.build();
        let plan = FusePlan::new(&c);
        // Per wire and layer: encoding RX + RZ·RY·RZ fuse (first layer run
        // of 4; later layers runs of 3), CNOT rings pass through.
        assert!(plan.collapsed_ops() > 0, "SEL must fuse");
        let inputs = [0.2, -0.4, 0.9];
        let params: Vec<f64> = (0..c.trainable_count()).map(|i| 0.1 * i as f64).collect();
        let fused = plan.run(&c, &inputs, &params);
        assert!(fused.approx_eq(&c.run_unfused(&inputs, &params), 1e-12));
    }

    #[test]
    fn fused_expectations_match_scalar_within_tolerance() {
        for kind in [EntanglerKind::Basic, EntanglerKind::Strong] {
            let c = QnnTemplate::new(4, 3, kind).build();
            let inputs: Vec<f64> = (0..4).map(|i| 0.3 * i as f64 - 0.5).collect();
            let params: Vec<f64> = (0..c.trainable_count())
                .map(|i| (i as f64 * 0.7).sin())
                .collect();
            let obs: Vec<Observable> = (0..4).map(Observable::z).collect();
            let scalar = with_fusion(false, || c.expectations(&inputs, &params, &obs));
            let fused = with_fusion(true, || c.expectations(&inputs, &params, &obs));
            for (a, b) in scalar.iter().zip(&fused) {
                assert!((a - b).abs() < 1e-12, "{kind:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn plan_rejects_mismatched_circuit() {
        let mut a = Circuit::new(1);
        a.h(0);
        let plan = FusePlan::new(&a);
        let mut b = Circuit::new(1);
        b.h(0);
        b.x(0);
        let result = std::panic::catch_unwind(|| plan.run(&b, &[], &[]));
        assert!(result.is_err());
    }

    #[test]
    fn empty_circuit_plan_is_empty() {
        let c = Circuit::new(2);
        let plan = FusePlan::new(&c);
        assert_eq!(plan.fused_ops(), 0);
        assert_eq!(plan.collapsed_ops(), 0);
        let s = plan.run(&c, &[], &[]);
        assert_eq!(s.probability(0), 1.0);
    }
}
